/**
 * @file
 * Tests for race detection and Theorem 1: u and v race iff no
 * directed path connects them — validated structurally, against
 * brute-force ordering enumeration, and on random DAGs.
 */

#include <gtest/gtest.h>

#include <random>

#include "graph/race.hh"
#include "graph/race_avoid.hh"
#include "graph/topo.hh"

namespace
{

using namespace specsec::graph;

Tsg
figure2()
{
    Tsg g;
    for (const char *name : {"A", "B", "C", "D", "E", "F", "G"})
        g.addNode(name);
    g.addEdge(0, 1); // A->B
    g.addEdge(0, 2); // A->C
    g.addEdge(1, 3); // B->D
    g.addEdge(2, 3); // C->D
    g.addEdge(2, 4); // C->E
    g.addEdge(3, 5); // D->F
    g.addEdge(4, 5); // E->F
    g.addEdge(5, 6); // F->G
    return g;
}

TEST(Race, PathExistsDirect)
{
    const Tsg g = figure2();
    EXPECT_TRUE(pathExists(g, 0, 1));
    EXPECT_TRUE(pathExists(g, 0, 6));
    EXPECT_FALSE(pathExists(g, 6, 0));
    EXPECT_TRUE(pathExists(g, 2, 5));
}

TEST(Race, PathExistsReflexive)
{
    const Tsg g = figure2();
    EXPECT_TRUE(pathExists(g, 3, 3));
}

TEST(Race, PaperDERace)
{
    // The paper's example: D and E race in Fig. 2.
    const Tsg g = figure2();
    EXPECT_TRUE(hasRace(g, 3, 4));
    EXPECT_TRUE(hasRace(g, 4, 3));
}

TEST(Race, ConnectedPairsDoNotRace)
{
    const Tsg g = figure2();
    EXPECT_FALSE(hasRace(g, 0, 6));
    EXPECT_FALSE(hasRace(g, 2, 3));
    EXPECT_FALSE(hasRace(g, 1, 5));
}

TEST(Race, NodeDoesNotRaceWithItself)
{
    const Tsg g = figure2();
    EXPECT_FALSE(hasRace(g, 3, 3));
}

TEST(Race, Figure2AllRacePairs)
{
    const Tsg g = figure2();
    const auto races = racePairs(g);
    // B-C, B-E, D-E are the only unordered pairs.
    const std::vector<std::pair<NodeId, NodeId>> expected = {
        {1, 2}, {1, 4}, {3, 4}};
    EXPECT_EQ(races, expected);
}

TEST(Race, ReachabilityMatrixMatchesDfs)
{
    const Tsg g = figure2();
    const ReachabilityMatrix m(g);
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        for (NodeId v = 0; v < g.nodeCount(); ++v)
            EXPECT_EQ(m.reachable(u, v), pathExists(g, u, v))
                << "u=" << u << " v=" << v;
    }
}

TEST(Race, MatrixRaceAgreesWithDfsRace)
{
    const Tsg g = figure2();
    const ReachabilityMatrix m(g);
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        for (NodeId v = 0; v < g.nodeCount(); ++v)
            EXPECT_EQ(hasRace(m, u, v), hasRace(g, u, v));
    }
}

TEST(Race, EnumerationAgreesOnFigure2)
{
    const Tsg g = figure2();
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        for (NodeId v = u + 1; v < g.nodeCount(); ++v)
            EXPECT_EQ(raceByEnumeration(g, u, v), hasRace(g, u, v))
                << "u=" << u << " v=" << v;
    }
}

TEST(Race, WitnessOrderingsDisagreeOnOrder)
{
    const Tsg g = figure2();
    const auto witness = raceWitness(g, 3, 4); // D vs E
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(isValidOrdering(g, witness->uFirst));
    EXPECT_TRUE(isValidOrdering(g, witness->vFirst));
    const auto pos = [](const std::vector<NodeId> &order, NodeId x) {
        return std::find(order.begin(), order.end(), x) -
               order.begin();
    };
    EXPECT_LT(pos(witness->uFirst, 3), pos(witness->uFirst, 4));
    EXPECT_LT(pos(witness->vFirst, 4), pos(witness->vFirst, 3));
}

TEST(Race, NoWitnessForOrderedPair)
{
    const Tsg g = figure2();
    EXPECT_FALSE(raceWitness(g, 0, 6).has_value());
}

TEST(Race, AddingEdgeRemovesRace)
{
    Tsg g = figure2();
    ASSERT_TRUE(hasRace(g, 3, 4));
    g.addEdge(4, 3, EdgeKind::Security); // the security dependency
    EXPECT_FALSE(hasRace(g, 3, 4));
}

TEST(Race, PathAvoidingExcludedNode)
{
    // a -> b -> c and a -> c: excluding b keeps a->c reachable;
    // removing the direct edge leaves only the b route.
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(a, b);
    g.addEdge(b, c);
    g.addEdge(a, c);
    std::vector<bool> excl(3, false);
    excl[b] = true;
    EXPECT_TRUE(pathExistsAvoiding(g, a, c, excl));
    g.removeEdge(a, c);
    EXPECT_FALSE(pathExistsAvoiding(g, a, c, excl));
    excl[b] = false;
    EXPECT_TRUE(pathExistsAvoiding(g, a, c, excl));
}

TEST(Race, PathAvoidingEndpointsNeverExcluded)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    g.addEdge(a, b);
    std::vector<bool> excl(2, true); // endpoints flagged
    EXPECT_TRUE(pathExistsAvoiding(g, a, b, excl));
}

TEST(Race, PathAvoidingMaskSizeChecked)
{
    Tsg g;
    g.addNode("a");
    g.addNode("b");
    std::vector<bool> excl(1, false);
    EXPECT_THROW((void)pathExistsAvoiding(g, 0, 1, excl),
                 std::invalid_argument);
}

TEST(Race, PathAvoidingSelfIsAlwaysReachable)
{
    // u == v holds by the empty path, even when the node itself is
    // in the excluded set (endpoints are never excluded).
    Tsg g;
    const NodeId a = g.addNode("a");
    std::vector<bool> excl(1, true);
    EXPECT_TRUE(pathExistsAvoiding(g, a, a, excl));
}

TEST(Race, PathAvoidingAllAlternativeSourcesExcluded)
{
    // Fig. 4 OR-join: two alternative secret sources feed the same
    // send.  Excluding one source reroutes the flow through the
    // other; excluding every source disconnects the send entirely.
    Tsg g;
    const NodeId auth = g.addNode("auth");
    const NodeId s1 = g.addNode("source-1");
    const NodeId s2 = g.addNode("source-2");
    const NodeId send = g.addNode("send");
    g.addEdge(auth, s1);
    g.addEdge(auth, s2);
    g.addEdge(s1, send);
    g.addEdge(s2, send);
    std::vector<bool> excl(4, false);
    excl[s1] = true;
    EXPECT_TRUE(pathExistsAvoiding(g, auth, send, excl));
    excl[s2] = true;
    EXPECT_FALSE(pathExistsAvoiding(g, auth, send, excl));
}

/**
 * Theorem 1 property test: on random DAGs, path-based race
 * detection must agree with the definition (two valid orderings
 * disagreeing on relative order) for every pair of vertices.
 */
class Theorem1RandomDag : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Theorem1RandomDag, RaceIffNoPath)
{
    std::mt19937 rng(GetParam() * 977 + 3);
    Tsg g;
    std::uniform_int_distribution<std::size_t> size_dist(2, 7);
    const std::size_t n = size_dist(rng);
    for (std::size_t i = 0; i < n; ++i)
        g.addNode("n" + std::to_string(i));
    std::uniform_int_distribution<int> coin(0, 99);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            if (coin(rng) < 30)
                g.addEdge(u, v);
        }
    }
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            const bool def_race = raceByEnumeration(g, u, v);
            const bool thm_race = hasRace(g, u, v);
            EXPECT_EQ(def_race, thm_race)
                << "seed=" << GetParam() << " u=" << u << " v=" << v;
            // And the witness exists exactly when racing.
            EXPECT_EQ(raceWitness(g, u, v).has_value(), thm_race);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1RandomDag,
                         ::testing::Range(0u, 25u));

} // namespace
