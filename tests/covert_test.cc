/**
 * @file
 * Tests for the covert-channel receivers (Section II-C).
 */

#include <gtest/gtest.h>

#include "uarch/covert.hh"

namespace
{

using namespace specsec::uarch;

struct CovertFixture : ::testing::Test
{
    CovertFixture() : mem(1 << 23)
    {
        pt.mapRange(0, 1 << 23, PageOwner::User, true, true);
    }

    Memory mem;
    PageTable pt;
};

TEST_F(CovertFixture, FlushReloadRecoversPlantedLine)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    FlushReloadChannel ch(cpu, 0x100000, 256, kPageSize);
    ch.setup();
    // Sender: touch slot 123.
    cpu.timedAccess(0x100000 + 123 * kPageSize);
    const ChannelRecovery r = ch.recover();
    EXPECT_EQ(r.value, 123);
    EXPECT_LT(r.latencies[123], ch.threshold());
    EXPECT_GT(r.latencies[7], ch.threshold());
}

TEST_F(CovertFixture, FlushReloadNoSignalGivesMinusOne)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    FlushReloadChannel ch(cpu, 0x100000, 256, kPageSize);
    ch.setup();
    EXPECT_EQ(ch.recover().value, -1);
}

TEST_F(CovertFixture, FlushReloadMeasurementIsRepeatable)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    FlushReloadChannel ch(cpu, 0x100000, 256, kPageSize);
    ch.setup();
    cpu.timedAccess(0x100000 + 42 * kPageSize);
    EXPECT_EQ(ch.recover().value, 42);
    // The probe is non-destructive: a second read still sees it.
    EXPECT_EQ(ch.recover().value, 42);
}

TEST_F(CovertFixture, FlushReloadThreshold)
{
    CpuConfig cfg;
    cfg.cache.hitLatency = 10;
    cfg.cache.missLatency = 110;
    Cpu cpu(cfg, mem, pt);
    FlushReloadChannel ch(cpu, 0x100000, 16, kPageSize);
    EXPECT_EQ(ch.threshold(), 60u);
}

TEST_F(CovertFixture, PrimeProbeRecoversEvictedSet)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    PrimeProbeChannel ch(cpu, 0x200000, 256);
    ch.prime();
    // Sender: insert a line into set 99 (probe array is
    // set-aligned at 0x100000).
    cpu.timedAccess(0x100000 + 99 * 64);
    const ChannelRecovery r = ch.recover();
    EXPECT_EQ(r.value, 99);
}

TEST_F(CovertFixture, PrimeProbeNoSignalGivesMinusOne)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    PrimeProbeChannel ch(cpu, 0x200000, 256);
    ch.prime();
    EXPECT_EQ(ch.recover().value, -1);
}

TEST_F(CovertFixture, PrimeProbeRepeatable)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    PrimeProbeChannel ch(cpu, 0x200000, 256);
    for (int trial = 0; trial < 3; ++trial) {
        ch.prime();
        cpu.timedAccess(0x100000 + 50 * 64);
        EXPECT_EQ(ch.recover().value, 50) << "trial " << trial;
    }
}

TEST_F(CovertFixture, EvictTimeRecoversVictimSet)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    // Victim operation: one load of table[secret], timed end to end.
    const int secret = 77;
    const Addr table = 0x100000; // set-aligned
    Program victim;
    victim.emit(load8(6, 3, 0));
    victim.emit(halt());
    cpu.loadProgram(victim);
    cpu.setReg(3, table + secret * 64);

    EvictTimeChannel ch(cpu, 0x200000, 256);
    const ChannelRecovery r = ch.recover(
        [&] { cpu.warmLine(table + secret * 64); },
        [&] { return cpu.run(0).cycles; });
    EXPECT_EQ(r.value, secret);
}

TEST_F(CovertFixture, EvictTimeNoSignalWithoutVictimAccess)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    Program victim;
    victim.emit(movImm(6, 1)); // touches no memory
    victim.emit(halt());
    cpu.loadProgram(victim);
    EvictTimeChannel ch(cpu, 0x200000, 64);
    const ChannelRecovery r =
        ch.recover([] {}, [&] { return cpu.run(0).cycles; });
    EXPECT_EQ(r.value, -1);
}

TEST_F(CovertFixture, CollisionChannelRecoversSecretIndex)
{
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);
    // Victim: load table[secret], then (dependently) table[guess];
    // a collision makes the second access a hit and the whole
    // operation faster.  The dependency chain mirrors real targets
    // (e.g. chained AES table lookups).
    const int secret = 142;
    const Addr table = 0x100000;
    Program victim;
    victim.emit(load8(6, 3, 0));    // table[secret]
    victim.emit(andImm(7, 6, 0));   // r7 = 0, dependent on the load
    victim.emit(add(8, 4, 7));      // guess address, dependent
    victim.emit(load8(9, 8, 0));    // table[guess]
    victim.emit(halt());
    cpu.loadProgram(victim);
    cpu.setReg(3, table + secret * 64);

    const ChannelRecovery r = recoverByCollision(
        256,
        [&] {
            for (int i = 0; i < 256; ++i)
                cpu.flushLineVirt(table + i * 64);
        },
        [&](int guess) {
            cpu.setReg(4, table + static_cast<Addr>(guess) * 64);
            return cpu.run(0).cycles;
        });
    EXPECT_EQ(r.value, secret);
}

TEST_F(CovertFixture, PartitionedCacheBlocksCrossDomainFlushReload)
{
    CpuConfig cfg;
    cfg.defense.partitionedCache = true;
    Cpu cpu(cfg, mem, pt);
    FlushReloadChannel ch(cpu, 0x100000, 256, kPageSize);
    ch.setup();
    cpu.contextSwitch(0);
    cpu.timedAccess(0x100000 + 123 * kPageSize); // victim sends
    cpu.contextSwitch(1);
    EXPECT_EQ(ch.recover().value, -1); // attacker sees nothing
}

} // namespace
