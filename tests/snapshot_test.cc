/**
 * @file
 * Tests for the snapshot/fork scenario path (attacks/snapshot.hh):
 * the dirty-page reset primitive on Memory, isolation between live
 * and pooled arenas, and the acceptance bar for the whole
 * subsystem — every golden spec produces byte-identical timing-free
 * exports through the fork and rebuild paths, at every worker
 * count.
 */

#include <gtest/gtest.h>

#include "attacks/attack_kit.hh"
#include "attacks/snapshot.hh"
#include "attacks/spectre.hh"
#include "campaign/campaign.hh"
#include "regress/specs.hh"
#include "tool/stream_export.hh"
#include "uarch/memory.hh"

namespace
{

using namespace specsec;
using attacks::Layout;
using attacks::Scenario;
using attacks::ScenarioBuildMode;
using attacks::ScenarioBuildModeGuard;
using uarch::kPageSize;

TEST(Snapshot, MemoryRezeroRestoresConstructionImage)
{
    uarch::Memory mem(16 * kPageSize);
    EXPECT_EQ(mem.dirtyPageCount(), 0u);

    mem.write8(5, 0xab);
    EXPECT_EQ(mem.dirtyPageCount(), 1u);

    // A straddling write64 dirties both touched pages.
    mem.write64(3 * kPageSize - 4, 0x1122334455667788ull);
    EXPECT_EQ(mem.dirtyPageCount(), 3u);

    // Rewriting a dirty page must not double-count.
    mem.write8(6, 0xcd);
    EXPECT_EQ(mem.dirtyPageCount(), 3u);

    // The very last byte lands in the final (possibly partial
    // bitmap word) page.
    mem.write8(16 * kPageSize - 1, 0xef);
    EXPECT_EQ(mem.dirtyPageCount(), 4u);

    mem.rezeroDirtyPages();
    EXPECT_EQ(mem.dirtyPageCount(), 0u);
    EXPECT_EQ(mem.read8(5), 0u);
    EXPECT_EQ(mem.read64(3 * kPageSize - 4), 0u);
    EXPECT_EQ(mem.read8(16 * kPageSize - 1), 0u);

    // The tracker keeps working after a reset.
    mem.write8(0, 1);
    EXPECT_EQ(mem.dirtyPageCount(), 1u);
}

TEST(Snapshot, ForkedScenariosAreIsolatedAndResetPristine)
{
    const ScenarioBuildModeGuard fork(ScenarioBuildMode::Fork);
    const uarch::CpuConfig config;

    // Two live scenarios hold distinct arenas: mutating one's
    // memory and page table must not leak into its sibling.
    {
        Scenario a(config);
        Scenario b(config);
        a.plantBytes(Layout::kUserSecret, {1, 2, 3, 4});
        a.pageTable().setPresent(Layout::kEnclaveData, false);
        a.pageTable().unmap(Layout::kKernelData);

        const std::vector<std::uint8_t> zeros(4, 0);
        EXPECT_EQ(b.readBytes(Layout::kUserSecret, 4), zeros);
        const uarch::Pte *enclave =
            b.pageTable().lookup(Layout::kEnclaveData);
        ASSERT_NE(enclave, nullptr);
        EXPECT_TRUE(enclave->present);
        EXPECT_NE(b.pageTable().lookup(Layout::kKernelData),
                  nullptr);
    }

    // Both dirtied arenas were pooled on destruction.  The next
    // scenario forks one of them and must observe the pristine
    // snapshot: zero memory, no dirty pages, baseline page table
    // (mapped kernel page, present enclave page, the read-only
    // page still read-only).
    Scenario c(config);
    EXPECT_EQ(c.mem().dirtyPageCount(), 0u);
    const std::vector<std::uint8_t> zeros(4, 0);
    EXPECT_EQ(c.readBytes(Layout::kUserSecret, 4), zeros);
    const uarch::Pte *kernel =
        c.pageTable().lookup(Layout::kKernelData);
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->owner, uarch::PageOwner::Kernel);
    const uarch::Pte *enclave =
        c.pageTable().lookup(Layout::kEnclaveData);
    ASSERT_NE(enclave, nullptr);
    EXPECT_TRUE(enclave->present);
    const uarch::Pte *ro =
        c.pageTable().lookup(Layout::kReadOnlyPage);
    ASSERT_NE(ro, nullptr);
    EXPECT_FALSE(ro->writable);
}

TEST(Snapshot, ForkPathIsExercisedUnderForkMode)
{
    const attacks::ScenarioForkStats before =
        attacks::scenarioForkStats();
    {
        const ScenarioBuildModeGuard fork(ScenarioBuildMode::Fork);
        const uarch::CpuConfig config;
        { Scenario warm(config); } // park one arena in the pool
        { Scenario reuse(config); }
    }
    const attacks::ScenarioForkStats after =
        attacks::scenarioForkStats();
    EXPECT_GE(after.forked, before.forked + 1);

    // Rebuild mode never touches the pool.
    const std::uint64_t forkedBefore = after.forked;
    {
        const ScenarioBuildModeGuard rebuild(
            ScenarioBuildMode::Rebuild);
        const uarch::CpuConfig config;
        { Scenario fresh(config); }
    }
    EXPECT_EQ(attacks::scenarioForkStats().forked, forkedBefore);
}

TEST(Snapshot, WarmSnapshotReuseHitsAfterFirstBuild)
{
    attacks::clearWarmSnapshots();
    const attacks::WarmSnapshotModeGuard warm(
        attacks::WarmSnapshotMode::Reuse);
    const uarch::CpuConfig config;
    attacks::AttackOptions opt;
    opt.secretLen = 4;

    const auto first = attacks::runSpectreV1(config, opt);
    attacks::WarmSnapshotStats s = attacks::warmSnapshotStats();
    EXPECT_GE(s.misses, 1u); // first cell builds the snapshot
    EXPECT_GE(s.entries, 1u);
    const std::uint64_t hitsAfterFirst = s.hits;

    const auto second = attacks::runSpectreV1(config, opt);
    s = attacks::warmSnapshotStats();
    EXPECT_GT(s.hits, hitsAfterFirst); // second cell restores it

    // Restoring the prologue state must not change the outcome.
    EXPECT_EQ(first.accuracy, second.accuracy);
    EXPECT_EQ(first.guestCycles, second.guestCycles);
    EXPECT_EQ(first.recovered, second.recovered);

    // Body-only options (delayAuthorization is applied after the
    // prologue) share the warm key, so flipping one still hits.
    const std::uint64_t hitsBefore = s.hits;
    attacks::AttackOptions noDelay = opt;
    noDelay.delayAuthorization = false;
    attacks::runSpectreV1(config, noDelay);
    EXPECT_GT(attacks::warmSnapshotStats().hits, hitsBefore);
    attacks::clearWarmSnapshots();
}

TEST(Snapshot, WarmRebuildModeBypassesTheCache)
{
    attacks::clearWarmSnapshots();
    const attacks::WarmSnapshotModeGuard rebuild(
        attacks::WarmSnapshotMode::Rebuild);
    const uarch::CpuConfig config;
    attacks::AttackOptions opt;
    opt.secretLen = 4;
    const std::uint64_t hitsBefore =
        attacks::warmSnapshotStats().hits;
    attacks::runSpectreV1(config, opt);
    attacks::runSpectreV1(config, opt);
    const attacks::WarmSnapshotStats s =
        attacks::warmSnapshotStats();
    EXPECT_EQ(s.hits, hitsBefore); // never restored
    EXPECT_EQ(s.entries, 0u);      // never captured
}

TEST(Snapshot, WarmAttackKeySeparatesTrainingRelevantState)
{
    const uarch::CpuConfig config;
    const attacks::AttackOptions opt;
    const std::string base =
        attacks::warmAttackKey("spectre-v1", config, opt);

    // Different attack name, training-relevant option, or CPU
    // config each get their own snapshot.
    EXPECT_NE(attacks::warmAttackKey("spectre-v1.1", config, opt),
              base);
    attacks::AttackOptions moreRounds = opt;
    moreRounds.trainingRounds += 1;
    EXPECT_NE(attacks::warmAttackKey("spectre-v1", config,
                                     moreRounds),
              base);
    attacks::AttackOptions primeProbe = opt;
    primeProbe.channel = attacks::CovertChannelKind::PrimeProbe;
    EXPECT_NE(attacks::warmAttackKey("spectre-v1", config,
                                     primeProbe),
              base);
    uarch::CpuConfig smallRob = config;
    smallRob.robSize /= 2;
    EXPECT_NE(attacks::warmAttackKey("spectre-v1", smallRob, opt),
              base);

    // Body-only options must NOT split the key: the prologue state
    // is identical, so the snapshot is shared.
    attacks::AttackOptions bodyOnly = opt;
    bodyOnly.delayAuthorization = !bodyOnly.delayAuthorization;
    bodyOnly.kpti = !bodyOnly.kpti;
    EXPECT_EQ(attacks::warmAttackKey("spectre-v1", config,
                                     bodyOnly),
              base);
}

TEST(Snapshot, WarmMatchesColdOnEveryGoldenSpec)
{
    // Second acceptance bar: warm-attack prologue reuse must be
    // invisible in every export.  The cold reference disables both
    // arena forking and warm snapshots; the warm runs enable both,
    // at one, two and eight workers.
    attacks::clearWarmSnapshots();
    for (const regress::NamedSpec &named :
         regress::registeredSpecs()) {
        campaign::CampaignEngine::Options coldOpts;
        coldOpts.workers = 1;
        coldOpts.forkScenarios = false;
        coldOpts.warmAttacks = false;
        const campaign::CampaignReport reference =
            campaign::CampaignEngine(coldOpts).run(named.spec);
        const std::string referenceJsonl =
            tool::campaignJsonl(reference, false);
        const std::string referenceMatrix =
            reference.successMatrixText();

        for (const unsigned workers : {1u, 2u, 8u}) {
            campaign::CampaignEngine::Options warmOpts;
            warmOpts.workers = workers;
            warmOpts.forkScenarios = true;
            warmOpts.warmAttacks = true;
            const campaign::CampaignReport warmed =
                campaign::CampaignEngine(warmOpts).run(named.spec);
            EXPECT_EQ(tool::campaignJsonl(warmed, false),
                      referenceJsonl)
                << named.name << " diverged at workers="
                << workers;
            EXPECT_EQ(warmed.successMatrixText(), referenceMatrix)
                << named.name << " matrix diverged at workers="
                << workers;
        }
    }
    attacks::clearWarmSnapshots();
}

TEST(Snapshot, ForkMatchesRebuildOnEveryGoldenSpec)
{
    // The acceptance bar: for every spec the golden regression
    // suite pins, the fork path's timing-free exports are
    // byte-identical to the rebuild path's, at one, two and eight
    // workers.  Any divergence here means a pooled arena leaked
    // state between cells.
    for (const regress::NamedSpec &named :
         regress::registeredSpecs()) {
        campaign::CampaignEngine::Options rebuildOpts;
        rebuildOpts.workers = 1;
        rebuildOpts.forkScenarios = false;
        const campaign::CampaignReport reference =
            campaign::CampaignEngine(rebuildOpts).run(named.spec);
        const std::string referenceJsonl =
            tool::campaignJsonl(reference, false);
        const std::string referenceMatrix =
            reference.successMatrixText();

        for (const unsigned workers : {1u, 2u, 8u}) {
            campaign::CampaignEngine::Options forkOpts;
            forkOpts.workers = workers;
            forkOpts.forkScenarios = true;
            const campaign::CampaignReport forked =
                campaign::CampaignEngine(forkOpts).run(named.spec);
            EXPECT_EQ(tool::campaignJsonl(forked, false),
                      referenceJsonl)
                << named.name << " diverged at workers="
                << workers;
            EXPECT_EQ(forked.successMatrixText(), referenceMatrix)
                << named.name << " matrix diverged at workers="
                << workers;
        }
    }
}

} // namespace
