/**
 * @file
 * Tests for the static verdict backend (src/verdict/static_verdict):
 *
 *  - baseline cells judge Leak from the Fig. 9 analyzer with the
 *    program-level rationale set;
 *  - software rewrites (lfence, address masking) flip bounds-family
 *    cells to Blocked and report their overhead;
 *  - hardware defense knobs and out-of-program mitigations (KPTI,
 *    RSB stuffing, L1 flush) yield Undecided — a program analyzer
 *    cannot see the core;
 *  - the catalog dispatch (judgeScenarioStatic) and the no-program
 *    fallback;
 *  - the fence-harden / mask-harden transforms: verified rewrites,
 *    overhead accounting, Meltdown-type residual races, and the
 *    no-mask-point fallback.
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "verdict/static_verdict.hh"

namespace
{

using namespace specsec;
using core::ModelVerdict;

const core::AttackDescriptor &
attack(const std::string &name)
{
    const core::AttackDescriptor *d =
        core::ScenarioCatalog::instance().findAttack(name);
    EXPECT_NE(d, nullptr) << name;
    return *d;
}

TEST(StaticVerdict, BaselineSpectreV1Leaks)
{
    const verdict::StaticJudgement j = verdict::staticJudgement(
        attack("spectre-v1"), uarch::CpuConfig{},
        attacks::AttackOptions{});
    EXPECT_EQ(j.judgement.verdict, ModelVerdict::Leak);
    EXPECT_NE(j.judgement.evidence.find(
                  "missing security dependencies"),
              std::string::npos)
        << j.judgement.evidence;
    EXPECT_FALSE(j.judgement.rationale.empty());
    EXPECT_EQ(j.fencesInserted, 0u);
    EXPECT_EQ(j.masksInserted, 0u);
}

TEST(StaticVerdict, LfenceRewriteBlocksBoundsFamily)
{
    attacks::AttackOptions options;
    options.softwareLfence = true;
    for (const char *name : {"spectre-v1", "spectre-v1.1"}) {
        const verdict::StaticJudgement j = verdict::staticJudgement(
            attack(name), uarch::CpuConfig{}, options);
        EXPECT_EQ(j.judgement.verdict, ModelVerdict::Blocked)
            << name;
        EXPECT_GE(j.fencesInserted, 1u) << name;
        EXPECT_GE(j.extraInstructions, 1u) << name;
    }
}

TEST(StaticVerdict, MaskRewriteBlocksSpectreV1)
{
    attacks::AttackOptions options;
    options.addressMasking = true;
    const verdict::StaticJudgement j = verdict::staticJudgement(
        attack("spectre-v1"), uarch::CpuConfig{}, options);
    EXPECT_EQ(j.judgement.verdict, ModelVerdict::Blocked);
    EXPECT_GE(j.masksInserted, 1u);
}

TEST(StaticVerdict, HardwareDefenseIsUndecided)
{
    uarch::CpuConfig config;
    config.defense.fenceSpeculativeLoads = true;
    const verdict::StaticJudgement j = verdict::staticJudgement(
        attack("spectre-v1"), config, attacks::AttackOptions{});
    EXPECT_EQ(j.judgement.verdict, ModelVerdict::Undecided);
}

TEST(StaticVerdict, OutOfProgramMitigationIsUndecided)
{
    attacks::AttackOptions options;
    options.kpti = true;
    const verdict::StaticJudgement j = verdict::staticJudgement(
        attack("meltdown"), uarch::CpuConfig{}, options);
    EXPECT_EQ(j.judgement.verdict, ModelVerdict::Undecided);
}

TEST(StaticVerdict, CatalogDispatchMatchesDescriptorPath)
{
    const verdict::StaticJudgement direct =
        verdict::staticJudgement(attack("spectre-v1"),
                                 uarch::CpuConfig{},
                                 attacks::AttackOptions{});
    const verdict::StaticJudgement routed =
        verdict::judgeScenarioStatic(core::AttackVariant::SpectreV1,
                                     uarch::CpuConfig{},
                                     attacks::AttackOptions{});
    EXPECT_EQ(routed.judgement.verdict, direct.judgement.verdict);
    EXPECT_EQ(routed.judgement.evidence, direct.judgement.evidence);
}

TEST(StaticVerdict, NoStaticProgramIsUndecided)
{
    // Spoiler exposes no static program; the backend must defer to
    // the simulator instead of guessing.
    const verdict::StaticJudgement j =
        verdict::judgeScenarioStatic(core::AttackVariant::Spoiler,
                                     uarch::CpuConfig{},
                                     attacks::AttackOptions{});
    EXPECT_EQ(j.judgement.verdict, ModelVerdict::Undecided);
}

TEST(StaticVerdict, FenceHardenVerifiesBoundsShape)
{
    const auto &d = attack("spectre-v1");
    ASSERT_TRUE(d.staticProgram);
    const core::StaticProgramSpec spec = d.staticProgram();
    const core::TransformResult r =
        verdict::fenceHardenTransform(spec);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.fencesInserted, 1u);
    EXPECT_EQ(r.residualRaces, 0u);
    EXPECT_EQ(r.hardened.program.size(),
              spec.program.size() + r.extraInstructions);
}

TEST(StaticVerdict, FenceHardenReportsMeltdownResidualRace)
{
    // The intra-instruction access race cannot be fenced away; the
    // transform cuts the exfiltration chain and reports the race it
    // provably cannot close.
    const auto &d = attack("meltdown");
    ASSERT_TRUE(d.staticProgram);
    const core::TransformResult r =
        verdict::fenceHardenTransform(d.staticProgram());
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.fencesInserted, 1u);
    EXPECT_GE(r.residualRaces, 1u);
}

TEST(StaticVerdict, MaskHardenClampsDeclaredIndex)
{
    const auto &d = attack("spectre-v1");
    ASSERT_TRUE(d.staticProgram);
    const core::StaticProgramSpec spec = d.staticProgram();
    ASSERT_TRUE(spec.maskReg.has_value());
    const core::TransformResult r =
        verdict::maskHardenTransform(spec);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.masksInserted, 1u);
    EXPECT_GE(r.extraInstructions, 1u);
}

TEST(StaticVerdict, MaskHardenWithoutMaskPointIsUnverified)
{
    // Meltdown has no maskable index: the transform must come back
    // unmodified and unverified rather than clamp a random register.
    const auto &d = attack("meltdown");
    ASSERT_TRUE(d.staticProgram);
    const core::StaticProgramSpec spec = d.staticProgram();
    const core::TransformResult r =
        verdict::maskHardenTransform(spec);
    EXPECT_FALSE(r.verified);
    EXPECT_EQ(r.masksInserted, 0u);
    EXPECT_EQ(r.hardened.program.size(), spec.program.size());
}

TEST(StaticVerdict, HardenedMitigationsAreCataloged)
{
    // The transforms ride the mitigation catalog so sweeps and the
    // CLI's --mitigations resolve them by name.
    for (const char *name : {"fence-harden", "mask-harden"}) {
        const core::MitigationDescriptor *m =
            core::ScenarioCatalog::instance().findMitigation(name);
        ASSERT_NE(m, nullptr) << name;
        EXPECT_NE(m->transform, nullptr) << name;
    }
}

} // namespace
