/**
 * @file
 * Tests for the golden success-matrix regression gate: JSON
 * round-trip, cell-level comparison and diff rendering, the named
 * spec registry, and the acceptance property that a deliberate
 * VulnConfig flip is caught with a diff naming the changed
 * (variant, defense) cells.
 */

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "regress/golden.hh"
#include "regress/specs.hh"

namespace
{

using namespace specsec;
using namespace specsec::regress;
using core::AttackVariant;

GoldenMatrix
sampleMatrix()
{
    GoldenMatrix m;
    m.spec = "sample";
    m.rows = {"Spectre v1", "Meltdown"};
    m.cols = {"baseline", "fence(1)"};
    m.cells = {{{1, 1, "1", {}}, {1, 0, "0", {}}},
               {{1, 1, "1", {}}, {2, 1, "10", {}}}};
    return m;
}

TEST(Golden, JsonRoundTrip)
{
    const GoldenMatrix m = sampleMatrix();
    const std::string json = goldenJson(m);
    std::string error;
    const auto parsed = parseGoldenJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->spec, m.spec);
    EXPECT_EQ(parsed->rows, m.rows);
    EXPECT_EQ(parsed->cols, m.cols);
    EXPECT_EQ(parsed->cells, m.cells);
    EXPECT_TRUE(compareGolden(m, *parsed).empty());
    // Serialization is stable: emit(parse(emit(x))) == emit(x).
    EXPECT_EQ(goldenJson(*parsed), json);
}

TEST(Golden, RoundTripsAwkwardLabels)
{
    GoldenMatrix m = sampleMatrix();
    m.rows = {"comma, quote \" label", "new\nline\tand\\slash"};
    const std::string json = goldenJson(m);
    std::string error;
    const auto parsed = parseGoldenJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->rows, m.rows);
}

TEST(Golden, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseGoldenJson("", &error));
    EXPECT_FALSE(parseGoldenJson("not json", &error));
    EXPECT_FALSE(parseGoldenJson("{\"spec\": \"x\"}", &error));
    EXPECT_FALSE(error.empty());
    // Shape mismatch between rows and cells.
    EXPECT_FALSE(parseGoldenJson(
        "{\"spec\": \"x\", \"cols\": [\"a\"], \"rows\": [\"r\"], "
        "\"cells\": []}",
        &error));
    // Trailing garbage.
    const std::string good = goldenJson(sampleMatrix());
    EXPECT_TRUE(parseGoldenJson(good));
    EXPECT_FALSE(parseGoldenJson(good + "x", &error));
}

TEST(Golden, CompareDetectsCellDrift)
{
    const GoldenMatrix golden = sampleMatrix();
    GoldenMatrix actual = golden;
    // Meltdown x baseline stops leaking.
    actual.cells[1][0] = {1, 0, "0", {}};

    const MatrixDiff diff = compareGolden(golden, actual);
    EXPECT_TRUE(diff.structural.empty());
    ASSERT_EQ(diff.cells.size(), 1u);
    EXPECT_EQ(diff.cells[0].row, "Meltdown");
    EXPECT_EQ(diff.cells[0].col, "baseline");
    ASSERT_TRUE(diff.cells[0].golden.has_value());
    ASSERT_TRUE(diff.cells[0].actual.has_value());
    EXPECT_EQ(diff.cells[0].golden->leaks, 1u);
    EXPECT_EQ(diff.cells[0].actual->leaks, 0u);

    const std::string rendered = renderDiff(diff);
    EXPECT_NE(rendered.find("Meltdown"), std::string::npos);
    EXPECT_NE(rendered.find("baseline"), std::string::npos);
    EXPECT_NE(rendered.find("1/1"), std::string::npos);
    EXPECT_NE(rendered.find("0/1"), std::string::npos);
}

TEST(Golden, CompareDetectsShapeChanges)
{
    const GoldenMatrix golden = sampleMatrix();
    GoldenMatrix actual = golden;
    actual.cols = {"baseline", "nda(2)"};

    const MatrixDiff diff = compareGolden(golden, actual);
    ASSERT_EQ(diff.structural.size(), 2u);
    EXPECT_EQ(diff.structural[0], "column removed: fence(1)");
    EXPECT_EQ(diff.structural[1], "column added: nda(2)");
    // Every cell under both changed columns is reported.
    EXPECT_EQ(diff.cells.size(), 4u);
    for (const CellDiff &cell : diff.cells)
        EXPECT_TRUE(!cell.golden.has_value() ||
                    !cell.actual.has_value());
}

TEST(Golden, CompareIgnoresPureReordering)
{
    const GoldenMatrix golden = sampleMatrix();
    GoldenMatrix actual;
    actual.spec = golden.spec;
    actual.rows = {"Meltdown", "Spectre v1"};
    actual.cols = {"fence(1)", "baseline"};
    actual.cells = {{{2, 1, "10", {}}, {1, 1, "1", {}}},
                    {{1, 0, "0", {}}, {1, 1, "1", {}}}};
    EXPECT_TRUE(compareGolden(golden, actual).empty());
}

TEST(Golden, PatternDriftCaughtWhenLeakCountsMatch)
{
    // A cell aggregating a knob sweep must pin WHICH sweep values
    // leak, not just how many: swapping the leaking value while
    // preserving the count is still drift.
    const GoldenMatrix golden = sampleMatrix();
    GoldenMatrix actual = golden;
    ASSERT_EQ(actual.cells[1][1].pattern, "10");
    actual.cells[1][1].pattern = "01";

    const MatrixDiff diff = compareGolden(golden, actual);
    ASSERT_EQ(diff.cells.size(), 1u);
    EXPECT_EQ(diff.cells[0].row, "Meltdown");
    EXPECT_EQ(diff.cells[0].col, "fence(1)");
    const std::string rendered = renderDiff(diff);
    EXPECT_NE(rendered.find("[10]"), std::string::npos);
    EXPECT_NE(rendered.find("[01]"), std::string::npos);
}

/** sampleMatrix() with accuracy values pinned under @p eps. */
GoldenMatrix
accuracyMatrix(double eps)
{
    GoldenMatrix m = sampleMatrix();
    m.hasAccuracy = true;
    m.absEps = eps;
    m.cells[0][0].accuracy = {{"accuracy", {1.0}}};
    m.cells[0][1].accuracy = {{"accuracy", {0.0}}};
    m.cells[1][0].accuracy = {{"accuracy", {1.0}}};
    m.cells[1][1].accuracy = {{"accuracy", {0.75, 0.25}}};
    return m;
}

TEST(GoldenAccuracy, JsonRoundTripKeepsToleranceAndValues)
{
    const GoldenMatrix m = accuracyMatrix(0.005);
    const std::string json = goldenJson(m);
    EXPECT_NE(json.find("\"absEps\": 0.005"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"accuracy\": [0.75, 0.25]"),
              std::string::npos)
        << json;
    std::string error;
    const auto parsed = parseGoldenJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(parsed->hasAccuracy);
    EXPECT_EQ(parsed->absEps, 0.005);
    EXPECT_EQ(parsed->cells, m.cells);
    EXPECT_EQ(goldenJson(*parsed), json);
}

TEST(GoldenAccuracy, DriftWithinToleranceIsNotDrift)
{
    const GoldenMatrix golden = accuracyMatrix(0.01);
    GoldenMatrix actual = golden;
    actual.cells[1][1].accuracy["accuracy"] = {0.7501, 0.2499};
    EXPECT_TRUE(compareGolden(golden, actual).empty());
}

TEST(GoldenAccuracy, DriftBeyondToleranceNamesFieldAndDelta)
{
    // Leak counts and patterns unchanged — only an accuracy value
    // moved beyond the tolerance.  The pre-accuracy gate was blind
    // to exactly this.
    const GoldenMatrix golden = accuracyMatrix(0.005);
    GoldenMatrix actual = golden;
    actual.cells[1][1].accuracy["accuracy"] = {0.75, 0.5};

    const MatrixDiff diff = compareGolden(golden, actual);
    ASSERT_EQ(diff.cells.size(), 1u);
    EXPECT_EQ(diff.cells[0].row, "Meltdown");
    EXPECT_EQ(diff.cells[0].col, "fence(1)");
    ASSERT_EQ(diff.cells[0].accuracyNotes.size(), 1u);
    const std::string rendered = renderDiff(diff);
    // The diff names the field, the grid point, both values, the
    // delta and the tolerance it exceeded.
    EXPECT_NE(rendered.find("accuracy[1]"), std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find("0.25"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("absEps 0.005"), std::string::npos)
        << rendered;
}

TEST(GoldenAccuracy, LegacyGoldensIgnoreAccuracyEntirely)
{
    // A golden recorded before the migration (hasAccuracy false)
    // compares exactly as it always did, even against an actual
    // matrix that carries accuracy values.
    const GoldenMatrix golden = sampleMatrix();
    GoldenMatrix actual = accuracyMatrix(0.0);
    EXPECT_TRUE(compareGolden(golden, actual).empty());
}

TEST(GoldenAccuracy, ParserRejectsAccuracyWithoutTolerance)
{
    GoldenMatrix m = accuracyMatrix(0.005);
    std::string json = goldenJson(m);
    // Strip the absEps line: values without a declared tolerance
    // would make the comparison contract ambiguous.
    const std::string line = "  \"absEps\": 0.005,\n";
    const std::size_t at = json.find(line);
    ASSERT_NE(at, std::string::npos);
    json.erase(at, line.size());
    std::string error;
    EXPECT_FALSE(parseGoldenJson(json, &error).has_value());
    EXPECT_NE(error.find("absEps"), std::string::npos) << error;
}

TEST(GoldenAccuracy, ParserRejectsWrongArity)
{
    // Each accuracy array must carry exactly one value per run.
    const std::string json = goldenJson(accuracyMatrix(0.005));
    std::string broken = json;
    const std::string needle = "\"accuracy\": [0.75, 0.25]";
    const std::size_t at = broken.find(needle);
    ASSERT_NE(at, std::string::npos);
    broken.replace(at, needle.size(), "\"accuracy\": [0.75]");
    std::string error;
    EXPECT_FALSE(parseGoldenJson(broken, &error).has_value());
    EXPECT_NE(error.find("values for"), std::string::npos) << error;
}

TEST(GoldenAccuracy, FromReportCapturesSchemaAccuracyFields)
{
    campaign::ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    const campaign::CampaignReport report =
        campaign::CampaignEngine(
            campaign::CampaignEngine::Options{1})
            .run(spec);
    GoldenMatrix with = GoldenMatrix::fromReport(report, true);
    with.absEps = 0.001;
    EXPECT_TRUE(with.hasAccuracy);
    for (const auto &row : with.cells)
        for (const GoldenCell &cell : row) {
            ASSERT_EQ(cell.accuracy.count("accuracy"), 1u);
            EXPECT_EQ(cell.accuracy.at("accuracy").size(),
                      cell.runs);
        }
    // Self-comparison under any tolerance is clean, and the
    // accuracy-bearing golden round-trips byte-identically.
    const std::string json = goldenJson(with);
    const auto parsed = parseGoldenJson(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(compareGolden(*parsed, with).empty());
    EXPECT_EQ(goldenJson(*parsed), json);
}

TEST(Specs, RegistryMatchesTheCtestSuite)
{
    // Keep in sync with SPECSEC_REGRESS_SPECS in src/CMakeLists.txt:
    // each name here is registered as ctest suite regress_<name>.
    const std::vector<std::string> expected = {
        "defense-matrix",
        "table2-industry",
        "table2-academia",
        "table3-baseline",
        "ablation-spectre-window",
        "ablation-meltdown-delivery",
        "ablation-foreshadow-auth",
        "mitigation-matrix",
        "vuln-ablation",
        "cache-geometry",
        "static-hardening",
    };
    std::vector<std::string> actual;
    for (const NamedSpec &named : registeredSpecs())
        actual.push_back(named.name);
    EXPECT_EQ(actual, expected);

    for (const NamedSpec &named : registeredSpecs()) {
        EXPECT_GT(named.spec.gridSize(), 0u) << named.name;
        EXPECT_FALSE(named.description.empty()) << named.name;
        EXPECT_EQ(findSpec(named.name), &named);
    }
    EXPECT_EQ(findSpec("no-such-spec"), nullptr);
}

TEST(Specs, GoldenRoundTripFromEngineReport)
{
    const NamedSpec *named = findSpec("ablation-spectre-window");
    ASSERT_NE(named, nullptr);
    const campaign::CampaignReport report =
        campaign::CampaignEngine(campaign::CampaignEngine::Options{2})
            .run(named->spec);
    const GoldenMatrix actual = GoldenMatrix::fromReport(report);
    EXPECT_EQ(actual.spec, "ablation-spectre-window");
    EXPECT_EQ(actual.rows.size(), 1u);
    EXPECT_EQ(actual.cols.size(), 9u);

    std::string error;
    const auto parsed =
        parseGoldenJson(goldenJson(actual), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(compareGolden(*parsed, actual).empty());
}

TEST(Specs, VulnFlipIsCaughtWithCellLevelDiff)
{
    // The acceptance property, at the API level: removing a
    // forwarding path from the baseline core changes exactly the
    // cells of the variants that need it, and the diff names them.
    campaign::ScenarioSpec spec;
    spec.name = "flip";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    const campaign::CampaignEngine engine(
        campaign::CampaignEngine::Options{1});
    const GoldenMatrix golden =
        GoldenMatrix::fromReport(engine.run(spec));

    spec.baseConfig.vuln.meltdown = false;
    const GoldenMatrix flipped =
        GoldenMatrix::fromReport(engine.run(spec));

    const MatrixDiff diff = compareGolden(golden, flipped);
    ASSERT_EQ(diff.cells.size(), 1u);
    EXPECT_EQ(diff.cells[0].row,
              core::variantInfo(AttackVariant::Meltdown).name);
    EXPECT_EQ(diff.cells[0].col, "baseline");
    EXPECT_EQ(diff.cells[0].golden->leaks, 1u);
    EXPECT_EQ(diff.cells[0].actual->leaks, 0u);
    const std::string rendered = renderDiff(diff);
    EXPECT_NE(rendered.find("Meltdown"), std::string::npos);
}

} // namespace
