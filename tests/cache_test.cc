/**
 * @file
 * Tests for the L1 cache model: hit/miss timing, LRU replacement,
 * flushes, non-allocating probes and DAWG-style domain partitioning.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

namespace
{

using namespace specsec::uarch;

CacheConfig
smallConfig()
{
    CacheConfig c;
    c.sets = 4;
    c.ways = 2;
    c.lineSize = 64;
    c.hitLatency = 4;
    c.missLatency = 200;
    return c;
}

TEST(Cache, MissThenHit)
{
    Cache c(smallConfig());
    const CacheAccess first = c.access(0x1000);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.latency, 200u);
    const CacheAccess second = c.access(0x1000);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.latency, 4u);
}

TEST(Cache, SameLineSharesEntry)
{
    Cache c(smallConfig());
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x103f).hit); // same 64B line
    EXPECT_FALSE(c.access(0x1040).hit); // next line
}

TEST(Cache, SetIndexComputation)
{
    Cache c(smallConfig());
    EXPECT_EQ(c.setIndex(0), 0u);
    EXPECT_EQ(c.setIndex(64), 1u);
    EXPECT_EQ(c.setIndex(64 * 4), 0u); // wraps at 4 sets
}

TEST(Cache, LruEviction)
{
    Cache c(smallConfig()); // 2 ways
    // Three lines in set 0: 0x0, 0x100, 0x200 (all set index 0).
    c.access(0x000);
    c.access(0x100);
    c.access(0x000); // touch: 0x100 becomes LRU
    const CacheAccess third = c.access(0x200);
    EXPECT_FALSE(third.hit);
    EXPECT_TRUE(third.evicted);
    EXPECT_EQ(third.evictedLineAddr, 0x100u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, NonAllocatingProbe)
{
    Cache c(smallConfig());
    const CacheAccess probe = c.access(0x1000, 0, false);
    EXPECT_FALSE(probe.hit);
    EXPECT_FALSE(c.contains(0x1000)); // no state change
}

TEST(Cache, FlushLine)
{
    Cache c(smallConfig());
    c.access(0x1000);
    EXPECT_TRUE(c.flushLine(0x1000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.flushLine(0x1000)); // already gone
}

TEST(Cache, FlushAll)
{
    Cache c(smallConfig());
    c.access(0x0);
    c.access(0x40);
    c.flushAll();
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, FlushAllRestoresLruParityWithFreshCache)
{
    // flushAll() also rewinds the LRU use counter, so a flushed
    // cache must make the same eviction decisions as a
    // freshly-constructed one — the warm-snapshot path relies on
    // replayed accesses evicting identically.
    Cache flushed(smallConfig());
    // Age the counter well past anything the replay will reach.
    for (Addr a = 0; a < 64 * 64; a += 64)
        flushed.access(a);
    flushed.flushAll();

    Cache fresh(smallConfig());
    const Addr pattern[] = {0x000, 0x100, 0x000, 0x200,
                            0x100, 0x300, 0x200};
    for (const Addr a : pattern) {
        const CacheAccess f = flushed.access(a);
        const CacheAccess g = fresh.access(a);
        EXPECT_EQ(f.hit, g.hit) << "addr " << a;
        EXPECT_EQ(f.evicted, g.evicted) << "addr " << a;
        if (f.evicted)
            EXPECT_EQ(f.evictedLineAddr, g.evictedLineAddr);
    }
}

TEST(Cache, Stats)
{
    Cache c(smallConfig());
    c.access(0x0);
    c.access(0x0);
    c.access(0x40);
    c.flushLine(0x40);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().flushes, 1u);
    c.resetStats();
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, InsertWithoutTiming)
{
    Cache c(smallConfig());
    c.insert(0x2000);
    EXPECT_TRUE(c.contains(0x2000));
}

TEST(Cache, PartitionedDomainsDoNotShareHits)
{
    Cache c(smallConfig());
    c.setPartitioned(true);
    c.access(0x1000, /*domain=*/0);
    EXPECT_TRUE(c.contains(0x1000, 0));
    EXPECT_FALSE(c.contains(0x1000, 1)); // DAWG: invisible next door
    EXPECT_FALSE(c.access(0x1000, 1).hit);
}

TEST(Cache, UnpartitionedIgnoresDomain)
{
    Cache c(smallConfig());
    c.access(0x1000, 0);
    EXPECT_TRUE(c.contains(0x1000, 1));
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache c(smallConfig());
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.access(a);
    for (Addr a = 0; a < 4 * 64; a += 64)
        EXPECT_TRUE(c.contains(a));
}

TEST(Cache, ConfigurableLatencies)
{
    CacheConfig cfg = smallConfig();
    cfg.hitLatency = 7;
    cfg.missLatency = 99;
    Cache c(cfg);
    EXPECT_EQ(c.access(0).latency, 99u);
    EXPECT_EQ(c.access(0).latency, 7u);
}

} // namespace
