/**
 * @file
 * Tests for the ScenarioCatalog registry: exhaustive catalog <->
 * enum parity, name/alias round-trips, byte-for-byte agreement of
 * descriptor execute hooks with the attack runners the old switch
 * dispatched to, registration-collision errors, did-you-mean
 * suggestions, and an out-of-tree attack flowing through the
 * campaign engine end to end.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"
#include "core/catalog.hh"
#include "defense/mitigations.hh"

namespace
{

using namespace specsec;
using attacks::AttackOptions;
using attacks::AttackResult;
using core::AttackDescriptor;
using core::AttackVariant;
using core::DefenseMechanism;
using core::ScenarioCatalog;
using uarch::CpuConfig;

TEST(CatalogParity, EveryVariantHasExactlyOneDescriptor)
{
    const ScenarioCatalog &catalog = ScenarioCatalog::instance();
    for (const AttackVariant v : core::allVariants()) {
        const AttackDescriptor *d = catalog.findAttack(v);
        ASSERT_NE(d, nullptr)
            << core::variantInfo(v).name << " not registered";
        ASSERT_TRUE(d->variant.has_value());
        EXPECT_EQ(*d->variant, v);
        EXPECT_EQ(d->id, v);
        EXPECT_EQ(d->name, core::variantInfo(v).name);
        EXPECT_EQ(d->klass, core::variantInfo(v).klass);
        EXPECT_EQ(d->cve, core::variantInfo(v).cve);
        EXPECT_EQ(d->paperSection, core::variantInfo(v).figure);
        EXPECT_TRUE(static_cast<bool>(d->execute)) << d->name;
        EXPECT_TRUE(static_cast<bool>(d->buildGraph)) << d->name;
    }

    // Exactly one descriptor per enumerator, and the enum-backed
    // prefix of the registration order is Table III order (what
    // default campaign rows expand to).
    std::size_t builtins = 0;
    const auto attacks = catalog.attacks();
    for (const AttackDescriptor *d : attacks) {
        if (!d->isExtension())
            ++builtins;
        else
            EXPECT_GE(static_cast<unsigned>(d->id),
                      core::kExtensionIdBase);
    }
    EXPECT_EQ(builtins, core::allVariants().size());
    std::size_t next = 0;
    for (const AttackDescriptor *d : attacks) {
        if (d->isExtension())
            continue;
        EXPECT_EQ(*d->variant, core::allVariants()[next]) << d->name;
        ++next;
    }
}

TEST(CatalogParity, NamesAndAliasesRoundTrip)
{
    const ScenarioCatalog &catalog = ScenarioCatalog::instance();
    for (const AttackDescriptor *d : catalog.attacks()) {
        EXPECT_EQ(catalog.findAttack(d->name), d);
        for (const std::string &alias : d->aliases)
            EXPECT_EQ(catalog.findAttack(alias), d) << alias;
        EXPECT_EQ(catalog.findAttack(d->id), d);
    }
}

TEST(CatalogParity, FindVariantByNameStillResolvesEverySpelling)
{
    // The lookups the old hand-rolled tables accepted: enumerator
    // spellings, catalog names, arbitrary punctuation and case.
    const std::pair<const char *, AttackVariant> spellings[] = {
        {"SpectreV1", AttackVariant::SpectreV1},
        {"spectre-v1", AttackVariant::SpectreV1},
        {"Spectre v1.1", AttackVariant::SpectreV1_1},
        {"SpectreV1_1", AttackVariant::SpectreV1_1},
        {"SpectreV1_2", AttackVariant::SpectreV1_2},
        {"SPECTRE V2", AttackVariant::SpectreV2},
        {"meltdown", AttackVariant::Meltdown},
        {"Meltdown (Spectre v3)", AttackVariant::Meltdown},
        {"MeltdownV3a", AttackVariant::MeltdownV3a},
        {"spectre-v4", AttackVariant::SpectreV4},
        {"Spectre RSB", AttackVariant::SpectreRsb},
        {"Foreshadow", AttackVariant::Foreshadow},
        {"l1tf", AttackVariant::Foreshadow},
        {"foreshadow-os", AttackVariant::ForeshadowOs},
        {"ForeshadowVmm", AttackVariant::ForeshadowVmm},
        {"lazy fp", AttackVariant::LazyFp},
        {"Spoiler", AttackVariant::Spoiler},
        {"RIDL", AttackVariant::Ridl},
        {"zombieload", AttackVariant::ZombieLoad},
        {"Fallout", AttackVariant::Fallout},
        {"LVI", AttackVariant::Lvi},
        {"taa", AttackVariant::Taa},
        {"CacheOut", AttackVariant::Cacheout},
    };
    for (const auto &[spelling, variant] : spellings) {
        const auto found = core::findVariantByName(spelling);
        ASSERT_TRUE(found.has_value()) << spelling;
        EXPECT_EQ(*found, variant) << spelling;
    }
    EXPECT_FALSE(core::findVariantByName("no-such-attack"));
}

/** The old runner.cc switch, preserved as the parity oracle. */
const std::pair<AttackVariant,
                AttackResult (*)(const CpuConfig &,
                                 const AttackOptions &)>
    kRunnerOracle[] = {
        {AttackVariant::SpectreV1, attacks::runSpectreV1},
        {AttackVariant::SpectreV1_1, attacks::runSpectreV1_1},
        {AttackVariant::SpectreV1_2, attacks::runSpectreV1_2},
        {AttackVariant::SpectreV2, attacks::runSpectreV2},
        {AttackVariant::Meltdown, attacks::runMeltdown},
        {AttackVariant::MeltdownV3a, attacks::runMeltdownV3a},
        {AttackVariant::SpectreV4, attacks::runSpectreV4},
        {AttackVariant::SpectreRsb, attacks::runSpectreRsb},
        {AttackVariant::Foreshadow, attacks::runForeshadow},
        {AttackVariant::ForeshadowOs, attacks::runForeshadowOs},
        {AttackVariant::ForeshadowVmm, attacks::runForeshadowVmm},
        {AttackVariant::LazyFp, attacks::runLazyFp},
        {AttackVariant::Spoiler, attacks::runSpoiler},
        {AttackVariant::Ridl, attacks::runRidl},
        {AttackVariant::ZombieLoad, attacks::runZombieLoad},
        {AttackVariant::Fallout, attacks::runFallout},
        {AttackVariant::Lvi, attacks::runLvi},
        {AttackVariant::Taa, attacks::runTaa},
        {AttackVariant::Cacheout, attacks::runCacheout},
};

TEST(CatalogParity, ExecuteAgreesWithTheOldSwitchPath)
{
    ASSERT_EQ(std::size(kRunnerOracle),
              core::allVariants().size());
    const CpuConfig config;
    const AttackOptions options;
    for (const auto &[variant, runner] : kRunnerOracle) {
        const AttackResult direct = runner(config, options);
        uarch::CpuStats stats;
        const AttackResult via_catalog =
            attacks::runVariant(variant, config, options, stats);
        EXPECT_EQ(via_catalog.name, direct.name);
        EXPECT_EQ(via_catalog.recovered, direct.recovered);
        EXPECT_EQ(via_catalog.expected, direct.expected);
        EXPECT_EQ(via_catalog.accuracy, direct.accuracy);
        EXPECT_EQ(via_catalog.leaked, direct.leaked);
        EXPECT_EQ(via_catalog.guestCycles, direct.guestCycles);
        EXPECT_EQ(via_catalog.transientForwards,
                  direct.transientForwards);
        // The wrapped execute reports the run's own scenario stats.
        EXPECT_GT(stats.cycles, 0u) << direct.name;
    }
}

TEST(CatalogParity, UnknownVariantSlotThrows)
{
    EXPECT_THROW(attacks::runVariant(static_cast<AttackVariant>(200),
                                     CpuConfig{}),
                 std::invalid_argument);
    EXPECT_THROW(core::buildAttackGraph(
                     static_cast<AttackVariant>(200)),
                 std::invalid_argument);
}

TEST(CatalogParity, DefenseDescriptorsMatchMechanismTable)
{
    const ScenarioCatalog &catalog = ScenarioCatalog::instance();
    const auto mechanisms = core::allDefenseMechanisms();
    EXPECT_EQ(mechanisms.size(), 29u);
    for (const DefenseMechanism m : mechanisms) {
        const core::DefenseDescriptor *d = catalog.findDefense(m);
        ASSERT_NE(d, nullptr);
        ASSERT_TRUE(d->mechanism.has_value());
        EXPECT_EQ(*d->mechanism, m);
        EXPECT_EQ(d->info.mechanism, m);
        EXPECT_EQ(&core::defenseInfo(m), &d->info);
        EXPECT_EQ(catalog.findDefense(d->info.name), d);

        // The descriptor's apply hook and the legacy entry point
        // configure the scenario identically (scenarioKey covers
        // every CpuConfig/AttackOptions field).
        CpuConfig via_hook_cfg, via_legacy_cfg;
        AttackOptions via_hook_opt, via_legacy_opt;
        ASSERT_TRUE(static_cast<bool>(d->apply));
        d->apply(via_hook_cfg, via_hook_opt);
        EXPECT_TRUE(defense::applyMitigation(m, via_legacy_cfg,
                                             via_legacy_opt));
        EXPECT_EQ(
            campaign::scenarioKey(AttackVariant::SpectreV1,
                                  via_hook_cfg, via_hook_opt),
            campaign::scenarioKey(AttackVariant::SpectreV1,
                                  via_legacy_cfg, via_legacy_opt))
            << d->info.name;
    }
}

TEST(CatalogParity, MitigationDescriptorsBackTheSweepValues)
{
    const ScenarioCatalog &catalog = ScenarioCatalog::instance();
    EXPECT_GE(catalog.mitigations().size(), 6u);
    for (const char *name :
         {"none", "kpti", "rsb-stuff", "lfence", "addr-mask",
          "flush-l1"})
        EXPECT_NE(catalog.findMitigation(name), nullptr) << name;

    const auto kpti = campaign::SoftwareMitigation::byName("kpti");
    ASSERT_TRUE(kpti.has_value());
    EXPECT_EQ(kpti->label, "kpti");
    EXPECT_TRUE(kpti->toggles.kpti);
    EXPECT_FALSE(kpti->toggles.softwareLfence);
    AttackOptions options;
    kpti->applyTo(options);
    EXPECT_TRUE(options.kpti);

    EXPECT_FALSE(
        campaign::SoftwareMitigation::byName("no-such-mitigation"));
}

TEST(CatalogRegistration, CollisionsThrow)
{
    // A private catalog so the global registry stays untouched.
    ScenarioCatalog catalog;
    AttackDescriptor first;
    first.name = "Test Attack";
    first.aliases = {"ta"};
    catalog.registerAttack(std::move(first));

    AttackDescriptor same_name;
    same_name.name = "test-attack"; // folds onto "Test Attack"
    EXPECT_THROW(catalog.registerAttack(std::move(same_name)),
                 std::invalid_argument);

    AttackDescriptor same_alias;
    same_alias.name = "Other Attack";
    same_alias.aliases = {"T.A."}; // folds onto alias "ta"
    EXPECT_THROW(catalog.registerAttack(std::move(same_alias)),
                 std::invalid_argument);

    AttackDescriptor same_slot;
    same_slot.name = "Slot Thief";
    same_slot.variant = AttackVariant::SpectreV1;
    catalog.registerAttack(std::move(same_slot));
    AttackDescriptor thief2;
    thief2.name = "Slot Thief II";
    thief2.variant = AttackVariant::SpectreV1;
    EXPECT_THROW(catalog.registerAttack(std::move(thief2)),
                 std::invalid_argument);

    AttackDescriptor unfoldable;
    unfoldable.name = "---"; // folds to the empty string
    EXPECT_THROW(catalog.registerAttack(std::move(unfoldable)),
                 std::invalid_argument);

    // Same rules for the defense/mitigation sides.
    core::MitigationDescriptor m;
    m.name = "test-mit";
    catalog.registerMitigation(std::move(m));
    core::MitigationDescriptor m2;
    m2.name = "TEST MIT";
    EXPECT_THROW(catalog.registerMitigation(std::move(m2)),
                 std::invalid_argument);
}

TEST(CatalogRegistration, ExtensionsGetStableSyntheticSlots)
{
    ScenarioCatalog catalog;
    AttackDescriptor a;
    a.name = "Ext A";
    AttackDescriptor b;
    b.name = "Ext B";
    const AttackDescriptor &ra = catalog.registerAttack(std::move(a));
    const AttackDescriptor &rb = catalog.registerAttack(std::move(b));
    EXPECT_EQ(static_cast<unsigned>(ra.id), core::kExtensionIdBase);
    EXPECT_EQ(static_cast<unsigned>(rb.id),
              core::kExtensionIdBase + 1);
    EXPECT_TRUE(ra.isExtension());
    EXPECT_EQ(catalog.findAttack(ra.id), &ra);
}

TEST(CatalogSuggestions, NearMissesAreOffered)
{
    const ScenarioCatalog &catalog = ScenarioCatalog::instance();
    EXPECT_EQ(catalog.findAttack("metldown"), nullptr);
    const auto attack_hints = catalog.attackSuggestions("metldown");
    ASSERT_FALSE(attack_hints.empty());
    EXPECT_EQ(core::foldName(attack_hints.front()), "meltdown");

    const auto defense_hints =
        catalog.defenseSuggestions("retpolin");
    ASSERT_FALSE(defense_hints.empty());
    EXPECT_EQ(defense_hints.front(), "Retpoline");

    const auto mitigation_hints =
        catalog.mitigationSuggestions("kpit");
    ASSERT_FALSE(mitigation_hints.empty());
    EXPECT_EQ(mitigation_hints.front(), "kpti");

    // Nothing close -> nothing suggested.
    EXPECT_TRUE(
        catalog.attackSuggestions("zzzzzzzzzzzzzzzz").empty());

    const std::string message = core::unknownNameMessage(
        "attack", "metldown", attack_hints);
    EXPECT_NE(message.find("unknown attack 'metldown'"),
              std::string::npos);
    EXPECT_NE(message.find("did you mean"), std::string::npos);
}

TEST(CatalogExtension, RunsThroughTheCampaignEngine)
{
    // Register a stub attack (custom execute hook, no Scenario) in
    // the global catalog, as out-of-tree code would at startup.
    AttackDescriptor d;
    d.name = "Catalog Test Stub";
    d.aliases = {"catalog-test-stub"};
    d.execute = [](const CpuConfig &, const AttackOptions &options,
                   uarch::CpuStats &stats) {
        stats = uarch::CpuStats{};
        stats.cycles = 1;
        AttackResult r;
        r.name = "Catalog Test Stub";
        // Leaks on flush+reload, blocked on prime+probe: makes both
        // glyphs observable below.
        r.leaked = options.channel ==
                   core::CovertChannelKind::FlushReload;
        r.accuracy = r.leaked ? 1.0 : 0.0;
        return r;
    };
    const AttackDescriptor &stored =
        ScenarioCatalog::instance().registerAttack(std::move(d));
    EXPECT_TRUE(stored.isExtension());

    campaign::ScenarioSpec spec;
    spec.name = "catalog-test";
    spec.variants = {AttackVariant::SpectreV1};
    spec.attackNames = {"catalog-test-stub"}; // by alias
    spec.defenses = {
        {"fr", [](CpuConfig &, AttackOptions &o) {
             o.channel = core::CovertChannelKind::FlushReload;
         }},
        {"pp", [](CpuConfig &, AttackOptions &o) {
             o.channel = core::CovertChannelKind::PrimeProbe;
         }}};
    EXPECT_EQ(spec.gridSize(), 4u);

    const campaign::CampaignEngine engine(
        campaign::CampaignEngine::Options{1, nullptr});
    const campaign::CampaignReport report = engine.run(spec);
    ASSERT_EQ(report.rowLabels.size(), 2u);
    EXPECT_EQ(report.rowLabels[1], "Catalog Test Stub");
    EXPECT_EQ(report.cellGlyph(1, 0), 'L');
    EXPECT_EQ(report.cellGlyph(1, 1), '.');

    // The stub's scenario key round-trips through the shard wire
    // encoding with its synthetic slot intact.
    const auto grid = campaign::expandGrid(spec);
    const campaign::Scenario &cell = grid.back();
    EXPECT_EQ(cell.variant, stored.id);
    AttackVariant parsed_variant{};
    CpuConfig parsed_config;
    AttackOptions parsed_options;
    ASSERT_TRUE(campaign::parseScenarioKey(
        cell.key, parsed_variant, parsed_config, parsed_options));
    EXPECT_EQ(parsed_variant, stored.id);
    EXPECT_EQ(campaign::scenarioKey(parsed_variant, parsed_config,
                                    parsed_options),
              cell.key);
}

TEST(CatalogExtension, UnknownSpecNamesFailWithSuggestions)
{
    campaign::ScenarioSpec spec;
    spec.attackNames = {"spectre-v1-typo-xyz"};
    try {
        campaign::expandGrid(spec);
        FAIL() << "expandGrid accepted an unknown attack name";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("unknown attack"),
                  std::string::npos);
    }
}

} // namespace
