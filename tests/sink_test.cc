/**
 * @file
 * Tests for the streaming sink pipeline: ReportSink reproduces the
 * collect-then-report results, the ordered streaming exporters emit
 * bytes identical to the batch exporters (JSONL and CSV) across
 * worker counts and shards, the in-order release window reorders
 * out-of-order arrivals, and ProgressSink observes every outcome.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "tool/report.hh"
#include "tool/stream_export.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;

ScenarioSpec
sampleSpec()
{
    ScenarioSpec spec;
    spec.name = "sink-sample";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown,
                     AttackVariant::ZombieLoad};
    spec.defenses = {{"baseline", nullptr},
                     {"fence(1)",
                      [](CpuConfig &c, AttackOptions &) {
                          c.defense.fenceSpeculativeLoads = true;
                      }}};
    spec.permCheckLatencies = {10, 30};
    return spec;
}

TEST(Sink, StreamedExportsMatchBatchExportersAcrossWorkers)
{
    const ScenarioSpec spec = sampleSpec();
    for (const unsigned workers : {1u, 2u, 8u}) {
        ReportSink report_sink;
        std::ostringstream csv, jsonl;
        tool::CsvStreamSink csv_sink(csv);
        tool::JsonlStreamSink jsonl_sink(jsonl);
        CampaignEngine(CampaignEngine::Options{workers})
            .run(spec, {&report_sink, &csv_sink, &jsonl_sink});
        const CampaignReport &report = report_sink.report();

        EXPECT_EQ(csv.str(), tool::campaignCsv(report, false))
            << "workers=" << workers;
        EXPECT_EQ(jsonl.str(), tool::campaignJsonl(report, false))
            << "workers=" << workers;
        // The streaming run's report matches a plain run.
        const CampaignReport direct =
            CampaignEngine(CampaignEngine::Options{1}).run(spec);
        EXPECT_EQ(tool::campaignJson(report, false),
                  tool::campaignJson(direct, false));
    }
}

TEST(Sink, StreamedShardExportsMatchShardReports)
{
    const ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{2});
    for (const std::size_t i : {0UL, 1UL}) {
        ReportSink report_sink;
        std::ostringstream csv, jsonl;
        tool::CsvStreamSink csv_sink(csv);
        tool::JsonlStreamSink jsonl_sink(jsonl);
        engine.run(spec, {&report_sink, &csv_sink, &jsonl_sink},
                   ShardRange{i, 2});
        const CampaignReport &report = report_sink.report();
        EXPECT_TRUE(report.partial());
        EXPECT_EQ(csv.str(), tool::campaignCsv(report, false));
        EXPECT_EQ(jsonl.str(),
                  tool::campaignJsonl(report, false));
        // The JSONL header names the shard.
        std::ostringstream needle;
        needle << "\"shardIndex\": " << i
               << ", \"shardCount\": 2";
        EXPECT_NE(jsonl.str().find(needle.str()),
                  std::string::npos);
    }
}

TEST(Sink, TimedJsonlContainsSummaryRecord)
{
    const ScenarioSpec spec = sampleSpec();
    ReportSink report_sink;
    std::ostringstream jsonl;
    tool::JsonlStreamSink jsonl_sink(jsonl, true);
    CampaignEngine(CampaignEngine::Options{1})
        .run(spec, {&report_sink, &jsonl_sink});
    EXPECT_NE(jsonl.str().find("\"type\": \"summary\""),
              std::string::npos);
    EXPECT_NE(jsonl.str().find("\"executedCount\""),
              std::string::npos);
    // Timing-free streams have no summary record (determinism).
    std::ostringstream plain;
    tool::JsonlStreamSink plain_sink(plain);
    CampaignEngine(CampaignEngine::Options{1})
        .run(spec, {&plain_sink});
    EXPECT_EQ(plain.str().find("\"type\": \"summary\""),
              std::string::npos);
}

/** Hand-driven producer for the release-window unit test. */
ScenarioOutcome
outcomeAt(std::size_t gridIndex)
{
    ScenarioOutcome o;
    o.gridIndex = gridIndex;
    o.rowLabel = "row";
    o.colLabel = "col";
    return o;
}

TEST(Sink, OrderedWindowReleasesOutOfOrderArrivalsInGridOrder)
{
    CampaignHeader header;
    header.name = "window";
    header.rowLabels = {"row"};
    header.colLabels = {"col"};
    // A shard-like subset: non-contiguous grid indices.
    header.gridIndices = {2, 5, 9};
    header.expandedCount = 12;

    std::ostringstream out;
    tool::CsvStreamSink sink(out);
    sink.begin(header);
    const std::string headerOnly = out.str();

    sink.consume(outcomeAt(9)); // early: buffered
    sink.consume(outcomeAt(5)); // early: buffered
    EXPECT_EQ(out.str(), headerOnly);
    EXPECT_EQ(sink.bufferedNow(), 2u);

    sink.consume(outcomeAt(2)); // head: releases all three
    EXPECT_EQ(sink.bufferedNow(), 0u);
    sink.end(CampaignFooter{});

    // Rows came out in grid order 2, 5, 9.
    const std::string bytes = out.str();
    const std::size_t p2 = bytes.find("\n2,");
    const std::size_t p5 = bytes.find("\n5,");
    const std::size_t p9 = bytes.find("\n9,");
    ASSERT_NE(p2, std::string::npos);
    ASSERT_NE(p5, std::string::npos);
    ASSERT_NE(p9, std::string::npos);
    EXPECT_LT(p2, p5);
    EXPECT_LT(p5, p9);
}

TEST(Sink, UnannouncedOutcomesAreDropped)
{
    CampaignHeader header;
    header.gridIndices = {0, 1};
    header.expandedCount = 2;
    std::ostringstream out;
    tool::CsvStreamSink sink(out);
    sink.begin(header);
    sink.consume(outcomeAt(7)); // never announced
    sink.consume(outcomeAt(0));
    sink.consume(outcomeAt(1));
    sink.end(CampaignFooter{});
    EXPECT_EQ(out.str().find("\n7,"), std::string::npos);
}

TEST(Sink, ReportSinkMatchesLegacyAggregation)
{
    // The collect-then-return API is itself a sink; its cell
    // aggregates must match what the outcomes imply.
    const ScenarioSpec spec = sampleSpec();
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{4}).run(spec);
    ASSERT_EQ(report.outcomes.size(), report.expandedCount);
    for (std::size_t i = 0; i < report.outcomes.size(); ++i)
        EXPECT_EQ(report.outcomes[i].gridIndex, i);
    std::vector<std::vector<unsigned>> runs(
        report.rowLabels.size(),
        std::vector<unsigned>(report.colLabels.size(), 0));
    std::vector<std::vector<unsigned>> leaks = runs;
    for (const ScenarioOutcome &o : report.outcomes) {
        runs[o.row][o.col] += 1;
        if (o.result.leaked)
            leaks[o.row][o.col] += 1;
    }
    EXPECT_EQ(report.cellRuns, runs);
    EXPECT_EQ(report.cellLeaks, leaks);
}

TEST(Sink, ProgressSinkObservesEveryOutcome)
{
    const ScenarioSpec spec = sampleSpec();
    ProgressSink progress(nullptr, 3); // no output, count only
    ReportSink report_sink;
    CampaignEngine(CampaignEngine::Options{2})
        .run(spec, {&report_sink, &progress});
    EXPECT_EQ(progress.completed(),
              report_sink.report().expandedCount);
}

} // namespace
