/**
 * @file
 * Tests for the static leak lint (src/lint/):
 *
 *  - the declared rule table (stable ids, severities, lookup);
 *  - classification: each catalog family lands on the expected
 *    rule (transient-send, spec-bypass-read/-write, stale-forward,
 *    intra-instruction-race ordering hazards);
 *  - the file slug used for golden/lint-*.json stems;
 *  - JSON round-trip under the strict "specsec-lint-v1" parser,
 *    including rejection of foreign tags and unknown keys;
 *  - finding-by-finding drift comparison (verdict flips, changed /
 *    unpinned / vanished findings).
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "lint/lint.hh"

namespace
{

using namespace specsec;

const core::AttackDescriptor &
attack(const std::string &name)
{
    const core::AttackDescriptor *d =
        core::ScenarioCatalog::instance().findAttack(name);
    EXPECT_NE(d, nullptr) << name;
    return *d;
}

TEST(Lint, RuleTableIsStable)
{
    const auto &table = lint::rules();
    ASSERT_EQ(table.size(), 5u);
    for (const lint::LintRule &rule : table) {
        EXPECT_EQ(lint::findRule(rule.id), &rule);
        const std::string severity = rule.severity;
        EXPECT_TRUE(severity == "error" || severity == "warning")
            << rule.id;
    }
    ASSERT_NE(lint::findRule("transient-send"), nullptr);
    EXPECT_STREQ(lint::findRule("transient-send")->severity,
                 "warning");
    ASSERT_NE(lint::findRule("spec-bypass-read"), nullptr);
    EXPECT_STREQ(lint::findRule("spec-bypass-read")->severity,
                 "error");
    EXPECT_EQ(lint::findRule("no-such-rule"), nullptr);
}

TEST(Lint, SpectreV1ClassifiesAsBypassReadPlusSend)
{
    const lint::LintReport report =
        lint::lintAttack(attack("spectre-v1"));
    EXPECT_TRUE(report.vulnerable);
    ASSERT_GE(report.findings.size(), 2u);
    bool read = false, send = false;
    for (const lint::LintFinding &f : report.findings) {
        if (f.rule == "spec-bypass-read") {
            read = true;
            EXPECT_EQ(f.severity, "error");
            EXPECT_GE(f.accessPc, 0);
            EXPECT_FALSE(f.instruction.empty());
            EXPECT_FALSE(f.suggested.empty());
        }
        if (f.rule == "transient-send") {
            send = true;
            EXPECT_EQ(f.severity, "warning");
        }
    }
    EXPECT_TRUE(read);
    EXPECT_TRUE(send);
}

TEST(Lint, SpeculativeStoreClassifiesAsBypassWrite)
{
    const lint::LintReport report =
        lint::lintAttack(attack("spectre-v1.1"));
    bool write = false;
    for (const lint::LintFinding &f : report.findings)
        write = write || f.rule == "spec-bypass-write";
    EXPECT_TRUE(write);
}

TEST(Lint, DisambiguationClassifiesAsStaleForward)
{
    // Spectre v4's disambiguation authorization shares its pc with
    // the stale read, so this also pins the classification order:
    // the stale-forward rule must win over intra-instruction-race.
    const lint::LintReport report =
        lint::lintAttack(attack("spectre-v4"));
    bool stale = false;
    for (const lint::LintFinding &f : report.findings) {
        EXPECT_NE(f.rule, "intra-instruction-race");
        stale = stale || f.rule == "stale-forward";
    }
    EXPECT_TRUE(stale);
}

TEST(Lint, MeltdownClassifiesAsIntraInstructionRace)
{
    const lint::LintReport report =
        lint::lintAttack(attack("meltdown"));
    bool intra = false;
    for (const lint::LintFinding &f : report.findings)
        if (f.rule == "intra-instruction-race") {
            intra = true;
            EXPECT_EQ(f.authPc, f.accessPc);
        }
    EXPECT_TRUE(intra);
}

TEST(Lint, FileSlugIsStable)
{
    EXPECT_EQ(lint::lintFileSlug("Meltdown (Spectre v3)"),
              "meltdown-spectre-v3");
    EXPECT_EQ(lint::lintFileSlug("Spectre v1.1"), "spectre-v1-1");
    EXPECT_EQ(lint::lintFileSlug("--Weird  name!!"), "weird-name");
}

TEST(Lint, JsonRoundTripsByteIdentically)
{
    const lint::LintReport report =
        lint::lintAttack(attack("spectre-v1"));
    const std::string text = lint::lintReportJson(report);
    std::string error;
    const auto parsed = lint::parseLintReportJson(text, &error);
    ASSERT_TRUE(parsed) << error;
    EXPECT_EQ(parsed->attack, report.attack);
    EXPECT_EQ(parsed->vulnerable, report.vulnerable);
    EXPECT_EQ(parsed->findings, report.findings);
    EXPECT_EQ(lint::lintReportJson(*parsed), text);
}

TEST(Lint, ParserRejectsForeignSchemaAndUnknownKeys)
{
    std::string error;
    EXPECT_FALSE(lint::parseLintReportJson(
        "{\n \"schema\": \"specsec-lint-v0\", \"attack\": \"x\", "
        "\"vulnerable\": false, \"findings\": []\n}\n",
        &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(lint::parseLintReportJson(
        "{\n \"schema\": \"specsec-lint-v1\", \"attack\": \"x\", "
        "\"vulnerable\": false, \"findings\": [], \"extra\": 1\n}\n",
        &error));
    EXPECT_FALSE(lint::parseLintReportJson("not json", &error));
}

TEST(Lint, CompareReportsDrift)
{
    const lint::LintReport pinned =
        lint::lintAttack(attack("spectre-v1"));

    // Identical reports agree.
    EXPECT_TRUE(lint::compareLintReports(pinned, pinned).empty());

    // A verdict flip is its own drift line.
    lint::LintReport flipped = pinned;
    flipped.vulnerable = false;
    const auto flip = lint::compareLintReports(pinned, flipped);
    ASSERT_FALSE(flip.empty());

    // A changed field on a pinned finding is reported per-field.
    lint::LintReport changed = pinned;
    ASSERT_FALSE(changed.findings.empty());
    changed.findings[0].suggested = "other-strategy";
    EXPECT_FALSE(lint::compareLintReports(pinned, changed).empty());

    // A fresh finding with no pin, and a pinned finding that
    // vanished, both drift.
    lint::LintReport extra = pinned;
    lint::LintFinding f = pinned.findings[0];
    f.authPc = 999;
    extra.findings.push_back(f);
    EXPECT_FALSE(lint::compareLintReports(pinned, extra).empty());
    lint::LintReport missing = pinned;
    missing.findings.pop_back();
    EXPECT_FALSE(lint::compareLintReports(pinned, missing).empty());
}

TEST(Lint, EveryCatalogAttackWithProgramLints)
{
    // The acceptance bar behind golden/lint-*.json: every built-in
    // attack exposes a static program (Spoiler excepted — a timing
    // attack with no leak/blocked program shape) and lints without
    // throwing.
    std::size_t linted = 0;
    for (const core::AttackDescriptor *d :
         core::ScenarioCatalog::instance().attacks()) {
        if (!d->staticProgram) {
            EXPECT_EQ(d->name, "Spoiler");
            continue;
        }
        const lint::LintReport report = lint::lintAttack(*d);
        EXPECT_EQ(report.attack, d->name);
        EXPECT_FALSE(report.findings.empty()) << d->name;
        ++linted;
    }
    EXPECT_GE(linted, 19u);
}

} // namespace
