/**
 * @file
 * Tests for the ISA: factories, disassembly, program labels and
 * target fixups under instruction insertion.
 */

#include <gtest/gtest.h>

#include "uarch/isa.hh"

namespace
{

using namespace specsec::uarch;

TEST(Isa, FactoryFieldsPopulated)
{
    const Instruction l = load8(6, 3, 0x40);
    EXPECT_EQ(l.op, Opcode::Load);
    EXPECT_EQ(l.rd, 6);
    EXPECT_EQ(l.ra, 3);
    EXPECT_EQ(l.imm, 0x40);
    EXPECT_EQ(l.size, 1);

    const Instruction s = store64(2, -8, 5);
    EXPECT_EQ(s.op, Opcode::Store);
    EXPECT_EQ(s.ra, 2);
    EXPECT_EQ(s.rb, 5);
    EXPECT_EQ(s.imm, -8);
    EXPECT_EQ(s.size, 8);

    const Instruction b = branch(Cond::Geu, 1, 5, 12);
    EXPECT_EQ(b.op, Opcode::Branch);
    EXPECT_EQ(b.cond, Cond::Geu);
    EXPECT_EQ(b.imm, 12);
}

TEST(Isa, Disassembly)
{
    EXPECT_EQ(disassemble(load8(6, 7, 0)), "load8 r6, [r7 + 0]");
    EXPECT_EQ(disassemble(movImm(1, 42)), "movi r1, 42");
    EXPECT_EQ(disassemble(branch(Cond::Geu, 1, 5, 9)),
              "br.geu r1, r5, @9");
    EXPECT_EQ(disassemble(lfence()), "lfence");
    EXPECT_EQ(disassemble(rdmsr(6, 5)), "rdmsr r6, msr5");
    EXPECT_EQ(disassemble(fpRead(6, 2)), "fpread r6, f2");
    EXPECT_EQ(disassemble(xbegin(8)), "xbegin @8");
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(isLoad(Opcode::Load));
    EXPECT_FALSE(isLoad(Opcode::Store));
    EXPECT_TRUE(isStore(Opcode::Store));
    EXPECT_TRUE(isControl(Opcode::Branch));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_TRUE(writesIntReg(load64(1, 2, 0)));
    EXPECT_TRUE(writesIntReg(rdtsc(3)));
    EXPECT_FALSE(writesIntReg(store8(1, 0, 2)));
    EXPECT_FALSE(writesIntReg(fpMov(2, 1)));
    EXPECT_TRUE(writesIntReg(fpRead(1, 2)));
}

TEST(Isa, ProgramEmitReturnsPc)
{
    Program p;
    EXPECT_EQ(p.emit(nop()), 0u);
    EXPECT_EQ(p.emit(halt()), 1u);
    EXPECT_EQ(p.size(), 2u);
}

TEST(Isa, ForwardLabelPatched)
{
    Program p;
    auto l = p.newLabel();
    const std::size_t br = p.emitBranch(Cond::Eq, 1, 2, l);
    p.emit(nop());
    p.bind(l);
    p.emit(halt());
    EXPECT_EQ(p.at(br).imm, 2);
    p.finalize();
}

TEST(Isa, BackwardLabelImmediate)
{
    Program p;
    auto l = p.newLabel();
    p.bind(l);
    p.emit(nop());
    const std::size_t j = p.emitJmp(l);
    EXPECT_EQ(p.at(j).imm, 0);
}

TEST(Isa, UnboundLabelThrowsOnFinalize)
{
    Program p;
    auto l = p.newLabel();
    p.emitJmp(l);
    EXPECT_THROW(p.finalize(), std::logic_error);
}

TEST(Isa, MultipleFixupsForOneLabel)
{
    Program p;
    auto l = p.newLabel();
    const std::size_t a = p.emitBranch(Cond::Eq, 0, 0, l);
    const std::size_t b = p.emitJmp(l);
    p.bind(l);
    p.emit(halt());
    EXPECT_EQ(p.at(a).imm, 2);
    EXPECT_EQ(p.at(b).imm, 2);
}

TEST(Isa, InsertAtShiftsTargets)
{
    Program p;
    auto l = p.newLabel();
    p.emitBranch(Cond::Eq, 1, 2, l); // 0: branch -> 3
    p.emit(nop());                   // 1
    p.emit(nop());                   // 2
    p.bind(l);
    p.emit(halt());                  // 3
    p.insertAt(1, lfence());
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.at(1).op, Opcode::Lfence);
    EXPECT_EQ(p.at(0).imm, 4); // branch target shifted
    EXPECT_EQ(p.at(4).op, Opcode::Halt);
}

TEST(Isa, InsertAtDoesNotShiftEarlierTargets)
{
    Program p;
    p.emit(jmp(0)); // self-loop target before insertion point
    p.emit(nop());
    p.insertAt(2, halt());
    EXPECT_EQ(p.at(0).imm, 0);
}

TEST(Isa, InsertAtOutOfRangeThrows)
{
    Program p;
    p.emit(nop());
    EXPECT_THROW(p.insertAt(5, nop()), std::out_of_range);
}

TEST(Isa, CallAndXBeginLabels)
{
    Program p;
    auto f = p.newLabel();
    auto a = p.newLabel();
    p.emitCall(f);   // 0
    p.emitXBegin(a); // 1
    p.emit(halt());  // 2
    p.bind(f);
    p.emit(ret());   // 3
    p.bind(a);
    p.emit(halt());  // 4
    EXPECT_EQ(p.at(0).imm, 3);
    EXPECT_EQ(p.at(1).imm, 4);
}

TEST(Isa, DisassembleAllContainsEveryPc)
{
    Program p;
    p.emit(movImm(1, 5));
    p.emit(halt());
    const std::string text = p.disassembleAll();
    EXPECT_NE(text.find("0: movi r1, 5"), std::string::npos);
    EXPECT_NE(text.find("1: halt"), std::string::npos);
}

TEST(Isa, OpcodeNamesUnique)
{
    EXPECT_STREQ(opcodeName(Opcode::Load), "load");
    EXPECT_STREQ(opcodeName(Opcode::Clflush), "clflush");
    EXPECT_STREQ(opcodeName(Opcode::XBegin), "xbegin");
}

} // namespace
