/**
 * @file
 * Tests for the Fig. 9 analysis tool: authorization/access/send
 * identification, race detection, false-positive avoidance on
 * fenced/masked programs, micro-op expansion for faulting accesses,
 * automatic patching, and the end-to-end claim that the patched
 * program no longer leaks on the simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/attack_kit.hh"
#include "campaign/campaign.hh"
#include "tool/patcher.hh"
#include "tool/report.hh"
#include "uarch/covert.hh"

namespace
{

using namespace specsec;
using namespace specsec::tool;
using namespace specsec::uarch;
using attacks::Layout;

/** The Listing 1 (Spectre v1) program shape. */
Program
listing1(bool with_fence, bool with_mask)
{
    Program p;
    p.emit(load64(5, 2, 0)); // bound
    auto bail = p.newLabel();
    p.emitBranch(Cond::Geu, 1, 5, bail);
    if (with_fence)
        p.emit(lfence());
    if (with_mask)
        p.emit(andImm(1, 1, 0xf));
    p.emit(add(7, 3, 1));
    p.emit(load8(6, 7, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.bind(bail);
    p.emit(halt());
    return p;
}

AnalysisSpec
listing1Spec(bool with_fence = false, bool with_mask = false)
{
    AnalysisSpec spec;
    spec.program = listing1(with_fence, with_mask);
    spec.ranges = {{Layout::kUserSecret, kPageSize, "victim secret"}};
    spec.attackerRegs = {1};
    spec.knownRegs = {{2, Layout::kVictimBound},
                      {3, Layout::kVictimArray},
                      {4, Layout::kProbeArray}};
    return spec;
}

TEST(Tool, Listing1IsVulnerable)
{
    const AnalysisResult r = analyzeSpec(listing1Spec());
    EXPECT_TRUE(r.vulnerable);
    EXPECT_EQ(r.graph.authorizationNodes().size(), 1u);
    EXPECT_EQ(r.graph.secretAccessNodes().size(), 1u);
    EXPECT_EQ(r.graph.sendNodes().size(), 1u);
}

TEST(Tool, Listing1FindsBothFig1Races)
{
    // Fig. 1: Load S and Load R both race with branch resolution.
    const AnalysisResult r = analyzeSpec(listing1Spec());
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].operationRole,
              core::NodeRole::SecretAccess);
    EXPECT_EQ(r.findings[1].operationRole, core::NodeRole::Send);
    EXPECT_EQ(r.findings[0].authPc, 1u);
    EXPECT_EQ(r.findings[0].accessPc, 3u);
    EXPECT_EQ(r.findings[1].accessPc, 6u);
}

TEST(Tool, SuggestedStrategiesMatchRoles)
{
    const AnalysisResult r = analyzeSpec(listing1Spec());
    EXPECT_EQ(r.findings[0].suggested,
              core::DefenseStrategy::PreventAccess);
    EXPECT_EQ(r.findings[1].suggested,
              core::DefenseStrategy::PreventSend);
}

TEST(Tool, FencedProgramIsClean)
{
    const AnalysisResult r = analyzeSpec(listing1Spec(true, false));
    EXPECT_FALSE(r.vulnerable);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Tool, MaskedProgramIsClean)
{
    const AnalysisResult r = analyzeSpec(listing1Spec(false, true));
    EXPECT_FALSE(r.vulnerable);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Tool, InBoundsProgramIsClean)
{
    // No protected ranges declared: nothing to leak.
    AnalysisSpec spec = listing1Spec();
    spec.ranges.clear();
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_FALSE(r.vulnerable);
}

TEST(Tool, NoAttackerInputNoBoundsCheckFinding)
{
    // Without attacker-controlled input the branch is not treated
    // as a bounds check and the load address is not attacker-
    // steerable.
    AnalysisSpec spec = listing1Spec();
    spec.attackerRegs.clear();
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_FALSE(r.vulnerable);
}

TEST(Tool, MeltdownTypeExpandsIntraInstruction)
{
    // A load with a constant address inside a protected range must
    // be expanded: its own permission check is the authorization.
    Program p;
    p.emit(load8(6, 3, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kKernelData, kPageSize, "kernel"}};
    spec.knownRegs = {{3, Layout::kKernelData},
                      {4, Layout::kProbeArray}};
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_TRUE(r.vulnerable);
    ASSERT_EQ(r.graph.authorizationNodes().size(), 1u);
    const auto auth = r.graph.authorizationNodes().front();
    EXPECT_NE(r.graph.tsg().label(auth).find("permission check"),
              std::string::npos);
    // Authorization and access share the same pc (intra-instruction).
    ASSERT_FALSE(r.findings.empty());
    EXPECT_EQ(r.findings[0].authPc, r.findings[0].accessPc);
}

TEST(Tool, RdmsrExpanded)
{
    Program p;
    p.emit(rdmsr(6, 5));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.knownRegs = {{4, Layout::kProbeArray}};
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_TRUE(r.vulnerable);
    const auto auth = r.graph.authorizationNodes().front();
    EXPECT_NE(r.graph.tsg().label(auth).find("privilege check"),
              std::string::npos);
}

TEST(Tool, StoreBypassDetected)
{
    // store [r1]; load [r1] -- the load may bypass the store.
    Program p;
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(shlImm(8, 3, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.knownRegs = {{4, Layout::kProbeArray}};
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_TRUE(r.vulnerable);
    const auto auth = r.graph.authorizationNodes().front();
    EXPECT_NE(r.graph.tsg().label(auth).find("disambiguation"),
              std::string::npos);
}

TEST(Tool, StoreBypassRespectsThreatModel)
{
    Program p;
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.model.storeBypass = false;
    const AnalysisResult r = analyzeSpec(spec);
    EXPECT_FALSE(r.vulnerable);
}

TEST(Tool, SpeculativeStoreAccessFlagged)
{
    // v1.1 shape: attacker-steered store inside a bounds-check
    // window.
    Program p;
    p.emit(load64(5, 2, 0));
    auto bail = p.newLabel();
    p.emitBranch(Cond::Geu, 1, 5, bail);
    p.emit(add(7, 3, 1));
    p.emit(store64(7, 0, 11));
    p.bind(bail);
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kUserSecret, kPageSize, "secret"}};
    spec.attackerRegs = {1};
    spec.knownRegs = {{2, Layout::kVictimBound},
                      {3, Layout::kVictimArray}};
    const AnalysisResult r = analyzeSpec(spec);
    // A write access races with the bounds check even though no
    // send exists yet (write primitive, Table III "illegal access").
    EXPECT_FALSE(r.findings.empty());
}

TEST(Tool, AutoPatchVerifies)
{
    const PatchResult patch = autoPatch(listing1Spec());
    EXPECT_TRUE(patch.verified);
    EXPECT_GE(patch.fencesInserted, 1u);
    EXPECT_FALSE(analyzeSpec({patch.patched,
                              listing1Spec().ranges,
                              ThreatModel{},
                              {1},
                              listing1Spec().knownRegs})
                     .vulnerable);
}

TEST(Tool, AutoPatchIdempotentOnCleanProgram)
{
    const PatchResult patch = autoPatch(listing1Spec(true, false));
    EXPECT_TRUE(patch.verified);
    EXPECT_EQ(patch.fencesInserted, 0u);
}

TEST(Tool, ReportMentionsVerdictAndStrategies)
{
    const AnalysisSpec spec = listing1Spec();
    const AnalysisResult r = analyzeSpec(spec);
    const std::string report = renderReport(r, spec.program);
    EXPECT_NE(report.find("VULNERABLE"), std::string::npos);
    EXPECT_NE(report.find("missing security dependencies"),
              std::string::npos);
    EXPECT_NE(report.find("1-prevent-access-before-authorization"),
              std::string::npos);
}

TEST(Tool, ReportOnCleanProgram)
{
    const AnalysisSpec spec = listing1Spec(true, false);
    const AnalysisResult r = analyzeSpec(spec);
    const std::string report = renderReport(r, spec.program);
    EXPECT_NE(report.find("no exploitable race"), std::string::npos);
}


TEST(Tool, AutoPatchMeltdownTypeCutsExfiltration)
{
    // The intra-instruction access race cannot be fenced away in
    // software, but the patcher can (and does) cut the
    // exfiltration chain, leaving a documented residual race.
    Program p;
    p.emit(load8(6, 3, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kKernelData, kPageSize, "kernel"}};
    spec.knownRegs = {{3, Layout::kKernelData},
                      {4, Layout::kProbeArray}};
    const PatchResult patch = autoPatch(spec);
    EXPECT_TRUE(patch.verified);
    EXPECT_EQ(patch.fencesInserted, 1u);
    EXPECT_GE(patch.residualRaces, 1u);
    const AnalysisResult after = analyzeSpec(
        {patch.patched, spec.ranges, spec.model, {}, spec.knownRegs});
    EXPECT_FALSE(after.vulnerable);
}

TEST(Tool, AutoPatchVerifiedSemanticsPinned)
{
    // `verified` pins the post-patch analyzer verdict — no
    // exploitable flow remains — NOT the absence of races: a
    // bounds-check shape patches with zero residual races, while a
    // Meltdown-type shape stays verified with its intra-instruction
    // race documented (the paper's relaxed strategy-3 criterion).
    const PatchResult bounds = autoPatch(listing1Spec());
    EXPECT_TRUE(bounds.verified);
    EXPECT_EQ(bounds.residualRaces, 0u);

    Program p;
    p.emit(load8(6, 3, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kKernelData, kPageSize, "kernel"}};
    spec.knownRegs = {{3, Layout::kKernelData},
                      {4, Layout::kProbeArray}};
    const PatchResult meltdown = autoPatch(spec);
    EXPECT_TRUE(meltdown.verified);
    EXPECT_GE(meltdown.residualRaces, 1u);
    // Verified + residual races must coexist with a non-vulnerable
    // re-analysis: the residual race has no exfiltration path left.
    EXPECT_FALSE(analyzeSpec({meltdown.patched, spec.ranges,
                              spec.model, {}, spec.knownRegs})
                     .vulnerable);
}

/** End-to-end: the tool's patched program stops leaking on the
 *  simulator (detect -> patch -> verify, Fig. 9's full loop). */
TEST(Tool, PatchedProgramStopsLeakOnSimulator)
{
    const auto run_program = [](const Program &program) {
        attacks::Scenario s{CpuConfig{}};
        Cpu &cpu = s.cpu();
        const auto secret = attacks::defaultSecret(4);
        s.plantBytes(Layout::kUserSecret, secret);
        s.mem().write64(Layout::kVictimBound, 16);
        cpu.loadProgram(program);
        cpu.setPrivilege(Privilege::User);
        cpu.setReg(2, Layout::kVictimBound);
        cpu.setReg(3, Layout::kVictimArray);
        cpu.setReg(4, Layout::kProbeArray);
        FlushReloadChannel ch(cpu, Layout::kProbeArray, 256,
                              kPageSize);
        // Train.
        for (unsigned t = 0; t < 8; ++t) {
            cpu.warmLine(Layout::kVictimBound);
            cpu.setReg(1, t % 16);
            cpu.run(0);
        }
        std::size_t matches = 0;
        for (std::size_t i = 0; i < secret.size(); ++i) {
            ch.setup();
            cpu.flushLineVirt(Layout::kVictimBound);
            cpu.warmLine(Layout::kUserSecret + i);
            cpu.setReg(1, Layout::kUserSecret + i -
                              Layout::kVictimArray);
            cpu.run(0);
            if (ch.recover().value == static_cast<int>(secret[i]))
                ++matches;
            cpu.warmLine(Layout::kVictimBound);
            cpu.setReg(1, i % 16);
            cpu.run(0);
        }
        return matches;
    };

    const AnalysisSpec spec = listing1Spec();
    EXPECT_EQ(run_program(spec.program), 4u); // leaks

    const PatchResult patch = autoPatch(spec);
    ASSERT_TRUE(patch.verified);
    EXPECT_EQ(run_program(patch.patched), 0u); // no longer leaks
}

/** A hand-built one-cell report carrying the given labels. */
campaign::CampaignReport
reportWithLabels(const std::string &row, const std::string &col)
{
    campaign::CampaignReport report;
    report.name = "edge-cases";
    report.rowLabels = {row};
    report.colLabels = {col};
    report.cellRuns = {{1}};
    report.cellLeaks = {{1}};
    campaign::ScenarioOutcome o;
    o.rowLabel = row;
    o.colLabel = col;
    o.result.leaked = true;
    report.outcomes.push_back(std::move(o));
    report.expandedCount = 1;
    report.uniqueCount = 1;
    report.executedCount = 1;
    return report;
}

TEST(CampaignExport, CsvQuotesCommasQuotesAndNewlines)
{
    const campaign::CampaignReport report = reportWithLabels(
        "variant, with commas", "de\"fense\nwith newline");
    const std::string csv = campaignCsv(report);

    // RFC 4180: the awkward fields are quoted, inner quotes doubled,
    // so the embedded newline stays inside a quoted field.
    EXPECT_NE(csv.find("\"variant, with commas\""),
              std::string::npos);
    EXPECT_NE(csv.find("\"de\"\"fense\nwith newline\""),
              std::string::npos);
    // Exactly header + 1 record: the label newline is the only
    // in-field one.
    std::size_t quoted = 0;
    bool in_quotes = false;
    std::size_t record_breaks = 0;
    for (char c : csv) {
        if (c == '"')
            in_quotes = !in_quotes;
        else if (c == '\n' && in_quotes)
            ++quoted;
        else if (c == '\n')
            ++record_breaks;
    }
    EXPECT_EQ(quoted, 1u);
    EXPECT_EQ(record_breaks, 2u);
}

TEST(CampaignExport, JsonEscapesControlAndQuoteCharacters)
{
    const campaign::CampaignReport report = reportWithLabels(
        "tab\there", "quote\" and \\ and \nnewline");
    const std::string json = campaignJson(report, false);
    EXPECT_NE(json.find("tab\\there"), std::string::npos);
    EXPECT_NE(json.find("quote\\\" and \\\\ and \\nnewline"),
              std::string::npos);
    // No raw control characters may survive inside the document.
    for (char c : json)
        EXPECT_TRUE(c == '\n' ||
                    static_cast<unsigned char>(c) >= 0x20);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(CampaignExport, EmptyCampaignProducesWellFormedDocuments)
{
    const campaign::CampaignReport report; // no rows, cols, outcomes
    const std::string csv = campaignCsv(report);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
    EXPECT_EQ(csv.find("gridIndex,variant,defense"), 0u);

    const std::string json = campaignJson(report);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_NE(json.find("\"rows\": []"), std::string::npos);
    EXPECT_NE(json.find("\"cols\": []"), std::string::npos);

    EXPECT_EQ(report.successMatrixText(),
              std::string("variant                   \n"));
}

TEST(CampaignExport, SingleCellGridExports)
{
    campaign::ScenarioSpec spec;
    spec.variants = {core::AttackVariant::SpectreV1};
    const campaign::CampaignReport report =
        campaign::CampaignEngine(campaign::CampaignEngine::Options{1})
            .run(spec);

    const std::string csv = campaignCsv(report);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    const std::string json = campaignJson(report, false);
    EXPECT_NE(json.find("\"mitigations\": \"-\""),
              std::string::npos);
    EXPECT_NE(json.find("\"vulns\": \"all\""), std::string::npos);
    EXPECT_NE(json.find("\"cache\": \"256x4/64@4:200\""),
              std::string::npos);
    // The timing-free single cell is stable across repeat runs.
    const campaign::CampaignReport again =
        campaign::CampaignEngine(campaign::CampaignEngine::Options{1})
            .run(spec);
    EXPECT_EQ(json, campaignJson(again, false));
}

} // namespace
