/**
 * @file
 * Tests for the campaign service: an in-process daemon on an
 * ephemeral port serving a real Client.  Covers the handshake
 * (including schema/fingerprint rejection), remote-vs-offline
 * byte identity through the sink contract, the shared cache
 * (warm second submit, cache-get/put round trip), protocol
 * robustness (malformed and truncated request lines answered
 * with error{} on a surviving connection; a client vanishing
 * mid-stream leaving the daemon healthy), and the JSONL resume
 * planner's accept/trim/refuse cases.
 */

#include <gtest/gtest.h>

#include <thread>

#include <sys/socket.h>

#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "tool/report.hh"
#include "tool/stream_export.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;

ScenarioSpec
sampleSpec()
{
    ScenarioSpec spec;
    spec.name = "serve-sample";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr},
                     {"fence(1)",
                      [](CpuConfig &c, AttackOptions &) {
                          c.defense.fenceSpeculativeLoads = true;
                      }}};
    spec.permCheckLatencies = {10, 30};
    return spec;
}

/** An in-process daemon: started on construction, drained on
 *  destruction.  Tests talk to endpoint(). */
class TestServer
{
  public:
    explicit TestServer(serve::Server::Options options = {})
        : server_(std::move(options))
    {
        std::string error;
        started_ = server_.start(&error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            thread_ = std::thread([this] {
                server_.serveForever();
            });
    }
    ~TestServer()
    {
        server_.stop();
        if (thread_.joinable())
            thread_.join();
    }

    serve::net::Endpoint endpoint() const
    {
        return {"127.0.0.1", server_.port()};
    }
    serve::Server &server() { return server_; }

  private:
    serve::Server server_;
    bool started_ = false;
    std::thread thread_;
};

/** Dial the daemon and complete a valid handshake on a raw
 *  connection, for tests that speak the wire format directly. */
serve::net::Conn
rawHandshaked(const serve::net::Endpoint &endpoint)
{
    std::string error;
    serve::net::Conn conn = serve::net::dial(endpoint, &error);
    EXPECT_TRUE(conn.valid()) << error;
    EXPECT_TRUE(conn.writeLine(
        serve::helloLine(serve::localHello(), false)));
    std::string line;
    EXPECT_TRUE(conn.readLine(line));
    EXPECT_EQ(serve::parseLine(line).type, serve::MsgType::Hello);
    return conn;
}

TEST(Serve, RemoteRunMatchesOfflineAndSecondRunIsAllCacheHits)
{
    const ScenarioSpec spec = sampleSpec();

    CampaignEngine::Options opts;
    opts.workers = 2;
    const CampaignReport offline =
        CampaignEngine(opts).run(spec);

    TestServer daemon;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.endpoint(), &error))
        << error;
    EXPECT_GE(client.serverWorkers(), 1u);

    ReportSink sink;
    ASSERT_TRUE(client.run(spec, {&sink}, {}, &error)) << error;
    const CampaignReport remote = sink.takeReport();

    // Byte identity with the offline engine in every timing-free
    // export — the acceptance bar for the whole subsystem.
    EXPECT_EQ(tool::campaignJson(remote, false),
              tool::campaignJson(offline, false));
    EXPECT_EQ(tool::campaignCsv(remote, false),
              tool::campaignCsv(offline, false));
    EXPECT_EQ(tool::campaignJsonl(remote, false),
              tool::campaignJsonl(offline, false));
    EXPECT_EQ(remote.executedCount, offline.uniqueCount);

    // A second client re-running the same spec must come entirely
    // out of the daemon's shared cache: zero re-executions.
    serve::Client second;
    ASSERT_TRUE(second.connect(daemon.endpoint(), &error))
        << error;
    ReportSink warmSink;
    ASSERT_TRUE(second.run(spec, {&warmSink}, {}, &error))
        << error;
    const CampaignReport warm = warmSink.takeReport();
    EXPECT_EQ(warm.executedCount, 0u);
    EXPECT_EQ(warm.cacheHits, warm.uniqueCount);
    EXPECT_EQ(tool::campaignJson(warm, false),
              tool::campaignJson(offline, false));

    const serve::StatsMsg stats = daemon.server().stats();
    EXPECT_EQ(stats.connections, 2u);
    EXPECT_EQ(stats.executed, offline.uniqueCount);
    EXPECT_EQ(stats.cacheHits, warm.uniqueCount);
}

TEST(Serve, HandshakeRejectsMismatchedSchemaOrFingerprint)
{
    TestServer daemon;

    serve::HelloMsg doctored = serve::localHello();
    doctored.schema += "-drifted";
    std::string error;
    serve::net::Conn conn =
        serve::net::dial(daemon.endpoint(), &error);
    ASSERT_TRUE(conn.valid()) << error;
    ASSERT_TRUE(
        conn.writeLine(serve::helloLine(doctored, false)));
    std::string line;
    ASSERT_TRUE(conn.readLine(line));
    serve::ParsedMsg reply = serve::parseLine(line);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    EXPECT_NE(reply.error.find("handshake rejected"),
              std::string::npos)
        << reply.error;
    EXPECT_NE(reply.error.find("schema tag mismatch"),
              std::string::npos)
        << reply.error;
    // The daemon drops a connection it refused to handshake.
    EXPECT_FALSE(conn.readLine(line));

    // Client::connect surfaces the same rejection as its error.
    // (Cannot doctor a Client's hello from here, but a fingerprint
    // mismatch takes the identical path; exercise the non-hello
    // first message instead: it must be rejected, not served.)
    serve::net::Conn eager =
        serve::net::dial(daemon.endpoint(), &error);
    ASSERT_TRUE(eager.valid()) << error;
    ASSERT_TRUE(eager.writeLine(serve::statsRequestLine()));
    ASSERT_TRUE(eager.readLine(line));
    reply = serve::parseLine(line);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    EXPECT_FALSE(eager.readLine(line));

    // And a well-formed client still connects fine afterwards.
    serve::Client ok;
    EXPECT_TRUE(ok.connect(daemon.endpoint(), &error)) << error;
}

TEST(Serve, MalformedRequestGetsErrorAndConnectionSurvives)
{
    TestServer daemon;
    serve::net::Conn conn = rawHandshaked(daemon.endpoint());
    std::string line;

    // Not JSON at all.
    ASSERT_TRUE(conn.writeLine("this is not a message"));
    ASSERT_TRUE(conn.readLine(line));
    serve::ParsedMsg reply = serve::parseLine(line);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    EXPECT_NE(reply.error.find("bad request"), std::string::npos)
        << reply.error;

    // Truncated mid-object: well-formed prefix, torn tail.
    ASSERT_TRUE(
        conn.writeLine("{\"type\": \"submit\", \"name\": \"x\""));
    ASSERT_TRUE(conn.readLine(line));
    EXPECT_EQ(serve::parseLine(line).type, serve::MsgType::Error);

    // Unknown type tag.
    ASSERT_TRUE(conn.writeLine("{\"type\": \"frobnicate\"}"));
    ASSERT_TRUE(conn.readLine(line));
    EXPECT_EQ(serve::parseLine(line).type, serve::MsgType::Error);

    // The same connection still serves real requests afterwards.
    ASSERT_TRUE(conn.writeLine(serve::statsRequestLine()));
    ASSERT_TRUE(conn.readLine(line));
    EXPECT_EQ(serve::parseLine(line).type, serve::MsgType::Stats);

    // A submit with an unparseable key is rejected as a batch —
    // with the offending index named — and the connection lives.
    serve::SubmitMsg bad;
    bad.name = "bad-batch";
    bad.keys = {"not-a-scenario-key"};
    ASSERT_TRUE(conn.writeLine(serve::submitLine(bad)));
    ASSERT_TRUE(conn.readLine(line));
    reply = serve::parseLine(line);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    EXPECT_NE(reply.error.find("index 0"), std::string::npos)
        << reply.error;
    ASSERT_TRUE(conn.writeLine(serve::statsRequestLine()));
    ASSERT_TRUE(conn.readLine(line));
    EXPECT_EQ(serve::parseLine(line).type, serve::MsgType::Stats);
}

TEST(Serve, ClientDisconnectMidStreamLeavesServerHealthy)
{
    const ScenarioSpec spec = sampleSpec();
    const ExpandedGrid grid = dedupGrid(spec);

    TestServer daemon;
    {
        // Submit the full batch, then vanish without reading a
        // single result: the daemon's writes start failing and
        // must cancel only this batch.
        serve::net::Conn conn =
            rawHandshaked(daemon.endpoint());
        serve::SubmitMsg submit;
        submit.name = spec.name;
        for (std::size_t u : grid.uniqueIndices)
            submit.keys.push_back(grid.expanded[u].key);
        ASSERT_TRUE(conn.writeLine(serve::submitLine(submit)));
        conn.close();
    }

    // The daemon still serves a full, correct run afterwards.
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.endpoint(), &error))
        << error;
    ReportSink sink;
    ASSERT_TRUE(client.run(spec, {&sink}, {}, &error)) << error;
    const CampaignReport report = sink.takeReport();
    EXPECT_EQ(report.outcomes.size(), report.expandedCount);
    EXPECT_EQ(report.executedCount + report.cacheHits,
              report.uniqueCount);
}

TEST(Serve, CacheGetAndPutRoundTrip)
{
    const ScenarioSpec spec = sampleSpec();
    const ExpandedGrid grid = dedupGrid(spec);
    const std::string key =
        grid.expanded[grid.uniqueIndices.front()].key;

    TestServer daemon;
    serve::Client client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.endpoint(), &error))
        << error;

    // Cold daemon: the key is not cached yet.
    std::vector<serve::CacheEntryMsg> entries;
    ASSERT_TRUE(client.cacheGet({key}, entries, &error)) << error;
    EXPECT_TRUE(entries.empty());

    // Run the spec; every unique key is now in the shared cache.
    ReportSink sink;
    ASSERT_TRUE(client.run(spec, {&sink}, {}, &error)) << error;
    ASSERT_TRUE(client.cacheGet({key}, entries, &error)) << error;
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries.front().key, key);

    // Round-trip: what GET returned, PUT re-stores verbatim.
    std::size_t stored = 0;
    ASSERT_TRUE(client.cachePut(entries, &stored, &error))
        << error;
    EXPECT_EQ(stored, 1u);

    // A PUT with an unparseable key stores nothing (the daemon
    // validates keys before admitting foreign entries).
    serve::CacheEntryMsg bogus = entries.front();
    bogus.key = "not-a-scenario-key";
    ASSERT_TRUE(client.cachePut({bogus}, &stored, &error))
        << error;
    EXPECT_EQ(stored, 0u);
    EXPECT_EQ(daemon.server().cache().size(),
              grid.uniqueIndices.size());
}

TEST(Serve, WriteLineCompletesAcrossForcedPartialWrites)
{
    // writeLine's contract is all-or-error: a frame larger than
    // the kernel send buffer must still arrive whole.  Shrink the
    // writer's SO_SNDBUF to the kernel minimum so a megabyte line
    // cannot possibly clear in one send() — each call accepts only
    // the few KB of free buffer, forcing the short-write path in
    // Conn::writeLine — then prove framing survives.  (Only the
    // send side is shrunk: a tiny *receive* window would serialize
    // the transfer on delayed-ACK round trips.)
    serve::net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.listenOn({"127.0.0.1", 0}, &error))
        << error;
    serve::net::Conn writer =
        serve::net::dial({"127.0.0.1", listener.port()}, &error);
    ASSERT_TRUE(writer.valid()) << error;
    serve::net::Conn reader = listener.acceptOne(2000);
    ASSERT_TRUE(reader.valid());

    const int tiny = 1; // the kernel clamps this to its floor
    ASSERT_EQ(::setsockopt(writer.fd(), SOL_SOCKET, SO_SNDBUF,
                           &tiny, sizeof tiny),
              0);

    std::string payload(1 << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + i % 26);

    // The reader must drain concurrently or the blocking writer
    // would deadlock against the shrunken buffers.
    std::string got;
    bool readOk = false;
    std::thread rx([&] { readOk = reader.readLine(got); });
    EXPECT_TRUE(writer.writeLine(payload));
    rx.join();
    ASSERT_TRUE(readOk);
    EXPECT_EQ(got, payload);

    // Framing is intact afterwards: a follow-up line arrives
    // exactly, with no bytes lost or duplicated at the seams.
    ASSERT_TRUE(writer.writeLine("tail"));
    std::string tail;
    ASSERT_TRUE(reader.readLine(tail));
    EXPECT_EQ(tail, "tail");
}

TEST(Serve, ResumePlanDisambiguatesTornHeaders)
{
    const ScenarioSpec spec = sampleSpec();
    const ExpandedGrid grid = dedupGrid(spec);
    const CampaignHeader header =
        serve::headerForGrid(spec, grid, {}, 2);
    const std::string headerLine = tool::jsonlHeaderRecord(header);

    // A file ending exactly after the header, trailing newline
    // still unwritten: the writer died between the record and its
    // '\n'.  That is an empty run — resume with zero kept
    // outcomes, not a refusal.
    serve::ResumePlan plan;
    std::string error;
    ASSERT_TRUE(serve::planJsonlResume(
        header, headerLine.substr(0, headerLine.size() - 1), plan,
        &error))
        << error;
    EXPECT_EQ(plan.covered, 0u);
    EXPECT_EQ(plan.missing.size(), grid.expanded.size());
    EXPECT_TRUE(plan.keepText.empty());

    // Any shorter torn prefix of our own header resumes the same
    // way.
    ASSERT_TRUE(serve::planJsonlResume(
        header, headerLine.substr(0, 10), plan, &error))
        << error;
    EXPECT_EQ(plan.covered, 0u);
    EXPECT_EQ(plan.missing.size(), grid.expanded.size());

    // A newline-less line that is NOT a prefix of this run's
    // header is some other run's torn file: refuse rather than
    // silently overwrite it.
    EXPECT_FALSE(serve::planJsonlResume(
        header, "{\"type\": \"header\", \"name\": \"alien", plan,
        &error));
    EXPECT_NE(error.find("torn line"), std::string::npos) << error;
}

TEST(Serve, ResumePlanAcceptsTrimsAndRefuses)
{
    const ScenarioSpec spec = sampleSpec();
    const ExpandedGrid grid = dedupGrid(spec);
    const CampaignHeader header =
        serve::headerForGrid(spec, grid, {}, 2);

    // A complete timing-free export of the run, line-addressable.
    CampaignEngine::Options opts;
    opts.workers = 1;
    const CampaignReport report = CampaignEngine(opts).run(spec);
    const std::string full = tool::campaignJsonl(report, false);

    // Empty file: fresh plan, everything missing.
    serve::ResumePlan plan;
    std::string error;
    ASSERT_TRUE(serve::planJsonlResume(header, "", plan, &error))
        << error;
    EXPECT_EQ(plan.covered, 0u);
    EXPECT_EQ(plan.missing.size(), grid.expanded.size());
    EXPECT_TRUE(plan.keepText.empty());

    // The complete file: nothing missing, every byte kept.
    ASSERT_TRUE(
        serve::planJsonlResume(header, full, plan, &error))
        << error;
    EXPECT_EQ(plan.covered, grid.expanded.size());
    EXPECT_TRUE(plan.missing.empty());
    EXPECT_EQ(plan.keepText, full);

    // Killed mid-write: keep the valid prefix (header + 3 whole
    // outcome lines), drop the torn fourth, plan the rest.
    std::size_t pos = 0;
    for (int lines = 0; lines < 4; ++lines)
        pos = full.find('\n', pos) + 1;
    const std::string torn = full.substr(0, pos + 7);
    ASSERT_TRUE(
        serve::planJsonlResume(header, torn, plan, &error))
        << error;
    EXPECT_EQ(plan.covered, 3u);
    EXPECT_EQ(plan.keepText, full.substr(0, pos));
    ASSERT_EQ(plan.missing.size(), grid.expanded.size() - 3);
    EXPECT_EQ(plan.missing.front(), header.gridIndices[3]);

    // A file from a different run must be refused, not resumed
    // over: here, the same bytes against a renamed spec.
    ScenarioSpec other = spec;
    other.name = "serve-sample-other";
    const ExpandedGrid otherGrid = dedupGrid(other);
    const CampaignHeader otherHeader =
        serve::headerForGrid(other, otherGrid, {}, 2);
    EXPECT_FALSE(serve::planJsonlResume(otherHeader, full, plan,
                                        &error));
    EXPECT_NE(error.find("refusing to resume"),
              std::string::npos)
        << error;
}

TEST(Serve, ExecuteKeyBatchNamesTheMalformedKey)
{
    const ScenarioSpec spec = sampleSpec();
    const ExpandedGrid grid = dedupGrid(spec);

    std::vector<std::string> keys = {
        grid.expanded[grid.uniqueIndices.front()].key,
        "definitely-not-a-key"};
    std::string error;
    const bool ok = executeKeyBatch(
        keys, 1, nullptr,
        [](std::size_t, const KeyBatchItem &) { return true; },
        &error);
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("index 1"), std::string::npos) << error;

    // The valid key alone executes, emitting exactly once.
    std::size_t emitted = 0;
    keys.pop_back();
    EXPECT_TRUE(executeKeyBatch(
        keys, 1, nullptr,
        [&](std::size_t index, const KeyBatchItem &item) {
            EXPECT_EQ(index, 0u);
            EXPECT_FALSE(item.cached);
            ++emitted;
            return true;
        },
        &error))
        << error;
    EXPECT_EQ(emitted, 1u);
}

} // namespace
