/**
 * @file
 * Tests for the Section V-A attack composer: every recipe in the
 * trigger x source x channel space yields a well-formed attack
 * graph with the authorization/access race; published variants are
 * correctly located in the space; the executable composed attack
 * (v2 trigger x FPU source) leaks and is blocked by either
 * dimension's defense.
 */

#include <gtest/gtest.h>

#include "attacks/composed.hh"
#include "core/composer.hh"
#include "core/security_dependency.hh"
#include "graph/race.hh"

namespace
{

using namespace specsec;
using namespace specsec::core;

TEST(Composer, TriggerCatalog)
{
    EXPECT_EQ(allTriggerKinds().size(), 8u);
    EXPECT_STREQ(triggerKindName(TriggerKind::FaultingLoad),
                 "faulting-load");
    EXPECT_EQ(composableSources().size(), 8u);
}

TEST(Composer, KnownVariantsLocated)
{
    using enum TriggerKind;
    using enum SecretSource;
    const auto fr = CovertChannelKind::FlushReload;
    EXPECT_EQ(knownVariantFor({ConditionalBranch, Memory, fr}),
              AttackVariant::SpectreV1);
    EXPECT_EQ(knownVariantFor({FaultingLoad, Memory, fr}),
              AttackVariant::Meltdown);
    EXPECT_EQ(knownVariantFor({FaultingLoad, Cache, fr}),
              AttackVariant::Foreshadow);
    EXPECT_EQ(knownVariantFor({FaultingLoad, StoreBuffer, fr}),
              AttackVariant::Fallout);
    EXPECT_EQ(knownVariantFor({MsrRead, SystemRegister, fr}),
              AttackVariant::MeltdownV3a);
    EXPECT_EQ(knownVariantFor({TsxAbort, LineFillBuffer, fr}),
              AttackVariant::Cacheout);
}

TEST(Composer, NovelCombinationsAreUnclaimed)
{
    using enum TriggerKind;
    using enum SecretSource;
    const auto fr = CovertChannelKind::FlushReload;
    // The composed v2-x-FPU attack is not a published variant.
    EXPECT_FALSE(knownVariantFor({IndirectBranch, FpuRegister, fr})
                     .has_value());
    EXPECT_FALSE(knownVariantFor({ConditionalBranch, SystemRegister,
                                  fr})
                     .has_value());
    EXPECT_FALSE(
        knownVariantFor({ReturnAddress, StoreBuffer, fr})
            .has_value());
}

struct RecipeCase
{
    TriggerKind trigger;
    SecretSource source;
};

class ComposerSpace : public ::testing::TestWithParam<RecipeCase>
{
};

TEST_P(ComposerSpace, ComposedGraphHasTheRace)
{
    const AttackRecipe recipe{GetParam().trigger, GetParam().source,
                              CovertChannelKind::FlushReload};
    const AttackGraph g = composeAttack(recipe);
    ASSERT_EQ(g.authorizationNodes().size(), 1u);
    ASSERT_EQ(g.secretAccessNodes().size(), 1u);
    const auto auth = g.authorizationNodes().front();
    const auto access = g.secretAccessNodes().front();
    EXPECT_TRUE(graph::hasRace(g.tsg(), auth, access));
    EXPECT_TRUE(g.isVulnerable());
}

TEST_P(ComposerSpace, EveryStrategyBlocksComposedAttack)
{
    const AttackRecipe recipe{GetParam().trigger, GetParam().source,
                              CovertChannelKind::FlushReload};
    const AttackGraph g = composeAttack(recipe);
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventAccess));
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventUse));
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventSend));
}

std::vector<RecipeCase>
allRecipeCases()
{
    std::vector<RecipeCase> cases;
    for (TriggerKind t : allTriggerKinds()) {
        for (SecretSource s : composableSources())
            cases.push_back({t, s});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FullSpace, ComposerSpace, ::testing::ValuesIn(allRecipeCases()),
    [](const ::testing::TestParamInfo<RecipeCase> &info) {
        std::string name =
            std::string(triggerKindName(info.param.trigger)) + "_" +
            secretSourceName(info.param.source);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(ComposedAttack, V2FpuGadgetLeaks)
{
    const auto r =
        attacks::runComposedV2FpuGadget(uarch::CpuConfig{});
    EXPECT_TRUE(r.leaked) << "accuracy " << r.accuracy;
    EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(ComposedAttack, BlockedByEagerFpu)
{
    uarch::CpuConfig cfg;
    cfg.defense.eagerFpuSwitch = true;
    EXPECT_FALSE(attacks::runComposedV2FpuGadget(cfg).leaked);
}

TEST(ComposedAttack, BlockedByPredictorFlush)
{
    uarch::CpuConfig cfg;
    cfg.defense.flushPredictorOnContextSwitch = true;
    EXPECT_FALSE(attacks::runComposedV2FpuGadget(cfg).leaked);
}

TEST(ComposedAttack, BlockedByLazyFpSiliconFix)
{
    uarch::CpuConfig cfg;
    cfg.vuln.lazyFp = false;
    EXPECT_FALSE(attacks::runComposedV2FpuGadget(cfg).leaked);
}

TEST(ComposedAttack, BlockedByForwardingBlock)
{
    uarch::CpuConfig cfg;
    cfg.defense.blockSpeculativeForwarding = true;
    EXPECT_FALSE(attacks::runComposedV2FpuGadget(cfg).leaked);
}

} // namespace
