/**
 * @file
 * Tests for the AttackGraph model: roles, missing security
 * dependencies, speculative window, secret flows and the OR-join
 * multi-source escape semantics (paper Figs. 1 and 4).
 */

#include <gtest/gtest.h>

#include "core/attack_graph.hh"
#include "core/node_role.hh"

namespace
{

using namespace specsec::core;
using specsec::graph::EdgeKind;
using specsec::graph::NodeId;

/** Minimal Spectre-shaped graph (Fig. 1 skeleton). */
struct SpectreShape
{
    AttackGraph g;
    NodeId mistrain, trigger, resolve, access, use, send, receive;

    SpectreShape()
    {
        mistrain = g.addOperation("mistrain",
                                  NodeRole::MistrainPredictor,
                                  AttackStep::Setup);
        trigger = g.addOperation("branch", NodeRole::Trigger,
                                 AttackStep::DelayedAuth);
        resolve = g.addOperation("branch resolution",
                                 NodeRole::Authorization,
                                 AttackStep::DelayedAuth);
        access = g.addOperation("load S", NodeRole::SecretAccess,
                                AttackStep::Access);
        use = g.addOperation("compute R", NodeRole::Use,
                             AttackStep::UseSend);
        send = g.addOperation("load R", NodeRole::Send,
                              AttackStep::UseSend);
        receive = g.addOperation("reload", NodeRole::Receive,
                                 AttackStep::Receive);
        g.addDependency(mistrain, trigger, EdgeKind::Resource);
        g.addDependency(trigger, resolve, EdgeKind::Data);
        g.addDependency(trigger, access, EdgeKind::Control);
        g.addDependency(access, use, EdgeKind::Data);
        g.addDependency(use, send, EdgeKind::Address);
        g.addDependency(send, receive, EdgeKind::Resource);
    }
};

TEST(AttackGraph, RolesAndSteps)
{
    SpectreShape s;
    EXPECT_EQ(s.g.role(s.resolve), NodeRole::Authorization);
    EXPECT_EQ(s.g.step(s.access), AttackStep::Access);
    EXPECT_EQ(s.g.authorizationNodes(),
              std::vector<NodeId>{s.resolve});
    EXPECT_EQ(s.g.secretAccessNodes(), std::vector<NodeId>{s.access});
    EXPECT_EQ(s.g.sendNodes(), std::vector<NodeId>{s.send});
    EXPECT_EQ(s.g.receiveNodes(), std::vector<NodeId>{s.receive});
}

TEST(AttackGraph, MissingDependenciesMatchFig1Races)
{
    SpectreShape s;
    const auto findings = s.g.missingSecurityDependencies();
    // Load S, compute R and load R all race with branch resolution.
    ASSERT_EQ(findings.size(), 3u);
    for (const RaceFinding &f : findings)
        EXPECT_EQ(f.authorization, s.resolve);
}

TEST(AttackGraph, SpeculativeWindowContainsTransientChain)
{
    SpectreShape s;
    const auto window = s.g.speculativeWindow();
    const auto in_window = [&](NodeId n) {
        return std::find(window.begin(), window.end(), n) !=
               window.end();
    };
    EXPECT_TRUE(in_window(s.access));
    EXPECT_TRUE(in_window(s.use));
    EXPECT_TRUE(in_window(s.send));
    EXPECT_FALSE(in_window(s.trigger)); // ordered before resolution
}

TEST(AttackGraph, SecretFlowEnumerated)
{
    SpectreShape s;
    const auto flows = s.g.secretFlows();
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0],
              (SecretFlow{s.access, s.use, s.send}));
}

TEST(AttackGraph, VulnerableBeforeDefense)
{
    SpectreShape s;
    EXPECT_TRUE(s.g.isVulnerable());
}

TEST(AttackGraph, SecurityDependencyOnAccessBlocks)
{
    SpectreShape s;
    s.g.addSecurityDependency(s.resolve, s.access);
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, SecurityDependencyOnUseBlocks)
{
    SpectreShape s;
    s.g.addSecurityDependency(s.resolve, s.use);
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, SecurityDependencyOnSendBlocks)
{
    SpectreShape s;
    s.g.addSecurityDependency(s.resolve, s.send);
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, MistrainInfluenceIntactByDefault)
{
    SpectreShape s;
    EXPECT_TRUE(s.g.mistrainInfluenceIntact());
}

TEST(AttackGraph, PredictorFlushCutsInfluence)
{
    SpectreShape s;
    // Splice a flush node between mistrain and trigger.
    s.g.tsg().removeEdge(s.mistrain, s.trigger);
    const NodeId flush = s.g.addOperation(
        "flush predictor", NodeRole::PredictorFlush,
        AttackStep::Setup);
    s.g.addDependency(s.mistrain, flush, EdgeKind::Resource);
    s.g.addDependency(flush, s.trigger, EdgeKind::Security);
    EXPECT_FALSE(s.g.mistrainInfluenceIntact());
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, NoMistrainNodeMeansIntact)
{
    AttackGraph g;
    const NodeId auth = g.addOperation(
        "check", NodeRole::Authorization, AttackStep::DelayedAuth);
    const NodeId access = g.addOperation(
        "read", NodeRole::SecretAccess, AttackStep::Access);
    const NodeId send = g.addOperation("send", NodeRole::Send,
                                       AttackStep::UseSend);
    g.addDependency(access, send, EdgeKind::Data);
    (void)auth;
    EXPECT_TRUE(g.mistrainInfluenceIntact());
    EXPECT_TRUE(g.isVulnerable());
}

/** Two-source OR-join graph modeling Fig. 4's insufficiency. */
struct TwoSourceShape
{
    AttackGraph g;
    NodeId trigger, check, mem, cache, use, send;

    TwoSourceShape()
    {
        trigger = g.addOperation("load instr", NodeRole::Trigger,
                                 AttackStep::DelayedAuth);
        check = g.addOperation("permission check",
                               NodeRole::Authorization,
                               AttackStep::DelayedAuth);
        mem = g.addOperation("read S from memory",
                             NodeRole::SecretAccess,
                             AttackStep::Access);
        cache = g.addOperation("read S from cache",
                               NodeRole::SecretAccess,
                               AttackStep::Access);
        use = g.addOperation("compute R", NodeRole::Use,
                             AttackStep::UseSend);
        send = g.addOperation("load R", NodeRole::Send,
                              AttackStep::UseSend);
        g.addDependency(trigger, check, EdgeKind::Data);
        g.addDependency(trigger, mem, EdgeKind::Data);
        g.addDependency(trigger, cache, EdgeKind::Data);
        g.addDependency(mem, use, EdgeKind::Data);
        g.addDependency(cache, use, EdgeKind::Data);
        g.addDependency(use, send, EdgeKind::Address);
    }
};

TEST(AttackGraph, MultiSourceHasTwoFlows)
{
    TwoSourceShape s;
    EXPECT_EQ(s.g.secretFlows().size(), 2u);
}

TEST(AttackGraph, PartialDependencyIsInsufficient)
{
    // Section V-B: dependency (1) on the memory read alone does not
    // stop the cache-hit variant.
    TwoSourceShape s;
    s.g.addSecurityDependency(s.check, s.mem);
    EXPECT_TRUE(s.g.isVulnerable());
}

TEST(AttackGraph, AllSourcesCoveredIsSufficient)
{
    TwoSourceShape s;
    s.g.addSecurityDependency(s.check, s.mem);
    s.g.addSecurityDependency(s.check, s.cache);
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, UseDependencyCoversAllSources)
{
    // The paper's observation: protecting the single use node is
    // both cheaper and safer than per-source dependencies.
    TwoSourceShape s;
    s.g.addSecurityDependency(s.check, s.use);
    EXPECT_FALSE(s.g.isVulnerable());
}

TEST(AttackGraph, FlowEscapeIsPerFlow)
{
    TwoSourceShape s;
    s.g.addSecurityDependency(s.check, s.mem);
    const auto flows = s.g.secretFlows();
    ASSERT_EQ(flows.size(), 2u);
    int escaping = 0;
    for (const auto &flow : flows) {
        if (s.g.flowEscapesAuthorization(flow, s.check))
            ++escaping;
    }
    EXPECT_EQ(escaping, 1); // only the cache flow still escapes
}

TEST(AttackGraph, RoleNames)
{
    EXPECT_STREQ(nodeRoleName(NodeRole::Authorization),
                 "authorization");
    EXPECT_STREQ(nodeRoleName(NodeRole::SecretAccess),
                 "secret-access");
    EXPECT_STREQ(attackStepName(AttackStep::DelayedAuth),
                 "step2-delayed-auth");
}

TEST(AttackGraph, PartAPartBSplit)
{
    EXPECT_TRUE(isPartA(AttackStep::Access, NodeRole::SecretAccess));
    EXPECT_TRUE(isPartA(AttackStep::Setup,
                        NodeRole::MistrainPredictor));
    EXPECT_TRUE(isPartB(AttackStep::Setup, NodeRole::Setup));
    EXPECT_TRUE(isPartB(AttackStep::Receive, NodeRole::Receive));
    EXPECT_FALSE(isPartB(AttackStep::Access,
                         NodeRole::SecretAccess));
    EXPECT_TRUE(isPartB(AttackStep::UseSend, NodeRole::Send));
}

} // namespace
