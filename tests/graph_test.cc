/**
 * @file
 * Unit tests for the TSG core: construction, edge kinds, acyclicity.
 */

#include <gtest/gtest.h>

#include "graph/tsg.hh"

namespace
{

using namespace specsec::graph;

TEST(Tsg, StartsEmpty)
{
    Tsg g;
    EXPECT_EQ(g.nodeCount(), 0u);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_TRUE(g.nodes().empty());
    EXPECT_TRUE(g.edges().empty());
}

TEST(Tsg, AddNodeAssignsDenseIds)
{
    Tsg g;
    EXPECT_EQ(g.addNode("a"), 0u);
    EXPECT_EQ(g.addNode("b"), 1u);
    EXPECT_EQ(g.addNode("c"), 2u);
    EXPECT_EQ(g.nodeCount(), 3u);
}

TEST(Tsg, LabelsAreStored)
{
    Tsg g;
    const NodeId a = g.addNode("authorization");
    EXPECT_EQ(g.label(a), "authorization");
    g.setLabel(a, "branch resolution");
    EXPECT_EQ(g.label(a), "branch resolution");
}

TEST(Tsg, FindByLabel)
{
    Tsg g;
    g.addNode("a");
    const NodeId b = g.addNode("b");
    EXPECT_EQ(g.findByLabel("b"), b);
    EXPECT_FALSE(g.findByLabel("missing").has_value());
}

TEST(Tsg, AddEdgeBasics)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_TRUE(g.hasEdge(a, b));
    EXPECT_FALSE(g.hasEdge(b, a));
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(Tsg, EdgeKindsPreserved)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(a, b, EdgeKind::Control);
    g.addEdge(b, c, EdgeKind::Security);
    EXPECT_EQ(g.edgeKind(a, b), EdgeKind::Control);
    EXPECT_EQ(g.edgeKind(b, c), EdgeKind::Security);
    EXPECT_FALSE(g.edgeKind(a, c).has_value());
}

TEST(Tsg, DuplicateEdgeIsIdempotent)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    EXPECT_TRUE(g.addEdge(a, b, EdgeKind::Data));
    EXPECT_TRUE(g.addEdge(a, b, EdgeKind::Security));
    EXPECT_EQ(g.edgeCount(), 1u);
    // Original kind wins.
    EXPECT_EQ(g.edgeKind(a, b), EdgeKind::Data);
}

TEST(Tsg, SelfLoopRejected)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    EXPECT_FALSE(g.addEdge(a, a));
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(Tsg, CycleRejected)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_TRUE(g.addEdge(b, c));
    EXPECT_FALSE(g.addEdge(c, a)); // would create a -> b -> c -> a
    EXPECT_EQ(g.edgeCount(), 2u);
}

TEST(Tsg, WouldCreateCycleQuery)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    g.addEdge(a, b);
    EXPECT_TRUE(g.wouldCreateCycle(b, a));
    EXPECT_FALSE(g.wouldCreateCycle(a, b));
    EXPECT_TRUE(g.wouldCreateCycle(a, a));
}

TEST(Tsg, SuccessorsAndPredecessors)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, c);
    EXPECT_EQ(g.successors(a).size(), 2u);
    EXPECT_EQ(g.predecessors(c).size(), 2u);
    EXPECT_TRUE(g.successors(c).empty());
    EXPECT_TRUE(g.predecessors(a).empty());
}

TEST(Tsg, RemoveEdge)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    g.addEdge(a, b);
    EXPECT_TRUE(g.removeEdge(a, b));
    EXPECT_FALSE(g.hasEdge(a, b));
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_FALSE(g.removeEdge(a, b));
}

TEST(Tsg, RemoveEdgeAllowsReversedInsert)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    g.addEdge(a, b);
    g.removeEdge(a, b);
    EXPECT_TRUE(g.addEdge(b, a)); // no longer cyclic
}

TEST(Tsg, SuccessorCacheInvalidatedOnRemove)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(a, b);
    g.addEdge(a, c);
    EXPECT_EQ(g.successors(a).size(), 2u); // populate cache
    g.removeEdge(a, b);
    EXPECT_EQ(g.successors(a).size(), 1u);
    EXPECT_EQ(g.successors(a)[0], c);
}

TEST(Tsg, OutOfRangeThrows)
{
    Tsg g;
    g.addNode("a");
    EXPECT_THROW((void)g.label(5), std::out_of_range);
    EXPECT_THROW((void)g.addEdge(0, 5), std::out_of_range);
    EXPECT_THROW((void)g.hasEdge(7, 0), std::out_of_range);
}

TEST(Tsg, EdgesSnapshotInInsertionOrder)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(b, c, EdgeKind::Control);
    g.addEdge(a, b, EdgeKind::Data);
    const auto edges = g.edges();
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0].from, b);
    EXPECT_EQ(edges[1].from, a);
}

TEST(Tsg, EdgeKindNames)
{
    EXPECT_STREQ(edgeKindName(EdgeKind::Data), "data");
    EXPECT_STREQ(edgeKindName(EdgeKind::Control), "control");
    EXPECT_STREQ(edgeKindName(EdgeKind::Address), "address");
    EXPECT_STREQ(edgeKindName(EdgeKind::Fence), "fence");
    EXPECT_STREQ(edgeKindName(EdgeKind::Resource), "resource");
    EXPECT_STREQ(edgeKindName(EdgeKind::Security), "security");
}

TEST(Tsg, CopyIsIndependent)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    g.addEdge(a, b);
    Tsg copy = g;
    copy.addEdge(b, copy.addNode("c"));
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(copy.nodeCount(), 3u);
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(copy.edgeCount(), 2u);
}

} // namespace
