/**
 * @file
 * Tests for the campaign engine: grid expansion counts, config
 * deduplication, report aggregation, and the determinism contract —
 * the parallel engine produces byte-identical results to a serial
 * run of the same spec.
 */

#include <gtest/gtest.h>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"
#include "tool/report.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;
using core::CovertChannelKind;

DefenseAxis
fenceAxis()
{
    return {"fence(1)", [](CpuConfig &c, AttackOptions &) {
                c.defense.fenceSpeculativeLoads = true;
            }};
}

DefenseAxis
flushAxis()
{
    return {"flush(4)", [](CpuConfig &c, AttackOptions &) {
                c.defense.flushPredictorOnContextSwitch = true;
            }};
}

TEST(Grid, ExpansionCounts)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr}, fenceAxis(), flushAxis()};
    spec.robSizes = {32, 48, 64};
    spec.permCheckLatencies = {10, 30};
    spec.channels = {CovertChannelKind::FlushReload};
    EXPECT_EQ(spec.gridSize(), 2u * 3u * 3u * 2u * 1u);
    const std::vector<Scenario> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), spec.gridSize());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].gridIndex, i);
        EXPECT_LT(grid[i].row, 2u);
        EXPECT_LT(grid[i].col, 3u);
    }
    // Row-major order: the first variant fills the first half.
    EXPECT_EQ(grid.front().variant, AttackVariant::SpectreV1);
    EXPECT_EQ(grid.back().variant, AttackVariant::Meltdown);
}

TEST(Grid, EmptySpecDefaults)
{
    ScenarioSpec spec;
    EXPECT_EQ(spec.gridSize(), core::allVariants().size());
    const std::vector<Scenario> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), core::allVariants().size());
    EXPECT_EQ(grid.front().colLabel, "baseline");
    EXPECT_EQ(grid.front().config.robSize, spec.baseConfig.robSize);
}

TEST(Grid, DedupIdenticalKnobValues)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.robSizes = {48, 48};
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.expanded.size(), 2u);
    ASSERT_EQ(g.uniqueIndices.size(), 1u);
    EXPECT_EQ(g.uniqueIndices[0], 0u);
    EXPECT_EQ(g.dupOf, (std::vector<std::size_t>{0, 0}));
}

TEST(Grid, DedupNoOpDefenseColumn)
{
    // A defense column whose mutation is a no-op produces cells
    // identical to the baseline column: executed once, reported in
    // both columns.
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr},
                     {"noop", [](CpuConfig &, AttackOptions &) {}},
                     fenceAxis()};
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.expanded.size(), 6u);
    EXPECT_EQ(g.uniqueIndices.size(), 4u);

    const CampaignEngine engine(CampaignEngine::Options{1});
    const CampaignReport report = engine.run(spec);
    EXPECT_EQ(report.expandedCount, 6u);
    EXPECT_EQ(report.uniqueCount, 4u);
    ASSERT_EQ(report.outcomes.size(), 6u);
    for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_EQ(report.cellGlyph(r, 0), report.cellGlyph(r, 1));
        EXPECT_EQ(report.outcomes[r * 3].result.accuracy,
                  report.outcomes[r * 3 + 1].result.accuracy);
    }
}

TEST(Grid, NewDimensionsMultiplyTheGrid)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    SoftwareMitigation kpti;
    kpti.label = "kpti";
    kpti.toggles.kpti = true;
    spec.mitigations = {SoftwareMitigation{}, kpti};
    uarch::VulnConfig noMds;
    noMds.mds = false;
    spec.vulnAblations = {{"all", uarch::VulnConfig{}},
                          {"no-mds", noMds}};
    CacheGeometry small;
    small.label = "small";
    small.cache.sets = 64;
    spec.cacheGeometries = {CacheGeometry{}, small};
    EXPECT_EQ(spec.gridSize(), 1u * 1u * 2u * 2u * 2u);
    const std::vector<Scenario> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), 8u);
    // Each dimension lands in the expanded cell's config/options.
    EXPECT_FALSE(grid[0].options.kpti);
    EXPECT_TRUE(grid[4].options.kpti); // mitigation is the outermost
    EXPECT_TRUE(grid[0].config.vuln.mds);
    EXPECT_FALSE(grid[2].config.vuln.mds);
    EXPECT_EQ(grid[0].config.cache.sets, 256u);
    EXPECT_EQ(grid[1].config.cache.sets, 64u);
    // All eight cells are distinct experiments.
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.uniqueIndices.size(), 8u);
}

TEST(Grid, DefenseColumnWinsOverKnobDimensions)
{
    // A defense column that pins a field overrides the sweep value,
    // so both sweep cells collapse onto one experiment.
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.defenses = {{"pin-cache",
                      [](CpuConfig &c, AttackOptions &) {
                          c.cache.sets = 512;
                      }}};
    CacheGeometry small;
    small.label = "small";
    small.cache.sets = 64;
    spec.cacheGeometries = {CacheGeometry{}, small};
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.expanded.size(), 2u);
    EXPECT_EQ(g.uniqueIndices.size(), 1u);
    EXPECT_EQ(g.expanded[0].config.cache.sets, 512u);
}

TEST(Grid, KeyCoversConfigAndOptions)
{
    const CpuConfig base;
    const AttackOptions opts;
    const std::string k0 =
        scenarioKey(AttackVariant::SpectreV1, base, opts);
    EXPECT_EQ(k0, scenarioKey(AttackVariant::SpectreV1, base, opts));
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV2, base, opts));

    CpuConfig rob = base;
    rob.robSize = 64;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, rob, opts));

    CpuConfig fence = base;
    fence.defense.fenceSpeculativeLoads = true;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, fence, opts));

    AttackOptions pp = opts;
    pp.channel = CovertChannelKind::PrimeProbe;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, base, pp));

    AttackOptions kpti = opts;
    kpti.kpti = true;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, base, kpti));
}

TEST(Grid, KeyIsExhaustiveOverEveryField)
{
    // Tripwire companion to the static_asserts in campaign.cc: for
    // every field of CpuConfig (including nested CacheConfig /
    // VulnConfig / HwDefenseConfig) and AttackOptions, a config
    // differing only in that field must produce a distinct key.  A
    // field missing from scenarioKey() would silently fold distinct
    // scenarios in dedup and the result cache.
    const CpuConfig base;
    const AttackOptions opts;
    std::vector<std::pair<std::string, std::string>> keys;
    keys.emplace_back("base", scenarioKey(AttackVariant::SpectreV1,
                                          base, opts));
    keys.emplace_back("variant",
                      scenarioKey(AttackVariant::Meltdown, base,
                                  opts));

    const auto addConfig = [&](const char *name, auto mutate) {
        CpuConfig c = base;
        mutate(c);
        keys.emplace_back(
            name, scenarioKey(AttackVariant::SpectreV1, c, opts));
    };
    const auto addOpts = [&](const char *name, auto mutate) {
        AttackOptions o = opts;
        mutate(o);
        keys.emplace_back(
            name, scenarioKey(AttackVariant::SpectreV1, base, o));
    };

    // CpuConfig scalars.
    addConfig("robSize", [](CpuConfig &c) { c.robSize = 99; });
    addConfig("fetchWidth", [](CpuConfig &c) { c.fetchWidth = 9; });
    addConfig("commitWidth",
              [](CpuConfig &c) { c.commitWidth = 9; });
    addConfig("permCheckLatency",
              [](CpuConfig &c) { c.permCheckLatency = 99; });
    addConfig("branchResolveLatency",
              [](CpuConfig &c) { c.branchResolveLatency = 99; });
    addConfig("retResolveLatency",
              [](CpuConfig &c) { c.retResolveLatency = 99; });
    addConfig("exceptionDeliveryLatency", [](CpuConfig &c) {
        c.exceptionDeliveryLatency = 99;
    });
    addConfig("txnAbortDetectLatency", [](CpuConfig &c) {
        c.txnAbortDetectLatency = 99;
    });
    addConfig("partialAliasPenalty",
              [](CpuConfig &c) { c.partialAliasPenalty = 99; });
    addConfig("physAliasPenalty",
              [](CpuConfig &c) { c.physAliasPenalty = 99; });
    addConfig("rsbDepth", [](CpuConfig &c) { c.rsbDepth = 99; });
    addConfig("lfbEntries", [](CpuConfig &c) { c.lfbEntries = 99; });
    // CacheConfig.
    addConfig("cache.sets", [](CpuConfig &c) { c.cache.sets = 99; });
    addConfig("cache.ways", [](CpuConfig &c) { c.cache.ways = 99; });
    addConfig("cache.lineSize",
              [](CpuConfig &c) { c.cache.lineSize = 99; });
    addConfig("cache.hitLatency",
              [](CpuConfig &c) { c.cache.hitLatency = 99; });
    addConfig("cache.missLatency",
              [](CpuConfig &c) { c.cache.missLatency = 99; });
    // VulnConfig.
    addConfig("vuln.meltdown",
              [](CpuConfig &c) { c.vuln.meltdown = false; });
    addConfig("vuln.l1tf", [](CpuConfig &c) { c.vuln.l1tf = false; });
    addConfig("vuln.mds", [](CpuConfig &c) { c.vuln.mds = false; });
    addConfig("vuln.lazyFp",
              [](CpuConfig &c) { c.vuln.lazyFp = false; });
    addConfig("vuln.storeBypass",
              [](CpuConfig &c) { c.vuln.storeBypass = false; });
    addConfig("vuln.msr", [](CpuConfig &c) { c.vuln.msr = false; });
    addConfig("vuln.taa", [](CpuConfig &c) { c.vuln.taa = false; });
    // HwDefenseConfig.
    addConfig("defense.fenceSpeculativeLoads", [](CpuConfig &c) {
        c.defense.fenceSpeculativeLoads = true;
    });
    addConfig("defense.blockSpeculativeForwarding",
              [](CpuConfig &c) {
                  c.defense.blockSpeculativeForwarding = true;
              });
    addConfig("defense.blockTaintedTransmit", [](CpuConfig &c) {
        c.defense.blockTaintedTransmit = true;
    });
    addConfig("defense.invisibleSpeculation", [](CpuConfig &c) {
        c.defense.invisibleSpeculation = true;
    });
    addConfig("defense.cleanupSpec",
              [](CpuConfig &c) { c.defense.cleanupSpec = true; });
    addConfig("defense.conditionalSpeculation", [](CpuConfig &c) {
        c.defense.conditionalSpeculation = true;
    });
    addConfig("defense.partitionedCache", [](CpuConfig &c) {
        c.defense.partitionedCache = true;
    });
    addConfig("defense.flushPredictorOnContextSwitch",
              [](CpuConfig &c) {
                  c.defense.flushPredictorOnContextSwitch = true;
              });
    addConfig("defense.noIndirectPrediction", [](CpuConfig &c) {
        c.defense.noIndirectPrediction = true;
    });
    addConfig("defense.noBranchPrediction", [](CpuConfig &c) {
        c.defense.noBranchPrediction = true;
    });
    addConfig("defense.clearBuffersOnContextSwitch",
              [](CpuConfig &c) {
                  c.defense.clearBuffersOnContextSwitch = true;
              });
    addConfig("defense.eagerFpuSwitch", [](CpuConfig &c) {
        c.defense.eagerFpuSwitch = true;
    });
    addConfig("defense.safeStoreBypass", [](CpuConfig &c) {
        c.defense.safeStoreBypass = true;
    });
    // AttackOptions.
    addOpts("channel", [](AttackOptions &o) {
        o.channel = CovertChannelKind::PrimeProbe;
    });
    addOpts("secretLen", [](AttackOptions &o) { o.secretLen = 99; });
    addOpts("flushL1OnExit",
            [](AttackOptions &o) { o.flushL1OnExit = true; });
    addOpts("kpti", [](AttackOptions &o) { o.kpti = true; });
    addOpts("rsbStuffing",
            [](AttackOptions &o) { o.rsbStuffing = true; });
    addOpts("softwareLfence",
            [](AttackOptions &o) { o.softwareLfence = true; });
    addOpts("addressMasking",
            [](AttackOptions &o) { o.addressMasking = true; });
    addOpts("trainingRounds",
            [](AttackOptions &o) { o.trainingRounds = 99; });
    addOpts("delayAuthorization",
            [](AttackOptions &o) { o.delayAuthorization = false; });

    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i].second, keys[j].second)
                << "scenarioKey() does not separate '"
                << keys[i].first << "' from '" << keys[j].first
                << "'";
}

TEST(Cache, RepeatedCampaignsExecuteOnce)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr}, fenceAxis()};

    ResultCache cache;
    CampaignEngine::Options opts;
    opts.workers = 2;
    opts.cache = &cache;
    const CampaignEngine engine(opts);

    const CampaignReport first = engine.run(spec);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.executedCount, first.uniqueCount);
    EXPECT_EQ(cache.size(), first.uniqueCount);

    const CampaignReport second = engine.run(spec);
    EXPECT_EQ(second.cacheHits, second.uniqueCount);
    EXPECT_EQ(second.executedCount, 0u);
    EXPECT_EQ(cache.size(), first.uniqueCount);

    // Cached results are the same experiment outcomes.
    EXPECT_EQ(tool::campaignCsv(first, false),
              tool::campaignCsv(second, false));
    EXPECT_EQ(first.successMatrixText(),
              second.successMatrixText());
}

TEST(Cache, SharedAcrossOverlappingSpecs)
{
    // Two different specs whose grids overlap on the baseline cells:
    // the second campaign re-executes only its new cells.
    ScenarioSpec baseline;
    baseline.variants = {AttackVariant::SpectreV1,
                         AttackVariant::Meltdown};

    ScenarioSpec wider = baseline;
    wider.defenses = {{"baseline", nullptr}, fenceAxis()};

    ResultCache cache;
    CampaignEngine::Options opts;
    opts.workers = 1;
    opts.cache = &cache;
    const CampaignEngine engine(opts);

    engine.run(baseline);
    const CampaignReport report = engine.run(wider);
    EXPECT_EQ(report.uniqueCount, 4u);
    EXPECT_EQ(report.cacheHits, 2u);
    EXPECT_EQ(report.executedCount, 2u);
    EXPECT_EQ(cache.size(), 4u);
}

TEST(Engine, DeterministicAcrossWorkerCountsAndCache)
{
    // The regression gate's contract: sweeping worker counts, with
    // and without the result cache (cold and warm), every
    // timing-free export is byte-identical.
    ScenarioSpec spec;
    spec.name = "worker-sweep";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown,
                     AttackVariant::ZombieLoad};
    spec.defenses = {{"baseline", nullptr}, fenceAxis(),
                     flushAxis()};
    spec.permCheckLatencies = {10, 30};

    const CampaignReport reference =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    const std::string refCsv = tool::campaignCsv(reference, false);
    const std::string refJson =
        tool::campaignJson(reference, false);
    const std::string refMatrix = reference.successMatrixText();

    ResultCache cache;
    for (const unsigned workers : {1u, 2u, 8u}) {
        for (const bool cached : {false, true}) {
            CampaignEngine::Options opts;
            opts.workers = workers;
            opts.cache = cached ? &cache : nullptr;
            const CampaignReport run =
                CampaignEngine(opts).run(spec);
            EXPECT_EQ(tool::campaignCsv(run, false), refCsv)
                << "workers=" << workers << " cached=" << cached;
            EXPECT_EQ(tool::campaignJson(run, false), refJson)
                << "workers=" << workers << " cached=" << cached;
            EXPECT_EQ(run.successMatrixText(), refMatrix)
                << "workers=" << workers << " cached=" << cached;
        }
    }
    // The cache ended warm: the last run executed nothing new.
    EXPECT_GT(cache.hits(), 0u);
}

TEST(Engine, ParallelMatchesSerialByteIdentical)
{
    ScenarioSpec spec;
    spec.name = "determinism";
    spec.variants = {AttackVariant::SpectreV1, AttackVariant::Meltdown,
                     AttackVariant::ZombieLoad};
    spec.defenses = {{"baseline", nullptr}, fenceAxis(), flushAxis()};
    spec.robSizes = {48, 64};

    const CampaignReport serial =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    const CampaignReport parallel =
        CampaignEngine(CampaignEngine::Options{4}).run(spec);

    EXPECT_EQ(serial.workers, 1u);
    EXPECT_EQ(parallel.workers, 4u);
    // Every timing-free export is byte-identical.
    EXPECT_EQ(tool::campaignCsv(serial, false),
              tool::campaignCsv(parallel, false));
    EXPECT_EQ(tool::campaignJson(serial, false),
              tool::campaignJson(parallel, false));
    EXPECT_EQ(serial.successMatrixText(),
              parallel.successMatrixText());
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].result.leaked,
                  parallel.outcomes[i].result.leaked);
        EXPECT_EQ(serial.outcomes[i].result.recovered,
                  parallel.outcomes[i].result.recovered);
        EXPECT_EQ(serial.outcomes[i].stats.cycles,
                  parallel.outcomes[i].stats.cycles);
    }
}

TEST(Engine, CollectsStatsAndThroughput)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    ASSERT_EQ(report.outcomes.size(), 1u);
    const ScenarioOutcome &o = report.outcomes.front();
    EXPECT_GT(o.stats.cycles, 0u);
    EXPECT_GT(o.stats.committed, 0u);
    EXPECT_GE(o.wallMillis, 0.0);
    EXPECT_GT(report.scenariosPerSecond, 0.0);
    EXPECT_EQ(report.expandedCount, 1u);
    EXPECT_EQ(report.uniqueCount, 1u);
}

TEST(Engine, MatrixAgreesWithDirectRunner)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.defenses = {{"baseline", nullptr}, fenceAxis()};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{2}).run(spec);

    const attacks::AttackResult bare =
        attacks::runVariant(AttackVariant::SpectreV1, CpuConfig{});
    CpuConfig fenced;
    fenced.defense.fenceSpeculativeLoads = true;
    const attacks::AttackResult defended =
        attacks::runVariant(AttackVariant::SpectreV1, fenced);

    EXPECT_EQ(report.outcomes[0].result.leaked, bare.leaked);
    EXPECT_EQ(report.outcomes[1].result.leaked, defended.leaked);
    EXPECT_EQ(report.cellGlyph(0, 0), bare.leaked ? 'L' : '.');
    EXPECT_EQ(report.cellGlyph(0, 1), defended.leaked ? 'L' : '.');
}

TEST(Engine, KnobSweepAggregatesPerCell)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.permCheckLatencies = {30, 60};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{2}).run(spec);
    ASSERT_EQ(report.cellRuns.size(), 1u);
    EXPECT_EQ(report.cellRuns[0][0], 2u);
    const unsigned leaks = report.cellLeaks[0][0];
    const char glyph = report.cellGlyph(0, 0);
    if (leaks == 2)
        EXPECT_EQ(glyph, 'L');
    else if (leaks == 0)
        EXPECT_EQ(glyph, '.');
    else
        EXPECT_EQ(glyph, 'p');
}

TEST(Spec, DefenseMatrixShape)
{
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    EXPECT_EQ(spec.variants.size(), core::allVariants().size() - 1);
    EXPECT_EQ(spec.defenses.size(), 8u);
    EXPECT_EQ(spec.gridSize(), spec.variants.size() * 8u);
    EXPECT_EQ(spec.defenses.front().label, "baseline");
}

TEST(Report, CsvAndJsonWellFormed)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.defenses = {{"baseline", nullptr}, fenceAxis()};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);

    const std::string csv = tool::campaignCsv(report);
    // Header + one line per grid cell.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("gridIndex,variant,defense"),
              std::string::npos);
    EXPECT_NE(csv.find("fence(1)"), std::string::npos);

    const std::string json = tool::campaignJson(report);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"outcomes\""), std::string::npos);
    EXPECT_NE(json.find("\"scenariosPerSecond\""),
              std::string::npos);
}

} // namespace
