/**
 * @file
 * Tests for the campaign engine: grid expansion counts, config
 * deduplication, report aggregation, and the determinism contract —
 * the parallel engine produces byte-identical results to a serial
 * run of the same spec.
 */

#include <gtest/gtest.h>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"
#include "tool/report.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;
using core::CovertChannelKind;

DefenseAxis
fenceAxis()
{
    return {"fence(1)", [](CpuConfig &c, AttackOptions &) {
                c.defense.fenceSpeculativeLoads = true;
            }};
}

DefenseAxis
flushAxis()
{
    return {"flush(4)", [](CpuConfig &c, AttackOptions &) {
                c.defense.flushPredictorOnContextSwitch = true;
            }};
}

TEST(Grid, ExpansionCounts)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr}, fenceAxis(), flushAxis()};
    spec.robSizes = {32, 48, 64};
    spec.permCheckLatencies = {10, 30};
    spec.channels = {CovertChannelKind::FlushReload};
    EXPECT_EQ(spec.gridSize(), 2u * 3u * 3u * 2u * 1u);
    const std::vector<Scenario> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), spec.gridSize());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].gridIndex, i);
        EXPECT_LT(grid[i].row, 2u);
        EXPECT_LT(grid[i].col, 3u);
    }
    // Row-major order: the first variant fills the first half.
    EXPECT_EQ(grid.front().variant, AttackVariant::SpectreV1);
    EXPECT_EQ(grid.back().variant, AttackVariant::Meltdown);
}

TEST(Grid, EmptySpecDefaults)
{
    ScenarioSpec spec;
    EXPECT_EQ(spec.gridSize(), core::allVariants().size());
    const std::vector<Scenario> grid = expandGrid(spec);
    ASSERT_EQ(grid.size(), core::allVariants().size());
    EXPECT_EQ(grid.front().colLabel, "baseline");
    EXPECT_EQ(grid.front().config.robSize, spec.baseConfig.robSize);
}

TEST(Grid, DedupIdenticalKnobValues)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.robSizes = {48, 48};
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.expanded.size(), 2u);
    ASSERT_EQ(g.uniqueIndices.size(), 1u);
    EXPECT_EQ(g.uniqueIndices[0], 0u);
    EXPECT_EQ(g.dupOf, (std::vector<std::size_t>{0, 0}));
}

TEST(Grid, DedupNoOpDefenseColumn)
{
    // A defense column whose mutation is a no-op produces cells
    // identical to the baseline column: executed once, reported in
    // both columns.
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr},
                     {"noop", [](CpuConfig &, AttackOptions &) {}},
                     fenceAxis()};
    const ExpandedGrid g = dedupGrid(spec);
    EXPECT_EQ(g.expanded.size(), 6u);
    EXPECT_EQ(g.uniqueIndices.size(), 4u);

    const CampaignEngine engine(CampaignEngine::Options{1});
    const CampaignReport report = engine.run(spec);
    EXPECT_EQ(report.expandedCount, 6u);
    EXPECT_EQ(report.uniqueCount, 4u);
    ASSERT_EQ(report.outcomes.size(), 6u);
    for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_EQ(report.cellGlyph(r, 0), report.cellGlyph(r, 1));
        EXPECT_EQ(report.outcomes[r * 3].result.accuracy,
                  report.outcomes[r * 3 + 1].result.accuracy);
    }
}

TEST(Grid, KeyCoversConfigAndOptions)
{
    const CpuConfig base;
    const AttackOptions opts;
    const std::string k0 =
        scenarioKey(AttackVariant::SpectreV1, base, opts);
    EXPECT_EQ(k0, scenarioKey(AttackVariant::SpectreV1, base, opts));
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV2, base, opts));

    CpuConfig rob = base;
    rob.robSize = 64;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, rob, opts));

    CpuConfig fence = base;
    fence.defense.fenceSpeculativeLoads = true;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, fence, opts));

    AttackOptions pp = opts;
    pp.channel = CovertChannelKind::PrimeProbe;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, base, pp));

    AttackOptions kpti = opts;
    kpti.kpti = true;
    EXPECT_NE(k0, scenarioKey(AttackVariant::SpectreV1, base, kpti));
}

TEST(Engine, ParallelMatchesSerialByteIdentical)
{
    ScenarioSpec spec;
    spec.name = "determinism";
    spec.variants = {AttackVariant::SpectreV1, AttackVariant::Meltdown,
                     AttackVariant::ZombieLoad};
    spec.defenses = {{"baseline", nullptr}, fenceAxis(), flushAxis()};
    spec.robSizes = {48, 64};

    const CampaignReport serial =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    const CampaignReport parallel =
        CampaignEngine(CampaignEngine::Options{4}).run(spec);

    EXPECT_EQ(serial.workers, 1u);
    EXPECT_EQ(parallel.workers, 4u);
    // Every timing-free export is byte-identical.
    EXPECT_EQ(tool::campaignCsv(serial, false),
              tool::campaignCsv(parallel, false));
    EXPECT_EQ(tool::campaignJson(serial, false),
              tool::campaignJson(parallel, false));
    EXPECT_EQ(serial.successMatrixText(),
              parallel.successMatrixText());
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].result.leaked,
                  parallel.outcomes[i].result.leaked);
        EXPECT_EQ(serial.outcomes[i].result.recovered,
                  parallel.outcomes[i].result.recovered);
        EXPECT_EQ(serial.outcomes[i].stats.cycles,
                  parallel.outcomes[i].stats.cycles);
    }
}

TEST(Engine, CollectsStatsAndThroughput)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    ASSERT_EQ(report.outcomes.size(), 1u);
    const ScenarioOutcome &o = report.outcomes.front();
    EXPECT_GT(o.stats.cycles, 0u);
    EXPECT_GT(o.stats.committed, 0u);
    EXPECT_GE(o.wallMillis, 0.0);
    EXPECT_GT(report.scenariosPerSecond, 0.0);
    EXPECT_EQ(report.expandedCount, 1u);
    EXPECT_EQ(report.uniqueCount, 1u);
}

TEST(Engine, MatrixAgreesWithDirectRunner)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.defenses = {{"baseline", nullptr}, fenceAxis()};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{2}).run(spec);

    const attacks::AttackResult bare =
        attacks::runVariant(AttackVariant::SpectreV1, CpuConfig{});
    CpuConfig fenced;
    fenced.defense.fenceSpeculativeLoads = true;
    const attacks::AttackResult defended =
        attacks::runVariant(AttackVariant::SpectreV1, fenced);

    EXPECT_EQ(report.outcomes[0].result.leaked, bare.leaked);
    EXPECT_EQ(report.outcomes[1].result.leaked, defended.leaked);
    EXPECT_EQ(report.cellGlyph(0, 0), bare.leaked ? 'L' : '.');
    EXPECT_EQ(report.cellGlyph(0, 1), defended.leaked ? 'L' : '.');
}

TEST(Engine, KnobSweepAggregatesPerCell)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.permCheckLatencies = {30, 60};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{2}).run(spec);
    ASSERT_EQ(report.cellRuns.size(), 1u);
    EXPECT_EQ(report.cellRuns[0][0], 2u);
    const unsigned leaks = report.cellLeaks[0][0];
    const char glyph = report.cellGlyph(0, 0);
    if (leaks == 2)
        EXPECT_EQ(glyph, 'L');
    else if (leaks == 0)
        EXPECT_EQ(glyph, '.');
    else
        EXPECT_EQ(glyph, 'p');
}

TEST(Spec, DefenseMatrixShape)
{
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    EXPECT_EQ(spec.variants.size(), core::allVariants().size() - 1);
    EXPECT_EQ(spec.defenses.size(), 8u);
    EXPECT_EQ(spec.gridSize(), spec.variants.size() * 8u);
    EXPECT_EQ(spec.defenses.front().label, "baseline");
}

TEST(Report, CsvAndJsonWellFormed)
{
    ScenarioSpec spec;
    spec.variants = {AttackVariant::SpectreV1};
    spec.defenses = {{"baseline", nullptr}, fenceAxis()};
    const CampaignReport report =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);

    const std::string csv = tool::campaignCsv(report);
    // Header + one line per grid cell.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("gridIndex,variant,defense"),
              std::string::npos);
    EXPECT_NE(csv.find("fence(1)"), std::string::npos);

    const std::string json = tool::campaignJson(report);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"outcomes\""), std::string::npos);
    EXPECT_NE(json.find("\"scenariosPerSecond\""),
              std::string::npos);
}

} // namespace
