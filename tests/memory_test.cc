/**
 * @file
 * Tests for physical memory and the paging / permission model,
 * including the fault-ordering property Foreshadow depends on
 * (terminal faults before privilege checks) and the fact that a
 * faulting translation still exposes the physical address bits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "uarch/memory.hh"

namespace
{

using namespace specsec::uarch;

TEST(Memory, ByteReadWrite)
{
    Memory m(4096);
    m.write8(10, 0xab);
    EXPECT_EQ(m.read8(10), 0xab);
    EXPECT_EQ(m.read8(11), 0);
}

TEST(Memory, Word64LittleEndian)
{
    Memory m(4096);
    m.write64(0, 0x1122334455667788ull);
    EXPECT_EQ(m.read8(0), 0x88);
    EXPECT_EQ(m.read8(7), 0x11);
    EXPECT_EQ(m.read64(0), 0x1122334455667788ull);
}

TEST(Memory, SizedAccessors)
{
    Memory m(4096);
    m.write(100, 0xdeadbeefcafef00dull, 8);
    EXPECT_EQ(m.read(100, 8), 0xdeadbeefcafef00dull);
    m.write(200, 0x1ff, 1); // truncated to a byte
    EXPECT_EQ(m.read(200, 1), 0xffu);
}

TEST(Memory, OutOfRangeThrows)
{
    Memory m(64);
    EXPECT_THROW(m.read8(64), std::out_of_range);
    EXPECT_THROW(m.write64(60, 1), std::out_of_range);
}

TEST(PageTable, IdentityMapRange)
{
    PageTable pt;
    pt.mapRange(0x10000, 0x3000, PageOwner::User, true, true);
    const Translation t =
        pt.translate(0x11234, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::None);
    EXPECT_TRUE(t.paddrValid);
    EXPECT_EQ(t.paddr, 0x11234u);
}

TEST(PageTable, UnmappedFaults)
{
    PageTable pt;
    const Translation t =
        pt.translate(0x5000, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::NotMapped);
    EXPECT_FALSE(t.paddrValid);
}

TEST(PageTable, UnmapRemovesMapping)
{
    PageTable pt;
    pt.mapRange(0x10000, 0x1000, PageOwner::Kernel, false, true);
    pt.unmap(0x10000);
    EXPECT_EQ(pt.translate(0x10000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::NotMapped);
}

TEST(PageTable, KernelPageBlocksUser)
{
    PageTable pt;
    pt.mapRange(0x20000, 0x1000, PageOwner::Kernel, false, true);
    EXPECT_EQ(pt.translate(0x20000, AccessType::Read,
                           Privilege::User)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x20000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, FaultingTranslationExposesPaddr)
{
    // Critical for the Meltdown/Foreshadow model: the physical
    // address bits are available even when the access faults.
    PageTable pt;
    pt.mapRange(0x20000, 0x1000, PageOwner::Kernel, false, true);
    const Translation t =
        pt.translate(0x20040, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::Privilege);
    EXPECT_TRUE(t.paddrValid);
    EXPECT_EQ(t.paddr, 0x20040u);
}

TEST(PageTable, NotPresentBeforePrivilege)
{
    // The terminal fault (not-present) aborts the walk before the
    // privilege check: this ordering is what Foreshadow exploits.
    PageTable pt;
    pt.mapRange(0x30000, 0x1000, PageOwner::Kernel, false, true);
    pt.setPresent(0x30000, false);
    const Translation t =
        pt.translate(0x30000, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::NotPresent);
    EXPECT_TRUE(t.paddrValid);
}

TEST(PageTable, ReservedBitFaults)
{
    PageTable pt;
    pt.mapRange(0x30000, 0x1000, PageOwner::User, true, true);
    pt.setReservedBit(0x30000, true);
    EXPECT_EQ(pt.translate(0x30000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::ReservedBit);
}

TEST(PageTable, WriteProtect)
{
    PageTable pt;
    pt.mapRange(0x40000, 0x1000, PageOwner::User, true,
                /*writable=*/false);
    EXPECT_EQ(pt.translate(0x40000, AccessType::Read,
                           Privilege::User)
                  .fault,
              FaultKind::None);
    EXPECT_EQ(pt.translate(0x40000, AccessType::Write,
                           Privilege::User)
                  .fault,
              FaultKind::WriteProtect);
}

TEST(PageTable, EnclavePagesRequireEnclaveMode)
{
    PageTable pt;
    pt.mapRange(0x50000, 0x1000, PageOwner::Enclave, false, true);
    EXPECT_EQ(pt.translate(0x50000, AccessType::Read,
                           Privilege::Kernel, false)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x50000, AccessType::Read,
                           Privilege::User, true)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, VmmPagesRequireVmmPrivilege)
{
    PageTable pt;
    pt.mapRange(0x60000, 0x1000, PageOwner::Vmm, false, true);
    EXPECT_EQ(pt.translate(0x60000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x60000, AccessType::Read,
                           Privilege::Vmm)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, SetPresentOnUnmappedThrows)
{
    PageTable pt;
    EXPECT_THROW(pt.setPresent(0x1000, false),
                 std::invalid_argument);
}

TEST(PageTable, FaultKindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::None), "none");
    EXPECT_STREQ(faultKindName(FaultKind::NotPresent),
                 "not-present");
    EXPECT_STREQ(faultKindName(FaultKind::Privilege), "privilege");
    EXPECT_STREQ(faultKindName(FaultKind::FpuNotOwned),
                 "fpu-not-owned");
}

TEST(PageTable, LookupReturnsPte)
{
    PageTable pt;
    pt.mapRange(0x70000, 0x1000, PageOwner::User, true, true);
    const Pte *pte = pt.lookup(0x70abc);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->physPage, 0x70000u / kPageSize);
    EXPECT_EQ(pt.lookup(0x90000), nullptr);
}

/**
 * Reference table with the pre-flat storage — a VPN-keyed hash map —
 * and translate() semantics the flat PageTable must reproduce
 * exactly.  The fuzz below drives both through the same random op
 * sequence, including VPNs past kDenseVpns (the overflow side map).
 */
struct ReferencePageTable
{
    std::unordered_map<Addr, Pte> pages;

    void map(Addr vaddr, Pte pte) { pages[vaddr / kPageSize] = pte; }
    void unmap(Addr vaddr) { pages.erase(vaddr / kPageSize); }

    void
    setPresent(Addr vaddr, bool present)
    {
        const auto it = pages.find(vaddr / kPageSize);
        if (it != pages.end())
            it->second.present = present;
    }

    void
    setReservedBit(Addr vaddr, bool reserved)
    {
        const auto it = pages.find(vaddr / kPageSize);
        if (it != pages.end())
            it->second.reservedBit = reserved;
    }

    Translation
    translate(Addr vaddr, AccessType type, Privilege privilege,
              bool enclave_mode) const
    {
        Translation t;
        const auto it = pages.find(vaddr / kPageSize);
        if (it == pages.end()) {
            t.fault = FaultKind::NotMapped;
            return t;
        }
        const Pte &pte = it->second;
        t.paddr = pte.physPage * kPageSize + (vaddr % kPageSize);
        t.paddrValid = true;
        if (!pte.present) {
            t.fault = FaultKind::NotPresent;
            return t;
        }
        if (pte.reservedBit) {
            t.fault = FaultKind::ReservedBit;
            return t;
        }
        switch (pte.owner) {
          case PageOwner::User:
            break;
          case PageOwner::Kernel:
            if (privilege == Privilege::User) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
          case PageOwner::Enclave:
            if (!enclave_mode) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
          case PageOwner::Vmm:
            if (privilege != Privilege::Vmm) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
        }
        const bool enclave_access =
            enclave_mode && pte.owner == PageOwner::Enclave;
        if (!pte.userAccessible && privilege == Privilege::User &&
            !enclave_access) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        if (type == AccessType::Write && !pte.writable) {
            t.fault = FaultKind::WriteProtect;
            return t;
        }
        return t;
    }
};

TEST(PageTable, TranslateParityFuzzAgainstMapReference)
{
    PageTable flat;
    ReferencePageTable reference;

    // Deterministic LCG; VPNs straddle the dense/overflow boundary.
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };
    const auto randomVpn = [&next] {
        const std::uint64_t r = next();
        // Mostly dense VPNs, ~1/8 in the overflow region.
        return (r % 8 == 0)
                   ? PageTable::kDenseVpns + (r % 512)
                   : r % 1024;
    };

    std::vector<Addr> touched;
    for (int op = 0; op < 4000; ++op) {
        const Addr vaddr = randomVpn() * kPageSize + (next() % kPageSize);
        touched.push_back(vaddr);
        switch (next() % 5) {
          case 0: {
            Pte pte;
            pte.physPage = next() % (1u << 20);
            pte.present = next() % 4 != 0;
            pte.writable = next() % 2 == 0;
            pte.userAccessible = next() % 3 != 0;
            pte.reservedBit = next() % 8 == 0;
            pte.owner = static_cast<PageOwner>(next() % 4);
            flat.map(vaddr, pte);
            reference.map(vaddr, pte);
            break;
          }
          case 1:
            flat.unmap(vaddr);
            reference.unmap(vaddr);
            break;
          case 2: {
            // setPresent throws on unmapped pages by contract.
            if (flat.lookup(vaddr) == nullptr)
                break;
            const bool present = next() % 2 == 0;
            flat.setPresent(vaddr, present);
            reference.setPresent(vaddr, present);
            break;
          }
          case 3: {
            if (flat.lookup(vaddr) == nullptr)
                break;
            const bool reserved = next() % 2 == 0;
            flat.setReservedBit(vaddr, reserved);
            reference.setReservedBit(vaddr, reserved);
            break;
          }
          case 4: {
            const Addr base = (vaddr / kPageSize) * kPageSize;
            const Addr length = (1 + next() % 8) * kPageSize;
            const auto owner = static_cast<PageOwner>(next() % 4);
            const bool user = next() % 2 == 0;
            const bool writable = next() % 2 == 0;
            flat.mapRange(base, length, owner, user, writable);
            for (Addr va = base; va < base + length;
                 va += kPageSize) {
                Pte pte;
                pte.physPage = va / kPageSize;
                pte.owner = owner;
                pte.userAccessible = user;
                pte.writable = writable;
                reference.map(va, pte);
                touched.push_back(va);
            }
            break;
          }
        }
    }

    // Every touched page (plus a never-touched one) must translate
    // identically for every access type / privilege / enclave-mode
    // combination, faults included.
    touched.push_back(0x3f000000);
    for (const Addr vaddr : touched) {
        for (const auto type : {AccessType::Read, AccessType::Write,
                                AccessType::Execute}) {
            for (const auto priv :
                 {Privilege::User, Privilege::Kernel,
                  Privilege::Vmm}) {
                for (const bool enclave : {false, true}) {
                    const Translation a =
                        flat.translate(vaddr, type, priv, enclave);
                    const Translation b = reference.translate(
                        vaddr, type, priv, enclave);
                    ASSERT_EQ(a.fault, b.fault)
                        << "vaddr=" << vaddr;
                    ASSERT_EQ(a.paddrValid, b.paddrValid)
                        << "vaddr=" << vaddr;
                    ASSERT_EQ(a.paddr, b.paddr)
                        << "vaddr=" << vaddr;
                }
            }
        }
    }
}

} // namespace
