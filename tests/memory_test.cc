/**
 * @file
 * Tests for physical memory and the paging / permission model,
 * including the fault-ordering property Foreshadow depends on
 * (terminal faults before privilege checks) and the fact that a
 * faulting translation still exposes the physical address bits.
 */

#include <gtest/gtest.h>

#include "uarch/memory.hh"

namespace
{

using namespace specsec::uarch;

TEST(Memory, ByteReadWrite)
{
    Memory m(4096);
    m.write8(10, 0xab);
    EXPECT_EQ(m.read8(10), 0xab);
    EXPECT_EQ(m.read8(11), 0);
}

TEST(Memory, Word64LittleEndian)
{
    Memory m(4096);
    m.write64(0, 0x1122334455667788ull);
    EXPECT_EQ(m.read8(0), 0x88);
    EXPECT_EQ(m.read8(7), 0x11);
    EXPECT_EQ(m.read64(0), 0x1122334455667788ull);
}

TEST(Memory, SizedAccessors)
{
    Memory m(4096);
    m.write(100, 0xdeadbeefcafef00dull, 8);
    EXPECT_EQ(m.read(100, 8), 0xdeadbeefcafef00dull);
    m.write(200, 0x1ff, 1); // truncated to a byte
    EXPECT_EQ(m.read(200, 1), 0xffu);
}

TEST(Memory, OutOfRangeThrows)
{
    Memory m(64);
    EXPECT_THROW(m.read8(64), std::out_of_range);
    EXPECT_THROW(m.write64(60, 1), std::out_of_range);
}

TEST(PageTable, IdentityMapRange)
{
    PageTable pt;
    pt.mapRange(0x10000, 0x3000, PageOwner::User, true, true);
    const Translation t =
        pt.translate(0x11234, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::None);
    EXPECT_TRUE(t.paddrValid);
    EXPECT_EQ(t.paddr, 0x11234u);
}

TEST(PageTable, UnmappedFaults)
{
    PageTable pt;
    const Translation t =
        pt.translate(0x5000, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::NotMapped);
    EXPECT_FALSE(t.paddrValid);
}

TEST(PageTable, UnmapRemovesMapping)
{
    PageTable pt;
    pt.mapRange(0x10000, 0x1000, PageOwner::Kernel, false, true);
    pt.unmap(0x10000);
    EXPECT_EQ(pt.translate(0x10000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::NotMapped);
}

TEST(PageTable, KernelPageBlocksUser)
{
    PageTable pt;
    pt.mapRange(0x20000, 0x1000, PageOwner::Kernel, false, true);
    EXPECT_EQ(pt.translate(0x20000, AccessType::Read,
                           Privilege::User)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x20000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, FaultingTranslationExposesPaddr)
{
    // Critical for the Meltdown/Foreshadow model: the physical
    // address bits are available even when the access faults.
    PageTable pt;
    pt.mapRange(0x20000, 0x1000, PageOwner::Kernel, false, true);
    const Translation t =
        pt.translate(0x20040, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::Privilege);
    EXPECT_TRUE(t.paddrValid);
    EXPECT_EQ(t.paddr, 0x20040u);
}

TEST(PageTable, NotPresentBeforePrivilege)
{
    // The terminal fault (not-present) aborts the walk before the
    // privilege check: this ordering is what Foreshadow exploits.
    PageTable pt;
    pt.mapRange(0x30000, 0x1000, PageOwner::Kernel, false, true);
    pt.setPresent(0x30000, false);
    const Translation t =
        pt.translate(0x30000, AccessType::Read, Privilege::User);
    EXPECT_EQ(t.fault, FaultKind::NotPresent);
    EXPECT_TRUE(t.paddrValid);
}

TEST(PageTable, ReservedBitFaults)
{
    PageTable pt;
    pt.mapRange(0x30000, 0x1000, PageOwner::User, true, true);
    pt.setReservedBit(0x30000, true);
    EXPECT_EQ(pt.translate(0x30000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::ReservedBit);
}

TEST(PageTable, WriteProtect)
{
    PageTable pt;
    pt.mapRange(0x40000, 0x1000, PageOwner::User, true,
                /*writable=*/false);
    EXPECT_EQ(pt.translate(0x40000, AccessType::Read,
                           Privilege::User)
                  .fault,
              FaultKind::None);
    EXPECT_EQ(pt.translate(0x40000, AccessType::Write,
                           Privilege::User)
                  .fault,
              FaultKind::WriteProtect);
}

TEST(PageTable, EnclavePagesRequireEnclaveMode)
{
    PageTable pt;
    pt.mapRange(0x50000, 0x1000, PageOwner::Enclave, false, true);
    EXPECT_EQ(pt.translate(0x50000, AccessType::Read,
                           Privilege::Kernel, false)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x50000, AccessType::Read,
                           Privilege::User, true)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, VmmPagesRequireVmmPrivilege)
{
    PageTable pt;
    pt.mapRange(0x60000, 0x1000, PageOwner::Vmm, false, true);
    EXPECT_EQ(pt.translate(0x60000, AccessType::Read,
                           Privilege::Kernel)
                  .fault,
              FaultKind::Privilege);
    EXPECT_EQ(pt.translate(0x60000, AccessType::Read,
                           Privilege::Vmm)
                  .fault,
              FaultKind::None);
}

TEST(PageTable, SetPresentOnUnmappedThrows)
{
    PageTable pt;
    EXPECT_THROW(pt.setPresent(0x1000, false),
                 std::invalid_argument);
}

TEST(PageTable, FaultKindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::None), "none");
    EXPECT_STREQ(faultKindName(FaultKind::NotPresent),
                 "not-present");
    EXPECT_STREQ(faultKindName(FaultKind::Privilege), "privilege");
    EXPECT_STREQ(faultKindName(FaultKind::FpuNotOwned),
                 "fpu-not-owned");
}

TEST(PageTable, LookupReturnsPte)
{
    PageTable pt;
    pt.mapRange(0x70000, 0x1000, PageOwner::User, true, true);
    const Pte *pte = pt.lookup(0x70abc);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->physPage, 0x70000u / kPageSize);
    EXPECT_EQ(pt.lookup(0x90000), nullptr);
}

} // namespace
