/**
 * @file
 * Unit tests for the sequential reference model (the differential
 * oracle must itself be correct).
 */

#include <gtest/gtest.h>

#include "uarch/reference.hh"

namespace
{

using namespace specsec::uarch;

struct RefFixture : ::testing::Test
{
    RefFixture() : mem(1 << 20)
    {
        pt.mapRange(0, 1 << 20, PageOwner::User, true, true);
    }

    ReferenceCpu
    makeRef()
    {
        return ReferenceCpu(mem, pt);
    }

    Memory mem;
    PageTable pt;
};

TEST_F(RefFixture, AluSemantics)
{
    Program p;
    p.emit(movImm(1, 10));
    p.emit(movImm(2, 3));
    p.emit(sub(3, 1, 2));
    p.emit(mulImm(4, 3, 6));
    p.emit(shlImm(5, 4, 2));
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(ref.reg(3), 7u);
    EXPECT_EQ(ref.reg(4), 42u);
    EXPECT_EQ(ref.reg(5), 168u);
    EXPECT_EQ(r.executed, 6u);
}

TEST_F(RefFixture, MemoryAndBranches)
{
    Program p;
    p.emit(movImm(1, 0x8000));
    p.emit(movImm(2, 0x1234));
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    auto skip = p.newLabel();
    p.emitBranch(Cond::Eq, 3, 2, skip);
    p.emit(movImm(4, 99)); // skipped
    p.bind(skip);
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    ref.run(0);
    EXPECT_EQ(ref.reg(3), 0x1234u);
    EXPECT_EQ(ref.reg(4), 0u);
    EXPECT_EQ(mem.read64(0x8000), 0x1234u);
}

TEST_F(RefFixture, CallsAndReturns)
{
    Program p;
    auto fn = p.newLabel();
    p.emitCall(fn);
    p.emit(addImm(1, 1, 1));
    p.emit(halt());
    p.bind(fn);
    p.emit(movImm(1, 10));
    p.emit(ret());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(ref.reg(1), 11u);
}

TEST_F(RefFixture, FaultWithoutHandlerStops)
{
    pt.mapRange(0x80000, kPageSize, PageOwner::Kernel, false, true);
    Program p;
    p.emit(movImm(1, 0x80000));
    p.emit(load8(2, 1, 0));
    p.emit(movImm(3, 5));
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault, FaultKind::Privilege);
    EXPECT_EQ(r.faultPc, 1u);
    EXPECT_EQ(ref.reg(3), 0u); // never reached
}

TEST_F(RefFixture, FaultHandlerRedirects)
{
    pt.mapRange(0x80000, kPageSize, PageOwner::Kernel, false, true);
    Program p;
    p.emit(movImm(1, 0x80000));
    p.emit(load8(2, 1, 0)); // faults
    p.emit(halt());         // skipped
    p.emit(movImm(4, 7));   // 3: handler
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    ref.setFaultHandler(3);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(ref.reg(4), 7u);
}

TEST_F(RefFixture, NoTransientEffects)
{
    // The reference model is the paper's "correct" machine: a
    // faulting load has NO side effects at all.
    pt.mapRange(0x80000, kPageSize, PageOwner::Kernel, false, true);
    mem.write8(0x80000, 0x5a);
    Program p;
    p.emit(movImm(1, 0x80000));
    p.emit(load8(2, 1, 0));
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    ref.run(0);
    EXPECT_EQ(ref.reg(2), 0u); // nothing forwarded, ever
}

TEST_F(RefFixture, FencesAndClflushAreArchNoOps)
{
    Program p;
    p.emit(movImm(1, 1));
    p.emit(lfence());
    p.emit(mfence());
    p.emit(clflush(1, 0));
    p.emit(addImm(1, 1, 1));
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(ref.reg(1), 2u);
}

TEST_F(RefFixture, StepBudgetRespected)
{
    Program p;
    p.emit(jmp(0));
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    const ReferenceResult r = ref.run(0, 100);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.executed, 100u);
}

TEST_F(RefFixture, MsrPrivilegeEnforced)
{
    Program p;
    p.emit(rdmsr(1, 5));
    p.emit(halt());
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    ref.setMsr(5, 0x77);
    ref.setPrivilege(Privilege::Kernel);
    EXPECT_TRUE(ref.run(0).halted);
    EXPECT_EQ(ref.reg(1), 0x77u);
    ref.setPrivilege(Privilege::User);
    ref.setReg(1, 0);
    EXPECT_TRUE(ref.run(0).faulted);
    EXPECT_EQ(ref.reg(1), 0u);
}

TEST_F(RefFixture, RunningOffTheEndHalts)
{
    Program p;
    p.emit(movImm(1, 1));
    ReferenceCpu ref = makeRef();
    ref.loadProgram(p);
    EXPECT_TRUE(ref.run(0).halted);
}

} // namespace
