/**
 * @file
 * Tests for the OutcomeSchema field registry (src/tool/schema.hh):
 *
 *  - Byte-identity: every serialization surface the schema now
 *    drives (outcome JSON, CSV header/rows, campaignJson /
 *    campaignCsv / campaignJsonl, the shard wire format, the
 *    result/stats wire fragments, cache files, golden matrices)
 *    is pinned against literals captured from the pre-schema
 *    hand-rolled formatters.  If one of these tests fails, a
 *    format changed — that is a compatibility break, not a test to
 *    update casually.
 *  - Round-trip fuzz: schemaParse(schemaEmit(outcome)) == outcome
 *    across all field types, through the set hooks (including the
 *    mitigations/vulns/cache summary inverses).
 *  - parseScenarioKey round-trips for catalog-extension
 *    (synthetic-slot) attacks.
 *  - The shard wire format's schema tag: mismatched producers are
 *    rejected before CampaignReport::merge can misparse them;
 *    legacy tagless files still load.
 *  - One escaping path: attackDescriptorJson and the schema JSON
 *    emitters route every string through tool::jsonEscape
 *    (regression: quotes/backslashes/control chars in attack alias
 *    names).
 *  - Committed goldens under golden/ parse + re-emit
 *    byte-identically (the same invariant the CI schema-drift job
 *    checks end-to-end via --record).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "core/catalog.hh"
#include "lint/lint.hh"
#include "regress/golden.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"
#include "tool/schema.hh"
#include "tool/stream_export.hh"
#include "verdict/differential.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using namespace specsec::tool;

/** The deterministic outcome the pre-refactor fixtures captured. */
ScenarioOutcome
fixtureOutcome(std::size_t gridIndex, std::size_t col, bool leaked)
{
    ScenarioOutcome o;
    o.variant = core::AttackVariant::SpectreV1;
    o.row = 0;
    o.col = col;
    o.gridIndex = gridIndex;
    o.rowLabel = "Spectre v1";
    o.colLabel = col ? "fence, \"quoted\"" : "baseline";
    o.config = CpuConfig{};
    o.options = AttackOptions{};
    if (col) {
        o.config.defense.fenceSpeculativeLoads = true;
        o.options.kpti = true;
        o.options.softwareLfence = true;
        o.config.vuln.mds = false;
        o.config.cache.sets = 64;
        o.config.cache.missLatency = 100;
    }
    o.result.name = "Spectre v1";
    o.result.recovered = {83, 69, 67, -1};
    o.result.expected = {83, 69, 67, 82};
    o.result.accuracy = leaked ? 1.0 : 0.75;
    o.result.leaked = leaked;
    o.result.guestCycles = 12345;
    o.result.transientForwards = 7;
    o.stats.cycles = 45678;
    o.stats.committed = 1200;
    o.stats.squashed = 88;
    o.stats.branchMispredicts = 17;
    o.stats.exceptions = 3;
    o.stats.memOrderViolations = 2;
    o.stats.speculativeFills = 99;
    o.stats.transientForwards = 7;
    o.wallMillis = 1.25;
    return o;
}

CampaignReport
fixtureReport()
{
    CampaignReport r;
    r.name = "fixture \"campaign\"";
    r.rowLabels = {"Spectre v1"};
    r.colLabels = {"baseline", "fence, \"quoted\""};
    r.outcomes.push_back(fixtureOutcome(0, 0, true));
    r.outcomes.push_back(fixtureOutcome(1, 1, false));
    r.expandedCount = 2;
    r.uniqueCount = 2;
    r.executedCount = 2;
    r.cacheHits = 0;
    r.shardIndex = 0;
    r.shardCount = 1;
    r.workers = 1;
    r.wallMillis = 3.5;
    r.scenariosPerSecond = 571.428571;
    r.recomputeCells();
    return r;
}

// -------------------------------------------------------------------
// Byte-identity against the pre-refactor formatters.
// -------------------------------------------------------------------

constexpr const char *kOutcomeJsonFixture =
    R"fx({"gridIndex": 0, "variant": "Spectre v1", "defense": "baseline", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "-", "vulns": "all", "cache": "256x4/64@4:200", "leaked": true, "accuracy": 1.0000, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3})fx";

constexpr const char *kOutcomeJsonTimingFixture =
    R"fx({"gridIndex": 1, "variant": "Spectre v1", "defense": "fence, \"quoted\"", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "kpti+lfence", "vulns": "no-mds", "cache": "64x4/64@4:100", "leaked": false, "accuracy": 0.7500, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3, "wallMillis": 1.2500})fx";

TEST(SchemaBytes, OutcomeJsonIsPreRefactorIdentical)
{
    const CampaignReport r = fixtureReport();
    EXPECT_EQ(outcomeJson(r.outcomes[0], false),
              kOutcomeJsonFixture);
    EXPECT_EQ(outcomeJson(r.outcomes[1], true),
              kOutcomeJsonTimingFixture);
}

TEST(SchemaBytes, CsvHeaderAndRowsArePreRefactorIdentical)
{
    const CampaignReport r = fixtureReport();
    EXPECT_EQ(campaignCsvHeader(false),
              "gridIndex,variant,defense,robSize,permCheckLatency,"
              "channel,mitigations,vulns,cache,leaked,accuracy,"
              "guestCycles,transientForwards,cycles,committed,"
              "squashed,branchMispredicts,exceptions\n");
    EXPECT_EQ(campaignCsvHeader(true),
              "gridIndex,variant,defense,robSize,permCheckLatency,"
              "channel,mitigations,vulns,cache,leaked,accuracy,"
              "guestCycles,transientForwards,cycles,committed,"
              "squashed,branchMispredicts,exceptions,wallMillis\n");
    EXPECT_EQ(
        campaignCsvRow(r.outcomes[1], false),
        "1,Spectre v1,\"fence, \"\"quoted\"\"\",48,30,"
        "flush-reload,kpti+lfence,no-mds,64x4/64@4:100,0,0.7500,"
        "12345,7,45678,1200,88,17,3\n");
}

constexpr const char *kCampaignJsonFixture = R"fx({
  "name": "fixture \"campaign\"",
  "expandedCount": 2,
  "uniqueCount": 2,
  "rows": ["Spectre v1"],
  "cols": ["baseline", "fence, \"quoted\""],
  "matrix": [
    {"variant": "Spectre v1", "cells": [{"runs": 1, "leaks": 1}, {"runs": 1, "leaks": 0}]}
  ],
  "outcomes": [
    {"gridIndex": 0, "variant": "Spectre v1", "defense": "baseline", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "-", "vulns": "all", "cache": "256x4/64@4:200", "leaked": true, "accuracy": 1.0000, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3},
    {"gridIndex": 1, "variant": "Spectre v1", "defense": "fence, \"quoted\"", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "kpti+lfence", "vulns": "no-mds", "cache": "64x4/64@4:100", "leaked": false, "accuracy": 0.7500, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3}
  ]
}
)fx";

TEST(SchemaBytes, CampaignJsonIsPreRefactorIdentical)
{
    EXPECT_EQ(campaignJson(fixtureReport(), false),
              kCampaignJsonFixture);
}

constexpr const char *kCampaignCsvFixture =
    "gridIndex,variant,defense,robSize,permCheckLatency,channel,"
    "mitigations,vulns,cache,leaked,accuracy,guestCycles,"
    "transientForwards,cycles,committed,squashed,branchMispredicts,"
    "exceptions\n"
    "0,Spectre v1,baseline,48,30,flush-reload,-,all,"
    "256x4/64@4:200,1,1.0000,12345,7,45678,1200,88,17,3\n"
    "1,Spectre v1,\"fence, \"\"quoted\"\"\",48,30,flush-reload,"
    "kpti+lfence,no-mds,64x4/64@4:100,0,0.7500,12345,7,45678,1200,"
    "88,17,3\n";

TEST(SchemaBytes, CampaignCsvIsPreRefactorIdentical)
{
    EXPECT_EQ(campaignCsv(fixtureReport(), false),
              kCampaignCsvFixture);
}

constexpr const char *kCampaignJsonlFixture =
    R"fx({"type": "header", "name": "fixture \"campaign\"", "expandedCount": 2, "uniqueCount": 2, "shardIndex": 0, "shardCount": 1, "rows": ["Spectre v1"], "cols": ["baseline", "fence, \"quoted\""]}
{"type": "outcome", "record": {"gridIndex": 0, "variant": "Spectre v1", "defense": "baseline", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "-", "vulns": "all", "cache": "256x4/64@4:200", "leaked": true, "accuracy": 1.0000, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3}}
{"type": "outcome", "record": {"gridIndex": 1, "variant": "Spectre v1", "defense": "fence, \"quoted\"", "robSize": 48, "permCheckLatency": 30, "channel": "flush-reload", "mitigations": "kpti+lfence", "vulns": "no-mds", "cache": "64x4/64@4:100", "leaked": false, "accuracy": 0.7500, "guestCycles": 12345, "transientForwards": 7, "cycles": 45678, "committed": 1200, "squashed": 88, "branchMispredicts": 17, "exceptions": 3}}
)fx";

TEST(SchemaBytes, CampaignJsonlIsPreRefactorIdentical)
{
    EXPECT_EQ(campaignJsonl(fixtureReport(), false),
              kCampaignJsonlFixture);
}

constexpr const char *kAttackResultJsonFixture =
    R"fx({"name": "Spectre v1", "recovered": [83, 69, 67, -1], "expected": [83, 69, 67, 82], "accuracy": 1, "leaked": true, "guestCycles": 12345, "transientForwards": 7})fx";

TEST(SchemaBytes, ResultAndStatsFragmentsArePreRefactorIdentical)
{
    const CampaignReport r = fixtureReport();
    EXPECT_EQ(attackResultJson(r.outcomes[0].result),
              kAttackResultJsonFixture);
    EXPECT_EQ(cpuStatsJson(r.outcomes[0].stats),
              "[45678, 1200, 88, 17, 3, 2, 99, 7]");
}

// The shard wire format changed in exactly two deliberate ways: it
// gained the "schema" tag line (so mismatched producers are
// rejected) and the verdict-backend counters (all zero under the
// plain simulator backend).  Everything else is byte-identical to
// the pre-refactor writer.
constexpr const char *kShardReportPrefix = "{\n\"version\": 1,\n";
constexpr const char *kShardReportBodyFixture =
    R"fx("name": "fixture \"campaign\"",
"rows": ["Spectre v1"],
"cols": ["baseline", "fence, \"quoted\""],
"expandedCount": 2,
"uniqueCount": 2,
"shardIndex": 0,
"shardCount": 1,
"executedCount": 2,
"cacheHits": 0,
"modelDecided": 0,
"modelUndecided": 0,
"disagreements": 0,
"replicatedCells": 0,
"workers": 1,
"wallMillis": 3.5,
"outcomes": [
{"gridIndex": 0, "row": 0, "col": 0, "rowLabel": "Spectre v1", "colLabel": "baseline", "key": "0;48;2;4;30;2;2;16;30;12;60;16;10;256;4;64;4;200;1;1;1;1;1;1;1;0;0;0;0;0;0;0;0;0;0;0;0;0;0;8;0;0;0;0;0;8;1;", "result": {"name": "Spectre v1", "recovered": [83, 69, 67, -1], "expected": [83, 69, 67, 82], "accuracy": 1, "leaked": true, "guestCycles": 12345, "transientForwards": 7}, "stats": [45678, 1200, 88, 17, 3, 2, 99, 7], "wallMillis": 1.25},
{"gridIndex": 1, "row": 0, "col": 1, "rowLabel": "Spectre v1", "colLabel": "fence, \"quoted\"", "key": "0;48;2;4;30;2;2;16;30;12;60;16;10;64;4;64;4;100;1;1;0;1;1;1;1;1;0;0;0;0;0;0;0;0;0;0;0;0;0;8;0;1;0;1;0;8;1;", "result": {"name": "Spectre v1", "recovered": [83, 69, 67, -1], "expected": [83, 69, 67, 82], "accuracy": 0.75, "leaked": false, "guestCycles": 12345, "transientForwards": 7}, "stats": [45678, 1200, 88, 17, 3, 2, 99, 7], "wallMillis": 1.25}
]
}
)fx";

std::string
schemaTagLine()
{
    std::string line = "\"schema\": \"";
    line += jsonEscape(wireSchemaTag());
    line += "\",\n";
    return line;
}

std::string
expectedShardReport()
{
    std::string out = kShardReportPrefix;
    out += schemaTagLine();
    out += kShardReportBodyFixture;
    return out;
}

TEST(SchemaBytes, ShardReportGainsOnlyTheSchemaTagLine)
{
    EXPECT_EQ(shardReportJson(fixtureReport()),
              expectedShardReport());
}

constexpr const char *kCacheFileFixture = R"fx({
"version": 1,
"fingerprint": "fp\"v1\"",
"entries": [
{"key": "a0;1;", "result": {"name": "Spectre v1", "recovered": [83, 69, 67, -1], "expected": [83, 69, 67, 82], "accuracy": 0.75, "leaked": false, "guestCycles": 12345, "transientForwards": 7}, "stats": [45678, 1200, 88, 17, 3, 2, 99, 7]},
{"key": "k1;2;3;", "result": {"name": "Spectre v1", "recovered": [83, 69, 67, -1], "expected": [83, 69, 67, 82], "accuracy": 1, "leaked": true, "guestCycles": 12345, "transientForwards": 7}, "stats": [45678, 1200, 88, 17, 3, 2, 99, 7]}
]
}
)fx";

TEST(SchemaBytes, CacheFileIsPreRefactorIdentical)
{
    const CampaignReport r = fixtureReport();
    ResultCache cache;
    cache.store("k1;2;3;",
                {r.outcomes[0].result, r.outcomes[0].stats});
    cache.store("a0;1;",
                {r.outcomes[1].result, r.outcomes[1].stats});
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "schema-test-cache.json")
            .string();
    ASSERT_TRUE(cache.saveToFile(path, "fp\"v1\""));
    std::string text;
    ASSERT_TRUE(readTextFile(path, text));
    std::filesystem::remove(path);
    EXPECT_EQ(text, kCacheFileFixture);
}

constexpr const char *kGoldenJsonFixture = R"fx({
  "spec": "fixture \"campaign\"",
  "cols": ["baseline", "fence, \"quoted\""],
  "rows": ["Spectre v1"],
  "cells": [
    [{"runs": 1, "leaks": 1, "pattern": "1"}, {"runs": 1, "leaks": 0, "pattern": "0"}]
  ]
}
)fx";

TEST(SchemaBytes, LegacyGoldenJsonIsPreRefactorIdentical)
{
    EXPECT_EQ(regress::goldenJson(
                  regress::GoldenMatrix::fromReport(fixtureReport())),
              kGoldenJsonFixture);
}

TEST(SchemaBytes, CommittedGoldensRoundTripByteIdentically)
{
    // Every golden under golden/ — legacy and accuracy-bearing —
    // must parse and re-emit to its exact committed bytes; this is
    // the in-process version of the CI schema-drift job.
    std::size_t checked = 0;
    std::size_t with_accuracy = 0;
    std::size_t pin_files = 0;
    std::size_t pinned_divergences = 0;
    std::size_t lint_files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(SPECSEC_GOLDEN_DIR)) {
        if (entry.path().extension() != ".json")
            continue;
        std::string text;
        ASSERT_TRUE(readTextFile(entry.path().string(), text))
            << entry.path();
        std::string error;
        const std::string stem = entry.path().filename().string();
        if (stem.rfind("lint-", 0) == 0) {
            // Lint pins round-trip through the lint serializer.
            const auto report = lint::parseLintReportJson(text, &error);
            ASSERT_TRUE(report) << entry.path() << ": " << error;
            EXPECT_EQ(lint::lintReportJson(*report), text)
                << entry.path();
            ++lint_files;
            continue;
        }
        if (stem.rfind("differential-", 0) == 0) {
            // Disagreement pins round-trip through their own
            // serializer with the same byte-identity contract.
            const auto pins =
                verdict::parseDisagreementJson(text, &error);
            ASSERT_TRUE(pins) << entry.path() << ": " << error;
            EXPECT_EQ(verdict::disagreementJson(*pins), text)
                << entry.path();
            ++pin_files;
            pinned_divergences += pins->disagreements.size();
            continue;
        }
        const auto golden = regress::parseGoldenJson(text, &error);
        ASSERT_TRUE(golden) << entry.path() << ": " << error;
        EXPECT_EQ(regress::goldenJson(*golden), text)
            << entry.path();
        ++checked;
        if (golden->hasAccuracy) {
            ++with_accuracy;
            EXPECT_GT(golden->absEps, 0.0) << entry.path();
        }
    }
    EXPECT_GE(checked, 10u);
    // The accuracy-golden migration landed: at least one committed
    // golden pins accuracy values under a nonzero tolerance.
    EXPECT_GE(with_accuracy, 1u);
    // The differential-backend migration landed: every matrix
    // golden has a model pin file AND a static pin file, and at
    // least one known model-vs-simulator divergence is documented.
    EXPECT_EQ(pin_files, 2 * checked);
    EXPECT_GE(pinned_divergences, 1u);
    // The lint migration landed: one lint pin per catalog attack
    // with a static program.
    std::size_t static_attacks = 0;
    for (const auto &a : core::ScenarioCatalog::instance().attacks())
        if (a->staticProgram)
            ++static_attacks;
    EXPECT_EQ(lint_files, static_attacks);
    EXPECT_GE(lint_files, 19u);
}

// -------------------------------------------------------------------
// Round-trip fuzz: schemaParse(schemaEmit(outcome)) == outcome.
// -------------------------------------------------------------------

std::string
randomLabel(std::mt19937 &rng)
{
    static const char alphabet[] =
        "abcXYZ \"\\\n\t,;{}[]\x01\x1f";
    std::uniform_int_distribution<std::size_t> len(0, 24);
    std::uniform_int_distribution<std::size_t> pick(
        0, sizeof(alphabet) - 2);
    std::string out;
    for (std::size_t i = len(rng); i > 0; --i)
        out += alphabet[pick(rng)];
    return out;
}

ScenarioOutcome
randomOutcome(std::mt19937 &rng)
{
    std::uniform_int_distribution<std::uint64_t> u64(0, 1u << 30);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> tenthousandths(0, 10000);
    ScenarioOutcome o;
    o.gridIndex = u64(rng);
    o.rowLabel = randomLabel(rng);
    o.colLabel = randomLabel(rng);
    o.config.robSize = 1 + u64(rng) % 512;
    o.config.permCheckLatency =
        static_cast<unsigned>(u64(rng) % 100);
    o.options.channel = coin(rng)
                            ? core::CovertChannelKind::PrimeProbe
                            : core::CovertChannelKind::FlushReload;
    o.options.kpti = coin(rng);
    o.options.rsbStuffing = coin(rng);
    o.options.softwareLfence = coin(rng);
    o.options.addressMasking = coin(rng);
    o.options.flushL1OnExit = coin(rng);
    o.config.vuln.meltdown = coin(rng);
    o.config.vuln.l1tf = coin(rng);
    o.config.vuln.mds = coin(rng);
    o.config.vuln.lazyFp = coin(rng);
    o.config.vuln.storeBypass = coin(rng);
    o.config.vuln.msr = coin(rng);
    o.config.vuln.taa = coin(rng);
    o.config.cache.sets = 1 + u64(rng) % 4096;
    o.config.cache.ways = 1 + u64(rng) % 16;
    o.config.cache.lineSize = 16 << (u64(rng) % 4);
    o.config.cache.hitLatency =
        static_cast<std::uint32_t>(1 + u64(rng) % 20);
    o.config.cache.missLatency =
        static_cast<std::uint32_t>(20 + u64(rng) % 400);
    o.result.leaked = coin(rng);
    // The export renders doubles as %.4f: any multiple of 1/10000
    // survives emit -> parse exactly, so equality below is exact.
    o.result.accuracy = tenthousandths(rng) / 10000.0;
    o.result.guestCycles = u64(rng);
    o.result.transientForwards = u64(rng);
    o.stats.cycles = u64(rng);
    o.stats.committed = u64(rng);
    o.stats.squashed = u64(rng);
    o.stats.branchMispredicts = u64(rng);
    o.stats.exceptions = u64(rng);
    o.wallMillis = tenthousandths(rng) / 10000.0;
    return o;
}

TEST(SchemaRoundTrip, FuzzedOutcomesSurviveEmitParseExactly)
{
    std::mt19937 rng(20260728);
    for (int iter = 0; iter < 300; ++iter) {
        const ScenarioOutcome original = randomOutcome(rng);
        const std::string emitted = outcomeJson(original, true);

        json::Cursor cur(emitted);
        ScenarioOutcome parsed;
        ASSERT_TRUE(outcomeSchema().parseJsonObject(cur, parsed))
            << cur.error() << "\nin: " << emitted;
        ASSERT_TRUE(cur.atEnd());

        // Field-for-field equality through the registry: every
        // declared getter sees the same value on both sides...
        for (const auto &field : outcomeSchema().fields())
            EXPECT_EQ(field.get(original), field.get(parsed))
                << field.name << "\nin: " << emitted;
        // ...and the set hooks really hit the backing structs (the
        // summary parsers invert their formatters).
        EXPECT_EQ(parsed.rowLabel, original.rowLabel);
        EXPECT_EQ(parsed.options.kpti, original.options.kpti);
        EXPECT_EQ(parsed.options.channel, original.options.channel);
        EXPECT_EQ(parsed.config.vuln.mds, original.config.vuln.mds);
        EXPECT_EQ(parsed.config.cache.sets,
                  original.config.cache.sets);
        EXPECT_EQ(parsed.config.cache.missLatency,
                  original.config.cache.missLatency);
        EXPECT_EQ(parsed.result.accuracy, original.result.accuracy);
        EXPECT_EQ(parsed.wallMillis, original.wallMillis);

        // Emit -> parse -> emit is a fixed point.
        EXPECT_EQ(outcomeJson(parsed, true), emitted);
    }
}

TEST(SchemaRoundTrip, FuzzedResultAndStatsFragmentsAreExact)
{
    std::mt19937 rng(987654321);
    std::uniform_int_distribution<std::uint64_t> u64(
        0, std::numeric_limits<std::uint64_t>::max() / 2);
    std::uniform_real_distribution<double> real(0.0, 1.0);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int iter = 0; iter < 300; ++iter) {
        attacks::AttackResult r;
        r.name = randomLabel(rng);
        for (int i = byte(rng) % 16; i > 0; --i) {
            r.recovered.push_back(byte(rng) - 1); // may be -1
            r.expected.push_back(
                static_cast<std::uint8_t>(byte(rng)));
        }
        r.accuracy = real(rng); // %.17g: exact for any double
        r.leaked = byte(rng) & 1;
        r.guestCycles = u64(rng);
        r.transientForwards = u64(rng);

        const std::string emitted = attackResultJson(r);
        json::Cursor cur(emitted);
        attacks::AttackResult parsed;
        ASSERT_TRUE(parseAttackResultJson(cur, parsed))
            << cur.error();
        EXPECT_EQ(parsed.name, r.name);
        EXPECT_EQ(parsed.recovered, r.recovered);
        EXPECT_EQ(parsed.expected, r.expected);
        EXPECT_EQ(parsed.accuracy, r.accuracy);
        EXPECT_EQ(parsed.leaked, r.leaked);
        EXPECT_EQ(attackResultJson(parsed), emitted);

        uarch::CpuStats s;
        s.cycles = u64(rng);
        s.committed = u64(rng);
        s.squashed = u64(rng);
        s.branchMispredicts = u64(rng);
        s.exceptions = u64(rng);
        s.memOrderViolations = u64(rng);
        s.speculativeFills = u64(rng);
        s.transientForwards = u64(rng);
        const std::string stats_emitted = cpuStatsJson(s);
        json::Cursor stats_cur(stats_emitted);
        uarch::CpuStats stats_parsed;
        ASSERT_TRUE(parseCpuStatsJson(stats_cur, stats_parsed));
        EXPECT_EQ(cpuStatsJson(stats_parsed), stats_emitted);
    }
}

TEST(SchemaRoundTrip, UnparseableSummaryValuesFailLoudly)
{
    // A type-correct but meaningless value (unknown channel name,
    // misspelled mitigation) must fail the parse, not silently
    // leave the field at its default.
    for (const std::string doc :
         {R"({"channel": "carrier-pigeon"})",
          R"({"mitigations": "kpti+typo"})",
          R"({"vulns": "no-everything"})",
          R"({"cache": "not-a-geometry"})"}) {
        json::Cursor cur(doc);
        ScenarioOutcome parsed;
        EXPECT_FALSE(outcomeSchema().parseJsonObject(cur, parsed))
            << doc;
        EXPECT_NE(cur.error().find("bad value"), std::string::npos)
            << doc << " -> " << cur.error();
    }
}

// -------------------------------------------------------------------
// Scenario keys for catalog-extension (synthetic-slot) attacks.
// -------------------------------------------------------------------

TEST(SchemaRoundTrip, ParseScenarioKeyRoundTripsExtensionSlots)
{
    // Register a real extension: the catalog assigns a synthetic
    // slot >= kExtensionIdBase with no enumerator behind it.
    core::AttackDescriptor d;
    d.name = "schema-test synthetic attack";
    d.aliases = {"schema-test-synthetic"};
    const core::AttackDescriptor &registered =
        core::ScenarioCatalog::instance().registerAttack(
            std::move(d));
    ASSERT_TRUE(registered.isExtension());
    ASSERT_GE(static_cast<unsigned>(registered.id),
              core::kExtensionIdBase);

    CpuConfig config;
    config.robSize = 96;
    config.vuln.taa = false;
    AttackOptions options;
    options.channel = core::CovertChannelKind::PrimeProbe;
    options.kpti = true;

    const std::string key =
        scenarioKey(registered.id, config, options);
    core::AttackVariant variant{};
    CpuConfig parsed_config;
    AttackOptions parsed_options;
    ASSERT_TRUE(parseScenarioKey(key, variant, parsed_config,
                                 parsed_options));
    EXPECT_EQ(variant, registered.id);
    // The canonical key covers every field, so key equality is
    // config/options equality.
    EXPECT_EQ(scenarioKey(variant, parsed_config, parsed_options),
              key);
}

// -------------------------------------------------------------------
// The shard wire format's schema-version tag.
// -------------------------------------------------------------------

TEST(SchemaTag, MismatchedProducersAreRejectedBeforeMerge)
{
    std::string text = shardReportJson(fixtureReport());
    const std::string tag = jsonEscape(wireSchemaTag());
    const std::size_t at = text.find(tag);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, tag.size(),
                 "outcome{somebodyElsesField:u}");
    std::string error;
    EXPECT_FALSE(parseShardReportJson(text, &error));
    EXPECT_NE(error.find("schema mismatch"), std::string::npos)
        << error;
}

TEST(SchemaTag, LegacyTaglessShardReportsStillLoad)
{
    // Files written before the tag existed carry field lists
    // identical to the tagless-era schemas; dropping the schema
    // line reproduces one.
    std::string text = shardReportJson(fixtureReport());
    const std::string line = schemaTagLine();
    const std::size_t at = text.find(line);
    ASSERT_NE(at, std::string::npos);
    text.erase(at, line.size());
    std::string error;
    const auto report = parseShardReportJson(text, &error);
    ASSERT_TRUE(report) << error;
    EXPECT_EQ(report->outcomes.size(), 2u);
}

TEST(SchemaTag, TagNamesEveryOutcomeFieldWithItsType)
{
    const std::string tag = wireSchemaTag();
    for (const auto &field : outcomeSchema().fields()) {
        std::string expect = field.name;
        expect += ':';
        expect += fieldTypeCode(field.type);
        EXPECT_NE(tag.find(expect), std::string::npos)
            << expect << " missing from " << tag;
    }
}

// -------------------------------------------------------------------
// One escaping path: every string field goes through jsonEscape.
// -------------------------------------------------------------------

TEST(SchemaEscaping, AttackDescriptorJsonEscapesAliasNames)
{
    core::AttackDescriptor d;
    d.name = "nasty \"name\" with \\ and \x01 control";
    d.aliases = {"alias \"quoted\"", "back\\slash",
                 std::string("ctl\x1f\ttab")};
    d.cve = "CVE-\"?\"";
    d.paperSection = "Sec \\V-A\n";
    const core::AttackDescriptor &registered =
        core::ScenarioCatalog::instance().registerAttack(
            std::move(d));

    const std::string json = attackDescriptorJson(registered);
    // No raw control characters may survive anywhere in the object.
    for (const char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
    EXPECT_NE(json.find("nasty \\\"name\\\" with \\\\ and "
                        "\\u0001 control"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("alias \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("ctl\\u001f\\ttab"), std::string::npos);
    EXPECT_NE(json.find("Sec \\\\V-A\\n"), std::string::npos);
}

TEST(SchemaEscaping, OutcomeEmittersEscapeAwkwardLabels)
{
    ScenarioOutcome o = fixtureOutcome(0, 0, true);
    o.rowLabel = "row \"x\"\nwith\\stuff\x02";
    o.colLabel = "col,with,commas\t";
    const std::string json = outcomeJson(o, false);
    for (const char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
    // And the same label round-trips exactly through the parser.
    json::Cursor cur(json);
    ScenarioOutcome parsed;
    ASSERT_TRUE(outcomeSchema().parseJsonObject(cur, parsed));
    EXPECT_EQ(parsed.rowLabel, o.rowLabel);
    EXPECT_EQ(parsed.colLabel, o.colLabel);
}

// -------------------------------------------------------------------
// Export-format inference (campaign_cli export).
// -------------------------------------------------------------------

TEST(ExportFormat, InfersFromExtensionCaseInsensitively)
{
    EXPECT_EQ(exportFormatFromPath("out.json"), "json");
    EXPECT_EQ(exportFormatFromPath("OUT.JSONL"), "jsonl");
    EXPECT_EQ(exportFormatFromPath("dir/sub.dir/table.csv"), "csv");
    EXPECT_EQ(exportFormatFromPath("noextension"), "");
    EXPECT_EQ(exportFormatFromPath("wrong.txt"), "");
    EXPECT_EQ(exportFormatFromPath("dotted.dir/noext"), "");
    EXPECT_EQ(exportFormatFromPath("typo.jsnl"), "");
}

TEST(ExportFormat, UnknownFormatsGetSuggestions)
{
    const auto suggestions =
        core::suggestNames(exportFormatNames(), "jsnl");
    ASSERT_FALSE(suggestions.empty());
    EXPECT_EQ(suggestions.front(), "jsonl");
}

} // namespace
