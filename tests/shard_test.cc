/**
 * @file
 * Tests for grid sharding and report merging: the partition is
 * deterministic, dedup-stable, disjoint and complete; the scenario
 * key round-trips through parseScenarioKey; a sharded-then-merged
 * report is byte-identical (JSON, CSV, success matrix, golden JSON)
 * to the unsharded report across worker counts 1/2/8; overlapping
 * shard sets (heterogeneous fleet sizes) merge cleanly when they
 * agree; and merge conflicts (cells with different results,
 * mismatched specs) are detected.
 */

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "regress/golden.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;

DefenseAxis
fenceAxis()
{
    return {"fence(1)", [](CpuConfig &c, AttackOptions &) {
                c.defense.fenceSpeculativeLoads = true;
            }};
}

/** A small spec with dedup (noop column) and a knob sweep. */
ScenarioSpec
sampleSpec()
{
    ScenarioSpec spec;
    spec.name = "shard-sample";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown,
                     AttackVariant::ZombieLoad};
    spec.defenses = {{"baseline", nullptr},
                     {"noop", [](CpuConfig &, AttackOptions &) {}},
                     fenceAxis()};
    spec.permCheckLatencies = {10, 30};
    return spec;
}

TEST(Shard, PartitionIsDisjointCompleteAndDedupStable)
{
    const ExpandedGrid grid = dedupGrid(sampleSpec());
    for (const std::size_t n : {1UL, 2UL, 3UL, 7UL}) {
        std::vector<int> uniqueSeen(grid.uniqueIndices.size(), 0);
        std::vector<int> expandedSeen(grid.expanded.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const ShardSelection sel = grid.shard(i, n);
            for (const std::size_t p : sel.uniquePositions)
                uniqueSeen.at(p) += 1;
            for (const std::size_t e : sel.expandedIndices) {
                expandedSeen.at(e) += 1;
                // Dedup-stable: every grid point lands in the
                // shard of its backing unique execution.
                EXPECT_EQ(grid.dupOf[e] % n, i);
            }
        }
        for (const int count : uniqueSeen)
            EXPECT_EQ(count, 1) << "shard count " << n;
        for (const int count : expandedSeen)
            EXPECT_EQ(count, 1) << "shard count " << n;
    }
}

TEST(Shard, SingleShardSelectsEverything)
{
    const ExpandedGrid grid = dedupGrid(sampleSpec());
    const ShardSelection sel = grid.shard(0, 1);
    EXPECT_EQ(sel.uniquePositions.size(),
              grid.uniqueIndices.size());
    EXPECT_EQ(sel.expandedIndices.size(), grid.expanded.size());
}

TEST(Shard, SelectionIsDeterministic)
{
    const ExpandedGrid grid = dedupGrid(sampleSpec());
    const ShardSelection a = grid.shard(1, 3);
    const ShardSelection b = grid.shard(1, 3);
    EXPECT_EQ(a.uniquePositions, b.uniquePositions);
    EXPECT_EQ(a.expandedIndices, b.expandedIndices);
}

TEST(Shard, OutOfRangeIndexSelectsNothing)
{
    const ExpandedGrid grid = dedupGrid(sampleSpec());
    const ShardSelection sel = grid.shard(5, 2);
    EXPECT_TRUE(sel.uniquePositions.empty());
    EXPECT_TRUE(sel.expandedIndices.empty());
}

TEST(Shard, ScenarioKeyRoundTrips)
{
    // Every scenario of a sweep with all grid dimensions active
    // reconstructs exactly from its canonical key.
    ScenarioSpec spec = sampleSpec();
    SoftwareMitigation kpti;
    kpti.label = "kpti";
    kpti.toggles.kpti = true;
    spec.mitigations = {SoftwareMitigation{}, kpti};
    CacheGeometry small;
    small.label = "small";
    small.cache.sets = 64;
    spec.cacheGeometries = {CacheGeometry{}, small};
    spec.channels = {core::CovertChannelKind::FlushReload,
                     core::CovertChannelKind::PrimeProbe};

    for (const Scenario &s : expandGrid(spec)) {
        AttackVariant variant{};
        CpuConfig config;
        AttackOptions options;
        ASSERT_TRUE(
            parseScenarioKey(s.key, variant, config, options));
        EXPECT_EQ(variant, s.variant);
        // Re-keying the parsed triple reproduces the key exactly,
        // so every config/options field survived the round trip.
        EXPECT_EQ(scenarioKey(variant, config, options), s.key);
    }
}

TEST(Shard, ParseScenarioKeyRejectsMalformedKeys)
{
    AttackVariant variant{};
    CpuConfig config;
    AttackOptions options;
    EXPECT_FALSE(parseScenarioKey("", variant, config, options));
    EXPECT_FALSE(
        parseScenarioKey("1;2;3;", variant, config, options));
    EXPECT_FALSE(
        parseScenarioKey("not-a-key", variant, config, options));
    const std::string good =
        scenarioKey(AttackVariant::SpectreV1, CpuConfig{},
                    AttackOptions{});
    EXPECT_TRUE(
        parseScenarioKey(good, variant, config, options));
    // Truncated and extended keys both fail.
    EXPECT_FALSE(parseScenarioKey(
        good.substr(0, good.size() - 2), variant, config,
        options));
    EXPECT_FALSE(
        parseScenarioKey(good + "7;", variant, config, options));
}

TEST(Shard, ShardedThenMergedIsByteIdentical)
{
    const ScenarioSpec spec = sampleSpec();
    const CampaignReport full =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    const std::string fullJson = tool::campaignJson(full, false);
    const std::string fullCsv = tool::campaignCsv(full, false);
    const std::string fullGolden =
        regress::goldenJson(regress::GoldenMatrix::fromReport(full));

    for (const unsigned workers : {1u, 2u, 8u}) {
        for (const std::size_t n : {2UL, 3UL}) {
            const CampaignEngine engine(
                CampaignEngine::Options{workers});
            CampaignReport merged;
            bool first = true;
            for (std::size_t i = 0; i < n; ++i) {
                // Round-trip every shard through the wire format,
                // exactly like the multi-process pipeline.
                const CampaignReport shard =
                    engine.run(spec, ShardRange{i, n});
                EXPECT_TRUE(shard.partial());
                EXPECT_EQ(shard.shardIndex, i);
                EXPECT_EQ(shard.shardCount, n);
                std::string error;
                auto parsed = tool::parseShardReportJson(
                    tool::shardReportJson(shard), &error);
                ASSERT_TRUE(parsed.has_value()) << error;
                if (first) {
                    merged = std::move(*parsed);
                    first = false;
                } else {
                    ASSERT_TRUE(merged.merge(*parsed, &error))
                        << error;
                }
            }
            EXPECT_FALSE(merged.partial());
            EXPECT_EQ(merged.shardCount, 1u);
            EXPECT_EQ(tool::campaignJson(merged, false), fullJson)
                << "workers=" << workers << " shards=" << n;
            EXPECT_EQ(tool::campaignCsv(merged, false), fullCsv)
                << "workers=" << workers << " shards=" << n;
            EXPECT_EQ(merged.successMatrixText(),
                      full.successMatrixText());
            // The golden gate's comparison input is byte-identical
            // too: a sharded CI lane checks the same bytes.
            EXPECT_EQ(regress::goldenJson(
                          regress::GoldenMatrix::fromReport(
                              merged)),
                      fullGolden);
        }
    }
}

TEST(Shard, MergeIsOrderIndependent)
{
    const ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{2});
    const CampaignReport s0 = engine.run(spec, ShardRange{0, 3});
    const CampaignReport s1 = engine.run(spec, ShardRange{1, 3});
    const CampaignReport s2 = engine.run(spec, ShardRange{2, 3});

    CampaignReport forward = s0;
    ASSERT_TRUE(forward.merge(s1));
    ASSERT_TRUE(forward.merge(s2));
    CampaignReport backward = s2;
    ASSERT_TRUE(backward.merge(s0));
    ASSERT_TRUE(backward.merge(s1));
    EXPECT_EQ(tool::campaignJson(forward, false),
              tool::campaignJson(backward, false));
    EXPECT_EQ(tool::campaignCsv(forward, false),
              tool::campaignCsv(backward, false));
}

TEST(Shard, MergeAcceptsAgreeingOverlap)
{
    // Every timing-free result field is a pure function of the
    // cell's configuration, so two runs covering the same
    // gridIndex agree by construction — merging a shard into
    // itself is a no-op on outcomes with summed provenance.
    const ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{1});
    const CampaignReport s0 = engine.run(spec, ShardRange{0, 2});

    CampaignReport merged = s0;
    std::string error;
    EXPECT_TRUE(merged.merge(s0, &error)) << error;
    EXPECT_EQ(merged.outcomes.size(), s0.outcomes.size());
    EXPECT_EQ(tool::campaignCsv(merged, false),
              tool::campaignCsv(s0, false));
    // The overlap really was executed twice; provenance says so.
    EXPECT_EQ(merged.executedCount + merged.cacheHits,
              2 * (s0.executedCount + s0.cacheHits));
}

TEST(Shard, HeterogeneousShardCountsMergeCleanly)
{
    // A 3-shard and a 2-shard fleet of the same spec overlap in
    // arbitrary ways; their union must still equal the unsharded
    // run byte-for-byte in every timing-free export.
    const ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{2});
    const CampaignReport whole = engine.run(spec);

    CampaignReport merged = engine.run(spec, ShardRange{0, 3});
    std::string error;
    ASSERT_TRUE(
        merged.merge(engine.run(spec, ShardRange{1, 3}), &error))
        << error;
    ASSERT_TRUE(
        merged.merge(engine.run(spec, ShardRange{0, 2}), &error))
        << error;
    ASSERT_TRUE(
        merged.merge(engine.run(spec, ShardRange{1, 2}), &error))
        << error;
    ASSERT_FALSE(merged.partial());
    EXPECT_EQ(tool::campaignJson(merged, false),
              tool::campaignJson(whole, false));
    EXPECT_EQ(tool::campaignCsv(merged, false),
              tool::campaignCsv(whole, false));
    EXPECT_EQ(merged.successMatrixText(),
              whole.successMatrixText());
}

TEST(Shard, MergeDetectsConflictingOverlap)
{
    // Same gridIndex, different results: a genuinely conflicting
    // cell (here: a doctored leak flag) must still fail the merge
    // and leave the target unchanged.
    const ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{1});
    const CampaignReport s0 = engine.run(spec, ShardRange{0, 2});

    CampaignReport doctored = s0;
    ASSERT_FALSE(doctored.outcomes.empty());
    doctored.outcomes.front().result.leaked =
        !doctored.outcomes.front().result.leaked;
    doctored.outcomes.front().result.accuracy = 0.123;

    CampaignReport merged = s0;
    std::string error;
    EXPECT_FALSE(merged.merge(doctored, &error));
    EXPECT_NE(error.find("conflicting"), std::string::npos);
    EXPECT_EQ(tool::campaignCsv(merged, false),
              tool::campaignCsv(s0, false));
}

TEST(Shard, MergeDetectsMismatchedSpecs)
{
    ScenarioSpec spec = sampleSpec();
    const CampaignEngine engine(CampaignEngine::Options{1});
    const CampaignReport s0 = engine.run(spec, ShardRange{0, 2});

    ScenarioSpec renamed = spec;
    renamed.name = "other-spec";
    CampaignReport merged = s0;
    std::string error;
    EXPECT_FALSE(merged.merge(
        engine.run(renamed, ShardRange{1, 2}), &error));
    EXPECT_NE(error.find("name"), std::string::npos);

    // Different grid shape under the same name.
    ScenarioSpec wider = spec;
    wider.name = spec.name;
    wider.robSizes = {32, 48};
    error.clear();
    EXPECT_FALSE(merged.merge(
        engine.run(wider, ShardRange{1, 2}), &error));
    EXPECT_FALSE(error.empty());

    // Different column labels.
    ScenarioSpec relabeled = spec;
    relabeled.defenses[2].label = "fence-renamed";
    error.clear();
    EXPECT_FALSE(merged.merge(
        engine.run(relabeled, ShardRange{1, 2}), &error));
    EXPECT_NE(error.find("label"), std::string::npos);
}

TEST(Shard, ShardReportJsonRoundTrips)
{
    const ScenarioSpec spec = sampleSpec();
    const CampaignReport shard =
        CampaignEngine(CampaignEngine::Options{1})
            .run(spec, ShardRange{1, 2});
    const std::string wire = tool::shardReportJson(shard);

    std::string error;
    const auto parsed = tool::parseShardReportJson(wire, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->name, shard.name);
    EXPECT_EQ(parsed->rowLabels, shard.rowLabels);
    EXPECT_EQ(parsed->colLabels, shard.colLabels);
    EXPECT_EQ(parsed->expandedCount, shard.expandedCount);
    EXPECT_EQ(parsed->uniqueCount, shard.uniqueCount);
    EXPECT_EQ(parsed->shardIndex, 1u);
    EXPECT_EQ(parsed->shardCount, 2u);
    EXPECT_EQ(parsed->executedCount, shard.executedCount);
    ASSERT_EQ(parsed->outcomes.size(), shard.outcomes.size());
    for (std::size_t i = 0; i < shard.outcomes.size(); ++i) {
        const ScenarioOutcome &a = shard.outcomes[i];
        const ScenarioOutcome &b = parsed->outcomes[i];
        EXPECT_EQ(a.gridIndex, b.gridIndex);
        EXPECT_EQ(a.variant, b.variant);
        EXPECT_EQ(a.result.leaked, b.result.leaked);
        EXPECT_EQ(a.result.recovered, b.result.recovered);
        EXPECT_EQ(a.result.accuracy, b.result.accuracy);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles);
        EXPECT_EQ(scenarioKey(a.variant, a.config, a.options),
                  scenarioKey(b.variant, b.config, b.options));
    }
    // Stable serialization: emit(parse(emit(x))) == emit(x).
    EXPECT_EQ(tool::shardReportJson(*parsed), wire);
}

TEST(Shard, ParseShardReportRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(tool::parseShardReportJson("", &error));
    EXPECT_FALSE(tool::parseShardReportJson("not json", &error));
    EXPECT_FALSE(tool::parseShardReportJson("{}", &error));
    EXPECT_FALSE(error.empty());

    const ScenarioSpec spec = sampleSpec();
    const std::string wire = tool::shardReportJson(
        CampaignEngine(CampaignEngine::Options{1})
            .run(spec, ShardRange{0, 2}));
    // Truncation and trailing garbage both fail.
    EXPECT_FALSE(tool::parseShardReportJson(
        wire.substr(0, wire.size() / 2), &error));
    EXPECT_FALSE(tool::parseShardReportJson(wire + "x", &error));
    // Unsupported version fails.
    std::string wrong = wire;
    const std::string needle = "\"version\": 1";
    wrong.replace(wrong.find(needle), needle.size(),
                  "\"version\": 999");
    EXPECT_FALSE(tool::parseShardReportJson(wrong, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

} // namespace
