/**
 * @file
 * Differential fuzzing: random programs run on the out-of-order
 * core must commit exactly the architectural state the sequential
 * reference model produces — under the default configuration AND
 * under every hardware defense configuration.  This is the property
 * that makes defenses acceptable at all: they may change *timing*
 * and *micro-architectural* state, never semantics.
 */

#include <gtest/gtest.h>

#include <random>

#include "uarch/cpu.hh"
#include "uarch/reference.hh"

namespace
{

using namespace specsec::uarch;

constexpr Addr kDataBase = 0x10000;
constexpr Addr kDataSize = 0x1000;
constexpr std::size_t kMemBytes = 1 << 20;

/** Generate a random terminating program.
 *
 * Straight-line ALU/memory code with forward branches only (no
 * loops), all memory accesses confined to the mapped data region
 * via a base register, ending in halt.  RdTsc is excluded (its
 * value is timing, legitimately different between models).
 */
Program
randomProgram(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> len_dist(8, 40);
    std::uniform_int_distribution<int> op_dist(0, 99);
    std::uniform_int_distribution<int> reg_dist(1, 10);
    std::uniform_int_distribution<int> imm_dist(-64, 64);
    std::uniform_int_distribution<int> off_dist(0, 0x7f);
    const int body = len_dist(rng);

    Program p;
    // r15 = data base (preset by the harness).
    for (int k = 0; k < body; ++k) {
        const int roll = op_dist(rng);
        const RegId rd = static_cast<RegId>(reg_dist(rng));
        const RegId ra = static_cast<RegId>(reg_dist(rng));
        const RegId rb = static_cast<RegId>(reg_dist(rng));
        if (roll < 12) {
            p.emit(movImm(rd, imm_dist(rng)));
        } else if (roll < 40) {
            switch (roll % 7) {
              case 0: p.emit(add(rd, ra, rb)); break;
              case 1: p.emit(sub(rd, ra, rb)); break;
              case 2: p.emit(andr(rd, ra, rb)); break;
              case 3: p.emit(orr(rd, ra, rb)); break;
              case 4: p.emit(xorr(rd, ra, rb)); break;
              case 5: p.emit(addImm(rd, ra, imm_dist(rng))); break;
              default: p.emit(shrImm(rd, ra, roll % 8)); break;
            }
        } else if (roll < 58) {
            // Aligned in-region load: offset in [0, 0x7f8], 8B.
            p.emit(load64(rd, 15, (off_dist(rng) & ~7)));
        } else if (roll < 72) {
            p.emit(store64(15, (off_dist(rng) & ~7), rb));
        } else if (roll < 78) {
            p.emit(load8(rd, 15, off_dist(rng)));
        } else if (roll < 84) {
            p.emit(store8(15, off_dist(rng), rb));
        } else if (roll < 90) {
            // Forward branch over the next few instructions.
            const std::int64_t target = static_cast<std::int64_t>(
                p.size() + 2 + (roll % 3));
            const Cond cond =
                static_cast<Cond>(roll % 6);
            p.emit(branch(cond, ra, rb, target));
        } else if (roll < 94) {
            p.emit(clflush(15, off_dist(rng) & ~7));
        } else if (roll < 97) {
            p.emit(lfence());
        } else {
            p.emit(mfence());
        }
    }
    p.emit(halt());
    // Clamp any branch target beyond the end to the halt.
    for (std::size_t pc = 0; pc < p.size(); ++pc) {
        Instruction &inst = p.at(pc);
        if (inst.op == Opcode::Branch &&
            inst.imm >= static_cast<std::int64_t>(p.size())) {
            inst.imm = static_cast<std::int64_t>(p.size() - 1);
        }
    }
    return p;
}

/** Fill the data region with deterministic pseudo-random bytes. */
void
fillMemory(Memory &mem, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> byte(0, 255);
    for (Addr a = 0; a < kDataSize; ++a)
        mem.write8(kDataBase + a,
                   static_cast<std::uint8_t>(byte(rng)));
}

struct MachineState
{
    std::array<Word, kNumIntRegs> regs{};
    std::vector<std::uint8_t> data;
};

MachineState
runOnOoo(const Program &p, const CpuConfig &config, unsigned seed)
{
    Memory mem(kMemBytes);
    PageTable pt;
    pt.mapRange(0, kMemBytes, PageOwner::User, true, true);
    fillMemory(mem, seed);
    Cpu cpu(config, mem, pt);
    cpu.loadProgram(p);
    cpu.setReg(15, kDataBase);
    const RunResult r = cpu.run(0, 500000);
    EXPECT_TRUE(r.halted);
    MachineState s;
    for (RegId i = 0; i < kNumIntRegs; ++i)
        s.regs[i] = cpu.reg(i);
    for (Addr a = 0; a < kDataSize; ++a)
        s.data.push_back(mem.read8(kDataBase + a));
    return s;
}

MachineState
runOnReference(const Program &p, unsigned seed)
{
    Memory mem(kMemBytes);
    PageTable pt;
    pt.mapRange(0, kMemBytes, PageOwner::User, true, true);
    fillMemory(mem, seed);
    ReferenceCpu ref(mem, pt);
    ref.loadProgram(p);
    ref.setReg(15, kDataBase);
    const ReferenceResult r = ref.run(0);
    EXPECT_TRUE(r.halted);
    MachineState s;
    for (RegId i = 0; i < kNumIntRegs; ++i)
        s.regs[i] = ref.reg(i);
    for (Addr a = 0; a < kDataSize; ++a)
        s.data.push_back(mem.read8(kDataBase + a));
    return s;
}

void
expectSameState(const MachineState &ooo, const MachineState &ref,
                unsigned seed, const char *config_name)
{
    for (RegId i = 0; i < kNumIntRegs; ++i) {
        ASSERT_EQ(ooo.regs[i], ref.regs[i])
            << "seed " << seed << " config " << config_name
            << " register r" << int(i);
    }
    ASSERT_EQ(ooo.data, ref.data)
        << "seed " << seed << " config " << config_name
        << " memory differs";
}

class DifferentialFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DifferentialFuzz, BaselineMatchesReference)
{
    std::mt19937 rng(GetParam());
    const Program p = randomProgram(rng);
    const MachineState ref = runOnReference(p, GetParam());
    const MachineState ooo = runOnOoo(p, CpuConfig{}, GetParam());
    expectSameState(ooo, ref, GetParam(), "baseline");
}

TEST_P(DifferentialFuzz, EveryDefensePreservesSemantics)
{
    std::mt19937 rng(GetParam() + 1000);
    const Program p = randomProgram(rng);
    const MachineState ref = runOnReference(p, GetParam());

    struct NamedConfig
    {
        const char *name;
        void (*set)(CpuConfig &);
    };
    const NamedConfig configs[] = {
        {"fenceSpeculativeLoads",
         [](CpuConfig &c) {
             c.defense.fenceSpeculativeLoads = true;
         }},
        {"blockSpeculativeForwarding",
         [](CpuConfig &c) {
             c.defense.blockSpeculativeForwarding = true;
         }},
        {"blockTaintedTransmit",
         [](CpuConfig &c) {
             c.defense.blockTaintedTransmit = true;
         }},
        {"invisibleSpeculation",
         [](CpuConfig &c) { c.defense.invisibleSpeculation = true; }},
        {"cleanupSpec",
         [](CpuConfig &c) { c.defense.cleanupSpec = true; }},
        {"conditionalSpeculation",
         [](CpuConfig &c) {
             c.defense.conditionalSpeculation = true;
         }},
        {"noBranchPrediction",
         [](CpuConfig &c) { c.defense.noBranchPrediction = true; }},
        {"safeStoreBypass",
         [](CpuConfig &c) { c.defense.safeStoreBypass = true; }},
        {"noStoreBypassSilicon",
         [](CpuConfig &c) { c.vuln.storeBypass = false; }},
        {"allHardened",
         [](CpuConfig &c) {
             c.defense.fenceSpeculativeLoads = true;
             c.defense.blockSpeculativeForwarding = true;
             c.defense.invisibleSpeculation = true;
             c.defense.safeStoreBypass = true;
             c.vuln = VulnConfig{false, false, false, false,
                                 false, false, false};
         }},
    };
    for (const NamedConfig &nc : configs) {
        CpuConfig cfg;
        nc.set(cfg);
        const MachineState ooo = runOnOoo(p, cfg, GetParam());
        expectSameState(ooo, ref, GetParam(), nc.name);
    }
}

TEST_P(DifferentialFuzz, TimingParametersDoNotChangeSemantics)
{
    std::mt19937 rng(GetParam() + 2000);
    const Program p = randomProgram(rng);
    const MachineState ref = runOnReference(p, GetParam());
    CpuConfig cfg;
    cfg.permCheckLatency = 1 + GetParam() % 60;
    cfg.exceptionDeliveryLatency = GetParam() % 30;
    cfg.cache.missLatency = 20 + (GetParam() % 400);
    cfg.fetchWidth = 1 + GetParam() % 4;
    cfg.robSize = 8 + GetParam() % 56;
    const MachineState ooo = runOnOoo(p, cfg, GetParam());
    expectSameState(ooo, ref, GetParam(), "timing-sweep");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0u, 40u));

} // namespace
