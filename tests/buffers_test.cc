/**
 * @file
 * Tests for the leaky buffers: store buffer (forwarding, partial
 * aliasing, residue), line fill buffer, load port and lazy FPU.
 */

#include <gtest/gtest.h>

#include "uarch/buffers.hh"

namespace
{

using namespace specsec::uarch;

TEST(StoreBufferTest, ForwardYoungestOlderStore)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 0xaaaa);
    sb.allocate(2, 8);
    sb.setAddress(2, 0x100, 0x100);
    sb.setData(2, 0xbbbb);
    // Load with seq 3 sees the youngest older store (seq 2).
    EXPECT_EQ(sb.forward(3, 0x100, 8), 0xbbbbu);
    // Load with seq 2 only sees seq 1.
    EXPECT_EQ(sb.forward(2, 0x100, 8), 0xaaaau);
}

TEST(StoreBufferTest, NoForwardWithoutAddressOrData)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    EXPECT_FALSE(sb.forward(2, 0x100, 8).has_value());
    sb.setAddress(1, 0x100, 0x100);
    EXPECT_FALSE(sb.forward(2, 0x100, 8).has_value());
    sb.setData(1, 5);
    EXPECT_TRUE(sb.forward(2, 0x100, 8).has_value());
}

TEST(StoreBufferTest, ByteForwardMasks)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 0x1234);
    EXPECT_EQ(sb.forward(2, 0x100, 1), 0x34u);
}

TEST(StoreBufferTest, NarrowStoreDoesNotForwardWide)
{
    StoreBuffer sb;
    sb.allocate(1, 1);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 0x12);
    EXPECT_FALSE(sb.forward(2, 0x100, 8).has_value());
}

TEST(StoreBufferTest, UnresolvedOlderDetection)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    EXPECT_TRUE(sb.hasUnresolvedOlder(2));
    EXPECT_FALSE(sb.hasUnresolvedOlder(1)); // not older than itself
    sb.setAddress(1, 0x100, 0x100);
    EXPECT_FALSE(sb.hasUnresolvedOlder(2));
}

TEST(StoreBufferTest, SquashRemovesYoungKeepsResidue)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 0xdead);
    sb.allocate(5, 8);
    sb.setAddress(5, 0x200, 0x200);
    sb.setData(5, 0xbeef);
    sb.squashAfter(1);
    EXPECT_EQ(sb.pending(), 1u);
    // Fallout: the squashed store's bits linger as residue.
    ASSERT_TRUE(sb.residue().has_value());
    EXPECT_EQ(sb.residue()->data, 0xbeefu);
    EXPECT_EQ(sb.residue()->vaddr, 0x200u);
}

TEST(StoreBufferTest, DrainOldestInOrder)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 7);
    sb.allocate(2, 8);
    EXPECT_FALSE(sb.drainOldest(2).has_value()); // 1 is oldest
    const auto e = sb.drainOldest(1);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->data, 7u);
    EXPECT_EQ(sb.pending(), 1u);
}

TEST(StoreBufferTest, PartialAliasDetection)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x5040, 0x15040);
    // Same low 12 bits, different address: 4KB alias.
    EXPECT_TRUE(sb.partialAliasOlder(2, 0x9040));
    EXPECT_FALSE(sb.partialAliasOlder(2, 0x9048));
    EXPECT_FALSE(sb.partialAliasOlder(2, 0x5040)); // exact match
}

TEST(StoreBufferTest, PhysAliasDetection)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x5040, 0x500040);
    // Same low 20 physical bits, different physical address.
    EXPECT_TRUE(sb.physAliasOlder(2, 0x600040));
    EXPECT_FALSE(sb.physAliasOlder(2, 0x600048));
}

TEST(StoreBufferTest, ClearResidue)
{
    StoreBuffer sb;
    sb.allocate(1, 8);
    sb.setAddress(1, 0x100, 0x100);
    sb.setData(1, 1);
    sb.clearResidue();
    EXPECT_FALSE(sb.residue().has_value());
}

TEST(LineFillBufferTest, ResidueIsMostRecentFill)
{
    LineFillBuffer lfb(2);
    EXPECT_FALSE(lfb.residue().has_value());
    lfb.recordFill(0x100, 0xaa);
    lfb.recordFill(0x200, 0xbb);
    EXPECT_EQ(lfb.residue(), 0xbbu);
}

TEST(LineFillBufferTest, CapacityBounded)
{
    LineFillBuffer lfb(2);
    lfb.recordFill(0x100, 1);
    lfb.recordFill(0x200, 2);
    lfb.recordFill(0x300, 3);
    EXPECT_EQ(lfb.size(), 2u);
}

TEST(LineFillBufferTest, ClearDropsResidue)
{
    LineFillBuffer lfb(4);
    lfb.recordFill(0x100, 1);
    lfb.clear();
    EXPECT_FALSE(lfb.residue().has_value());
}

TEST(LoadPortTest, Residue)
{
    LoadPort lp;
    EXPECT_FALSE(lp.residue().has_value());
    lp.record(42);
    EXPECT_EQ(lp.residue(), 42u);
    lp.clear();
    EXPECT_FALSE(lp.residue().has_value());
}

TEST(FpuStateTest, LazySwitchLeavesStaleValues)
{
    FpuState fpu;
    fpu.write(2, 0x5ec); // victim value
    fpu.contextSwitch(1, /*eager=*/false);
    EXPECT_EQ(fpu.owner(), 0); // still owned by the old context
    EXPECT_EQ(fpu.read(2), 0x5ecu); // stale value readable (LazyFP)
}

TEST(FpuStateTest, EagerSwitchSwapsValues)
{
    FpuState fpu;
    fpu.write(2, 0x5ec);
    fpu.contextSwitch(1, /*eager=*/true);
    EXPECT_EQ(fpu.owner(), 1);
    EXPECT_EQ(fpu.read(2), 0u);
    // Switching back restores the saved registers.
    fpu.contextSwitch(0, true);
    EXPECT_EQ(fpu.read(2), 0x5ecu);
}

TEST(FpuStateTest, TakeOwnershipResolvesFault)
{
    FpuState fpu;
    fpu.write(2, 0x5ec);
    fpu.contextSwitch(1, false); // lazy
    fpu.takeOwnership(1);        // the OS handler
    EXPECT_EQ(fpu.owner(), 1);
    EXPECT_EQ(fpu.read(2), 0u); // old values saved away
    fpu.takeOwnership(0);
    EXPECT_EQ(fpu.read(2), 0x5ecu);
}

} // namespace
