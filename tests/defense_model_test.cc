/**
 * @file
 * Tests for the defense-strategy model (Section V-B): strategies
 * 1-4 as graph transformations, the defense catalog's strategy
 * classification, and the Fig. 4 partial-defense insufficiency.
 */

#include <gtest/gtest.h>

#include "core/defense_catalog.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

namespace
{

using namespace specsec::core;
using specsec::graph::NodeId;

TEST(DefenseStrategyModel, NamesStable)
{
    EXPECT_STREQ(defenseStrategyName(DefenseStrategy::PreventAccess),
                 "1-prevent-access-before-authorization");
    EXPECT_STREQ(
        defenseStrategyName(DefenseStrategy::ClearPredictions),
        "4-clear-predictions");
    EXPECT_EQ(allDefenseStrategies().size(), 4u);
}

TEST(DefenseStrategyModel, ApplyAccessInsertsEdges)
{
    AttackGraph g = buildAttackGraph(AttackVariant::SpectreV1);
    const auto added =
        applyDefense(g, DefenseStrategy::PreventAccess);
    ASSERT_EQ(added.size(), g.secretAccessNodes().size());
    for (const auto &e : added)
        EXPECT_EQ(e.kind, specsec::graph::EdgeKind::Security);
    EXPECT_FALSE(g.isVulnerable());
}

TEST(DefenseStrategyModel, ClearPredictionsSplicesFlushNode)
{
    AttackGraph g = buildAttackGraph(AttackVariant::SpectreV2);
    const std::size_t before = g.tsg().nodeCount();
    const auto added =
        applyDefense(g, DefenseStrategy::ClearPredictions);
    EXPECT_FALSE(added.empty());
    EXPECT_EQ(g.tsg().nodeCount(), before + 1);
    EXPECT_FALSE(g.mistrainInfluenceIntact());
    EXPECT_FALSE(g.isVulnerable());
}

TEST(DefenseStrategyModel, ClearPredictionsNoOpOnMeltdown)
{
    AttackGraph g = buildAttackGraph(AttackVariant::Meltdown);
    const auto added =
        applyDefense(g, DefenseStrategy::ClearPredictions);
    EXPECT_TRUE(added.empty());
    EXPECT_FALSE(defenseBlocks(g, DefenseStrategy::ClearPredictions));
}

TEST(DefenseStrategyModel, TargetedDependencyInsertion)
{
    AttackGraph g = buildFigure4Graph();
    const NodeId auth = g.authorizationNodes().front();
    const auto accesses = g.secretAccessNodes();
    EXPECT_TRUE(applyTargetedDependency(g, auth, accesses[0]));
    EXPECT_TRUE(g.tsg().hasEdge(auth, accesses[0]));
}

TEST(DefenseStrategyModel, Figure4PartialDefenseInsufficient)
{
    // Section V-B: adding dependency (1) only on "read from memory"
    // leaves the cache-hit Meltdown variant alive.
    AttackGraph g = buildFigure4Graph();
    const NodeId auth = g.authorizationNodes().front();
    const auto memory_read =
        g.tsg().findByLabel("Read S from memory");
    ASSERT_TRUE(memory_read.has_value());
    applyTargetedDependency(g, auth, *memory_read);
    EXPECT_TRUE(g.isVulnerable());
}

TEST(DefenseStrategyModel, Figure4JointDependencySufficient)
{
    AttackGraph g = buildFigure4Graph();
    const NodeId auth = g.authorizationNodes().front();
    // Cover every source, as the paper requires.
    for (NodeId access : g.secretAccessNodes())
        applyTargetedDependency(g, auth, access);
    EXPECT_FALSE(g.isVulnerable());
}

TEST(DefenseStrategyModel, Figure4PreventUseIsSufficientAndCheaper)
{
    // "Prevent Data Usage before Authorization may be a solution
    // that is not only more efficient but also more secure."
    AttackGraph g = buildFigure4Graph();
    const auto added = applyDefense(g, DefenseStrategy::PreventUse);
    EXPECT_EQ(added.size(), 1u); // one edge instead of five
    EXPECT_FALSE(g.isVulnerable());
}

/** Every strategy-1/2/3 defense blocks every Table III variant at
 *  the model level; strategy 4 blocks exactly the mistraining
 *  variants. */
class StrategyPerVariant
    : public ::testing::TestWithParam<AttackVariant>
{
};

TEST_P(StrategyPerVariant, PreventAccessBlocks)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventAccess));
}

TEST_P(StrategyPerVariant, PreventUseBlocks)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventUse));
}

TEST_P(StrategyPerVariant, PreventSendBlocks)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_TRUE(defenseBlocks(g, DefenseStrategy::PreventSend));
}

TEST_P(StrategyPerVariant, ClearPredictionsBlocksIffMistrained)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_EQ(defenseBlocks(g, DefenseStrategy::ClearPredictions),
              variantInfo(GetParam()).requiresMistraining);
}

INSTANTIATE_TEST_SUITE_P(
    TableIII, StrategyPerVariant,
    ::testing::ValuesIn(tableIIIVariants()),
    [](const ::testing::TestParamInfo<AttackVariant> &info) {
        std::string name = variantInfo(info.param).name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(DefenseCatalog, EveryMechanismHasAStrategy)
{
    // The paper's claim: all proposed defenses fall under one of
    // the four strategies.
    EXPECT_EQ(allDefenseMechanisms().size(), 29u);
    for (DefenseMechanism m : allDefenseMechanisms()) {
        const DefenseInfo &info = defenseInfo(m);
        const auto strategies = allDefenseStrategies();
        EXPECT_NE(std::find(strategies.begin(), strategies.end(),
                            info.strategy),
                  strategies.end())
            << info.name;
        EXPECT_FALSE(info.designedAgainst.empty()) << info.name;
    }
}

TEST(DefenseCatalog, TableIIStrategyAssignments)
{
    EXPECT_EQ(defenseInfo(DefenseMechanism::LFence).strategy,
              DefenseStrategy::PreventAccess);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Kpti).strategy,
              DefenseStrategy::PreventAccess);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Ibpb).strategy,
              DefenseStrategy::ClearPredictions);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Retpoline).strategy,
              DefenseStrategy::ClearPredictions);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Nda).strategy,
              DefenseStrategy::PreventUse);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Stt).strategy,
              DefenseStrategy::PreventSend);
    EXPECT_EQ(defenseInfo(DefenseMechanism::InvisiSpec).strategy,
              DefenseStrategy::PreventSend);
    EXPECT_EQ(defenseInfo(DefenseMechanism::CleanupSpec).strategy,
              DefenseStrategy::PreventSend);
}

TEST(DefenseCatalog, OriginSplit)
{
    EXPECT_EQ(defenseInfo(DefenseMechanism::LFence).origin,
              DefenseOrigin::Industry);
    EXPECT_EQ(defenseInfo(DefenseMechanism::Nda).origin,
              DefenseOrigin::Academia);
    std::size_t industry = 0;
    for (DefenseMechanism m : allDefenseMechanisms()) {
        if (defenseInfo(m).origin == DefenseOrigin::Industry)
            ++industry;
    }
    EXPECT_EQ(industry, 15u);
}

TEST(DefenseCatalog, DefenseAppliesLookup)
{
    EXPECT_TRUE(defenseApplies(DefenseMechanism::Kpti,
                               AttackVariant::Meltdown));
    EXPECT_FALSE(defenseApplies(DefenseMechanism::Kpti,
                                AttackVariant::SpectreV1));
    EXPECT_TRUE(defenseApplies(DefenseMechanism::RsbStuffing,
                               AttackVariant::SpectreRsb));
    EXPECT_TRUE(defenseApplies(DefenseMechanism::Stt,
                               AttackVariant::ZombieLoad));
}

TEST(DefenseCatalog, ModelDefenseBlocksDesignedAttacks)
{
    // For each mechanism, applying its strategy to the graphs of
    // the attacks it was designed against must block them (with
    // strategy 4 applying only to mistraining variants).
    for (DefenseMechanism m : allDefenseMechanisms()) {
        const DefenseInfo &info = defenseInfo(m);
        for (AttackVariant v : info.designedAgainst) {
            if (!variantInfo(v).inTableIII)
                continue;
            AttackGraph g = buildAttackGraph(v);
            if (info.strategy == DefenseStrategy::ClearPredictions &&
                !variantInfo(v).requiresMistraining) {
                continue;
            }
            modelDefense(g, m);
            EXPECT_FALSE(g.isVulnerable())
                << info.name << " vs " << variantInfo(v).name;
        }
    }
}

} // namespace
