/**
 * @file
 * Tests for the verdict subsystem (src/verdict/): the analytic
 * model's judgements against the simulator, strategy-4 semantics on
 * degenerate and OR-join graphs, backend name parsing, cross-backend
 * cache isolation, the differential pin format, and the triage
 * backend's byte-identity + strictly-fewer-simulations contract.
 */

#include <gtest/gtest.h>

#include <set>

#include "campaign/campaign.hh"
#include "core/attack_graph.hh"
#include "core/security_dependency.hh"
#include "regress/specs.hh"
#include "tool/report.hh"
#include "tool/schema.hh"
#include "verdict/differential.hh"
#include "verdict/model.hh"
#include "verdict/verdict.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using specsec::core::AttackGraph;
using specsec::core::AttackStep;
using specsec::core::AttackVariant;
using specsec::core::DefenseStrategy;
using specsec::core::ModelVerdict;
using specsec::core::NodeRole;
using specsec::graph::EdgeKind;
using specsec::graph::NodeId;

// ---------------------------------------------------------------
// applyDefense strategy 4 on shapes the sweep never exercises.

/** A Meltdown-shaped graph: no predictor, no mistrain -> trigger
 *  edge anywhere — strategy 4 has nothing to splice. */
AttackGraph
meltdownShape()
{
    AttackGraph g;
    const NodeId fault = g.addOperation(
        "privilege check", NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId access = g.addOperation(
        "load kernel byte", NodeRole::SecretAccess,
        AttackStep::Access);
    const NodeId use = g.addOperation("compute index",
                                      NodeRole::Use,
                                      AttackStep::UseSend);
    const NodeId send = g.addOperation("load probe",
                                       NodeRole::Send,
                                       AttackStep::UseSend);
    const NodeId receive = g.addOperation("reload probe",
                                          NodeRole::Receive,
                                          AttackStep::Receive);
    g.addDependency(access, fault, EdgeKind::Data);
    g.addDependency(access, use, EdgeKind::Data);
    g.addDependency(use, send, EdgeKind::Address);
    g.addDependency(send, receive, EdgeKind::Resource);
    return g;
}

TEST(DefenseStrategy4, NoMistrainTriggerEdgeIsANoOp)
{
    AttackGraph g = meltdownShape();
    const std::size_t nodes = g.tsg().nodeCount();
    const std::size_t edges = g.tsg().edgeCount();
    ASSERT_TRUE(g.isVulnerable());

    const auto added =
        core::applyDefense(g, DefenseStrategy::ClearPredictions);

    // Nothing to protect: no edges inserted, no flush node
    // materialized, and the graph must be untouched — a no-op
    // defense must not count as "blocked".
    EXPECT_TRUE(added.empty());
    EXPECT_EQ(g.tsg().nodeCount(), nodes);
    EXPECT_EQ(g.tsg().edgeCount(), edges);
    EXPECT_TRUE(g.isVulnerable());
    EXPECT_FALSE(core::defenseBlocks(
        meltdownShape(), DefenseStrategy::ClearPredictions));
}

/** Fig. 4 shape: two independent mistrain sources feeding the same
 *  trigger (an OR-join — either source alone steers the transient
 *  path), continuing into the usual access/use/send chain. */
struct OrJoinShape
{
    AttackGraph g;
    NodeId mistrainA, mistrainB, trigger, resolve, access, use,
        send, receive;

    OrJoinShape()
    {
        mistrainA = g.addOperation("mistrain (same address)",
                                   NodeRole::MistrainPredictor,
                                   AttackStep::Setup);
        mistrainB = g.addOperation("mistrain (aliased address)",
                                   NodeRole::MistrainPredictor,
                                   AttackStep::Setup);
        trigger = g.addOperation("victim branch",
                                 NodeRole::Trigger,
                                 AttackStep::DelayedAuth);
        resolve = g.addOperation("branch resolution",
                                 NodeRole::Authorization,
                                 AttackStep::DelayedAuth);
        access = g.addOperation("load S", NodeRole::SecretAccess,
                                AttackStep::Access);
        use = g.addOperation("compute R", NodeRole::Use,
                             AttackStep::UseSend);
        send = g.addOperation("load R", NodeRole::Send,
                              AttackStep::UseSend);
        receive = g.addOperation("reload", NodeRole::Receive,
                                 AttackStep::Receive);
        g.addDependency(mistrainA, trigger, EdgeKind::Resource);
        g.addDependency(mistrainB, trigger, EdgeKind::Resource);
        g.addDependency(trigger, resolve, EdgeKind::Data);
        g.addDependency(trigger, access, EdgeKind::Control);
        g.addDependency(access, use, EdgeKind::Data);
        g.addDependency(use, send, EdgeKind::Address);
        g.addDependency(send, receive, EdgeKind::Resource);
    }
};

TEST(DefenseStrategy4, OrJoinNeedsEveryMistrainSourceCut)
{
    OrJoinShape s;
    ASSERT_TRUE(s.g.isVulnerable());

    // Cutting one of the two OR-joined sources leaves the other
    // steering the trigger: still vulnerable.
    AttackGraph partial = s.g;
    partial.tsg().removeEdge(s.mistrainA, s.trigger);
    const NodeId flush = partial.addOperation(
        "Flush predictor state (context switch)",
        NodeRole::PredictorFlush, AttackStep::Setup);
    partial.addDependency(s.mistrainA, flush, EdgeKind::Resource);
    partial.addSecurityDependency(flush, s.trigger);
    EXPECT_TRUE(partial.isVulnerable());

    // applyDefense splices a flush into EVERY mistrain -> trigger
    // influence — one security edge per OR-joined source — and only
    // then is the attack blocked.
    AttackGraph full = s.g;
    const auto added =
        core::applyDefense(full, DefenseStrategy::ClearPredictions);
    EXPECT_EQ(added.size(), 2u);
    for (const auto &e : added)
        EXPECT_EQ(e.kind, EdgeKind::Security);
    EXPECT_FALSE(full.isVulnerable());
    EXPECT_TRUE(core::defenseBlocks(
        s.g, DefenseStrategy::ClearPredictions));
}

// ---------------------------------------------------------------
// Backend names: parse, fold, suggest.

TEST(VerdictBackend, ParseAcceptsFoldedNames)
{
    using verdict::VerdictBackend;
    VerdictBackend b{};
    EXPECT_TRUE(verdict::parseBackend("simulator", b));
    EXPECT_EQ(b, VerdictBackend::Simulator);
    EXPECT_TRUE(verdict::parseBackend("MODEL", b));
    EXPECT_EQ(b, VerdictBackend::Model);
    EXPECT_TRUE(verdict::parseBackend("Differential", b));
    EXPECT_EQ(b, VerdictBackend::Differential);
    EXPECT_TRUE(verdict::parseBackend("tri-age", b));
    EXPECT_EQ(b, VerdictBackend::Triage);
    EXPECT_TRUE(verdict::parseBackend("STATIC", b));
    EXPECT_EQ(b, VerdictBackend::Static);

    EXPECT_FALSE(verdict::parseBackend("hardware", b));
    EXPECT_FALSE(verdict::parseBackend("", b));

    const auto names = verdict::backendNames();
    ASSERT_EQ(names.size(), 5u);
    for (const std::string &name : names) {
        EXPECT_TRUE(verdict::parseBackend(name, b)) << name;
        EXPECT_EQ(verdict::backendName(b), name);
    }
}

TEST(VerdictBackend, UnknownNameGetsSuggestion)
{
    const std::string msg =
        verdict::unknownBackendMessage("simluator");
    EXPECT_NE(msg.find("unknown backend 'simluator'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("simulator"), std::string::npos) << msg;

    // Hopeless input still lists the valid names.
    const std::string listing =
        verdict::unknownBackendMessage("zzzz");
    for (const std::string &name : verdict::backendNames())
        EXPECT_NE(listing.find(name), std::string::npos)
            << listing;
}

// ---------------------------------------------------------------
// The analytic model against ground truth it must reproduce.

TEST(VerdictModel, SpotChecksMatchThePaperTable)
{
    const CpuConfig base;
    const AttackOptions options;

    // Undefended baseline: the canonical variants all leak.
    for (AttackVariant v :
         {AttackVariant::SpectreV1, AttackVariant::Meltdown,
          AttackVariant::Foreshadow, AttackVariant::Ridl}) {
        const auto j = verdict::modelJudgement(v, base, options);
        EXPECT_EQ(j.verdict, ModelVerdict::Leak)
            << j.evidence;
        EXPECT_FALSE(j.evidence.empty());
    }

    // Ablating the forwarding path an attack requires ->
    // Inapplicable; an attack that never used it still leaks.
    CpuConfig ablated = base;
    ablated.vuln.meltdown = false;
    EXPECT_EQ(verdict::modelJudgement(AttackVariant::Meltdown,
                                      ablated, options)
                  .verdict,
              ModelVerdict::Inapplicable);
    EXPECT_EQ(verdict::modelJudgement(AttackVariant::SpectreV1,
                                      ablated, options)
                  .verdict,
              ModelVerdict::Leak);

    // A mechanism in scope blocks: fencing speculative loads cuts
    // Spectre v1's transient access.
    CpuConfig fenced = base;
    fenced.defense.fenceSpeculativeLoads = true;
    const auto blocked = verdict::modelJudgement(
        AttackVariant::SpectreV1, fenced, options);
    EXPECT_EQ(blocked.verdict, ModelVerdict::Blocked);
    EXPECT_FALSE(blocked.evidence.empty());

    // Off-default timing knob: the graph carries no cycle counts,
    // the model must abstain and name the knob.
    CpuConfig timed = base;
    timed.permCheckLatency = 5;
    const auto undecided = verdict::modelJudgement(
        AttackVariant::SpectreV1, timed, options);
    EXPECT_EQ(undecided.verdict, ModelVerdict::Undecided);
    EXPECT_NE(undecided.evidence.find("permCheckLatency"),
              std::string::npos)
        << undecided.evidence;
}

// ---------------------------------------------------------------
// Cross-backend cache isolation.

TEST(VerdictCache, ModelEntriesNeverSatisfySimulatorLookups)
{
    using verdict::VerdictBackend;
    const std::string key = scenarioKey(
        AttackVariant::SpectreV1, CpuConfig{}, AttackOptions{});

    // Simulator, differential and triage share the bare key (they
    // all simulate what they store); model keys are tagged.
    EXPECT_EQ(backendCacheKey(VerdictBackend::Simulator, key), key);
    EXPECT_EQ(backendCacheKey(VerdictBackend::Differential, key),
              key);
    EXPECT_EQ(backendCacheKey(VerdictBackend::Triage, key), key);
    const std::string model_key =
        backendCacheKey(VerdictBackend::Model, key);
    EXPECT_NE(model_key, key);

    // The tagged key must fail canonical-key parsing, so persisted
    // caches refuse to carry model predictions as measurements.
    AttackVariant variant{};
    CpuConfig config;
    AttackOptions options;
    EXPECT_TRUE(parseScenarioKey(key, variant, config, options));
    EXPECT_FALSE(
        parseScenarioKey(model_key, variant, config, options));

    // End to end: a model run warms the cache, then a simulator run
    // of the same spec must not see a single hit (and vice versa:
    // the simulator's entries are invisible to a second model run's
    // lookups only through the bare key — its own tagged entries do
    // hit).
    ScenarioSpec spec;
    spec.name = "poison-check";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};

    ResultCache cache;
    CampaignEngine::Options model_opts;
    model_opts.workers = 1;
    model_opts.cache = &cache;
    model_opts.backend = VerdictBackend::Model;
    CampaignEngine(model_opts).run(spec);
    EXPECT_EQ(cache.size(), 2u);

    CampaignEngine::Options sim_opts;
    sim_opts.workers = 1;
    sim_opts.cache = &cache;
    const CampaignReport sim =
        CampaignEngine(sim_opts).run(spec);
    EXPECT_EQ(sim.cacheHits, 0u);
    EXPECT_EQ(sim.executedCount, sim.uniqueCount);

    // Both families now coexist in one cache, disjoint.
    EXPECT_EQ(cache.size(), 4u);
}

// ---------------------------------------------------------------
// Differential pin format.

TEST(Differential, JsonRoundTripsAndComparesByKey)
{
    verdict::DisagreementSet set;
    set.spec = "unit-spec";
    verdict::Disagreement d;
    d.key = "3;48;...";
    d.row = "Spectre v2";
    d.col = "Disable branch prediction";
    d.model = "blocked";
    d.simulator = "leak";
    d.evidence = "flush spliced into every mistrain->trigger edge";
    d.rationale = "stall applies to conditional branches only";
    set.disagreements.push_back(d);

    const std::string text = verdict::disagreementJson(set);
    std::string error;
    const auto parsed =
        verdict::parseDisagreementJson(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->spec, set.spec);
    ASSERT_EQ(parsed->disagreements.size(), 1u);
    EXPECT_EQ(parsed->disagreements[0], d);
    // Stable bytes: serializing the parse reproduces the text.
    EXPECT_EQ(verdict::disagreementJson(*parsed), text);

    // Pinned == fresh: no drift.
    EXPECT_TRUE(verdict::compareDisagreements(set, set).empty());

    // A fresh, unpinned disagreement drifts.
    verdict::DisagreementSet fresh = set;
    verdict::Disagreement extra = d;
    extra.key = "4;48;...";
    extra.rationale.clear(); // fresh entries carry no rationale
    fresh.disagreements.push_back(extra);
    EXPECT_EQ(verdict::compareDisagreements(set, fresh).size(), 1u);

    // A pinned divergence that vanishes drifts too.
    verdict::DisagreementSet none;
    none.spec = set.spec;
    EXPECT_EQ(verdict::compareDisagreements(set, none).size(), 1u);

    // Same key, changed verdict pair: drift, not silence.
    verdict::DisagreementSet flipped = set;
    flipped.disagreements[0].model = "leak";
    flipped.disagreements[0].simulator = "blocked";
    EXPECT_EQ(verdict::compareDisagreements(set, flipped).size(),
              1u);

    EXPECT_FALSE(
        verdict::parseDisagreementJson("{\"bogus\": 1}", &error)
            .has_value());
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------
// The triage contract over every committed golden spec: exports
// byte-identical to the simulator backend, strictly fewer cells
// simulated in aggregate, honest per-spec counters.

TEST(Triage, ByteIdenticalExportsWithStrictlyFewerSimulations)
{
    std::size_t sim_total = 0, triage_total = 0;
    std::size_t replicated_total = 0;
    for (const regress::NamedSpec &named :
         regress::registeredSpecs()) {
        CampaignEngine::Options sim_opts;
        sim_opts.workers = 1;
        const CampaignReport sim =
            CampaignEngine(sim_opts).run(named.spec);

        CampaignEngine::Options triage_opts;
        triage_opts.workers = 1;
        triage_opts.backend = verdict::VerdictBackend::Triage;
        const CampaignReport triage =
            CampaignEngine(triage_opts).run(named.spec);

        // The acceptance bar: timing-free exports byte-identical.
        EXPECT_EQ(tool::campaignJson(triage, false),
                  tool::campaignJson(sim, false))
            << named.name;
        EXPECT_EQ(tool::campaignCsv(triage, false),
                  tool::campaignCsv(sim, false))
            << named.name;

        // Executed + cached + replicated covers the unique grid.
        EXPECT_EQ(triage.executedCount + triage.cacheHits +
                      triage.replicatedCells,
                  triage.uniqueCount)
            << named.name;
        EXPECT_LE(triage.executedCount, sim.executedCount)
            << named.name;

        // Every cell carries a model verdict annotation.
        EXPECT_EQ(triage.modelDecided + triage.modelUndecided,
                  triage.uniqueCount)
            << named.name;

        sim_total += sim.executedCount;
        triage_total += triage.executedCount;
        replicated_total += triage.replicatedCells;
    }
    // Strictly fewer simulator executions across the suite, carried
    // by the option-redundant specs (table2-industry and friends).
    EXPECT_LT(triage_total, sim_total);
    EXPECT_GT(replicated_total, 0u);
}

TEST(Differential, GoldenSpecsOnlyDisagreeWherePinned)
{
    // The one known divergence lives in table2-industry; every
    // other spec must agree cell-for-cell.  (The full pin check
    // against golden/differential-*.json is specsec_regress's job;
    // this guards the counters' plumbing.)
    for (const regress::NamedSpec &named :
         regress::registeredSpecs()) {
        CampaignEngine::Options opts;
        opts.workers = 1;
        opts.backend = verdict::VerdictBackend::Differential;
        const CampaignReport report =
            CampaignEngine(opts).run(named.spec);
        EXPECT_EQ(report.modelDecided + report.modelUndecided,
                  report.uniqueCount)
            << named.name;
        if (named.name == "table2-industry") {
            EXPECT_EQ(report.disagreements, 1u) << named.name;
        } else {
            EXPECT_EQ(report.disagreements, 0u) << named.name;
        }

        // Annotations, not results: the differential export is
        // byte-identical to the simulator's through the default
        // (kVerdict-excluding) surface, and the annotations only
        // appear through the opt-in mask.
        std::set<std::string> agreements;
        for (const ScenarioOutcome &o : report.outcomes) {
            EXPECT_FALSE(o.modelVerdict.empty());
            agreements.insert(o.agreement);
            EXPECT_EQ(tool::outcomeJson(o, false)
                          .find("model_verdict"),
                      std::string::npos);
            EXPECT_NE(tool::outcomeJsonMasked(
                              o, tool::kTiming)
                          .find("model_verdict"),
                      std::string::npos);
        }
        for (const std::string &a : agreements)
            EXPECT_TRUE(a == "agree" || a == "disagree" ||
                        a == "undecided")
                << a;
    }
}

} // namespace
