/**
 * @file
 * Tests for ResultCache disk persistence: a warm-loaded cache skips
 * every cell with byte-identical exports, a stale model fingerprint
 * invalidates the file, corrupt/truncated files are ignored
 * gracefully (never fatal), save files are deterministic and
 * written atomically, and concurrent savers to one path union
 * their entries under the lock file instead of last-writer-wins.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "tool/report.hh"

namespace
{

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;

ScenarioSpec
sampleSpec()
{
    ScenarioSpec spec;
    spec.name = "persist-sample";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::Meltdown};
    spec.defenses = {{"baseline", nullptr},
                     {"fence(1)",
                      [](CpuConfig &c, AttackOptions &) {
                          c.defense.fenceSpeculativeLoads = true;
                      }}};
    spec.permCheckLatencies = {10, 30};
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

TEST(Persist, WarmLoadSkipsEveryCellByteIdentically)
{
    const ScenarioSpec spec = sampleSpec();
    const std::string path = tempPath("persist_warm.json");
    const std::string fp = modelFingerprint();

    ResultCache cold;
    CampaignEngine::Options opts;
    opts.workers = 2;
    opts.cache = &cold;
    const CampaignReport first = CampaignEngine(opts).run(spec);
    EXPECT_EQ(first.executedCount, first.uniqueCount);
    std::string error;
    ASSERT_TRUE(cold.saveToFile(path, fp, &error)) << error;

    ResultCache warm;
    ASSERT_TRUE(warm.loadFromFile(path, fp, &error)) << error;
    EXPECT_EQ(warm.size(), cold.size());
    opts.cache = &warm;
    const CampaignReport second = CampaignEngine(opts).run(spec);
    EXPECT_EQ(second.executedCount, 0u);
    EXPECT_EQ(second.cacheHits, second.uniqueCount);
    EXPECT_EQ(tool::campaignJson(second, false),
              tool::campaignJson(first, false));
    EXPECT_EQ(tool::campaignCsv(second, false),
              tool::campaignCsv(first, false));
    EXPECT_EQ(second.successMatrixText(),
              first.successMatrixText());
}

TEST(Persist, SaveIsDeterministic)
{
    const std::string a = tempPath("persist_det_a.json");
    const std::string b = tempPath("persist_det_b.json");
    const std::string fp = modelFingerprint();

    ResultCache cache;
    CampaignEngine::Options opts;
    opts.workers = 4;
    opts.cache = &cache;
    CampaignEngine(opts).run(sampleSpec());
    ASSERT_TRUE(cache.saveToFile(a, fp));
    ASSERT_TRUE(cache.saveToFile(b, fp));
    const std::string bytes = slurp(a);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, slurp(b));
    // No temp file left behind by the atomic rename.
    EXPECT_TRUE(slurp(a + ".tmp").empty());
}

TEST(Persist, ConcurrentSavesUnionInsteadOfLastWriterWins)
{
    // Two caches with disjoint entries saving to one path: each
    // save load-merge-saves under the lock file, so the second
    // writer folds in the first writer's entries instead of
    // clobbering them.
    const std::string path = tempPath("persist_union.json");
    std::remove(path.c_str());
    const std::string fp = modelFingerprint();

    ScenarioSpec specA = sampleSpec();
    specA.variants = {AttackVariant::SpectreV1};
    ScenarioSpec specB = sampleSpec();
    specB.variants = {AttackVariant::Meltdown};

    ResultCache a, b;
    CampaignEngine::Options opts;
    opts.workers = 2;
    opts.cache = &a;
    CampaignEngine(opts).run(specA);
    opts.cache = &b;
    CampaignEngine(opts).run(specB);
    ASSERT_GT(a.size(), 0u);
    ASSERT_GT(b.size(), 0u);

    std::string error;
    ASSERT_TRUE(a.saveToFile(path, fp, &error)) << error;
    ASSERT_TRUE(b.saveToFile(path, fp, &error)) << error;

    ResultCache merged;
    ASSERT_TRUE(merged.loadFromFile(path, fp, &error)) << error;
    EXPECT_EQ(merged.size(), a.size() + b.size());

    // And truly concurrent savers (many threads, one path) still
    // land every entry: the flock serializes load-merge-save.
    const std::string contended =
        tempPath("persist_contended.json");
    std::remove(contended.c_str());
    std::vector<std::thread> savers;
    for (int i = 0; i < 4; ++i)
        savers.emplace_back([&, i] {
            const ResultCache &mine = (i % 2 == 0) ? a : b;
            ASSERT_TRUE(mine.saveToFile(contended, fp));
        });
    for (std::thread &t : savers)
        t.join();
    ResultCache after;
    ASSERT_TRUE(after.loadFromFile(contended, fp, &error))
        << error;
    EXPECT_EQ(after.size(), a.size() + b.size());
}

TEST(Persist, SaveMergePreservesDeterminism)
{
    // Save A-then-B and B-then-A into two paths: the merged files
    // must be byte-identical (entries are key-sorted after the
    // merge, and every entry is a pure function of its key).
    const std::string ab = tempPath("persist_merge_ab.json");
    const std::string ba = tempPath("persist_merge_ba.json");
    std::remove(ab.c_str());
    std::remove(ba.c_str());
    const std::string fp = modelFingerprint();

    ScenarioSpec specA = sampleSpec();
    specA.variants = {AttackVariant::SpectreV1};
    ScenarioSpec specB = sampleSpec();
    specB.variants = {AttackVariant::Meltdown};
    ResultCache a, b;
    CampaignEngine::Options opts;
    opts.workers = 1;
    opts.cache = &a;
    CampaignEngine(opts).run(specA);
    opts.cache = &b;
    CampaignEngine(opts).run(specB);

    ASSERT_TRUE(a.saveToFile(ab, fp));
    ASSERT_TRUE(b.saveToFile(ab, fp));
    ASSERT_TRUE(b.saveToFile(ba, fp));
    ASSERT_TRUE(a.saveToFile(ba, fp));
    const std::string bytes = slurp(ab);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, slurp(ba));
}

TEST(Persist, StaleFingerprintInvalidatesTheFile)
{
    const std::string path = tempPath("persist_stale.json");
    ResultCache cache;
    CampaignEngine::Options opts;
    opts.workers = 1;
    opts.cache = &cache;
    CampaignEngine(opts).run(sampleSpec());
    ASSERT_TRUE(cache.saveToFile(path, modelFingerprint()));

    ResultCache fresh;
    std::string error;
    EXPECT_FALSE(fresh.loadFromFile(
        path, modelFingerprint() + "-changed", &error));
    EXPECT_NE(error.find("stale"), std::string::npos);
    EXPECT_EQ(fresh.size(), 0u);
}

TEST(Persist, CorruptOrTruncatedFilesAreIgnoredGracefully)
{
    const std::string fp = modelFingerprint();
    ResultCache cache;
    std::string error;

    // Missing file.
    EXPECT_FALSE(cache.loadFromFile(
        tempPath("persist_missing.json"), fp, &error));
    EXPECT_EQ(cache.size(), 0u);

    // Garbage.
    const std::string garbage = tempPath("persist_garbage.json");
    {
        std::ofstream f(garbage, std::ios::binary);
        f << "!!! not json at all {{{";
    }
    EXPECT_FALSE(cache.loadFromFile(garbage, fp, &error));
    EXPECT_EQ(cache.size(), 0u);

    // Truncated valid file: nothing is loaded, not even the intact
    // leading entries.
    ResultCache full;
    CampaignEngine::Options opts;
    opts.workers = 1;
    opts.cache = &full;
    CampaignEngine(opts).run(sampleSpec());
    const std::string whole = tempPath("persist_whole.json");
    ASSERT_TRUE(full.saveToFile(whole, fp));
    const std::string bytes = slurp(whole);
    const std::string truncated =
        tempPath("persist_truncated.json");
    {
        std::ofstream f(truncated, std::ios::binary);
        f << bytes.substr(0, bytes.size() * 2 / 3);
    }
    EXPECT_FALSE(cache.loadFromFile(truncated, fp, &error));
    EXPECT_EQ(cache.size(), 0u);

    // And the cache still works after all the failed loads.
    opts.cache = &cache;
    const CampaignReport report =
        CampaignEngine(opts).run(sampleSpec());
    EXPECT_EQ(report.executedCount, report.uniqueCount);
}

TEST(Persist, LoadMergesUnderFirstWriteWins)
{
    // Entries already memoized in memory are not clobbered by a
    // load; new keys from the file land alongside them.
    const std::string path = tempPath("persist_merge.json");
    const std::string fp = modelFingerprint();

    ResultCache disk;
    ResultCache::Entry entry;
    entry.result.name = "from-disk";
    entry.result.accuracy = 0.5;
    disk.store("key-a;", entry);
    ResultCache::Entry other = entry;
    other.result.name = "disk-only";
    disk.store("key-b;", other);
    ASSERT_TRUE(disk.saveToFile(path, fp));

    ResultCache cache;
    ResultCache::Entry local;
    local.result.name = "local";
    cache.store("key-a;", local);
    ASSERT_TRUE(cache.loadFromFile(path, fp));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup("key-a;")->result.name, "local");
    EXPECT_EQ(cache.lookup("key-b;")->result.name, "disk-only");
}

TEST(Persist, RoundTripPreservesResultAndStatsExactly)
{
    const std::string path = tempPath("persist_exact.json");
    const std::string fp = modelFingerprint();

    ResultCache cache;
    ResultCache::Entry entry;
    entry.result.name = "awkward \"name\"\nwith\tescapes";
    entry.result.recovered = {-1, 0, 65, 255};
    entry.result.expected = {0, 65, 255};
    entry.result.accuracy = 0.3333333333333333;
    entry.result.leaked = true;
    entry.result.guestCycles = 123456789012345ull;
    entry.result.transientForwards = 7;
    entry.stats.cycles = 999999999999ull;
    entry.stats.committed = 42;
    entry.stats.memOrderViolations = 3;
    entry.stats.speculativeFills = 5;
    entry.stats.transientForwards = 6;
    cache.store("exact-key;", entry);
    ASSERT_TRUE(cache.saveToFile(path, fp));

    ResultCache loaded;
    std::string error;
    ASSERT_TRUE(loaded.loadFromFile(path, fp, &error)) << error;
    const auto hit = loaded.lookup("exact-key;");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result.name, entry.result.name);
    EXPECT_EQ(hit->result.recovered, entry.result.recovered);
    EXPECT_EQ(hit->result.expected, entry.result.expected);
    EXPECT_EQ(hit->result.accuracy, entry.result.accuracy);
    EXPECT_EQ(hit->result.leaked, entry.result.leaked);
    EXPECT_EQ(hit->result.guestCycles, entry.result.guestCycles);
    EXPECT_EQ(hit->stats.cycles, entry.stats.cycles);
    EXPECT_EQ(hit->stats.memOrderViolations,
              entry.stats.memOrderViolations);
    EXPECT_EQ(hit->stats.speculativeFills,
              entry.stats.speculativeFills);
    EXPECT_EQ(hit->stats.transientForwards,
              entry.stats.transientForwards);
}

TEST(Persist, FingerprintCoversModelShape)
{
    const std::string fp = modelFingerprint();
    EXPECT_FALSE(fp.empty());
    EXPECT_EQ(fp, modelFingerprint());
    // The fingerprint embeds the canonical default-scenario key, so
    // it tracks every CpuConfig/AttackOptions field and default.
    const std::string key = scenarioKey(
        AttackVariant::SpectreV1, CpuConfig{}, AttackOptions{});
    EXPECT_NE(fp.find(key), std::string::npos);
}

} // namespace
