/**
 * @file
 * Tests for the predictors: bimodal training and mistraining, BTB
 * injection, RSB push/pop/underflow/stuffing — the structures the
 * Spectre family steers.
 */

#include <gtest/gtest.h>

#include "uarch/predictor.hh"

namespace
{

using namespace specsec::uarch;

TEST(BranchPredictorTest, DefaultsWeaklyTaken)
{
    BranchPredictor bp;
    EXPECT_TRUE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, MistrainTowardNotTaken)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    EXPECT_FALSE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, SaturatingCounters)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.update(0x10, false);
    // One taken outcome must not flip a saturated counter.
    bp.update(0x10, true);
    EXPECT_FALSE(bp.predictTaken(0x10));
    bp.update(0x10, true);
    EXPECT_TRUE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, PerPcState)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    EXPECT_FALSE(bp.predictTaken(0x10));
    EXPECT_TRUE(bp.predictTaken(0x20)); // untouched pc keeps default
}

TEST(BranchPredictorTest, FlushRestoresDefault)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    bp.flush();
    EXPECT_TRUE(bp.predictTaken(0x10));
    EXPECT_EQ(bp.trainedEntries(), 0u);
}

TEST(BtbTest, MissThenTrain)
{
    Btb btb;
    EXPECT_FALSE(btb.predict(0x30).has_value());
    btb.update(0x30, 0x80);
    EXPECT_EQ(btb.predict(0x30), 0x80u);
}

TEST(BtbTest, InjectionOverwrites)
{
    Btb btb;
    btb.update(0x30, 0x80);
    btb.update(0x30, 0x90); // attacker injection
    EXPECT_EQ(btb.predict(0x30), 0x90u);
}

TEST(BtbTest, Flush)
{
    Btb btb;
    btb.update(0x30, 0x80);
    btb.flush();
    EXPECT_FALSE(btb.predict(0x30).has_value());
    EXPECT_EQ(btb.entries(), 0u);
}

TEST(RsbTest, PushPopLifo)
{
    Rsb rsb(4);
    rsb.push(10);
    rsb.push(20);
    EXPECT_EQ(rsb.pop().target, 20u);
    EXPECT_EQ(rsb.pop().target, 10u);
}

TEST(RsbTest, UnderflowReportsInvalid)
{
    Rsb rsb(4);
    const Rsb::Pop pop = rsb.pop();
    EXPECT_FALSE(pop.valid); // the Spectre-RSB entry point
}

TEST(RsbTest, OverflowDropsOldest)
{
    Rsb rsb(2);
    rsb.push(1);
    rsb.push(2);
    rsb.push(3);
    EXPECT_EQ(rsb.size(), 2u);
    EXPECT_EQ(rsb.pop().target, 3u);
    EXPECT_EQ(rsb.pop().target, 2u);
    EXPECT_FALSE(rsb.pop().valid); // 1 was dropped
}

TEST(RsbTest, StuffingFillsWithBenignTarget)
{
    Rsb rsb(4);
    rsb.push(99);
    rsb.stuff(7);
    EXPECT_EQ(rsb.size(), 4u);
    // Real entry pops first, then stuffed entries.
    EXPECT_EQ(rsb.pop().target, 99u);
    const Rsb::Pop stuffed = rsb.pop();
    EXPECT_TRUE(stuffed.valid);
    EXPECT_TRUE(stuffed.stuffed);
    EXPECT_EQ(stuffed.target, 7u);
}

TEST(RsbTest, FlushEmpties)
{
    Rsb rsb(4);
    rsb.push(1);
    rsb.flush();
    EXPECT_EQ(rsb.size(), 0u);
    EXPECT_FALSE(rsb.pop().valid);
}

} // namespace
