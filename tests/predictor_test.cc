/**
 * @file
 * Tests for the predictors: bimodal training and mistraining, BTB
 * injection, RSB push/pop/underflow/stuffing — the structures the
 * Spectre family steers.
 */

#include <gtest/gtest.h>

#include "uarch/predictor.hh"

namespace
{

using namespace specsec::uarch;

TEST(BranchPredictorTest, DefaultsWeaklyTaken)
{
    BranchPredictor bp;
    EXPECT_TRUE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, MistrainTowardNotTaken)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    EXPECT_FALSE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, SaturatingCounters)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.update(0x10, false);
    // One taken outcome must not flip a saturated counter.
    bp.update(0x10, true);
    EXPECT_FALSE(bp.predictTaken(0x10));
    bp.update(0x10, true);
    EXPECT_TRUE(bp.predictTaken(0x10));
}

TEST(BranchPredictorTest, PerPcState)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    EXPECT_FALSE(bp.predictTaken(0x10));
    EXPECT_TRUE(bp.predictTaken(0x20)); // untouched pc keeps default
}

TEST(BranchPredictorTest, FlushRestoresDefault)
{
    BranchPredictor bp;
    bp.update(0x10, false);
    bp.update(0x10, false);
    bp.flush();
    EXPECT_TRUE(bp.predictTaken(0x10));
    EXPECT_EQ(bp.trainedEntries(), 0u);
}

TEST(BranchPredictorTest, GenerationResetNeverLeaksStaleTraining)
{
    // The flat table flushes by bumping a generation counter, not
    // by clearing cells: a cell written before the flush still
    // physically holds its counter.  Re-training after repeated
    // flushes must never observe those stale bytes — in-table and
    // overflow (pc >= kPredictorTableSize) alike.
    BranchPredictor bp;
    const Addr inTable = 0x10;
    const Addr overflow = kPredictorTableSize + 7;
    for (int round = 0; round < 3; ++round) {
        bp.update(inTable, false);
        bp.update(inTable, false);
        bp.update(overflow, false);
        bp.update(overflow, false);
        EXPECT_FALSE(bp.predictTaken(inTable));
        EXPECT_FALSE(bp.predictTaken(overflow));
        bp.flush();
        // Back to the weakly-taken default, as if never trained.
        EXPECT_TRUE(bp.predictTaken(inTable));
        EXPECT_TRUE(bp.predictTaken(overflow));
        EXPECT_EQ(bp.trainedEntries(), 0u);
        // One update after a flush starts from the default state,
        // not from the stale saturated counter.
        bp.update(inTable, false);
        EXPECT_FALSE(bp.predictTaken(inTable));
        bp.flush();
    }
}

TEST(BtbTest, GenerationResetNeverLeaksStaleTargets)
{
    Btb btb;
    const Addr inTable = 0x30;
    const Addr overflow = kPredictorTableSize + 11;
    for (int round = 0; round < 3; ++round) {
        btb.update(inTable, 0x80 + round);
        btb.update(overflow, 0x90 + round);
        EXPECT_EQ(btb.predict(inTable), Addr{0x80} + round);
        EXPECT_EQ(btb.predict(overflow), Addr{0x90} + round);
        EXPECT_EQ(btb.entries(), 2u);
        btb.flush();
        EXPECT_FALSE(btb.predict(inTable).has_value());
        EXPECT_FALSE(btb.predict(overflow).has_value());
        EXPECT_EQ(btb.entries(), 0u);
    }
}

TEST(BtbTest, MissThenTrain)
{
    Btb btb;
    EXPECT_FALSE(btb.predict(0x30).has_value());
    btb.update(0x30, 0x80);
    EXPECT_EQ(btb.predict(0x30), 0x80u);
}

TEST(BtbTest, InjectionOverwrites)
{
    Btb btb;
    btb.update(0x30, 0x80);
    btb.update(0x30, 0x90); // attacker injection
    EXPECT_EQ(btb.predict(0x30), 0x90u);
}

TEST(BtbTest, Flush)
{
    Btb btb;
    btb.update(0x30, 0x80);
    btb.flush();
    EXPECT_FALSE(btb.predict(0x30).has_value());
    EXPECT_EQ(btb.entries(), 0u);
}

TEST(RsbTest, PushPopLifo)
{
    Rsb rsb(4);
    rsb.push(10);
    rsb.push(20);
    EXPECT_EQ(rsb.pop().target, 20u);
    EXPECT_EQ(rsb.pop().target, 10u);
}

TEST(RsbTest, UnderflowReportsInvalid)
{
    Rsb rsb(4);
    const Rsb::Pop pop = rsb.pop();
    EXPECT_FALSE(pop.valid); // the Spectre-RSB entry point
}

TEST(RsbTest, OverflowDropsOldest)
{
    Rsb rsb(2);
    rsb.push(1);
    rsb.push(2);
    rsb.push(3);
    EXPECT_EQ(rsb.size(), 2u);
    EXPECT_EQ(rsb.pop().target, 3u);
    EXPECT_EQ(rsb.pop().target, 2u);
    EXPECT_FALSE(rsb.pop().valid); // 1 was dropped
}

TEST(RsbTest, StuffingFillsWithBenignTarget)
{
    Rsb rsb(4);
    rsb.push(99);
    rsb.stuff(7);
    EXPECT_EQ(rsb.size(), 4u);
    // Real entry pops first, then stuffed entries.
    EXPECT_EQ(rsb.pop().target, 99u);
    const Rsb::Pop stuffed = rsb.pop();
    EXPECT_TRUE(stuffed.valid);
    EXPECT_TRUE(stuffed.stuffed);
    EXPECT_EQ(stuffed.target, 7u);
}

TEST(RsbTest, FlushEmpties)
{
    Rsb rsb(4);
    rsb.push(1);
    rsb.flush();
    EXPECT_EQ(rsb.size(), 0u);
    EXPECT_FALSE(rsb.pop().valid);
}

} // namespace
