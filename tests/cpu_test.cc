/**
 * @file
 * Tests for the out-of-order core's *architectural* correctness:
 * whatever speculation happens under the hood, committed state must
 * match sequential semantics — plus the pipeline behaviours the
 * attack model depends on (mispredict recovery, precise exceptions,
 * store forwarding, memory-order violation repair, fences, squash
 * leaving cache state behind).
 */

#include <gtest/gtest.h>

#include "uarch/cpu.hh"

namespace
{

using namespace specsec::uarch;

struct CpuFixture : ::testing::Test
{
    CpuFixture() : mem(1 << 22)
    {
        pt.mapRange(0, 1 << 22, PageOwner::User, true, true);
    }

    Cpu
    makeCpu(const CpuConfig &config = {})
    {
        return Cpu(config, mem, pt);
    }

    Memory mem;
    PageTable pt;
};

TEST_F(CpuFixture, AluChain)
{
    Program p;
    p.emit(movImm(1, 6));
    p.emit(movImm(2, 7));
    p.emit(add(3, 1, 2));
    p.emit(mulImm(4, 3, 3));
    p.emit(sub(5, 4, 1));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(3), 13u);
    EXPECT_EQ(cpu.reg(4), 39u);
    EXPECT_EQ(cpu.reg(5), 33u);
}

TEST_F(CpuFixture, ShiftAndLogic)
{
    Program p;
    p.emit(movImm(1, 0xf0));
    p.emit(shlImm(2, 1, 4));
    p.emit(shrImm(3, 2, 8));
    p.emit(andImm(4, 1, 0x3c));
    p.emit(movImm(5, 0x0f));
    p.emit(orr(6, 1, 5));
    p.emit(xorr(7, 1, 1));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(2), 0xf00u);
    EXPECT_EQ(cpu.reg(3), 0xfu);
    EXPECT_EQ(cpu.reg(4), 0x30u);
    EXPECT_EQ(cpu.reg(6), 0xffu);
    EXPECT_EQ(cpu.reg(7), 0u);
}

TEST_F(CpuFixture, LoadStoreRoundTrip)
{
    Program p;
    p.emit(movImm(1, 0x1000));
    p.emit(movImm(2, 0x1234567890abcdefll));
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(store8(1, 100, 2));
    p.emit(load8(4, 1, 100));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(3), 0x1234567890abcdefull);
    EXPECT_EQ(cpu.reg(4), 0xefu);
    EXPECT_EQ(mem.read64(0x1000), 0x1234567890abcdefull);
}

TEST_F(CpuFixture, StoreToLoadForwardingBeforeCommit)
{
    // The load must see the older in-flight store's data.
    Program p;
    p.emit(movImm(1, 0x2000));
    p.emit(movImm(2, 77));
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(3), 77u);
}

TEST_F(CpuFixture, BranchTakenAndNotTaken)
{
    Program p;
    p.emit(movImm(1, 5));
    p.emit(movImm(2, 9));
    auto skip = p.newLabel();
    p.emitBranch(Cond::Ltu, 1, 2, skip); // 5 < 9: taken
    p.emit(movImm(3, 111));              // skipped
    p.bind(skip);
    auto end = p.newLabel();
    p.emitBranch(Cond::Geu, 1, 2, end);  // 5 >= 9: not taken
    p.emit(movImm(4, 222));              // executed
    p.bind(end);
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(3), 0u);
    EXPECT_EQ(cpu.reg(4), 222u);
}

TEST_F(CpuFixture, SignedConditions)
{
    Program p;
    p.emit(movImm(1, -3));
    p.emit(movImm(2, 2));
    auto t1 = p.newLabel();
    p.emitBranch(Cond::Lt, 1, 2, t1); // -3 < 2 signed: taken
    p.emit(halt());
    p.bind(t1);
    p.emit(movImm(3, 1));
    auto t2 = p.newLabel();
    p.emitBranch(Cond::Ltu, 1, 2, t2); // huge unsigned: not taken
    p.emit(movImm(4, 1));
    p.bind(t2);
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(3), 1u);
    EXPECT_EQ(cpu.reg(4), 1u);
}

TEST_F(CpuFixture, LoopExecutes)
{
    // r1 counts 0..4, r2 accumulates.
    Program p;
    p.emit(movImm(1, 0));
    p.emit(movImm(2, 0));
    p.emit(movImm(3, 5));
    const std::size_t loop = p.size();
    p.emit(add(2, 2, 1));     // body
    p.emit(addImm(1, 1, 1));
    p.emit(branch(Cond::Ltu, 1, 3, static_cast<std::int64_t>(loop)));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(2), 10u); // 0+1+2+3+4
}

TEST_F(CpuFixture, MispredictRecoveryDiscardsWrongPath)
{
    // Mistrain toward not-taken, then take the branch: wrong-path
    // register writes must not commit.
    Program p;
    p.emit(movImm(5, 1));
    auto out = p.newLabel();
    p.emitBranch(Cond::Eq, 5, 5, out); // always taken
    p.emit(movImm(6, 99));             // wrong path
    p.bind(out);
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    // Mistrain the branch toward not-taken first.
    cpu.branchPredictor().update(1, false);
    cpu.branchPredictor().update(1, false);
    cpu.setReg(6, 0);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(6), 0u);
    EXPECT_GE(cpu.stats().branchMispredicts, 1u);
    EXPECT_GE(cpu.stats().squashed, 1u);
}

TEST_F(CpuFixture, SquashLeavesCacheStateBehind)
{
    // The paper's central micro-architectural fact: squashed loads
    // leave their cache fills behind.
    Program p;
    p.emit(movImm(5, 1));
    p.emit(movImm(7, 0x3000));
    auto out = p.newLabel();
    p.emitBranch(Cond::Eq, 5, 5, out); // always taken
    p.emit(load64(6, 7, 0));           // transient load
    p.bind(out);
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.branchPredictor().update(2, false);
    cpu.branchPredictor().update(2, false);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(6), 0u);                // arch state clean
    EXPECT_TRUE(cpu.cache().contains(0x3000)); // uarch state leaked
}

TEST_F(CpuFixture, CallAndReturn)
{
    Program p;
    auto fn = p.newLabel();
    p.emitCall(fn);       // 0
    p.emit(movImm(2, 2)); // 1: after return
    p.emit(halt());       // 2
    p.bind(fn);
    p.emit(movImm(1, 1)); // 3: in function
    p.emit(ret());        // 4
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(1), 1u);
    EXPECT_EQ(cpu.reg(2), 2u);
}

TEST_F(CpuFixture, NestedCalls)
{
    Program p;
    auto f1 = p.newLabel();
    auto f2 = p.newLabel();
    p.emitCall(f1);        // 0
    p.emit(halt());        // 1
    p.bind(f1);
    p.emitCall(f2);        // 2
    p.emit(addImm(1, 1, 1)); // 3
    p.emit(ret());         // 4
    p.bind(f2);
    p.emit(addImm(1, 1, 10)); // 5
    p.emit(ret());         // 6
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setReg(1, 0);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(1), 11u);
}

TEST_F(CpuFixture, IndirectJump)
{
    Program p;
    p.emit(movImm(1, 3)); // 0
    p.emit(jmpInd(1));    // 1
    p.emit(movImm(2, 9)); // 2: skipped
    p.emit(halt());       // 3
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(2), 0u);
}

TEST_F(CpuFixture, RdTscMonotonic)
{
    Program p;
    p.emit(rdtsc(1));
    p.emit(rdtsc(2));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_GE(cpu.reg(2), cpu.reg(1));
}

TEST_F(CpuFixture, PreciseExceptionOnKernelLoad)
{
    pt.mapRange(0x100000, kPageSize, PageOwner::Kernel, false, true);
    Program p;
    p.emit(movImm(1, 0x100000));
    p.emit(load8(2, 1, 0));
    p.emit(movImm(3, 5)); // younger: must not commit
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::User);
    cpu.setReg(3, 0);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault, FaultKind::Privilege);
    EXPECT_EQ(r.faultPc, 1u);
    EXPECT_EQ(cpu.reg(2), 0u);
    EXPECT_EQ(cpu.reg(3), 0u); // squashed, not committed
}

TEST_F(CpuFixture, FaultHandlerRedirects)
{
    pt.mapRange(0x100000, kPageSize, PageOwner::Kernel, false, true);
    Program p;
    p.emit(movImm(1, 0x100000));
    p.emit(load8(2, 1, 0)); // faults
    p.emit(halt());         // 2: skipped
    p.emit(movImm(4, 7));   // 3: handler
    p.emit(halt());         // 4
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::User);
    cpu.setFaultHandler(3);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.fault, FaultKind::Privilege); // recorded
    EXPECT_EQ(cpu.reg(4), 7u);                // handler ran
}

TEST_F(CpuFixture, KernelCanReadKernelPages)
{
    pt.mapRange(0x100000, kPageSize, PageOwner::Kernel, false, true);
    mem.write8(0x100000, 0x5a);
    Program p;
    p.emit(movImm(1, 0x100000));
    p.emit(load8(2, 1, 0));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::Kernel);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(2), 0x5au);
}

TEST_F(CpuFixture, MemoryOrderViolationRepaired)
{
    // A load that bypasses an older store to the same address must
    // be squashed and re-executed with the right value.
    mem.write64(0x4000, 0xdead);      // stale
    mem.write64(0x5000, 0x4000);      // pointer to the slot
    Program p;
    p.emit(movImm(1, 0x5000));
    p.emit(load64(2, 1, 0));  // slow address (flushed)
    p.emit(movImm(3, 0xfeed));
    p.emit(store64(2, 0, 3)); // store through pointer
    p.emit(movImm(4, 0x4000));
    p.emit(load64(5, 4, 0));  // bypasses, then repairs
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.flushLineVirt(0x5000);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(5), 0xfeedu); // architecturally correct
    EXPECT_GE(cpu.stats().memOrderViolations, 1u);
}

TEST_F(CpuFixture, PartialStoreOverlapStallsLoad)
{
    // A byte store followed by a word load covering it cannot
    // forward; the load must wait for the drain and read the
    // merged value (regression test for a fuzzer-found bug).
    mem.write64(0x4100, 0x1111111111111111ull);
    Program p;
    p.emit(movImm(1, 0x4100));
    p.emit(movImm(2, 0xff));
    p.emit(store8(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(3), 0x11111111111111ffull);
}

TEST_F(CpuFixture, MisalignedForwardStallsLoad)
{
    // Word store, byte load into its middle: no exact-address
    // forward; the load waits for the drain.
    Program p;
    p.emit(movImm(1, 0x4200));
    p.emit(movImm(2, 0x0011223344556677ll));
    p.emit(store64(1, 0, 2));
    p.emit(load8(3, 1, 3));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(3), 0x44u);
}

TEST_F(CpuFixture, LfenceStillComputesCorrectly)
{
    Program p;
    p.emit(movImm(1, 3));
    p.emit(lfence());
    p.emit(addImm(2, 1, 4));
    p.emit(mfence());
    p.emit(addImm(3, 2, 5));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(3), 12u);
}

TEST_F(CpuFixture, LfenceDelaysYoungerLoads)
{
    Program with_fence, without_fence;
    for (Program *p : {&with_fence, &without_fence}) {
        p->emit(movImm(1, 0x6000));
        p->emit(load64(2, 1, 0));
        if (p == &with_fence)
            p->emit(lfence());
        p->emit(load64(3, 1, 8));
        p->emit(halt());
    }
    Cpu cpu1 = makeCpu();
    cpu1.loadProgram(without_fence);
    const RunResult fast = cpu1.run(0);
    Cpu cpu2 = makeCpu();
    cpu2.loadProgram(with_fence);
    const RunResult slow = cpu2.run(0);
    EXPECT_GT(slow.cycles, fast.cycles);
}

TEST_F(CpuFixture, ClflushEvictsLine)
{
    Program p;
    p.emit(movImm(1, 0x7000));
    p.emit(load64(2, 1, 0)); // warm
    p.emit(clflush(1, 0));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_FALSE(cpu.cache().contains(0x7000));
}

TEST_F(CpuFixture, RdMsrPrivileged)
{
    Program p;
    p.emit(rdmsr(1, 5));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setMsr(5, 0xabc);
    cpu.setPrivilege(Privilege::Kernel);
    EXPECT_TRUE(cpu.run(0).halted);
    EXPECT_EQ(cpu.reg(1), 0xabcu);

    cpu.setPrivilege(Privilege::User);
    cpu.setReg(1, 0);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault, FaultKind::MsrPrivilege);
    EXPECT_EQ(cpu.reg(1), 0u);
}

TEST_F(CpuFixture, FpMovAndRead)
{
    Program p;
    p.emit(movImm(1, 1234));
    p.emit(fpMov(2, 1));
    p.emit(fpRead(3, 2));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(3), 1234u);
    EXPECT_EQ(cpu.fpu().read(2), 1234u);
}

TEST_F(CpuFixture, TransactionCommitsWithoutAbort)
{
    Program p;
    auto abort_lbl = p.newLabel();
    p.emitXBegin(abort_lbl);
    p.emit(movImm(1, 5));
    p.emit(xend());
    p.emit(halt());
    p.bind(abort_lbl);
    p.emit(movImm(2, 9));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setReg(2, 0);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(1), 5u);
    EXPECT_EQ(cpu.reg(2), 0u); // abort path not taken
}

TEST_F(CpuFixture, TransactionAbortsOnFaultingLoad)
{
    Program p;
    auto abort_lbl = p.newLabel();
    p.emitXBegin(abort_lbl);
    p.emit(movImm(1, 0x700000)); // unmapped in this fixture? map all
    p.emit(load64(2, 1, 0));
    p.emit(xend());
    p.emit(halt());
    p.bind(abort_lbl);
    p.emit(movImm(3, 1)); // abort handler
    p.emit(halt());
    // Use an unmapped address: remap fixture covers 4MB, use beyond.
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.setReg(3, 0);
    // 0x700000 is beyond the 4MB mapping -> NotMapped fault in txn.
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_FALSE(r.faulted); // abort, not an exception
    EXPECT_EQ(cpu.reg(3), 1u);
}

TEST_F(CpuFixture, RunRespectsCycleBudget)
{
    Program p;
    p.emit(jmp(0)); // infinite loop
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    const RunResult r = cpu.run(0, 500);
    EXPECT_FALSE(r.halted);
    EXPECT_GE(r.cycles, 500u);
}

TEST_F(CpuFixture, RenameHandlesRegisterReuse)
{
    Program p;
    p.emit(movImm(1, 1));
    p.emit(addImm(1, 1, 1)); // r1 = 2
    p.emit(addImm(1, 1, 1)); // r1 = 3
    p.emit(add(2, 1, 1));    // r2 = 6
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_EQ(cpu.reg(1), 3u);
    EXPECT_EQ(cpu.reg(2), 6u);
}

TEST_F(CpuFixture, StatsAccumulate)
{
    Program p;
    p.emit(movImm(1, 1));
    p.emit(halt());
    Cpu cpu = makeCpu();
    cpu.loadProgram(p);
    cpu.run(0);
    EXPECT_GE(cpu.stats().committed, 2u);
    EXPECT_GT(cpu.stats().cycles, 0u);
    cpu.resetStats();
    EXPECT_EQ(cpu.stats().committed, 0u);
}

TEST_F(CpuFixture, ContextSwitchAppliesDefenses)
{
    CpuConfig cfg;
    cfg.defense.flushPredictorOnContextSwitch = true;
    cfg.defense.clearBuffersOnContextSwitch = true;
    Cpu cpu = makeCpu(cfg);
    cpu.btb().update(5, 9);
    cpu.lineFillBuffer().recordFill(0x100, 7);
    cpu.contextSwitch(1);
    EXPECT_FALSE(cpu.btb().predict(5).has_value());
    EXPECT_FALSE(cpu.lineFillBuffer().residue().has_value());
    EXPECT_EQ(cpu.context(), 1);
}

TEST_F(CpuFixture, TimedProbeDoesNotAllocate)
{
    Cpu cpu = makeCpu();
    EXPECT_EQ(cpu.timedProbe(0x8000),
              cpu.config().cache.missLatency);
    EXPECT_FALSE(cpu.cache().contains(0x8000));
    EXPECT_EQ(cpu.timedAccess(0x8000),
              cpu.config().cache.missLatency);
    EXPECT_TRUE(cpu.cache().contains(0x8000));
    EXPECT_EQ(cpu.timedProbe(0x8000), cpu.config().cache.hitLatency);
}

TEST_F(CpuFixture, NoBranchPredictionSerializesFetch)
{
    CpuConfig cfg;
    cfg.defense.noBranchPrediction = true;
    Program p;
    p.emit(movImm(1, 1));
    auto out = p.newLabel();
    p.emitBranch(Cond::Eq, 1, 1, out);
    p.emit(movImm(2, 9)); // never fetched speculatively
    p.bind(out);
    p.emit(halt());
    Cpu cpu = makeCpu(cfg);
    cpu.loadProgram(p);
    cpu.setReg(2, 0);
    const RunResult r = cpu.run(0);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.reg(2), 0u);
    EXPECT_EQ(cpu.stats().branchMispredicts, 0u);
}

} // namespace
