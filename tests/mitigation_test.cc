/**
 * @file
 * Tests for the runnable mitigation layer: mechanism -> simulator
 * mapping, program transforms, and the Table II property that each
 * industry defense blocks the attacks it was designed against.
 */

#include <gtest/gtest.h>

#include "attacks/runner.hh"
#include "defense/mitigations.hh"

namespace
{

using namespace specsec;
using namespace specsec::defense;
using attacks::AttackOptions;
using attacks::AttackResult;
using core::AttackVariant;
using core::DefenseMechanism;
using uarch::CpuConfig;
using uarch::Opcode;
using uarch::Program;

TEST(Mitigations, MappingSetsExpectedFlags)
{
    CpuConfig cfg;
    AttackOptions opt;
    EXPECT_TRUE(applyMitigation(DefenseMechanism::Kpti, cfg, opt));
    EXPECT_TRUE(opt.kpti);

    cfg = CpuConfig{};
    opt = AttackOptions{};
    applyMitigation(DefenseMechanism::Stt, cfg, opt);
    EXPECT_TRUE(cfg.defense.blockTaintedTransmit);

    cfg = CpuConfig{};
    opt = AttackOptions{};
    applyMitigation(DefenseMechanism::Retpoline, cfg, opt);
    EXPECT_TRUE(cfg.defense.noIndirectPrediction);

    cfg = CpuConfig{};
    opt = AttackOptions{};
    applyMitigation(DefenseMechanism::LFence, cfg, opt);
    EXPECT_TRUE(opt.softwareLfence);

    cfg = CpuConfig{};
    opt = AttackOptions{};
    applyMitigation(DefenseMechanism::Ssbs, cfg, opt);
    EXPECT_TRUE(cfg.defense.safeStoreBypass);
}

TEST(Mitigations, EveryMechanismHasARealization)
{
    for (DefenseMechanism m : core::allDefenseMechanisms()) {
        CpuConfig cfg;
        AttackOptions opt;
        EXPECT_TRUE(applyMitigation(m, cfg, opt))
            << core::defenseInfo(m).name;
    }
}

TEST(Mitigations, LfenceInsertionAfterBranches)
{
    Program p;
    p.emit(uarch::movImm(1, 0));
    p.emit(uarch::branch(uarch::Cond::Eq, 1, 1, 4));
    p.emit(uarch::load8(2, 1, 0));
    p.emit(uarch::halt());
    const std::size_t inserted = insertLfenceAfterBranches(p);
    EXPECT_EQ(inserted, 1u);
    EXPECT_EQ(p.at(2).op, Opcode::Lfence);
    EXPECT_EQ(p.at(1).imm, 5); // branch target shifted
}

TEST(Mitigations, StoreLoadBarrierInsertion)
{
    Program p;
    p.emit(uarch::store64(1, 0, 2));
    p.emit(uarch::movImm(3, 1));
    p.emit(uarch::load64(4, 1, 0));
    p.emit(uarch::halt());
    const std::size_t inserted = insertStoreLoadBarriers(p);
    EXPECT_EQ(inserted, 1u);
    EXPECT_EQ(p.at(2).op, Opcode::Lfence);
    EXPECT_EQ(p.at(3).op, Opcode::Load);
}

TEST(Mitigations, MaskInsertion)
{
    Program p;
    p.emit(uarch::branch(uarch::Cond::Geu, 1, 5, 3));
    p.emit(uarch::add(7, 3, 1));
    p.emit(uarch::halt());
    insertMaskAfterBranch(p, 0, 1, 0xf);
    EXPECT_EQ(p.at(1).op, Opcode::AndImm);
    EXPECT_EQ(p.at(1).imm, 0xf);
}

/** Table II reproduced as a property: every industry mechanism
 *  blocks each attack it is designed against. */
struct TableIICase
{
    DefenseMechanism mechanism;
    AttackVariant variant;
};

class TableIIDefense : public ::testing::TestWithParam<TableIICase>
{
};

TEST_P(TableIIDefense, MechanismBlocksDesignedAttack)
{
    CpuConfig cfg;
    AttackOptions opt;
    ASSERT_TRUE(applyMitigation(GetParam().mechanism, cfg, opt));
    const AttackResult defended =
        attacks::runVariant(GetParam().variant, cfg, opt);
    EXPECT_FALSE(defended.leaked)
        << core::defenseInfo(GetParam().mechanism).name << " vs "
        << core::variantInfo(GetParam().variant).name
        << " accuracy " << defended.accuracy;
    // And the attack does leak without the mechanism.
    const AttackResult bare =
        attacks::runVariant(GetParam().variant, CpuConfig{});
    EXPECT_TRUE(bare.leaked);
}

std::vector<TableIICase>
tableIICases()
{
    using enum DefenseMechanism;
    using enum AttackVariant;
    return {
        {LFence, SpectreV1},
        {LFence, SpectreV1_1},
        {LFence, SpectreV1_2},
        {MFence, SpectreV1},
        {Kaiser, Meltdown},
        {Kpti, Meltdown},
        {DisableBranchPrediction, SpectreV1},
        {DisableBranchPrediction, SpectreV1_1},
        {Ibrs, SpectreV2},
        {Stibp, SpectreV2},
        {Ibpb, SpectreV2},
        {InvalidatePredictorOnContextSwitch, SpectreV2},
        {Retpoline, SpectreV2},
        {CoarseAddressMasking, SpectreV1},
        {DataDependentAddressMasking, SpectreV1_1},
        {Ssbb, SpectreV4},
        {Ssbs, SpectreV4},
        {RsbStuffing, SpectreRsb},
        {ContextSensitiveFencing, SpectreV1},
        {Sabc, SpectreV1},
        {Nda, Meltdown},
        {Nda, Ridl},
        {SpectreGuard, SpectreV1},
        {ConTExT, ZombieLoad},
        {SpecShield, LazyFp},
        {Stt, SpectreV1},
        {Stt, Meltdown},
        {InvisiSpec, SpectreV1},
        {SafeSpec, Meltdown},
        {ConditionalSpeculation, SpectreV1},
        {EfficientInvisibleSpeculation, Meltdown},
        {CleanupSpec, SpectreV1},
        {CleanupSpec, Foreshadow},
        {Dawg, SpectreV2},
    };
}

INSTANTIATE_TEST_SUITE_P(
    TableII, TableIIDefense, ::testing::ValuesIn(tableIICases()),
    [](const ::testing::TestParamInfo<TableIICase> &info) {
        std::string name =
            std::string(
                core::defenseInfo(info.param.mechanism).name) +
            "_vs_" + core::variantInfo(info.param.variant).name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
