/**
 * @file
 * End-to-end attack tests on the simulator: every cataloged variant
 * leaks the planted secret on a vulnerable baseline (Flush+Reload
 * and Prime+Probe), and is stopped by its canonical defense.
 */

#include <gtest/gtest.h>

#include "attacks/runner.hh"

namespace
{

using namespace specsec;
using namespace specsec::attacks;
using core::AttackVariant;
using core::CovertChannelKind;

std::string
variantName(const ::testing::TestParamInfo<AttackVariant> &info)
{
    std::string name = core::variantInfo(info.param).name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class AttackLeaks : public ::testing::TestWithParam<AttackVariant>
{
};

TEST_P(AttackLeaks, VulnerableBaselineLeaksFlushReload)
{
    const AttackResult r = runVariant(GetParam(), CpuConfig{});
    EXPECT_TRUE(r.leaked) << r.name << " accuracy " << r.accuracy;
    EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST_P(AttackLeaks, VulnerableBaselineLeaksPrimeProbe)
{
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "Spoiler is a timing attack, not a cache "
                        "covert channel";
    AttackOptions opt;
    opt.channel = CovertChannelKind::PrimeProbe;
    const AttackResult r = runVariant(GetParam(), CpuConfig{}, opt);
    EXPECT_TRUE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, HardwareFencingBlocks)
{
    // Strategy 1 in hardware stops every variant.
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "Spoiler leaks addresses through committed "
                        "timing, not transient execution";
    CpuConfig cfg;
    cfg.defense.fenceSpeculativeLoads = true;
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, NdaForwardingBlockBlocks)
{
    // Strategy 2 (NDA-style no-forwarding) stops every variant.
    CpuConfig cfg;
    cfg.defense.blockSpeculativeForwarding = true;
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "not a transient-forwarding attack";
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, SttTaintTrackingBlocks)
{
    // Strategy 3 (STT-style tainted-transmit blocking).
    CpuConfig cfg;
    cfg.defense.blockTaintedTransmit = true;
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "not a transient-forwarding attack";
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, InvisibleSpeculationBlocks)
{
    CpuConfig cfg;
    cfg.defense.invisibleSpeculation = true;
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "not a cache-channel attack";
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, CleanupSpecBlocks)
{
    CpuConfig cfg;
    cfg.defense.cleanupSpec = true;
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "not a cache-channel attack";
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

TEST_P(AttackLeaks, ConditionalSpeculationBlocks)
{
    CpuConfig cfg;
    cfg.defense.conditionalSpeculation = true;
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "not a cache-channel attack";
    const AttackResult r = runVariant(GetParam(), cfg);
    EXPECT_FALSE(r.leaked) << r.name << " accuracy " << r.accuracy;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AttackLeaks,
                         ::testing::ValuesIn(core::allVariants()),
                         variantName);

TEST(AttackSpecific, SpectreV1NeedsDelayedAuthorization)
{
    // Section III step 2 is necessary: when the bound is cached the
    // branch resolves before the transient chain can send, and the
    // attack fails with no defense at all.
    AttackOptions opt;
    opt.delayAuthorization = false;
    const AttackResult r = runSpectreV1(CpuConfig{}, opt);
    EXPECT_FALSE(r.leaked) << "accuracy " << r.accuracy;
}

TEST(AttackSpecific, SpectreV1RecoversFullSecret)
{
    AttackOptions opt;
    opt.secretLen = 16;
    const AttackResult r = runSpectreV1(CpuConfig{}, opt);
    ASSERT_EQ(r.recovered.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(r.recovered[i], static_cast<int>(r.expected[i]));
}

TEST(AttackSpecific, SpectreV1SoftwareLfenceBlocks)
{
    AttackOptions opt;
    opt.softwareLfence = true;
    EXPECT_FALSE(runSpectreV1(CpuConfig{}, opt).leaked);
    EXPECT_FALSE(runSpectreV1_1(CpuConfig{}, opt).leaked);
    EXPECT_FALSE(runSpectreV1_2(CpuConfig{}, opt).leaked);
}

TEST(AttackSpecific, SpectreV1AddressMaskingBlocks)
{
    AttackOptions opt;
    opt.addressMasking = true;
    EXPECT_FALSE(runSpectreV1(CpuConfig{}, opt).leaked);
    EXPECT_FALSE(runSpectreV1_1(CpuConfig{}, opt).leaked);
}

TEST(AttackSpecific, SpectreV2PredictorFlushBlocks)
{
    CpuConfig cfg;
    cfg.defense.flushPredictorOnContextSwitch = true;
    EXPECT_FALSE(runSpectreV2(cfg).leaked);
}

TEST(AttackSpecific, SpectreV2RetpolineBlocks)
{
    CpuConfig cfg;
    cfg.defense.noIndirectPrediction = true;
    EXPECT_FALSE(runSpectreV2(cfg).leaked);
}

TEST(AttackSpecific, SpectreV1NoBranchPredictionBlocks)
{
    CpuConfig cfg;
    cfg.defense.noBranchPrediction = true;
    EXPECT_FALSE(runSpectreV1(cfg).leaked);
}

TEST(AttackSpecific, SpectreV4SsbsBlocks)
{
    CpuConfig cfg;
    cfg.defense.safeStoreBypass = true;
    EXPECT_FALSE(runSpectreV4(cfg).leaked);
}

TEST(AttackSpecific, SpectreV4FixedSiliconBlocks)
{
    CpuConfig cfg;
    cfg.vuln.storeBypass = false;
    EXPECT_FALSE(runSpectreV4(cfg).leaked);
}

TEST(AttackSpecific, SpectreRsbStuffingBlocks)
{
    AttackOptions opt;
    opt.rsbStuffing = true;
    EXPECT_FALSE(runSpectreRsb(CpuConfig{}, opt).leaked);
}

TEST(AttackSpecific, MeltdownKptiBlocks)
{
    AttackOptions opt;
    opt.kpti = true;
    EXPECT_FALSE(runMeltdown(CpuConfig{}, opt).leaked);
}

TEST(AttackSpecific, MeltdownFixedSiliconBlocks)
{
    CpuConfig cfg;
    cfg.vuln.meltdown = false;
    EXPECT_FALSE(runMeltdown(cfg).leaked);
}

TEST(AttackSpecific, ForeshadowSurvivesMeltdownOnlyFix)
{
    // Historically accurate: post-Meltdown silicon was still
    // L1TF-vulnerable.  This is the paper's Fig. 4 insufficiency
    // argument made executable.
    CpuConfig cfg;
    cfg.vuln.meltdown = false;
    EXPECT_TRUE(runForeshadow(cfg).leaked);
    cfg.vuln.l1tf = false;
    cfg.vuln.mds = false;
    EXPECT_FALSE(runForeshadow(cfg).leaked);
}

TEST(AttackSpecific, ForeshadowL1FlushBlocks)
{
    AttackOptions opt;
    opt.flushL1OnExit = true;
    EXPECT_FALSE(runForeshadow(CpuConfig{}, opt).leaked);
    EXPECT_FALSE(runForeshadowOs(CpuConfig{}, opt).leaked);
    EXPECT_FALSE(runForeshadowVmm(CpuConfig{}, opt).leaked);
}

TEST(AttackSpecific, MdsVerwBlocks)
{
    CpuConfig cfg;
    cfg.defense.clearBuffersOnContextSwitch = true;
    EXPECT_FALSE(runRidl(cfg).leaked);
    EXPECT_FALSE(runZombieLoad(cfg).leaked);
    EXPECT_FALSE(runFallout(cfg).leaked);
    EXPECT_FALSE(runTaa(cfg).leaked);
}

TEST(AttackSpecific, TaaSurvivesMdsOnlyFix)
{
    // Cascade Lake fixed MDS but remained TAA-vulnerable.
    CpuConfig cfg;
    cfg.vuln.mds = false;
    EXPECT_TRUE(runTaa(cfg).leaked);
    EXPECT_FALSE(runRidl(cfg).leaked);
    cfg.vuln.taa = false;
    EXPECT_FALSE(runTaa(cfg).leaked);
}

TEST(AttackSpecific, LazyFpEagerSwitchBlocks)
{
    CpuConfig cfg;
    cfg.defense.eagerFpuSwitch = true;
    EXPECT_FALSE(runLazyFp(cfg).leaked);
}

TEST(AttackSpecific, MeltdownV3aMsrFixBlocks)
{
    CpuConfig cfg;
    cfg.vuln.msr = false;
    EXPECT_FALSE(runMeltdownV3a(cfg).leaked);
}

TEST(AttackSpecific, DawgBlocksCrossDomainOnly)
{
    CpuConfig cfg;
    cfg.defense.partitionedCache = true;
    // Cross-domain (attacker != victim context): blocked.
    EXPECT_FALSE(runSpectreV2(cfg).leaked);
    // Same-domain (in-process v1): DAWG does not help, exactly as
    // the paper's strategy analysis predicts for same-domain races.
    EXPECT_TRUE(runSpectreV1(cfg).leaked);
}

TEST(AttackSpecific, TransientForwardsCounted)
{
    const AttackResult r = runMeltdown(CpuConfig{});
    EXPECT_GT(r.transientForwards, 0u);
}

TEST(AttackSpecific, SpoilerRecoversAliasIndex)
{
    const AttackResult r = runSpoiler(CpuConfig{});
    EXPECT_TRUE(r.leaked);
    ASSERT_EQ(r.recovered.size(), 1u);
    EXPECT_EQ(r.recovered[0], static_cast<int>(r.expected[0]));
}

TEST(AttackSpecific, SpoilerBlockedWithoutAliasPenalties)
{
    CpuConfig cfg;
    cfg.partialAliasPenalty = 0;
    cfg.physAliasPenalty = 0;
    EXPECT_FALSE(runSpoiler(cfg).leaked);
}

} // namespace
