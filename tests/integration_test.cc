/**
 * @file
 * Cross-layer integration tests: the paper's central scientific
 * claim, validated end to end.  For every cataloged variant, the
 * *model-level* verdict (attack graph race analysis, Theorem 1)
 * must agree with the *simulator-level* outcome (does the executable
 * attack leak?), both undefended and under each defense strategy.
 */

#include <gtest/gtest.h>

#include "attacks/runner.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

namespace
{

using namespace specsec;
using attacks::AttackOptions;
using attacks::AttackResult;
using core::AttackGraph;
using core::AttackVariant;
using core::DefenseStrategy;
using uarch::CpuConfig;

std::string
variantName(const ::testing::TestParamInfo<AttackVariant> &info)
{
    std::string name = core::variantInfo(info.param).name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class ModelVsSimulator
    : public ::testing::TestWithParam<AttackVariant>
{
};

TEST_P(ModelVsSimulator, UndefendedAgreement)
{
    const AttackGraph g = core::buildAttackGraph(GetParam());
    const AttackResult r = attacks::runVariant(GetParam(),
                                               CpuConfig{});
    EXPECT_EQ(g.isVulnerable(), r.leaked)
        << "model and simulator disagree for "
        << core::variantInfo(GetParam()).name;
}

TEST_P(ModelVsSimulator, Strategy1Agreement)
{
    // Model: insert access security dependencies.  Simulator:
    // hardware fencing of speculative loads.
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "timing attack outside strategy-1 scope";
    AttackGraph g = core::buildAttackGraph(GetParam());
    const bool model_blocked =
        core::defenseBlocks(g, DefenseStrategy::PreventAccess);
    CpuConfig cfg;
    cfg.defense.fenceSpeculativeLoads = true;
    const AttackResult r = attacks::runVariant(GetParam(), cfg);
    EXPECT_TRUE(model_blocked);
    EXPECT_FALSE(r.leaked);
}

TEST_P(ModelVsSimulator, Strategy2Agreement)
{
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "timing attack outside strategy-2 scope";
    AttackGraph g = core::buildAttackGraph(GetParam());
    const bool model_blocked =
        core::defenseBlocks(g, DefenseStrategy::PreventUse);
    CpuConfig cfg;
    cfg.defense.blockSpeculativeForwarding = true;
    const AttackResult r = attacks::runVariant(GetParam(), cfg);
    EXPECT_TRUE(model_blocked);
    EXPECT_FALSE(r.leaked);
}

TEST_P(ModelVsSimulator, Strategy3Agreement)
{
    if (GetParam() == AttackVariant::Spoiler)
        GTEST_SKIP() << "timing attack outside strategy-3 scope";
    AttackGraph g = core::buildAttackGraph(GetParam());
    const bool model_blocked =
        core::defenseBlocks(g, DefenseStrategy::PreventSend);
    CpuConfig cfg;
    cfg.defense.invisibleSpeculation = true;
    const AttackResult r = attacks::runVariant(GetParam(), cfg);
    EXPECT_TRUE(model_blocked);
    EXPECT_FALSE(r.leaked);
}

TEST_P(ModelVsSimulator, Strategy4Agreement)
{
    // Strategy 4 applies exactly to the mistraining variants, at
    // both the model level and on the simulator.
    const bool mistrained =
        core::variantInfo(GetParam()).requiresMistraining;
    AttackGraph g = core::buildAttackGraph(GetParam());
    const bool model_blocked =
        core::defenseBlocks(g, DefenseStrategy::ClearPredictions);
    EXPECT_EQ(model_blocked, mistrained);

    if (!mistrained)
        return;
    // Simulator realization: v2/RSB mistrain across contexts and
    // are stopped by the context-switch predictor flush; the v1
    // family mistrains the bimodal predictor, whose flush restores
    // the safe taken default.
    if (GetParam() == AttackVariant::SpectreV2 ||
        GetParam() == AttackVariant::SpectreRsb) {
        CpuConfig cfg;
        cfg.defense.flushPredictorOnContextSwitch = true;
        EXPECT_FALSE(attacks::runVariant(GetParam(), cfg).leaked);
    } else {
        CpuConfig cfg;
        cfg.defense.noBranchPrediction = true;
        EXPECT_FALSE(attacks::runVariant(GetParam(), cfg).leaked);
    }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ModelVsSimulator,
                         ::testing::ValuesIn(core::allVariants()),
                         variantName);

TEST(Integration, Figure4InsufficiencyHoldsOnSimulator)
{
    // Model: covering only the memory source leaves the cache
    // source open.  Simulator: fixing only the Meltdown (memory)
    // path leaves Foreshadow (cache) leaking.
    AttackGraph g = core::buildFigure4Graph();
    const auto auth = g.authorizationNodes().front();
    const auto memory_read =
        g.tsg().findByLabel("Read S from memory");
    ASSERT_TRUE(memory_read.has_value());
    core::applyTargetedDependency(g, auth, *memory_read);
    EXPECT_TRUE(g.isVulnerable()); // model: still vulnerable

    CpuConfig cfg;
    cfg.vuln.meltdown = false; // "fix" the memory path only
    EXPECT_FALSE(attacks::runMeltdown(cfg).leaked);
    EXPECT_TRUE(attacks::runForeshadow(cfg).leaked); // cache path
}

TEST(Integration, PerChannelAgreement)
{
    // The model is channel-agnostic: both channels leak when the
    // race exists.
    for (const auto kind : {core::CovertChannelKind::FlushReload,
                            core::CovertChannelKind::PrimeProbe}) {
        const AttackGraph g = core::buildAttackGraph(
            AttackVariant::SpectreV1, kind);
        EXPECT_TRUE(g.isVulnerable());
        AttackOptions opt;
        opt.channel = kind;
        EXPECT_TRUE(attacks::runSpectreV1(CpuConfig{}, opt).leaked);
    }
}

TEST(Integration, DefenseOverheadOrdering)
{
    // The paper's performance narrative: strategy 1 (no access
    // before authorization) costs more than strategy 3 (only sends
    // wait), which costs more than no defense -- measured on the
    // committed (correct-path) portion of the Spectre v1 scenario.
    const auto cycles = [](const CpuConfig &cfg) {
        AttackOptions opt;
        opt.secretLen = 8;
        return attacks::runSpectreV1(cfg, opt).guestCycles;
    };
    CpuConfig baseline;
    CpuConfig strategy1;
    strategy1.defense.fenceSpeculativeLoads = true;
    CpuConfig strategy3;
    strategy3.defense.invisibleSpeculation = true;
    const auto base_cycles = cycles(baseline);
    const auto s1_cycles = cycles(strategy1);
    const auto s3_cycles = cycles(strategy3);
    EXPECT_GT(s1_cycles, base_cycles);
    EXPECT_GE(s1_cycles, s3_cycles);
}

} // namespace
