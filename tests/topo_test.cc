/**
 * @file
 * Tests for topological orderings, including the paper's Fig. 2
 * example graph and its S / S' / S'' orderings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "graph/topo.hh"

namespace
{

using namespace specsec::graph;

/** The paper's Fig. 2 TSG: A->B, A->C, B->D, C->D, C->E, D->F,
 *  E->F, F->G.  Node ids: A=0 B=1 C=2 D=3 E=4 F=5 G=6. */
Tsg
figure2()
{
    Tsg g;
    const NodeId a = g.addNode("A");
    const NodeId b = g.addNode("B");
    const NodeId c = g.addNode("C");
    const NodeId d = g.addNode("D");
    const NodeId e = g.addNode("E");
    const NodeId f = g.addNode("F");
    const NodeId gg = g.addNode("G");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.addEdge(c, e);
    g.addEdge(d, f);
    g.addEdge(e, f);
    g.addEdge(f, gg);
    return g;
}

TEST(Topo, SortOfEmptyGraph)
{
    Tsg g;
    EXPECT_TRUE(topologicalSort(g).empty());
}

TEST(Topo, SortRespectsEdges)
{
    const Tsg g = figure2();
    const auto order = topologicalSort(g);
    ASSERT_EQ(order.size(), g.nodeCount());
    EXPECT_TRUE(isValidOrdering(g, order));
}

TEST(Topo, SortIsDeterministic)
{
    const Tsg g = figure2();
    EXPECT_EQ(topologicalSort(g), topologicalSort(g));
}

TEST(Topo, PaperOrderingSIsValid)
{
    // S = [A, B, C, D, E, F, G]
    const Tsg g = figure2();
    EXPECT_TRUE(isValidOrdering(g, {0, 1, 2, 3, 4, 5, 6}));
}

TEST(Topo, PaperOrderingSPrimeIsValid)
{
    // S' = [A, C, E, B, D, F, G]
    const Tsg g = figure2();
    EXPECT_TRUE(isValidOrdering(g, {0, 2, 4, 1, 3, 5, 6}));
}

TEST(Topo, PaperOrderingSDoublePrimeIsInvalid)
{
    // S'' = [A, B, D, E, C, F, G]: D before C violates C -> D.
    const Tsg g = figure2();
    EXPECT_FALSE(isValidOrdering(g, {0, 1, 3, 4, 2, 5, 6}));
}

TEST(Topo, OrderingMustContainEveryNodeOnce)
{
    const Tsg g = figure2();
    EXPECT_FALSE(isValidOrdering(g, {0, 1, 2, 3, 4, 5}));
    EXPECT_FALSE(isValidOrdering(g, {0, 0, 2, 3, 4, 5, 6}));
    EXPECT_FALSE(isValidOrdering(g, {0, 1, 2, 3, 4, 5, 9}));
}

TEST(Topo, AllOrderingsOfChainIsOne)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    g.addEdge(a, b);
    g.addEdge(b, c);
    const auto all = allValidOrderings(g);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], (std::vector<NodeId>{a, b, c}));
}

TEST(Topo, AllOrderingsOfAntichainIsFactorial)
{
    Tsg g;
    g.addNode("a");
    g.addNode("b");
    g.addNode("c");
    g.addNode("d");
    EXPECT_EQ(allValidOrderings(g).size(), 24u);
    EXPECT_EQ(countValidOrderings(g), 24u);
}

TEST(Topo, AllOrderingsAreValidAndUnique)
{
    const Tsg g = figure2();
    const auto all = allValidOrderings(g);
    for (const auto &order : all)
        EXPECT_TRUE(isValidOrdering(g, order));
    auto sorted = all;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Topo, CountMatchesEnumeration)
{
    const Tsg g = figure2();
    EXPECT_EQ(countValidOrderings(g), allValidOrderings(g).size());
}

TEST(Topo, EnumerationLimitRespected)
{
    Tsg g;
    for (int i = 0; i < 6; ++i)
        g.addNode("n");
    EXPECT_EQ(allValidOrderings(g, 10).size(), 10u);
}

TEST(Topo, CountCapSaturates)
{
    Tsg g;
    for (int i = 0; i < 8; ++i)
        g.addNode("n");
    EXPECT_EQ(countValidOrderings(g, 100), 100u);
}

TEST(Topo, RandomOrderingsAreValid)
{
    const Tsg g = figure2();
    std::mt19937 rng(42);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(isValidOrdering(g, randomValidOrdering(g, rng)));
}

TEST(Topo, RandomOrderingReachesDistinctOrders)
{
    const Tsg g = figure2();
    std::mt19937 rng(7);
    std::vector<std::vector<NodeId>> seen;
    for (int i = 0; i < 200; ++i)
        seen.push_back(randomValidOrdering(g, rng));
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_GT(seen.size(), 1u);
}

TEST(Topo, DiamondHasTwoOrderings)
{
    Tsg g;
    const NodeId a = g.addNode("a");
    const NodeId b = g.addNode("b");
    const NodeId c = g.addNode("c");
    const NodeId d = g.addNode("d");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    EXPECT_EQ(countValidOrderings(g), 2u);
}

/** Property sweep: on random DAGs every enumerated ordering is
 *  valid and the count matches. */
class TopoRandomDag : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TopoRandomDag, EnumerationConsistent)
{
    std::mt19937 rng(GetParam());
    Tsg g;
    const std::size_t n = 6;
    for (std::size_t i = 0; i < n; ++i)
        g.addNode("n" + std::to_string(i));
    std::uniform_int_distribution<int> coin(0, 99);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            if (coin(rng) < 35)
                g.addEdge(u, v);
        }
    }
    const auto all = allValidOrderings(g);
    EXPECT_EQ(all.size(), countValidOrderings(g));
    for (const auto &order : all)
        EXPECT_TRUE(isValidOrdering(g, order));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoRandomDag,
                         ::testing::Range(0u, 12u));

} // namespace
