/**
 * @file
 * Tests for the variant catalog: Table I/III metadata, attack graph
 * builders for every variant, and the structural properties the
 * paper claims (every variant has an authorization/access race;
 * Spectre-type vs Meltdown-type split).
 */

#include <gtest/gtest.h>

#include "core/security_dependency.hh"
#include "core/variants.hh"
#include "graph/race.hh"

namespace
{

using namespace specsec::core;
using specsec::graph::NodeId;

TEST(Variants, CatalogSizes)
{
    EXPECT_EQ(allVariants().size(), 19u);
    EXPECT_EQ(tableIIIVariants().size(), 18u);
    EXPECT_EQ(tableIVariants().size(), 13u);
}

TEST(Variants, SpoilerOnlyInTableI)
{
    const VariantInfo &info = variantInfo(AttackVariant::Spoiler);
    EXPECT_TRUE(info.inTableI);
    EXPECT_FALSE(info.inTableIII);
}

TEST(Variants, TableIIIStringsMatchPaper)
{
    EXPECT_STREQ(variantInfo(AttackVariant::SpectreV1).authorization,
                 "Boundary-check branch resolution");
    EXPECT_STREQ(variantInfo(AttackVariant::SpectreV1).illegalAccess,
                 "Read out-of-bounds memory");
    EXPECT_STREQ(variantInfo(AttackVariant::Meltdown).authorization,
                 "Kernel privilege check");
    EXPECT_STREQ(variantInfo(AttackVariant::SpectreV4).authorization,
                 "Store-load address dependency resolution");
    EXPECT_STREQ(variantInfo(AttackVariant::Fallout).illegalAccess,
                 "Forward data from store buffer");
    EXPECT_STREQ(variantInfo(AttackVariant::Taa).authorization,
                 "TSX Asynchronous Abort Completion");
}

TEST(Variants, CveStringsMatchTableI)
{
    EXPECT_STREQ(variantInfo(AttackVariant::SpectreV1).cve,
                 "CVE-2017-5753");
    EXPECT_STREQ(variantInfo(AttackVariant::Meltdown).cve,
                 "CVE-2017-5754");
    EXPECT_STREQ(variantInfo(AttackVariant::SpectreV1_2).cve, "N/A");
    EXPECT_STREQ(variantInfo(AttackVariant::LazyFp).cve,
                 "CVE-2018-3665");
}

TEST(Variants, MistrainingFlagMatchesTableII)
{
    // Table II groups v1, v1.1, v1.2, v2 under "prevent
    // mis-training"; RSB also relies on predictor steering.
    EXPECT_TRUE(variantInfo(AttackVariant::SpectreV1)
                    .requiresMistraining);
    EXPECT_TRUE(variantInfo(AttackVariant::SpectreV2)
                    .requiresMistraining);
    EXPECT_TRUE(variantInfo(AttackVariant::SpectreRsb)
                    .requiresMistraining);
    EXPECT_FALSE(variantInfo(AttackVariant::Meltdown)
                     .requiresMistraining);
    EXPECT_FALSE(variantInfo(AttackVariant::SpectreV4)
                     .requiresMistraining);
}

TEST(Variants, ClassSplitMatchesInsight6)
{
    EXPECT_EQ(variantInfo(AttackVariant::SpectreV1).klass,
              AttackClass::SpectreType);
    EXPECT_EQ(variantInfo(AttackVariant::Meltdown).klass,
              AttackClass::MeltdownType);
    EXPECT_EQ(variantInfo(AttackVariant::Ridl).klass,
              AttackClass::MeltdownType);
    // Meltdown-type attacks require intra-instruction modeling.
    for (AttackVariant v : tableIIIVariants()) {
        const VariantInfo &info = variantInfo(v);
        if (info.klass == AttackClass::MeltdownType) {
            EXPECT_TRUE(info.intraInstruction) << info.name;
        }
    }
}

TEST(Variants, MultiSourceVariants)
{
    EXPECT_EQ(variantInfo(AttackVariant::Ridl).sources.size(), 2u);
    EXPECT_EQ(variantInfo(AttackVariant::Lvi).sources.size(), 4u);
    EXPECT_EQ(variantInfo(AttackVariant::Taa).sources.size(), 3u);
    EXPECT_EQ(variantInfo(AttackVariant::ZombieLoad).sources.size(),
              1u);
}

TEST(Variants, Figure4GraphHasFiveSources)
{
    const AttackGraph g = buildFigure4Graph();
    EXPECT_EQ(g.secretAccessNodes().size(), 5u);
    EXPECT_EQ(g.secretFlows().size(), 5u);
    EXPECT_TRUE(g.isVulnerable());
}

TEST(Variants, ChannelChoiceChangesSetupLabels)
{
    const AttackGraph fr = buildAttackGraph(
        AttackVariant::SpectreV1, CovertChannelKind::FlushReload);
    const AttackGraph pp = buildAttackGraph(
        AttackVariant::SpectreV1, CovertChannelKind::PrimeProbe);
    EXPECT_TRUE(fr.tsg()
                    .findByLabel("Flush Array_A (clflush)")
                    .has_value());
    EXPECT_TRUE(pp.tsg()
                    .findByLabel("Prime cache sets with attacker data")
                    .has_value());
}

TEST(Variants, UnknownVariantThrows)
{
    EXPECT_THROW(variantInfo(static_cast<AttackVariant>(200)),
                 std::invalid_argument);
}

/** Parameterized sweep over every cataloged variant. */
class VariantGraph
    : public ::testing::TestWithParam<AttackVariant>
{
};

TEST_P(VariantGraph, BuildsNonTrivialGraph)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_GE(g.tsg().nodeCount(), 5u);
    EXPECT_GE(g.tsg().edgeCount(), 4u);
}

TEST_P(VariantGraph, HasExactlyOneAuthorization)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_EQ(g.authorizationNodes().size(), 1u);
}

TEST_P(VariantGraph, AuthorizationLabelMatchesTableIII)
{
    const VariantInfo &info = variantInfo(GetParam());
    if (!info.inTableIII)
        GTEST_SKIP() << "not a Table III variant";
    const AttackGraph g = buildAttackGraph(GetParam());
    const NodeId auth = g.authorizationNodes().front();
    EXPECT_EQ(g.tsg().label(auth), info.authorization);
}

TEST_P(VariantGraph, ModelIsVulnerable)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_TRUE(g.isVulnerable());
}

TEST_P(VariantGraph, AuthorizationRacesWithSomeAccess)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    const NodeId auth = g.authorizationNodes().front();
    bool races = false;
    for (NodeId access : g.secretAccessNodes()) {
        if (specsec::graph::hasRace(g.tsg(), auth, access))
            races = true;
    }
    EXPECT_TRUE(races);
}

TEST_P(VariantGraph, MissingDependenciesNonEmpty)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_FALSE(g.missingSecurityDependencies().empty());
}

TEST_P(VariantGraph, GraphIsNamed)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    EXPECT_EQ(g.name(), variantInfo(GetParam()).name);
}

TEST_P(VariantGraph, MistrainNodePresentIffRequired)
{
    const AttackGraph g = buildAttackGraph(GetParam());
    const bool has_mistrain =
        !g.nodesWithRole(specsec::core::NodeRole::MistrainPredictor)
             .empty();
    EXPECT_EQ(has_mistrain,
              variantInfo(GetParam()).requiresMistraining);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantGraph,
    ::testing::ValuesIn(allVariants()),
    [](const ::testing::TestParamInfo<AttackVariant> &info) {
        std::string name = variantInfo(info.param).name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
