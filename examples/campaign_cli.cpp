/**
 * @file
 * Campaign driver: run a declarative attack x defense sweep from the
 * command line, print the success matrix, and optionally export the
 * full report as JSON and/or CSV.
 *
 * Examples:
 *   campaign_cli                             # full defense matrix
 *   campaign_cli --workers 8 --json out.json --csv out.csv
 *   campaign_cli --variants spectre-v1,meltdown --rob 32,48,64
 *   campaign_cli --perm-lat 10,30,50 --channels fr,pp
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "tool/report.hh"

using namespace specsec;
using namespace specsec::campaign;

namespace
{

/** Strict decimal parse; rejects empty strings and trailing junk. */
bool
parseUnsigned(const std::string &s, unsigned long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoul(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(arg.substr(start));
            break;
        }
        out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --workers N        worker threads (default: all cores)\n"
        "  --serial           shorthand for --workers 1\n"
        "  --variants a,b,c   variants by catalog name "
        "(default: all but Spoiler)\n"
        "  --rob n1,n2,...    sweep ROB sizes\n"
        "  --perm-lat l1,...  sweep permission-check latencies\n"
        "  --channels fr,pp   sweep covert channels\n"
        "  --mitigations m,.. sweep software mitigations (none,\n"
        "                     kpti, rsb-stuff, lfence, addr-mask, "
        "flush-l1)\n"
        "  --vuln-ablate p,.. sweep forwarding-path ablations (all,\n"
        "                     no-meltdown, no-l1tf, no-mds, "
        "no-lazyfp,\n"
        "                     no-store-bypass, no-msr, no-taa)\n"
        "  --cache-geom g,... sweep cache geometries "
        "(SETSxWAYS[@MISS],\n"
        "                     e.g. 256x4,64x2@100)\n"
        "  --json FILE        export full report as JSON\n"
        "  --csv FILE         export full report as CSV\n"
        "  --timing           include wall-clock fields in exports\n",
        prog);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    CampaignEngine::Options engine_opts;
    std::string json_path;
    std::string csv_path;
    bool timing = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workers") {
            unsigned long n = 0;
            if (!parseUnsigned(value(), n)) {
                std::fprintf(stderr, "--workers: not a number\n");
                return 2;
            }
            engine_opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--serial") {
            engine_opts.workers = 1;
        } else if (arg == "--variants") {
            spec.variants.clear();
            for (const std::string &name : splitCommas(value())) {
                const auto v = core::findVariantByName(name);
                if (!v) {
                    std::fprintf(stderr, "unknown variant: %s\n",
                                 name.c_str());
                    return 2;
                }
                spec.variants.push_back(*v);
            }
        } else if (arg == "--rob") {
            spec.robSizes.clear();
            for (const std::string &n : splitCommas(value())) {
                unsigned long rob = 0;
                if (!parseUnsigned(n, rob) || rob == 0) {
                    std::fprintf(stderr,
                                 "--rob: '%s' is not a positive "
                                 "integer\n", n.c_str());
                    return 2;
                }
                spec.robSizes.push_back(rob);
            }
        } else if (arg == "--perm-lat") {
            spec.permCheckLatencies.clear();
            for (const std::string &n : splitCommas(value())) {
                unsigned long lat = 0;
                if (!parseUnsigned(n, lat)) {
                    std::fprintf(stderr,
                                 "--perm-lat: '%s' is not a "
                                 "number\n", n.c_str());
                    return 2;
                }
                spec.permCheckLatencies.push_back(
                    static_cast<unsigned>(lat));
            }
        } else if (arg == "--channels") {
            spec.channels.clear();
            for (const std::string &n : splitCommas(value())) {
                if (n == "fr" || n == "flush-reload")
                    spec.channels.push_back(
                        core::CovertChannelKind::FlushReload);
                else if (n == "pp" || n == "prime-probe")
                    spec.channels.push_back(
                        core::CovertChannelKind::PrimeProbe);
                else {
                    std::fprintf(stderr, "unknown channel: %s\n",
                                 n.c_str());
                    return 2;
                }
            }
        } else if (arg == "--mitigations") {
            spec.mitigations.clear();
            for (const std::string &n : splitCommas(value())) {
                SoftwareMitigation m;
                m.label = n;
                if (n == "none")
                    ;
                else if (n == "kpti")
                    m.kpti = true;
                else if (n == "rsb-stuff")
                    m.rsbStuffing = true;
                else if (n == "lfence")
                    m.softwareLfence = true;
                else if (n == "addr-mask")
                    m.addressMasking = true;
                else if (n == "flush-l1")
                    m.flushL1OnExit = true;
                else {
                    std::fprintf(stderr,
                                 "unknown mitigation: %s\n",
                                 n.c_str());
                    return 2;
                }
                spec.mitigations.push_back(std::move(m));
            }
        } else if (arg == "--vuln-ablate") {
            spec.vulnAblations.clear();
            for (const std::string &n : splitCommas(value())) {
                VulnAblation a;
                a.label = n;
                if (n == "all")
                    ;
                else if (n == "no-meltdown")
                    a.vuln.meltdown = false;
                else if (n == "no-l1tf")
                    a.vuln.l1tf = false;
                else if (n == "no-mds")
                    a.vuln.mds = false;
                else if (n == "no-lazyfp")
                    a.vuln.lazyFp = false;
                else if (n == "no-store-bypass")
                    a.vuln.storeBypass = false;
                else if (n == "no-msr")
                    a.vuln.msr = false;
                else if (n == "no-taa")
                    a.vuln.taa = false;
                else {
                    std::fprintf(stderr,
                                 "unknown vuln ablation: %s\n",
                                 n.c_str());
                    return 2;
                }
                spec.vulnAblations.push_back(std::move(a));
            }
        } else if (arg == "--cache-geom") {
            spec.cacheGeometries.clear();
            for (const std::string &n : splitCommas(value())) {
                CacheGeometry g;
                g.label = n;
                // SETSxWAYS with an optional @MISS latency suffix.
                const std::size_t x = n.find('x');
                const std::size_t at = n.find('@');
                unsigned long sets = 0, ways = 0, miss = 0;
                const bool ok =
                    x != std::string::npos &&
                    parseUnsigned(n.substr(0, x), sets) &&
                    parseUnsigned(
                        n.substr(x + 1,
                                 (at == std::string::npos
                                      ? n.size()
                                      : at) -
                                     x - 1),
                        ways) &&
                    (at == std::string::npos ||
                     parseUnsigned(n.substr(at + 1), miss)) &&
                    sets > 0 && ways > 0;
                if (!ok) {
                    std::fprintf(stderr,
                                 "--cache-geom: '%s' is not "
                                 "SETSxWAYS[@MISS]\n",
                                 n.c_str());
                    return 2;
                }
                g.cache.sets = sets;
                g.cache.ways = ways;
                if (at != std::string::npos)
                    g.cache.missLatency =
                        static_cast<std::uint32_t>(miss);
                spec.cacheGeometries.push_back(std::move(g));
            }
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--timing") {
            timing = true;
        } else {
            return usage(argv[0]);
        }
    }

    const CampaignEngine engine(engine_opts);
    std::printf("campaign %s: %zu grid points, %u workers\n",
                spec.name.c_str(), spec.gridSize(),
                engine.workers());
    const CampaignReport report = engine.run(spec);

    std::printf("\n%s", report.successMatrixText().c_str());
    std::printf("\n(L = every run in the cell leaks, . = blocked, "
                "p = leaks under some knob values)\n");
    std::printf("executed %zu unique of %zu expanded scenarios "
                "in %.1f ms (%.1f scenarios/sec, %u workers)\n",
                report.uniqueCount, report.expandedCount,
                report.wallMillis, report.scenariosPerSecond,
                report.workers);

    if (!json_path.empty()) {
        if (!tool::writeTextFile(json_path,
                                 tool::campaignJson(report, timing))) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        if (!tool::writeTextFile(csv_path,
                                 tool::campaignCsv(report, timing))) {
            std::fprintf(stderr, "cannot write %s\n",
                         csv_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", csv_path.c_str());
    }
    return 0;
}
