/**
 * @file
 * Campaign driver: run a declarative attack x defense sweep from the
 * command line, print the success matrix, and optionally export the
 * full report as JSON, CSV and/or streaming JSONL.
 *
 * Examples:
 *   campaign_cli                             # full defense matrix
 *   campaign_cli --workers 8 --json out.json --csv out.csv
 *   campaign_cli --variants spectre-v1,meltdown --rob 32,48,64
 *   campaign_cli --perm-lat 10,30,50 --channels fr,pp
 *   campaign_cli --jsonl out.jsonl --progress  # incremental export
 *   campaign_cli --cache-file .campaign-cache.json   # warm reruns
 *   campaign_cli export out.csv                # format by extension
 *   campaign_cli export out.dat --format jsonl # explicit override
 *
 * Catalog introspection (the ScenarioCatalog registry):
 *   campaign_cli list-attacks [--json]       # every registered attack
 *   campaign_cli describe NAME [--json]      # one descriptor in full
 *
 * Attack names are resolved through the registry, so attacks
 * registered at startup by out-of-tree code (see
 * examples/custom_attack.cpp) sweep like built-ins; unknown names
 * fail with "did you mean" suggestions.
 *
 * Sharded operation (multi-process fan-out):
 *   campaign_cli --shard 0/2 --shard-report s0.json
 *   campaign_cli --shard 1/2 --shard-report s1.json
 *   campaign_cli merge s0.json s1.json --csv merged.csv
 *
 * The merged run is byte-identical, in every timing-free export, to
 * an unsharded run of the same spec.
 *
 * Server mode (one shared ResultCache for many clients):
 *   campaign_cli serve --port 9917 --cache-file fleet-cache.json
 *   campaign_cli submit --connect 127.0.0.1:9917 --jsonl out.jsonl
 *   campaign_cli submit --connect 127.0.0.1:9917 --jsonl out.jsonl \
 *                --resume       # after a killed submit
 *   campaign_cli stats --connect 127.0.0.1:9917
 *   campaign_cli shutdown --connect 127.0.0.1:9917
 *
 * A remote submit produces byte-identical timing-free exports to a
 * local run of the same spec: the client expands/dedups the grid
 * itself and only the canonical scenario keys and schema-derived
 * result fragments cross the wire (see src/serve/protocol.hh).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "core/catalog.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"
#include "tool/schema.hh"
#include "tool/stream_export.hh"
#include "verdict/verdict.hh"

using namespace specsec;
using namespace specsec::campaign;

namespace
{

/** Strict decimal parse; rejects empty strings and trailing junk. */
bool
parseUnsigned(const std::string &s, unsigned long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoul(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(arg.substr(start));
            break;
        }
        out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "       %s export FILE [--format json|csv|jsonl] "
        "[options]\n"
        "         (format inferred from FILE's extension unless "
        "--format is given)\n"
        "       %s merge SHARD.json... [--json F] [--csv F] "
        "[--jsonl F] [--timing]\n"
        "       %s list-attacks [--json]\n"
        "       %s describe NAME [--json]\n"
        "       %s serve [--host H] [--port P] [--workers N] "
        "[--cache-file F]\n"
        "       %s submit --connect HOST:P [--resume] [options]\n"
        "       %s stats --connect HOST:P\n"
        "       %s shutdown --connect HOST:P\n"
        "  --workers N        worker threads (default: all cores)\n"
        "  --serial           shorthand for --workers 1\n"
        "  --backend B        verdict backend: simulator (default),\n"
        "                     model (analytic graph verdicts only, "
        "no\n"
        "                     simulation), differential (both, "
        "disagreements\n"
        "                     flagged per cell), triage (model "
        "first,\n"
        "                     simulate only the undecided frontier) "
        "or\n"
        "                     static (Fig. 9 program analysis beside\n"
        "                     simulation, disagreements flagged)\n"
        "  --rebuild-scenarios  build each cell's simulator state "
        "from scratch\n"
        "                     instead of forking pooled snapshot "
        "arenas\n"
        "                     (byte-identical; for comparison/"
        "bisection)\n"
        "  --cold-attacks     run every cell's attack prologue "
        "instead of\n"
        "                     restoring warm post-prologue snapshots"
        "\n"
        "                     (byte-identical; for comparison/"
        "bisection)\n"
        "  --variants a,b,c   variants by catalog name "
        "(default: all but Spoiler)\n"
        "  --rob n1,n2,...    sweep ROB sizes\n"
        "  --perm-lat l1,...  sweep permission-check latencies\n"
        "  --channels fr,pp   sweep covert channels\n"
        "  --mitigations m,.. sweep software mitigations (none,\n"
        "                     kpti, rsb-stuff, lfence, addr-mask, "
        "flush-l1)\n"
        "  --vuln-ablate p,.. sweep forwarding-path ablations (all,\n"
        "                     no-meltdown, no-l1tf, no-mds, "
        "no-lazyfp,\n"
        "                     no-store-bypass, no-msr, no-taa)\n"
        "  --cache-geom g,... sweep cache geometries "
        "(SETSxWAYS[@MISS],\n"
        "                     e.g. 256x4,64x2@100)\n"
        "  --shard I/N        execute only shard I of N of the "
        "grid\n"
        "  --shard-report F   write a mergeable shard report "
        "(see merge)\n"
        "  --cache-file F     persistent result cache (load/save)\n"
        "  --json FILE        export full report as JSON\n"
        "  --csv FILE         export full report as CSV "
        "(streamed)\n"
        "  --jsonl FILE       export as JSONL, streamed as "
        "scenarios finish\n"
        "  --progress         live progress line on stderr\n"
        "  --timing           include wall-clock fields in exports\n"
        "  --connect HOST:P   run the sweep on a campaign_cli "
        "serve daemon\n"
        "  --resume           with --connect and --jsonl: keep a "
        "killed run's\n"
        "                     valid JSONL prefix and fetch only "
        "the missing cells\n",
        prog, prog, prog, prog, prog, prog, prog, prog, prog);
    return 2;
}

std::string
joinAliases(const std::vector<std::string> &aliases)
{
    std::string out;
    for (const std::string &alias : aliases) {
        if (!out.empty())
            out += ", ";
        out += alias;
    }
    return out;
}

/** One line of descriptor metadata for `list-attacks`. */
void
printAttackLine(const core::AttackDescriptor &d)
{
    std::printf("%-34s %-13s %-8s %-12s %s\n", d.name.c_str(),
                core::attackClassName(d.klass),
                d.paperSection.c_str(),
                core::covertChannelName(d.defaultChannel),
                joinAliases(d.aliases).c_str());
}

// The per-attack JSON object lives in the library
// (tool::attackDescriptorJson, schema.cc) so its escaping of every
// string field — including registered alias names — is covered by
// tests/schema_test.cc rather than buried in this CLI.
using tool::attackDescriptorJson;

/** `campaign_cli list-attacks [--json]`. */
int
listAttacksMain(int argc, char **argv)
{
    bool json = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            return usage(argv[0]);
    }
    const auto attacks = core::ScenarioCatalog::instance().attacks();
    if (json) {
        std::printf("[\n");
        for (std::size_t i = 0; i < attacks.size(); ++i)
            std::printf("  %s%s\n",
                        attackDescriptorJson(*attacks[i]).c_str(),
                        i + 1 < attacks.size() ? "," : "");
        std::printf("]\n");
        return 0;
    }
    std::printf("%-34s %-13s %-8s %-12s %s\n", "name", "class",
                "section", "channel", "aliases");
    for (const core::AttackDescriptor *d : attacks)
        printAttackLine(*d);
    std::printf("\n%zu attacks registered; resolve any name or "
                "alias with --variants or describe\n",
                attacks.size());
    return 0;
}

/** `campaign_cli describe NAME [--json]`. */
int
describeMain(int argc, char **argv)
{
    bool json = false;
    std::string name;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (argv[i][0] == '-' || !name.empty())
            return usage(argv[0]);
        else
            name = argv[i];
    }
    if (name.empty()) {
        std::fprintf(stderr, "describe: no attack name given\n");
        return 2;
    }
    const core::ScenarioCatalog &catalog =
        core::ScenarioCatalog::instance();
    const core::AttackDescriptor *d = catalog.findAttack(name);
    if (d == nullptr) {
        std::fprintf(stderr, "%s\n",
                     core::unknownNameMessage(
                         "attack", name,
                         catalog.attackSuggestions(name))
                         .c_str());
        return 2;
    }
    if (json) {
        std::printf("%s\n", attackDescriptorJson(*d).c_str());
        return 0;
    }
    std::printf("name:            %s\n", d->name.c_str());
    const std::string aliases = joinAliases(d->aliases);
    std::printf("aliases:         %s\n",
                aliases.empty() ? "-" : aliases.c_str());
    std::printf("class:           %s\n",
                core::attackClassName(d->klass));
    std::printf("cve:             %s\n", d->cve.c_str());
    std::printf("paper section:   %s\n", d->paperSection.c_str());
    std::printf("default channel: %s\n",
                core::covertChannelName(d->defaultChannel));
    std::printf("registration:    %s\n",
                d->isExtension() ? "extension (no enum slot)"
                                 : "built-in");
    std::printf("executable:      %s\n", d->execute ? "yes" : "no");
    std::printf("model verdict:   %s\n",
                d->modelVerdict
                    ? "analytic hook registered"
                    : "none (always simulated)");
    std::printf("static program:  %s\n",
                d->staticProgram
                    ? "registered (specsec_lint / --backend static)"
                    : "none");
    if (d->buildGraph) {
        const core::AttackGraph g = d->buildGraph(d->defaultChannel);
        std::printf("attack graph:    %zu operations, %zu "
                    "dependencies\n",
                    g.tsg().nodeCount(), g.tsg().edgeCount());
    } else {
        std::printf("attack graph:    none registered\n");
    }
    return 0;
}

void
printSummary(const CampaignReport &report)
{
    std::printf("\n%s", report.successMatrixText().c_str());
    std::printf("\n(L = every run in the cell leaks, . = blocked, "
                "p = leaks under some knob values)\n");
    if (report.partial())
        std::printf("shard %zu/%zu: %zu of %zu grid points\n",
                    report.shardIndex, report.shardCount,
                    report.outcomes.size(), report.expandedCount);
    std::printf("executed %zu unique of %zu expanded scenarios "
                "in %.1f ms (%.1f scenarios/sec, %u workers, "
                "%zu cache hits)\n",
                report.executedCount, report.expandedCount,
                report.wallMillis, report.scenariosPerSecond,
                report.workers, report.cacheHits);
    if (report.modelDecided + report.modelUndecided > 0)
        std::printf("model verdicts: %zu decided, %zu undecided; "
                    "%zu disagreement(s), %zu replicated cell(s)\n",
                    report.modelDecided, report.modelUndecided,
                    report.disagreements, report.replicatedCells);
}

bool
exportReport(const CampaignReport &report,
             const std::string &json_path,
             const std::string &csv_path,
             const std::string &jsonl_path, bool timing)
{
    const auto write = [](const std::string &path,
                          const std::string &contents) {
        if (tool::writeTextFile(path, contents)) {
            std::printf("wrote %s\n", path.c_str());
            return true;
        }
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    };
    bool ok = true;
    if (!json_path.empty())
        ok &= write(json_path, tool::campaignJson(report, timing));
    if (!csv_path.empty())
        ok &= write(csv_path, tool::campaignCsv(report, timing));
    if (!jsonl_path.empty())
        ok &= write(jsonl_path,
                    tool::campaignJsonl(report, timing));
    return ok;
}

/** `campaign_cli merge SHARD.json...`: re-join shard reports. */
int
mergeMain(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string json_path, csv_path, jsonl_path;
    bool timing = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json")
            json_path = value();
        else if (arg == "--csv")
            csv_path = value();
        else if (arg == "--jsonl")
            jsonl_path = value();
        else if (arg == "--timing")
            timing = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(argv[0]);
        else
            files.push_back(arg);
    }
    if (files.empty()) {
        std::fprintf(stderr, "merge: no shard report files given\n");
        return 2;
    }

    std::optional<CampaignReport> merged;
    for (const std::string &path : files) {
        std::string text;
        if (!tool::readTextFile(path, text)) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 2;
        }
        std::string error;
        auto shard = tool::parseShardReportJson(text, &error);
        if (!shard) {
            std::fprintf(stderr, "%s: malformed shard report: %s\n",
                         path.c_str(), error.c_str());
            return 2;
        }
        std::printf("loaded %s: shard %zu/%zu, %zu outcomes\n",
                    path.c_str(), shard->shardIndex,
                    shard->shardCount, shard->outcomes.size());
        if (!merged) {
            merged = std::move(*shard);
            continue;
        }
        std::string merge_error;
        if (!merged->merge(*shard, &merge_error)) {
            std::fprintf(stderr, "%s: merge conflict: %s\n",
                         path.c_str(), merge_error.c_str());
            return 1;
        }
    }
    if (merged->partial())
        std::printf("note: merged report is still partial (%zu of "
                    "%zu grid points)\n",
                    merged->outcomes.size(),
                    merged->expandedCount);
    printSummary(*merged);
    return exportReport(*merged, json_path, csv_path, jsonl_path,
                        timing)
               ? 0
               : 1;
}

/** `campaign_cli serve`: the campaign daemon. */
int
serveMain(int argc, char **argv)
{
    serve::Server::Options opts;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            opts.host = value();
        else if (arg == "--port") {
            unsigned long port = 0;
            if (!parseUnsigned(value(), port) || port > 65535) {
                std::fprintf(stderr,
                             "--port: not a port number\n");
                return 2;
            }
            opts.port = static_cast<std::uint16_t>(port);
        } else if (arg == "--workers") {
            unsigned long n = 0;
            if (!parseUnsigned(value(), n)) {
                std::fprintf(stderr, "--workers: not a number\n");
                return 2;
            }
            opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--cache-file")
            opts.cachePath = value();
        else
            return usage(argv[0]);
    }

    serve::Server server(opts);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    // One parseable line for wrappers polling readiness (the CI
    // e2e job greps it for the bound port).
    std::printf("serving on %s:%u (schema %s)\n",
                opts.host.c_str(), server.port(),
                tool::wireSchemaTag().c_str());
    std::fflush(stdout);
    server.serveForever();
    std::printf("serve: drained, exiting\n");
    return 0;
}

/** Shared --connect parsing for submit/stats/shutdown. */
bool
connectFromArg(const std::string &endpoint_text,
               serve::Client &client)
{
    serve::net::Endpoint endpoint;
    std::string error;
    if (endpoint_text.empty()) {
        std::fprintf(stderr, "--connect HOST:PORT is required\n");
        return false;
    }
    if (!serve::net::parseEndpoint(endpoint_text, endpoint,
                                   &error) ||
        !client.connect(endpoint, &error)) {
        std::fprintf(stderr, "connect %s: %s\n",
                     endpoint_text.c_str(), error.c_str());
        return false;
    }
    return true;
}

/** `campaign_cli stats --connect HOST:P`. */
int
statsMain(int argc, char **argv)
{
    std::string endpoint;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--connect") == 0 &&
            i + 1 < argc)
            endpoint = argv[++i];
        else
            return usage(argv[0]);
    }
    serve::Client client;
    if (!connectFromArg(endpoint, client))
        return 1;
    serve::StatsMsg stats;
    std::string error;
    if (!client.serverStats(stats, &error)) {
        std::fprintf(stderr, "stats: %s\n", error.c_str());
        return 1;
    }
    std::printf("connections: %zu\nrequests:    %zu\n"
                "executed:    %zu\ncacheHits:   %zu\n"
                "cacheSize:   %zu\n",
                stats.connections, stats.requests, stats.executed,
                stats.cacheHits, stats.cacheSize);
    std::printf("forked:      %zu\nrebuilt:     %zu\n"
                "pooled:      %zu\nwarmHits:    %zu\n"
                "warmMisses:  %zu\nwarmEntries: %zu\n",
                stats.forked, stats.rebuilt, stats.pooledArenas,
                stats.warmHits, stats.warmMisses,
                stats.warmEntries);
    std::printf("modelDecided:      %zu\n"
                "modelUndecided:    %zu\n"
                "modelDisagreements: %zu\n",
                stats.modelDecided, stats.modelUndecided,
                stats.modelDisagreements);
    return 0;
}

/** `campaign_cli shutdown --connect HOST:P`. */
int
shutdownMain(int argc, char **argv)
{
    std::string endpoint;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--connect") == 0 &&
            i + 1 < argc)
            endpoint = argv[++i];
        else
            return usage(argv[0]);
    }
    serve::Client client;
    if (!connectFromArg(endpoint, client))
        return 1;
    std::string error;
    if (!client.requestShutdown(&error)) {
        std::fprintf(stderr, "shutdown: %s\n", error.c_str());
        return 1;
    }
    std::printf("server draining\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "merge") == 0)
        return mergeMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "stats") == 0)
        return statsMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "shutdown") == 0)
        return shutdownMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "list-attacks") == 0)
        return listAttacksMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "describe") == 0)
        return describeMain(argc, argv);

    // `export FILE`: one output whose format is inferred from the
    // file extension (overridable with --format); every other
    // campaign option still applies.
    bool export_mode = false;
    bool submit_mode = false;
    std::string export_path;
    std::string export_format;
    int first_arg = 1;
    if (argc > 1 && std::strcmp(argv[1], "export") == 0) {
        export_mode = true;
        if (argc < 3 || argv[2][0] == '-') {
            std::fprintf(stderr, "export: no output file given\n");
            return 2;
        }
        export_path = argv[2];
        first_arg = 3;
    } else if (argc > 1 && std::strcmp(argv[1], "submit") == 0) {
        // `submit` is the campaign run pointed at a daemon: the
        // same spec/export flags, execution via --connect.
        submit_mode = true;
        first_arg = 2;
    }

    ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    CampaignEngine::Options engine_opts;
    std::string json_path;
    std::string csv_path;
    std::string jsonl_path;
    std::string shard_report_path;
    std::string cache_path;
    ShardRange shard;
    bool progress = false;
    bool timing = false;
    std::string connect_endpoint;
    bool resume = false;

    for (int i = first_arg; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (export_mode && arg == "--format") {
            export_format = value();
        } else if (arg == "--workers") {
            unsigned long n = 0;
            if (!parseUnsigned(value(), n)) {
                std::fprintf(stderr, "--workers: not a number\n");
                return 2;
            }
            engine_opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--serial") {
            engine_opts.workers = 1;
        } else if (arg == "--backend") {
            const std::string name = value();
            if (!verdict::parseBackend(name,
                                       engine_opts.backend)) {
                std::fprintf(
                    stderr, "%s\n",
                    verdict::unknownBackendMessage(name).c_str());
                return 2;
            }
        } else if (arg == "--rebuild-scenarios") {
            engine_opts.forkScenarios = false;
        } else if (arg == "--cold-attacks") {
            engine_opts.warmAttacks = false;
        } else if (arg == "--variants") {
            // Rows resolve through the ScenarioCatalog, so names
            // and aliases of registered out-of-tree attacks work
            // exactly like built-in variants.
            const core::ScenarioCatalog &catalog =
                core::ScenarioCatalog::instance();
            spec.variants.clear();
            spec.attackNames.clear();
            for (const std::string &name : splitCommas(value())) {
                const core::AttackDescriptor *d =
                    catalog.findAttack(name);
                if (d == nullptr) {
                    std::fprintf(
                        stderr, "%s\n",
                        core::unknownNameMessage(
                            "attack", name,
                            catalog.attackSuggestions(name))
                            .c_str());
                    return 2;
                }
                spec.attackNames.push_back(d->name);
            }
        } else if (arg == "--rob") {
            spec.robSizes.clear();
            for (const std::string &n : splitCommas(value())) {
                unsigned long rob = 0;
                if (!parseUnsigned(n, rob) || rob == 0) {
                    std::fprintf(stderr,
                                 "--rob: '%s' is not a positive "
                                 "integer\n", n.c_str());
                    return 2;
                }
                spec.robSizes.push_back(rob);
            }
        } else if (arg == "--perm-lat") {
            spec.permCheckLatencies.clear();
            for (const std::string &n : splitCommas(value())) {
                unsigned long lat = 0;
                if (!parseUnsigned(n, lat)) {
                    std::fprintf(stderr,
                                 "--perm-lat: '%s' is not a "
                                 "number\n", n.c_str());
                    return 2;
                }
                spec.permCheckLatencies.push_back(
                    static_cast<unsigned>(lat));
            }
        } else if (arg == "--channels") {
            spec.channels.clear();
            for (const std::string &n : splitCommas(value())) {
                if (n == "fr" || n == "flush-reload")
                    spec.channels.push_back(
                        core::CovertChannelKind::FlushReload);
                else if (n == "pp" || n == "prime-probe")
                    spec.channels.push_back(
                        core::CovertChannelKind::PrimeProbe);
                else {
                    std::fprintf(stderr, "unknown channel: %s\n",
                                 n.c_str());
                    return 2;
                }
            }
        } else if (arg == "--mitigations") {
            spec.mitigations.clear();
            for (const std::string &n : splitCommas(value())) {
                auto m = SoftwareMitigation::byName(n);
                if (!m) {
                    std::fprintf(
                        stderr, "%s\n",
                        core::unknownNameMessage(
                            "mitigation", n,
                            core::ScenarioCatalog::instance()
                                .mitigationSuggestions(n))
                            .c_str());
                    return 2;
                }
                spec.mitigations.push_back(std::move(*m));
            }
        } else if (arg == "--vuln-ablate") {
            spec.vulnAblations.clear();
            for (const std::string &n : splitCommas(value())) {
                VulnAblation a;
                a.label = n;
                if (n == "all")
                    ;
                else if (n == "no-meltdown")
                    a.vuln.meltdown = false;
                else if (n == "no-l1tf")
                    a.vuln.l1tf = false;
                else if (n == "no-mds")
                    a.vuln.mds = false;
                else if (n == "no-lazyfp")
                    a.vuln.lazyFp = false;
                else if (n == "no-store-bypass")
                    a.vuln.storeBypass = false;
                else if (n == "no-msr")
                    a.vuln.msr = false;
                else if (n == "no-taa")
                    a.vuln.taa = false;
                else {
                    std::fprintf(stderr,
                                 "unknown vuln ablation: %s\n",
                                 n.c_str());
                    return 2;
                }
                spec.vulnAblations.push_back(std::move(a));
            }
        } else if (arg == "--cache-geom") {
            spec.cacheGeometries.clear();
            for (const std::string &n : splitCommas(value())) {
                CacheGeometry g;
                g.label = n;
                // SETSxWAYS with an optional @MISS latency suffix.
                const std::size_t x = n.find('x');
                const std::size_t at = n.find('@');
                unsigned long sets = 0, ways = 0, miss = 0;
                const bool ok =
                    x != std::string::npos &&
                    parseUnsigned(n.substr(0, x), sets) &&
                    parseUnsigned(
                        n.substr(x + 1,
                                 (at == std::string::npos
                                      ? n.size()
                                      : at) -
                                     x - 1),
                        ways) &&
                    (at == std::string::npos ||
                     parseUnsigned(n.substr(at + 1), miss)) &&
                    sets > 0 && ways > 0;
                if (!ok) {
                    std::fprintf(stderr,
                                 "--cache-geom: '%s' is not "
                                 "SETSxWAYS[@MISS]\n",
                                 n.c_str());
                    return 2;
                }
                g.cache.sets = sets;
                g.cache.ways = ways;
                if (at != std::string::npos)
                    g.cache.missLatency =
                        static_cast<std::uint32_t>(miss);
                spec.cacheGeometries.push_back(std::move(g));
            }
        } else if (arg == "--shard") {
            if (!parseShardRange(value(), shard)) {
                std::fprintf(stderr,
                             "--shard: expected I/N with I < N\n");
                return 2;
            }
        } else if (arg == "--shard-report") {
            shard_report_path = value();
        } else if (arg == "--cache-file") {
            cache_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--jsonl") {
            jsonl_path = value();
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--connect") {
            connect_endpoint = value();
        } else if (arg == "--resume") {
            resume = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (submit_mode && connect_endpoint.empty()) {
        std::fprintf(stderr,
                     "submit: --connect HOST:PORT is required\n");
        return 2;
    }
    if (resume) {
        if (connect_endpoint.empty() || jsonl_path.empty()) {
            std::fprintf(stderr,
                         "--resume needs --connect and --jsonl "
                         "(it completes a killed remote JSONL "
                         "export)\n");
            return 2;
        }
        if (timing) {
            std::fprintf(stderr,
                         "--resume is timing-free only (timing "
                         "output embeds machine-local wall "
                         "times)\n");
            return 2;
        }
    }
    if (!connect_endpoint.empty() && !cache_path.empty()) {
        std::fprintf(stderr,
                     "--cache-file does not apply to remote runs; "
                     "give it to `campaign_cli serve` instead\n");
        return 2;
    }
    if (!connect_endpoint.empty() &&
        engine_opts.backend != verdict::VerdictBackend::Simulator) {
        std::fprintf(stderr,
                     "--backend does not apply to remote runs: the "
                     "daemon executes the simulator (and judges "
                     "every submitted cell itself; see `stats`)\n");
        return 2;
    }

    if (export_mode) {
        if (export_format.empty()) {
            export_format =
                tool::exportFormatFromPath(export_path);
            if (export_format.empty()) {
                // Suggest against the extension when there is one
                // ("out.jsnl" -> "did you mean jsonl?"); only dots
                // in the filename itself count, not directory names.
                const std::size_t slash =
                    export_path.find_last_of("/\\");
                const std::string file =
                    slash == std::string::npos
                        ? export_path
                        : export_path.substr(slash + 1);
                const std::size_t dot = file.rfind('.');
                const std::string ext =
                    dot == std::string::npos ? file
                                             : file.substr(dot + 1);
                std::fprintf(
                    stderr,
                    "export: cannot infer a format from '%s'; %s\n",
                    export_path.c_str(),
                    core::unknownNameMessage(
                        "export format", ext,
                        core::suggestNames(
                            tool::exportFormatNames(), ext))
                        .c_str());
                return 2;
            }
        } else {
            // Normalize case like extension inference does
            // (--format JSON == export OUT.JSON).
            const std::string normalized =
                tool::exportFormatFromPath("x." + export_format);
            if (normalized.empty()) {
                std::fprintf(stderr, "%s\n",
                             core::unknownNameMessage(
                                 "export format", export_format,
                                 core::suggestNames(
                                     tool::exportFormatNames(),
                                     export_format))
                                 .c_str());
                return 2;
            }
            export_format = normalized;
        }
        if (export_format == "json")
            json_path = export_path;
        else if (export_format == "csv")
            csv_path = export_path;
        else
            jsonl_path = export_path;
    }

    ResultCache cache;
    const std::string fingerprint = modelFingerprint();
    if (!cache_path.empty()) {
        engine_opts.cache = &cache;
        std::string error;
        if (cache.loadFromFile(cache_path, fingerprint, &error))
            std::printf("loaded %zu cached results from %s\n",
                        cache.size(), cache_path.c_str());
    }

    // --resume completes a killed remote run's JSONL export in
    // place: keep the file's valid prefix (header + outcome lines
    // in grid order), fetch only the missing gridIndices from the
    // daemon, and append them through a header-suppressed stream
    // sink.  The finished file is byte-identical to an
    // uninterrupted run; report/CSV/JSON exports don't apply (the
    // already-covered prefix is never re-fetched).
    if (resume) {
        serve::Client client;
        if (!connectFromArg(connect_endpoint, client))
            return 1;
        const ExpandedGrid grid = dedupGrid(spec);
        const CampaignHeader header = serve::headerForGrid(
            spec, grid, shard, client.serverWorkers());
        std::string existing;
        tool::readTextFile(jsonl_path, existing); // absent = fresh
        serve::ResumePlan plan;
        std::string error;
        if (!serve::planJsonlResume(header, existing, plan,
                                    &error)) {
            std::fprintf(stderr, "resume: %s\n", error.c_str());
            return 1;
        }
        std::printf("resume %s: %zu of %zu outcomes already "
                    "valid, %zu missing\n",
                    jsonl_path.c_str(), plan.covered,
                    header.gridIndices.size(),
                    plan.missing.size());
        const std::string keep =
            plan.keepText.empty()
                ? tool::jsonlHeaderRecord(header)
                : plan.keepText;
        if (!tool::writeTextFile(jsonl_path, keep)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonl_path.c_str());
            return 1;
        }
        if (plan.missing.empty()) {
            std::printf("%s is already complete\n",
                        jsonl_path.c_str());
            return 0;
        }
        std::ofstream append_stream(
            jsonl_path, std::ios::binary | std::ios::app);
        if (!append_stream) {
            std::fprintf(stderr, "cannot append to %s\n",
                         jsonl_path.c_str());
            return 1;
        }
        tool::JsonlStreamSink jsonl_resume_sink(
            append_stream, false, /*suppress_header=*/true);
        std::vector<OutcomeSink *> resume_sinks{
            &jsonl_resume_sink};
        std::optional<ProgressSink> resume_progress;
        if (progress) {
            resume_progress.emplace(stderr);
            resume_sinks.push_back(&*resume_progress);
        }
        CampaignHeader sub = header;
        sub.gridIndices = plan.missing;
        if (!client.runSubset(grid, sub, plan.missing,
                              resume_sinks, &error)) {
            std::fprintf(stderr, "resume run failed: %s\n",
                         error.c_str());
            return 1;
        }
        append_stream.flush();
        if (!append_stream.good()) {
            std::fprintf(stderr, "write failed on %s\n",
                         jsonl_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonl_path.c_str());
        return 0;
    }

    serve::Client client;
    if (!connect_endpoint.empty() &&
        !connectFromArg(connect_endpoint, client))
        return 1;

    const CampaignEngine engine(engine_opts);
    std::printf("campaign %s: %zu grid points, %u workers",
                spec.name.c_str(), spec.gridSize(),
                connect_endpoint.empty() ? engine.workers()
                                         : client.serverWorkers());
    if (shard.count > 1)
        std::printf(", shard %zu/%zu", shard.index, shard.count);
    if (!connect_endpoint.empty())
        std::printf(", remote via %s", connect_endpoint.c_str());
    std::printf("\n");

    // The engine is a thin driver over sinks: the report, the
    // streaming exports and the progress line all observe the same
    // run.  CSV and JSONL files fill incrementally as workers
    // finish scenarios, not after the sweep.
    ReportSink report_sink;
    std::vector<OutcomeSink *> sinks{&report_sink};
    std::ofstream csv_stream;
    std::optional<tool::CsvStreamSink> csv_sink;
    if (!csv_path.empty()) {
        csv_stream.open(csv_path, std::ios::binary);
        if (!csv_stream) {
            std::fprintf(stderr, "cannot write %s\n",
                         csv_path.c_str());
            return 1;
        }
        csv_sink.emplace(csv_stream, timing);
        sinks.push_back(&*csv_sink);
    }
    std::ofstream jsonl_stream;
    std::optional<tool::JsonlStreamSink> jsonl_sink;
    if (!jsonl_path.empty()) {
        jsonl_stream.open(jsonl_path, std::ios::binary);
        if (!jsonl_stream) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonl_path.c_str());
            return 1;
        }
        jsonl_sink.emplace(jsonl_stream, timing);
        sinks.push_back(&*jsonl_sink);
    }
    std::optional<ProgressSink> progress_sink;
    if (progress) {
        progress_sink.emplace(stderr);
        sinks.push_back(&*progress_sink);
    }

    if (connect_endpoint.empty()) {
        engine.run(spec, sinks, shard);
    } else {
        std::string error;
        if (!client.run(spec, sinks, shard, &error)) {
            std::fprintf(stderr, "remote run failed: %s\n",
                         error.c_str());
            return 1;
        }
    }
    const CampaignReport report = report_sink.takeReport();
    bool ok = true;
    // A stream that went bad mid-run (disk full, deleted dir) left
    // a truncated export; that must fail the exit code, not print
    // "wrote".
    const auto finishStream = [&ok](std::ofstream &stream,
                                    const std::string &path) {
        if (path.empty())
            return;
        stream.flush();
        if (stream.good()) {
            std::printf("wrote %s\n", path.c_str());
        } else {
            std::fprintf(stderr, "write failed on %s\n",
                         path.c_str());
            ok = false;
        }
    };
    finishStream(csv_stream, csv_path);
    finishStream(jsonl_stream, jsonl_path);

    printSummary(report);

    if (!cache_path.empty()) {
        std::string error, lockWarning;
        if (cache.saveToFile(cache_path, fingerprint, &error,
                             &lockWarning))
            std::printf("saved %zu cached results to %s\n",
                        cache.size(), cache_path.c_str());
        else
            std::fprintf(stderr, "cache save failed: %s\n",
                         error.c_str());
        if (!lockWarning.empty())
            std::fprintf(stderr, "cache save degraded: %s\n",
                         lockWarning.c_str());
    }

    if (!shard_report_path.empty()) {
        if (tool::writeTextFile(shard_report_path,
                                tool::shardReportJson(report)))
            std::printf("wrote %s\n", shard_report_path.c_str());
        else {
            std::fprintf(stderr, "cannot write %s\n",
                         shard_report_path.c_str());
            ok = false;
        }
    }
    // JSON has no streaming form (it is one document); export it
    // from the collected report like before.
    ok &= exportReport(report, json_path, "", "", timing);
    return ok ? 0 : 1;
}
