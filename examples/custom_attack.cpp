/**
 * @file
 * Adding a new attack in ONE file: the out-of-tree proof that the
 * ScenarioCatalog is the extension seam the paper's composition
 * claim (Section V-A) demands.
 *
 * This example defines a *composed* variant that exists nowhere in
 * `src/attacks` and has no AttackVariant enumerator: a bounds-check
 * bypass (the Spectre v1 trigger) whose transient gadget does a
 * pointer *chase* — it loads an attacker-planted pointer
 * out-of-bounds and dereferences it to reach the secret — built
 * entirely from the public attack_kit pieces (Scenario,
 * ChannelHarness, scoreResult) and the uarch ISA.  It registers an
 * AttackDescriptor (graph hook from core::composeAttack, execute
 * from attacks::statsCollectingExecute) and then drives the FULL
 * campaign pipeline over it:
 *
 *   - rows resolved by registry name (`spec.attackNames`),
 *   - streaming JSONL export while workers finish cells,
 *   - a 2-shard run merged back and byte-compared against the
 *     1-process report,
 *   - a persistent ResultCache (second invocation executes 0 cells).
 *
 * Exit status is the verdict: 0 only if the new attack leaks on the
 * baseline core, is blocked by the strategy-1 fence defense, and
 * every pipeline invariant above holds.  CI runs it twice and
 * byte-compares the cold and warm exports.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "core/catalog.hh"
#include "core/composer.hh"
#include "tool/report.hh"
#include "tool/stream_export.hh"

using namespace specsec;
using namespace specsec::attacks;
using uarch::Addr;
using uarch::Cond;
using uarch::Cpu;
using uarch::Privilege;
using uarch::Program;
using uarch::RegId;

namespace
{

/** Registers used by the gadget program. */
constexpr RegId rIdx = 1;    ///< attacker-controlled index
constexpr RegId rPtr = 2;    ///< address of the (flushed) bound
constexpr RegId rBase = 3;   ///< victim data base
constexpr RegId rProbe = 4;  ///< probe array base
constexpr RegId rSlow = 5;   ///< bound loaded from [rPtr]
constexpr RegId rChase = 6;  ///< pointer loaded out-of-bounds
constexpr RegId rByte = 7;   ///< the secret byte, via the pointer
constexpr RegId rAddr = 8;   ///< computed OOB address
constexpr RegId rEnc = 9;    ///< encoded probe offset
constexpr RegId rSend = 10;  ///< probe address
constexpr RegId rSink = 11;  ///< send target

/** Where the attacker plants the chased pointer (out of bounds). */
constexpr Addr kPointerSlot = Layout::kScratch;

/**
 * The composed attack, built from attack_kit steps: train the
 * bounds-check branch (step 1b), flush the bound (step 2), then let
 * the transient window load a planted *pointer* from out of bounds
 * and dereference it to the secret (step 3) before sending the byte
 * through the covert channel (steps 4, 5).  One more dependent load
 * than Spectre v1 — the chase — so it needs a wider speculation
 * window, and the strategy-1 fence kills it just the same.
 */
AttackResult
runSpectreV1PtrChase(const uarch::CpuConfig &config,
                     const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(Layout::kUserSecret, secret);
    s.mem().write64(Layout::kVictimBound, 16);
    // Benign in-bounds "pointers" for the training runs, so the
    // committed gadget path dereferences something mapped.
    s.mem().write64(Layout::kVictimArray, Layout::kVictimPtr);
    s.mem().write64(Layout::kVictimArray + 8, Layout::kVictimPtr);

    ChannelHarness ch(cpu, opt.channel);

    Program p;
    p.emit(uarch::load64(rSlow, rPtr, 0)); // bound (flushed later)
    auto bail = p.newLabel();
    p.emitBranch(Cond::Geu, rIdx, rSlow, bail); // authorization
    if (opt.softwareLfence)
        p.emit(uarch::lfence()); // strategy 1: serialize the check
    if (opt.addressMasking)
        p.emit(uarch::andImm(rIdx, rIdx, 0xf));
    p.emit(uarch::add(rAddr, rBase, rIdx));
    p.emit(uarch::load64(rChase, rAddr, 0)); // OOB: planted pointer
    p.emit(uarch::load8(rByte, rChase, 0));  // chase: the secret
    p.emit(uarch::shlImm(rEnc, rByte, ch.sendShift()));
    p.emit(uarch::add(rSend, rProbe, rEnc));
    p.emit(uarch::load8(rSink, rSend, 0)); // send
    p.bind(bail);
    p.emit(uarch::halt());
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::User);

    cpu.setReg(rPtr, Layout::kVictimBound);
    cpu.setReg(rBase, Layout::kVictimArray);
    cpu.setReg(rProbe, ch.sendBase());

    // Step 1(b): train the bounds-check branch toward not-taken
    // (8-byte-aligned in-bounds indices keep the chase benign).
    for (unsigned t = 0; t < opt.trainingRounds; ++t) {
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(rIdx, (t % 2) * 8);
        cpu.run(0);
    }

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        s.mem().write64(kPointerSlot, Layout::kUserSecret + i);
        ch.setup();                                  // step 1(a)
        if (opt.delayAuthorization)
            cpu.flushLineVirt(Layout::kVictimBound); // step 2
        else
            cpu.warmLine(Layout::kVictimBound);
        // Victim-hot data: the pointer and the secret line, so the
        // transient chase fits inside the speculation window.
        cpu.warmLine(kPointerSlot);
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.setReg(rIdx, kPointerSlot - Layout::kVictimArray);
        cpu.run(0);
        recovered.push_back(ch.recover({
            ch.noiseSet(Layout::kVictimBound),
            ch.noiseSet(kPointerSlot),
            ch.noiseSet(Layout::kUserSecret + i),
        }));
        // Re-train after the mispredict nudged the counter.
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(rIdx, (i % 2) * 8);
        cpu.run(0);
    }
    return scoreResult("Spectre v1 pointer-chase", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

/**
 * Register the attack.  This is everything a new scenario needs:
 * no AttackVariant edit, no switch edits, no src/attacks change.
 */
const core::AttackDescriptor &
registerPtrChase()
{
    core::AttackDescriptor d;
    d.name = "Spectre v1 pointer-chase";
    d.aliases = {"spectre-v1-ptr-chase", "ptr-chase"};
    d.klass = core::AttackClass::SpectreType;
    d.cve = "N/A (composed out-of-tree)";
    d.paperSection = "Sec. V-A";
    // The graph is a point in the paper's 3-D composition space:
    // conditional-branch trigger x memory source x chosen channel.
    d.buildGraph = [](core::CovertChannelKind channel) {
        return core::composeAttack(
            {core::TriggerKind::ConditionalBranch,
             core::SecretSource::Memory, channel});
    };
    d.execute = statsCollectingExecute(runSpectreV1PtrChase);
    return core::ScenarioCatalog::instance().registerAttack(
        std::move(d));
}

/** The demo campaign: the new attack (by alias) next to its in-tree
 *  ancestor, across three defense columns and both channels. */
campaign::ScenarioSpec
demoSpec()
{
    const core::ScenarioCatalog &catalog =
        core::ScenarioCatalog::instance();
    campaign::ScenarioSpec spec;
    spec.name = "custom-attack";
    spec.variants = {core::AttackVariant::SpectreV1};
    spec.attackNames = {"ptr-chase"}; // resolved via the registry
    spec.defenses.push_back({"baseline", nullptr});
    for (const char *defense :
         {"Context-sensitive fencing",
          "Speculative Taint Tracking (STT)"}) {
        const core::DefenseDescriptor *d =
            catalog.findDefense(defense);
        if (d != nullptr)
            spec.defenses.push_back({d->info.name, d->apply});
    }
    spec.channels = {core::CovertChannelKind::FlushReload,
                     core::CovertChannelKind::PrimeProbe};
    return spec;
}

bool
expectCell(const campaign::CampaignReport &report, std::size_t row,
           std::size_t col, char want)
{
    const char got = report.cellGlyph(row, col);
    if (got == want)
        return true;
    std::fprintf(stderr,
                 "FAIL: cell (%s, %s) is '%c', expected '%c'\n",
                 report.rowLabels[row].c_str(),
                 report.colLabels[col].c_str(), got, want);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonl_path = "custom-attack.jsonl";
    std::string cache_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jsonl")
            jsonl_path = value();
        else if (arg == "--cache-file")
            cache_path = value();
        else {
            std::fprintf(stderr,
                         "usage: %s [--jsonl FILE] "
                         "[--cache-file FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const core::AttackDescriptor &descriptor = registerPtrChase();
    std::printf("registered '%s' (slot %u, %s)\n",
                descriptor.name.c_str(),
                static_cast<unsigned>(descriptor.id),
                descriptor.isExtension() ? "extension" : "builtin");

    // The registered graph hook works like any built-in's.
    const core::AttackGraph graph = core::buildAttackGraph(
        descriptor.id, descriptor.defaultChannel);
    std::printf("attack graph '%s': %zu operations, vulnerable=%s\n",
                graph.name().c_str(), graph.tsg().nodeCount(),
                graph.isVulnerable() ? "yes" : "no");

    const campaign::ScenarioSpec spec = demoSpec();

    // Persistent cache: a second invocation with the same
    // --cache-file executes zero cells.
    campaign::ResultCache cache;
    const std::string fingerprint = campaign::modelFingerprint();
    campaign::CampaignEngine::Options engine_opts;
    engine_opts.cache = &cache;
    if (!cache_path.empty() &&
        cache.loadFromFile(cache_path, fingerprint))
        std::printf("cache: loaded %zu entries from %s\n",
                    cache.size(), cache_path.c_str());
    const campaign::CampaignEngine engine(engine_opts);

    // 1-process run, streaming the JSONL export as workers finish.
    campaign::ReportSink report_sink;
    std::ofstream jsonl_stream(jsonl_path, std::ios::binary);
    if (!jsonl_stream) {
        std::fprintf(stderr, "cannot write %s\n",
                     jsonl_path.c_str());
        return 1;
    }
    tool::JsonlStreamSink jsonl_sink(jsonl_stream, false);
    engine.run(spec, {&report_sink, &jsonl_sink});
    jsonl_stream.flush();
    const campaign::CampaignReport report =
        report_sink.takeReport();
    std::printf("\n%s\n", report.successMatrixText().c_str());
    std::printf("executed %zu unique of %zu expanded scenarios "
                "(%zu cache hits)\n",
                report.executedCount, report.expandedCount,
                report.cacheHits);

    // 2-shard run of the same spec, merged back: must be
    // byte-identical to the 1-process run in every timing-free
    // export.
    campaign::CampaignReport merged =
        engine.run(spec, campaign::ShardRange{0, 2});
    const campaign::CampaignReport shard1 =
        engine.run(spec, campaign::ShardRange{1, 2});
    std::string merge_error;
    if (!merged.merge(shard1, &merge_error)) {
        std::fprintf(stderr, "FAIL: shard merge: %s\n",
                     merge_error.c_str());
        return 1;
    }

    bool ok = true;
    if (tool::campaignJson(merged, false) !=
        tool::campaignJson(report, false)) {
        std::fprintf(stderr, "FAIL: sharded-then-merged export "
                             "differs from 1-process export\n");
        ok = false;
    } else {
        std::printf("sharded+merged export byte-identical to "
                    "1-process export\n");
    }

    // The verdicts that make this a meaningful CI gate: the new
    // attack leaks on the baseline core and dies under strategy-1
    // fencing and STT, matching its in-tree ancestor.
    for (std::size_t row = 0; row < report.rowLabels.size(); ++row) {
        ok &= expectCell(report, row, 0, 'L');
        ok &= expectCell(report, row, 1, '.');
        ok &= expectCell(report, row, 2, '.');
    }

    if (!cache_path.empty()) {
        std::string error, lockWarning;
        if (cache.saveToFile(cache_path, fingerprint, &error,
                             &lockWarning))
            std::printf("cache: saved %zu entries to %s\n",
                        cache.size(), cache_path.c_str());
        else {
            std::fprintf(stderr, "cache save failed: %s\n",
                         error.c_str());
            ok = false;
        }
        if (!lockWarning.empty())
            std::fprintf(stderr, "cache save degraded: %s\n",
                         lockWarning.c_str());
    }
    std::printf("wrote %s\n%s\n", jsonl_path.c_str(),
                ok ? "OK: out-of-tree attack ran the full pipeline"
                   : "FAILED");
    return ok ? 0 : 1;
}
