/**
 * @file
 * Defense explorer: the attack x defense outcome matrix — the
 * repository's answer to the paper's question "is this defense
 * effective against that attack, and why?".
 *
 * The whole experiment is one declarative campaign spec
 * (ScenarioSpec::defenseMatrix()) executed by the engine; the
 * engine is the single code path for every cell.  A spot assertion
 * on the baseline column keeps the engine honest against the direct
 * runner without re-running the full grid serially.
 */

#include <cstdio>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"

using namespace specsec;
using namespace specsec::campaign;

int
main()
{
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    const CampaignReport report = CampaignEngine().run(spec);

    std::printf("attack x defense outcome matrix "
                "(L = still leaks, . = blocked)\n\n");
    std::printf("%s", report.successMatrixText().c_str());

    // Spot agreement check: the baseline column against the direct
    // runner.  Outcomes are in row-major grid order, so variant r's
    // baseline cell is outcome r * |defenses|.
    bool agree = true;
    for (std::size_t r = 0; r < spec.variants.size(); ++r) {
        const attacks::AttackResult direct = attacks::runVariant(
            spec.variants[r], spec.baseConfig, spec.baseOptions);
        const std::size_t cell = r * spec.defenses.size();
        if (direct.leaked !=
            report.outcomes[cell].result.leaked)
            agree = false;
    }
    std::printf("\nbaseline column agrees with the direct runner "
                "on all %zu variants: %s\n", spec.variants.size(),
                agree ? "yes" : "NO — BUG");

    std::printf("\nnotes:\n");
    std::printf("  - flush(4) only stops predictor-mistraining "
                "attacks, exactly as the model predicts;\n");
    std::printf("    the v1-family rows show L because in-process "
                "bimodal training survives a context-switch\n");
    std::printf("    flush keyed to attacker/victim separation "
                "only when the attacker is cross-context (v2, "
                "RSB).\n");
    std::printf("  - Spoiler is excluded: it is a timing attack "
                "with no leak/blocked verdict (see bench_table1).\n");
    return agree ? 0 : 1;
}
