/**
 * @file
 * Defense explorer: the attack x defense outcome matrix — the
 * repository's answer to the paper's question "is this defense
 * effective against that attack, and why?".
 *
 * This used to be a hand-written serial double loop.  It is now a
 * campaign spec (ScenarioSpec::defenseMatrix()) executed by the
 * parallel CampaignEngine; a compact serial loop over the same cells
 * is kept here only to demonstrate that the engine and the direct
 * runner agree cell for cell.
 */

#include <cstdio>

#include "attacks/runner.hh"
#include "campaign/campaign.hh"

using namespace specsec;
using namespace specsec::campaign;

int
main()
{
    // The whole experiment is one declarative spec + one engine run.
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    const CampaignReport report = CampaignEngine().run(spec);

    std::printf("attack x defense outcome matrix "
                "(L = still leaks, . = blocked)\n\n");
    std::printf("%s", report.successMatrixText().c_str());

    // Cross-check: the old-style serial loop over the same grid.
    bool agree = true;
    const auto grid = expandGrid(spec);
    for (const Scenario &s : grid) {
        const attacks::AttackResult r =
            attacks::runVariant(s.variant, s.config, s.options);
        if (r.leaked != report.outcomes[s.gridIndex].result.leaked)
            agree = false;
    }
    std::printf("\nserial hand loop agrees with parallel engine "
                "on all %zu cells: %s\n", grid.size(),
                agree ? "yes" : "NO — BUG");

    std::printf("\nnotes:\n");
    std::printf("  - flush(4) only stops predictor-mistraining "
                "attacks, exactly as the model predicts;\n");
    std::printf("    the v1-family rows show L because in-process "
                "bimodal training survives a context-switch\n");
    std::printf("    flush keyed to attacker/victim separation "
                "only when the attacker is cross-context (v2, "
                "RSB).\n");
    std::printf("  - Spoiler is excluded: it is a timing attack "
                "with no leak/blocked verdict (see bench_table1).\n");
    return agree ? 0 : 1;
}
