/**
 * @file
 * Defense explorer: sweep every attack variant against every
 * hardware defense strategy realization and print the outcome
 * matrix — the repository's answer to the paper's question "is this
 * defense effective against that attack, and why?".
 */

#include <cstdio>
#include <vector>

#include "attacks/runner.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::attacks;
using core::AttackVariant;

namespace
{

struct Column
{
    const char *label;
    void (*configure)(CpuConfig &);
};

const Column kColumns[] = {
    {"fence(1)",
     [](CpuConfig &c) { c.defense.fenceSpeculativeLoads = true; }},
    {"nda(2)",
     [](CpuConfig &c) {
         c.defense.blockSpeculativeForwarding = true;
     }},
    {"stt(3)",
     [](CpuConfig &c) { c.defense.blockTaintedTransmit = true; }},
    {"invisi(3)",
     [](CpuConfig &c) { c.defense.invisibleSpeculation = true; }},
    {"cleanup(3)",
     [](CpuConfig &c) { c.defense.cleanupSpec = true; }},
    {"cond(3)",
     [](CpuConfig &c) { c.defense.conditionalSpeculation = true; }},
    {"flush(4)",
     [](CpuConfig &c) {
         c.defense.flushPredictorOnContextSwitch = true;
     }},
};

} // namespace

int
main()
{
    std::printf("attack x defense outcome matrix "
                "(L = still leaks, . = blocked)\n\n");
    std::printf("%-26s %8s", "variant", "baseline");
    for (const Column &col : kColumns)
        std::printf(" %10s", col.label);
    std::printf("\n");
    for (AttackVariant v : core::allVariants()) {
        if (v == AttackVariant::Spoiler)
            continue; // timing attack; see bench_table1
        std::printf("%-26.26s", core::variantInfo(v).name);
        const AttackResult base = runVariant(v, CpuConfig{});
        std::printf(" %8s", base.leaked ? "L" : ".");
        for (const Column &col : kColumns) {
            CpuConfig cfg;
            col.configure(cfg);
            const AttackResult r = runVariant(v, cfg);
            std::printf(" %10s", r.leaked ? "L" : ".");
        }
        std::printf("\n");
    }
    std::printf("\nnotes:\n");
    std::printf("  - flush(4) only stops predictor-mistraining "
                "attacks, exactly as the model predicts;\n");
    std::printf("    the v1-family rows show L because in-process "
                "bimodal training survives a context-switch\n");
    std::printf("    flush keyed to attacker/victim separation "
                "only when the attacker is cross-context (v2, "
                "RSB).\n");
    return 0;
}
