/**
 * @file
 * Quickstart: the library in ~60 lines.
 *
 * Build an attack graph by hand, find the race that makes it
 * exploitable (Theorem 1), insert the missing security dependency,
 * and watch the model verdict flip — the paper's core loop.
 */

#include <cstdio>

#include "core/attack_graph.hh"
#include "core/security_dependency.hh"
#include "graph/race.hh"

using namespace specsec;
using core::AttackGraph;
using core::AttackStep;
using core::NodeRole;

int
main()
{
    // A minimal speculative attack: a delayed bounds check
    // (authorization) racing a secret access that feeds a cache
    // covert channel.
    AttackGraph g;
    g.setName("quickstart");
    const auto branch = g.addOperation(
        "bounds-check branch", NodeRole::Trigger,
        AttackStep::DelayedAuth);
    const auto resolve = g.addOperation(
        "branch resolution (authorization)", NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const auto access = g.addOperation(
        "load secret", NodeRole::SecretAccess, AttackStep::Access);
    const auto use = g.addOperation(
        "compute probe address", NodeRole::Use, AttackStep::UseSend);
    const auto send = g.addOperation(
        "touch probe line", NodeRole::Send, AttackStep::UseSend);

    g.addDependency(branch, resolve);
    g.addDependency(branch, access, graph::EdgeKind::Control);
    g.addDependency(access, use);
    g.addDependency(use, send, graph::EdgeKind::Address);

    std::printf("before defense: %s\n",
                g.isVulnerable() ? "VULNERABLE" : "safe");
    for (const auto &f : g.missingSecurityDependencies()) {
        std::printf("  missing dependency: '%s' must complete "
                    "before '%s'\n",
                    g.tsg().label(f.authorization).c_str(),
                    g.tsg().label(f.operation).c_str());
    }

    // Theorem 1 in action: the race exists because no path connects
    // the two operations.
    std::printf("path resolve->access: %s, race: %s\n",
                graph::pathExists(g.tsg(), resolve, access) ? "yes"
                                                            : "no",
                graph::hasRace(g.tsg(), resolve, access) ? "yes"
                                                         : "no");

    // Insert the security dependency (defense strategy 1).
    core::applyDefense(g, core::DefenseStrategy::PreventAccess);
    std::printf("after strategy 1: %s\n",
                g.isVulnerable() ? "VULNERABLE" : "safe");
    return 0;
}
