/**
 * @file
 * Spectre v1 end to end on the simulated out-of-order core:
 * leak a secret string byte by byte through the Flush+Reload
 * channel, then repeat with an LFENCE after the bounds check and
 * watch the leak disappear.
 */

#include <cstdio>
#include <string>

#include "attacks/spectre.hh"

using namespace specsec;
using namespace specsec::attacks;

namespace
{

std::string
printable(const std::vector<int> &bytes)
{
    std::string s;
    for (int b : bytes) {
        if (b >= 32 && b < 127)
            s.push_back(static_cast<char>(b));
        else
            s.push_back('.');
    }
    return s;
}

} // namespace

int
main()
{
    AttackOptions opt;
    opt.secretLen = 24;

    std::printf("running Spectre v1 on the vulnerable baseline "
                "core...\n");
    const AttackResult leak = runSpectreV1(CpuConfig{}, opt);
    std::printf("  expected secret : %s\n",
                printable(std::vector<int>(leak.expected.begin(),
                                           leak.expected.end()))
                    .c_str());
    std::printf("  recovered bytes : %s\n",
                printable(leak.recovered).c_str());
    std::printf("  accuracy        : %.1f%%  (guest cycles: %llu, "
                "transient forwards: %llu)\n",
                leak.accuracy * 100.0,
                static_cast<unsigned long long>(leak.guestCycles),
                static_cast<unsigned long long>(
                    leak.transientForwards));

    std::printf("\nsame attack with an LFENCE after the bounds "
                "check (Table II, strategy 1)...\n");
    AttackOptions fenced = opt;
    fenced.softwareLfence = true;
    const AttackResult blocked = runSpectreV1(CpuConfig{}, fenced);
    std::printf("  recovered bytes : %s\n",
                printable(blocked.recovered).c_str());
    std::printf("  accuracy        : %.1f%%\n",
                blocked.accuracy * 100.0);

    std::printf("\nsame attack on NDA-style hardware (strategy 2: "
                "no speculative forwarding)...\n");
    CpuConfig nda;
    nda.defense.blockSpeculativeForwarding = true;
    const AttackResult nda_result = runSpectreV1(nda, opt);
    std::printf("  accuracy        : %.1f%%\n",
                nda_result.accuracy * 100.0);
    return 0;
}
