/**
 * @file
 * Meltdown vs KPTI: read kernel memory from user mode on the
 * vulnerable core, then unmap the kernel pages (KAISER/KPTI) and
 * show there is nothing left to access — the paper's "prevent
 * access" strategy realized by the OS.  Also shows the fixed-
 * silicon variant (zeroed transient forwarding).
 */

#include <cstdio>

#include "attacks/meltdown.hh"

using namespace specsec;
using namespace specsec::attacks;

namespace
{

void
report(const char *scenario, const AttackResult &r)
{
    std::printf("%-42s accuracy %5.1f%%  %s\n", scenario,
                r.accuracy * 100.0,
                r.leaked ? "** kernel memory leaked **" : "blocked");
}

} // namespace

int
main()
{
    AttackOptions opt;
    opt.secretLen = 16;

    report("vulnerable core, kernel mapped:",
           runMeltdown(CpuConfig{}, opt));

    AttackOptions kpti = opt;
    kpti.kpti = true;
    report("vulnerable core + KPTI (page unmapped):",
           runMeltdown(CpuConfig{}, kpti));

    CpuConfig fixed;
    fixed.vuln.meltdown = false;
    report("fixed silicon (zeroed forwarding):",
           runMeltdown(fixed, opt));

    // The historically important corollary: the Meltdown silicon
    // fix did NOT fix Foreshadow, because the cache read path is a
    // different secret source (paper Fig. 4).
    std::printf("\nFig. 4's point, executed:\n");
    report("  Foreshadow on Meltdown-fixed silicon:",
           runForeshadow(fixed, opt));
    CpuConfig fully_fixed = fixed;
    fully_fixed.vuln.l1tf = false;
    fully_fixed.vuln.mds = false;
    report("  Foreshadow with the L1TF path also fixed:",
           runForeshadow(fully_fixed, opt));
    return 0;
}
