/**
 * @file
 * The Fig. 9 tool as a user would drive it: hand it a program with
 * secret annotations, get a vulnerability report, let it patch the
 * program, and confirm the patch both analyzes clean and stops the
 * leak on the simulator.
 */

#include <cstdio>

#include "attacks/attack_kit.hh"
#include "tool/patcher.hh"
#include "tool/report.hh"
#include "uarch/covert.hh"

using namespace specsec;
using namespace specsec::tool;
using namespace specsec::uarch;
using attacks::Layout;

namespace
{

/** Count leaked bytes when running @p program in the v1 scenario. */
std::size_t
leakedBytes(const Program &program)
{
    attacks::Scenario s{CpuConfig{}};
    Cpu &cpu = s.cpu();
    const auto secret = attacks::defaultSecret(8);
    s.plantBytes(Layout::kUserSecret, secret);
    s.mem().write64(Layout::kVictimBound, 16);
    cpu.loadProgram(program);
    cpu.setPrivilege(Privilege::User);
    cpu.setReg(2, Layout::kVictimBound);
    cpu.setReg(3, Layout::kVictimArray);
    cpu.setReg(4, Layout::kProbeArray);
    FlushReloadChannel ch(cpu, Layout::kProbeArray, 256, kPageSize);
    for (unsigned t = 0; t < 8; ++t) {
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(1, t % 16);
        cpu.run(0);
    }
    std::size_t leaked = 0;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        ch.setup();
        cpu.flushLineVirt(Layout::kVictimBound);
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.setReg(1,
                   Layout::kUserSecret + i - Layout::kVictimArray);
        cpu.run(0);
        if (ch.recover().value == static_cast<int>(secret[i]))
            ++leaked;
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(1, i % 16);
        cpu.run(0);
    }
    return leaked;
}

} // namespace

int
main()
{
    // The victim function, as compiled: Listing 1's shape.
    Program victim;
    victim.emit(load64(5, 2, 0));
    auto bail = victim.newLabel();
    victim.emitBranch(Cond::Geu, 1, 5, bail);
    victim.emit(add(7, 3, 1));
    victim.emit(load8(6, 7, 0));
    victim.emit(shlImm(8, 6, 12));
    victim.emit(add(9, 4, 8));
    victim.emit(load8(10, 9, 0));
    victim.bind(bail);
    victim.emit(halt());

    AnalysisSpec spec;
    spec.program = victim;
    spec.ranges = {{Layout::kUserSecret, kPageSize,
                    "victim secret"}};
    spec.attackerRegs = {1}; // the query index is untrusted input
    spec.knownRegs = {{2, Layout::kVictimBound},
                      {3, Layout::kVictimArray},
                      {4, Layout::kProbeArray}};

    const AnalysisResult analysis = analyzeSpec(spec);
    std::printf("%s\n", renderReport(analysis, victim).c_str());

    std::printf("leaked bytes before patching: %zu/8\n\n",
                leakedBytes(victim));

    const PatchResult patch = autoPatch(spec);
    std::printf("auto-patch: %zu fence(s) inserted in %zu "
                "iteration(s), verified=%s\n",
                patch.fencesInserted, patch.iterations,
                patch.verified ? "yes" : "no");
    std::printf("patched program:\n%s\n",
                patch.patched.disassembleAll().c_str());
    std::printf("leaked bytes after patching: %zu/8\n",
                leakedBytes(patch.patched));
    return 0;
}
