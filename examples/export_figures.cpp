/**
 * @file
 * Export every attack graph as a Graphviz .dot file (one per
 * variant plus the combined Fig. 4 graph), with role-based
 * coloring: render with `dot -Tpng figures/<name>.dot`.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/variants.hh"
#include "graph/dot.hh"

using namespace specsec;
using namespace specsec::core;

namespace
{

std::string
slug(std::string name)
{
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

graph::DotOptions
styled(const AttackGraph &g, const std::string &name)
{
    graph::DotOptions options;
    options.name = name;
    options.nodeStyle = [&g](graph::NodeId u) -> std::string {
        switch (g.role(u)) {
          case NodeRole::Authorization:
            return "fillcolor=orange,style=filled";
          case NodeRole::SecretAccess:
            return "fillcolor=red,style=filled,fontcolor=white";
          case NodeRole::Use:
            return "fillcolor=gold,style=filled";
          case NodeRole::Send:
            return "fillcolor=lightblue,style=filled";
          case NodeRole::Receive:
            return "fillcolor=lightgreen,style=filled";
          case NodeRole::MistrainPredictor:
            return "fillcolor=plum,style=filled";
          case NodeRole::Trigger:
            return "fillcolor=lightgray,style=filled";
          default:
            return "";
        }
    };
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "figures";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::size_t written = 0;
    const auto emit = [&](const AttackGraph &g,
                          const std::string &name) {
        const std::string path = dir + "/" + name + ".dot";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr,
                         "cannot write %s (create the '%s' "
                         "directory first)\n",
                         path.c_str(), dir.c_str());
            return;
        }
        out << graph::toDot(g.tsg(), styled(g, name));
        ++written;
        std::printf("wrote %s (%zu nodes, %zu edges)\n",
                    path.c_str(), g.tsg().nodeCount(),
                    g.tsg().edgeCount());
    };

    for (AttackVariant v : allVariants())
        emit(buildAttackGraph(v), slug(variantInfo(v).name));
    emit(buildFigure4Graph(), "figure4_combined");

    std::printf("%zu graphs exported; render with: dot -Tpng "
                "%s/<name>.dot -o <name>.png\n",
                written, dir.c_str());
    return written > 0 ? 0 : 1;
}
