#include "patcher.hh"

#include "defense/mitigations.hh"

namespace specsec::tool
{

AnalysisResult
analyzeSpec(const AnalysisSpec &spec)
{
    Analyzer a(spec.program, spec.ranges, spec.model);
    for (RegId r : spec.attackerRegs)
        a.setAttackerControlled(r);
    for (const auto &[r, v] : spec.knownRegs)
        a.setKnownRegister(r, v);
    return a.analyze();
}

AnalysisSpec
toAnalysisSpec(const core::StaticProgramSpec &spec)
{
    AnalysisSpec out;
    out.program = spec.program;
    for (const core::StaticProgramSpec::Range &r : spec.ranges)
        out.ranges.push_back({r.base, r.length, r.name});
    out.model.branchSpeculation = spec.modelBranches;
    out.model.faultingAccess = spec.modelFaults;
    out.model.storeBypass = spec.modelStoreBypass;
    out.attackerRegs = spec.attackerRegs;
    out.knownRegs = spec.knownRegs;
    return out;
}

PatchResult
autoPatch(const AnalysisSpec &spec, std::size_t max_iterations)
{
    PatchResult result;
    AnalysisSpec current = spec;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        result.iterations = iter + 1;
        const AnalysisResult analysis = analyzeSpec(current);
        if (!analysis.vulnerable) {
            result.verified = true;
            result.residualRaces = analysis.findings.size();
            break;
        }
        // Insert a fence right after the authorization point of the
        // first finding (for intra-instruction authorizations this
        // lands right after the faulting access, cutting the
        // exfiltration chain: the relaxed strategy-3 placement).
        const Finding &f = analysis.findings.front();
        const std::size_t at =
            (f.authPc ? *f.authPc
                      : f.accessPc.value_or(0)) + 1;
        defense::insertLfenceBefore(current.program, at);
        ++result.fencesInserted;
    }
    result.patched = current.program;
    if (!result.verified) {
        const AnalysisResult final_check = analyzeSpec(current);
        result.verified = !final_check.vulnerable;
        result.residualRaces = final_check.findings.size();
    }
    return result;
}

} // namespace specsec::tool
