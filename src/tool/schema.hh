/**
 * @file
 * OutcomeSchema: the one typed field registry behind every exported
 * record in the tree.
 *
 * Six serialization surfaces guard the paper's deliverable matrices
 * (campaignJson/campaignCsv, the streaming JSONL/CSV sinks, the
 * shard-report wire format, golden matrices, the persistent
 * ResultCache).  Before this file they were six hand-maintained
 * field lists that had to stay byte-identical by convention; now
 * each exported field of a ScenarioOutcome (and of the
 * AttackResult/CpuStats wire fragments) is declared exactly once as
 * a typed FieldDescriptor — name, FieldType, flags, accessor and
 * parse hook — and every emitter and parser is derived from the
 * declaration list by iteration.  Adding an exported field is one
 * descriptor in schema.cc; JSON, CSV, JSONL, the wire format, the
 * cache and (for kAccuracy fields) the golden gate pick it up
 * automatically.  See README.md "Adding a new exported field".
 *
 * Because the schema knows each field's type, the golden gate can
 * finally pin *accuracy values* (flag kAccuracy) under an explicit
 * per-spec tolerance instead of silently dropping them
 * (src/regress/golden.hh), and the shard wire format carries a
 * schema tag so a merge of reports produced by binaries with
 * different field lists is rejected instead of misparsed.
 */

#ifndef SPECSEC_TOOL_SCHEMA_HH
#define SPECSEC_TOOL_SCHEMA_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "jsonio.hh"

namespace specsec::core
{
struct AttackDescriptor;
}

namespace specsec::attacks
{
struct AttackOptions;
struct AttackResult;
}

namespace specsec::uarch
{
struct CacheConfig;
struct CpuStats;
struct VulnConfig;
}

namespace specsec::campaign
{
struct ScenarioOutcome;
}

namespace specsec::tool
{

/** The wire/export type of one declared field. */
enum class FieldType : std::uint8_t
{
    String,
    UInt,
    Double,
    Bool,
    IntArray,
};

/** Stable one-letter type code used in schema tags. */
char fieldTypeCode(FieldType type);

/** @name FieldDescriptor flags. @{ */
/// Machine/scheduling-dependent: emitted only with include_timing,
/// excluded from the deterministic export contract.
inline constexpr unsigned kTiming = 1u << 0;
/// Reconstructable from the canonical scenarioKey() (configuration,
/// not measurement): the wire format carries these via the key.
inline constexpr unsigned kKeyComponent = 1u << 1;
/// A measured value the golden gate compares under an explicit
/// per-spec tolerance (goldens without accuracy arrays skip it).
inline constexpr unsigned kAccuracy = 1u << 2;
/// A verdict-backend annotation (model_verdict / agreement /
/// evidence): empty under the plain simulator backend, so the
/// default exports exclude it and stay byte-identical across
/// backends — the triage acceptance criterion.  Opt in with the
/// excludeMask emitter overloads (drop kVerdict from the mask).
inline constexpr unsigned kVerdict = 1u << 3;
/// @}

/**
 * The exclude mask the classic bool-flag export surfaces use:
 * timing fields per @p include_timing, verdict annotations always
 * excluded.  Emitters taking an explicit mask let callers opt back
 * in to kVerdict fields.
 */
inline constexpr unsigned
defaultExcludeMask(bool include_timing)
{
    return (include_timing ? 0u : kTiming) | kVerdict;
}

/** A parsed or extracted field value, tagged by FieldType. */
struct FieldValue
{
    FieldType type = FieldType::UInt;
    std::string s;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
    std::vector<std::int64_t> a;

    static FieldValue ofString(std::string v);
    static FieldValue ofUInt(std::uint64_t v);
    static FieldValue ofDouble(double v);
    static FieldValue ofBool(bool v);
    static FieldValue ofIntArray(std::vector<std::int64_t> v);

    bool operator==(const FieldValue &) const = default;
};

/**
 * How generic emitters render Double fields: the human-facing
 * exports use fixed %.4f (stable, compact); the lossless wire
 * formats use shortest-exact %.17g so emit/parse round-trips are
 * exact.
 */
enum class DoubleStyle : std::uint8_t
{
    Fixed4,
    Exact17,
};

/** Render @p value per @p style (locale-independent). */
std::string formatDouble(double value, DoubleStyle style);

/**
 * Shortest decimal rendering that parses back to exactly @p value
 * ("0.005", not "0.0050000000000000001") — for human-edited files
 * (golden matrices) that must still round-trip exactly.
 */
std::string shortestExactDouble(double value);

/**
 * One exported field of a Record, declared exactly once.  @c get
 * extracts the export value; @c set is its inverse onto a
 * default-constructed Record, so generic parsers (and the
 * round-trip fuzz tests) are derived from the same declaration.
 * @c set returns false when the (type-correct) value is not one its
 * formatter can produce — an unknown channel name, a malformed
 * summary string — and the generic parsers fail loudly instead of
 * leaving the field silently defaulted.
 */
template <typename Record>
struct FieldDescriptor
{
    std::string name;
    FieldType type = FieldType::UInt;
    unsigned flags = 0;
    std::function<FieldValue(const Record &)> get;
    std::function<bool(Record &, const FieldValue &)> set;
};

namespace detail
{
/// Non-template emit/parse core shared by every RecordSchema
/// instantiation (keeps the template thin).
std::string jsonValue(const FieldValue &value, DoubleStyle style);
std::string csvValue(const FieldValue &value, DoubleStyle style);
bool parseValue(json::Cursor &cur, FieldType type, FieldValue &out);
} // namespace detail

/**
 * The field registry of one record type plus every derived
 * serializer: JSON object (named fields), JSON array (positional),
 * CSV header/row.  Iteration order is declaration order, which IS
 * the export order of every surface.
 */
template <typename Record>
class RecordSchema
{
  public:
    RecordSchema(std::string name,
                 std::vector<FieldDescriptor<Record>> fields)
        : name_(std::move(name)), fields_(std::move(fields))
    {
    }

    const std::string &name() const { return name_; }

    const std::vector<FieldDescriptor<Record>> &fields() const
    {
        return fields_;
    }

    const FieldDescriptor<Record> *find(const std::string &name) const
    {
        for (const FieldDescriptor<Record> &f : fields_)
            if (f.name == name)
                return &f;
        return nullptr;
    }

    /**
     * The schema-version tag: record name plus every field as
     * "name:typecode", in order.  Two binaries interoperate on a
     * schema-tagged wire format exactly when their tags are equal.
     */
    std::string tag() const
    {
        std::string out = name_ + "{";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                out += ',';
            out += fields_[i].name;
            out += ':';
            out += fieldTypeCode(fields_[i].type);
        }
        out += '}';
        return out;
    }

    /**
     * `{"a": 1, "b": "x"}` over every field whose flags do not
     * intersect @p excludeMask.
     */
    std::string jsonObject(const Record &record,
                           unsigned excludeMask,
                           DoubleStyle style) const
    {
        std::string out = "{";
        bool first = true;
        for (const FieldDescriptor<Record> &f : fields_) {
            if (f.flags & excludeMask)
                continue;
            if (!first)
                out += ", ";
            first = false;
            out += '"';
            out += f.name;
            out += "\": ";
            out += detail::jsonValue(f.get(record), style);
        }
        out += '}';
        return out;
    }

    /** Classic surface: kTiming per flag, kVerdict always excluded. */
    std::string jsonObject(const Record &record, bool include_timing,
                           DoubleStyle style) const
    {
        return jsonObject(record, defaultExcludeMask(include_timing),
                          style);
    }

    /** Positional `[v0, v1, ...]` over every field (no flags). */
    std::string jsonArray(const Record &record,
                          DoubleStyle style) const
    {
        std::string out = "[";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                out += ", ";
            out += detail::jsonValue(fields_[i].get(record), style);
        }
        out += ']';
        return out;
    }

    /** Comma-joined names of the fields @p excludeMask keeps. */
    std::string csvHeader(unsigned excludeMask) const
    {
        std::string out;
        bool first = true;
        for (const FieldDescriptor<Record> &f : fields_) {
            if (f.flags & excludeMask)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += f.name;
        }
        out += '\n';
        return out;
    }

    /** Classic surface: kTiming per flag, kVerdict always excluded. */
    std::string csvHeader(bool include_timing) const
    {
        return csvHeader(defaultExcludeMask(include_timing));
    }

    /** One CSV record with trailing newline. */
    std::string csvRow(const Record &record, unsigned excludeMask,
                       DoubleStyle style) const
    {
        std::string out;
        bool first = true;
        for (const FieldDescriptor<Record> &f : fields_) {
            if (f.flags & excludeMask)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += detail::csvValue(f.get(record), style);
        }
        out += '\n';
        return out;
    }

    /** Classic surface: kTiming per flag, kVerdict always excluded. */
    std::string csvRow(const Record &record, bool include_timing,
                       DoubleStyle style) const
    {
        return csvRow(record, defaultExcludeMask(include_timing),
                      style);
    }

    /**
     * Parse a jsonObject() document back onto @p record via the set
     * hooks.  Unknown keys fail (every file we read is one we
     * wrote); absent fields keep their current value, so timing-free
     * documents parse with the timing fields defaulted.
     */
    bool parseJsonObject(json::Cursor &cur, Record &record) const
    {
        if (!cur.expect('{'))
            return false;
        if (cur.peekConsume('}'))
            return true;
        do {
            const std::string key = cur.parseString();
            if (cur.failed() || !cur.expect(':'))
                return false;
            const FieldDescriptor<Record> *f = find(key);
            if (f == nullptr)
                return cur.fail("unknown " + name_ + " key '" + key +
                                "'");
            FieldValue value;
            if (!detail::parseValue(cur, f->type, value))
                return false;
            if (!f->set(record, value))
                return cur.fail("bad value for " + name_ +
                                " field '" + key + "'");
        } while (!cur.failed() && cur.peekConsume(','));
        return cur.expect('}');
    }

    /** Parse a jsonArray() document (strict field count). */
    bool parseJsonArray(json::Cursor &cur, Record &record) const
    {
        if (!cur.expect('['))
            return false;
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i && !cur.expect(','))
                return false;
            FieldValue value;
            if (!detail::parseValue(cur, fields_[i].type, value))
                return false;
            if (!fields_[i].set(record, value))
                return cur.fail("bad value for " + name_ +
                                " field '" + fields_[i].name + "'");
        }
        return cur.expect(']');
    }

  private:
    std::string name_;
    std::vector<FieldDescriptor<Record>> fields_;
};

/**
 * @name The registries.
 * outcomeSchema() declares every exported field of a
 * ScenarioOutcome, in export order; attackResultSchema() /
 * cpuStatsSchema() declare the execution-result wire fragments
 * shared by the shard wire format and the persistent cache.
 * @{
 */
const RecordSchema<campaign::ScenarioOutcome> &outcomeSchema();
const RecordSchema<attacks::AttackResult> &attackResultSchema();
const RecordSchema<uarch::CpuStats> &cpuStatsSchema();
/// @}

/**
 * The schema-version tag embedded in shard report files: the
 * combined tags of every schema the wire format is derived from.  A
 * producer and a consumer interoperate exactly when their tags
 * match; parseShardReportJson rejects a mismatch with a message
 * naming both tags, so CampaignReport::merge never sees misparsed
 * outcomes from a binary with a different field list.
 */
std::string wireSchemaTag();

/**
 * @name Summary formatters shared by the schema accessors and the
 * scenario-describing CLIs, with their inverses (the schema's parse
 * hooks).  "kpti+lfence", "no-mds+no-taa"/"all",
 * "256x4/64@4:200".  Each parse* returns false (leaving @p out
 * untouched) on text its formatter cannot produce.
 * @{
 */
std::string mitigationSummary(const attacks::AttackOptions &options);
bool parseMitigationSummary(const std::string &text,
                            attacks::AttackOptions &out);
std::string vulnSummary(const uarch::VulnConfig &vuln);
bool parseVulnSummary(const std::string &text,
                      uarch::VulnConfig &out);
std::string cacheSummary(const uarch::CacheConfig &cache);
bool parseCacheSummary(const std::string &text,
                       uarch::CacheConfig &out);
/// @}

/**
 * The JSON object `campaign_cli list-attacks --json` / `describe
 * --json` emit per attack.  Lives in the library (not the CLI) so
 * the escaping of every string field — including registered alias
 * names — is covered by tests/schema_test.cc.
 */
std::string attackDescriptorJson(const core::AttackDescriptor &d);

/**
 * @name Export-format names for file exports ("json", "csv",
 * "jsonl") and extension inference, shared by `campaign_cli
 * export`.  exportFormatFromPath maps "out.jsonl" -> "jsonl"
 * (case-insensitive), empty string when the extension is not a
 * known format.
 * @{
 */
const std::vector<std::string> &exportFormatNames();
std::string exportFormatFromPath(const std::string &path);
/// @}

} // namespace specsec::tool

#endif // SPECSEC_TOOL_SCHEMA_HH
