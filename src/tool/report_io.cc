#include "report_io.hh"

#include <sstream>

#include "report.hh"
#include "schema.hh"

namespace specsec::tool
{

namespace
{

/** Exact round-trip double rendering (shortest via %.17g). */
std::string
exactNum(double value)
{
    return formatDouble(value, DoubleStyle::Exact17);
}

} // namespace

std::string
attackResultJson(const attacks::AttackResult &r)
{
    return attackResultSchema().jsonObject(r, true,
                                           DoubleStyle::Exact17);
}

std::string
cpuStatsJson(const uarch::CpuStats &s)
{
    return cpuStatsSchema().jsonArray(s, DoubleStyle::Exact17);
}

bool
parseAttackResultJson(json::Cursor &cur,
                      attacks::AttackResult &r)
{
    return attackResultSchema().parseJsonObject(cur, r);
}

bool
parseCpuStatsJson(json::Cursor &cur, uarch::CpuStats &s)
{
    return cpuStatsSchema().parseJsonArray(cur, s);
}

std::string
shardReportJson(const campaign::CampaignReport &report)
{
    std::ostringstream os;
    os << "{\n\"version\": " << kReportIoVersion << ",\n";
    // The schema-version tag: which field lists produced this file.
    // A consumer whose schemas differ rejects the file at parse
    // time, so CampaignReport::merge never folds misparsed outcomes
    // from a binary with a different field registry.
    os << "\"schema\": \"" << jsonEscape(wireSchemaTag())
       << "\",\n";
    os << "\"name\": \"" << jsonEscape(report.name) << "\",\n";
    os << "\"rows\": " << jsonStringArray(report.rowLabels)
       << ",\n";
    os << "\"cols\": " << jsonStringArray(report.colLabels)
       << ",\n";
    os << "\"expandedCount\": " << report.expandedCount << ",\n";
    os << "\"uniqueCount\": " << report.uniqueCount << ",\n";
    os << "\"shardIndex\": " << report.shardIndex << ",\n";
    os << "\"shardCount\": " << report.shardCount << ",\n";
    os << "\"executedCount\": " << report.executedCount << ",\n";
    os << "\"cacheHits\": " << report.cacheHits << ",\n";
    os << "\"modelDecided\": " << report.modelDecided << ",\n";
    os << "\"modelUndecided\": " << report.modelUndecided << ",\n";
    os << "\"disagreements\": " << report.disagreements << ",\n";
    os << "\"replicatedCells\": " << report.replicatedCells
       << ",\n";
    os << "\"workers\": " << report.workers << ",\n";
    os << "\"wallMillis\": " << exactNum(report.wallMillis)
       << ",\n";
    os << "\"outcomes\": [";
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const campaign::ScenarioOutcome &o = report.outcomes[i];
        os << (i ? ",\n" : "\n");
        os << "{\"gridIndex\": " << o.gridIndex
           << ", \"row\": " << o.row << ", \"col\": " << o.col
           << ", \"rowLabel\": \"" << jsonEscape(o.rowLabel)
           << "\", \"colLabel\": \"" << jsonEscape(o.colLabel)
           << "\", \"key\": \""
           << jsonEscape(campaign::scenarioKey(o.variant, o.config,
                                               o.options))
           << "\", \"result\": " << attackResultJson(o.result)
           << ", \"stats\": " << cpuStatsJson(o.stats)
           << ", \"wallMillis\": " << exactNum(o.wallMillis);
        // Verdict-backend annotations are empty under the plain
        // simulator backend; emitting them only when set keeps
        // simulator shard files byte-identical across backends.
        if (!o.modelVerdict.empty())
            os << ", \"modelVerdict\": \""
               << jsonEscape(o.modelVerdict) << "\"";
        if (!o.agreement.empty())
            os << ", \"agreement\": \"" << jsonEscape(o.agreement)
               << "\"";
        if (!o.evidence.empty())
            os << ", \"evidence\": \"" << jsonEscape(o.evidence)
               << "\"";
        os << "}";
    }
    os << "\n]\n}\n";
    return os.str();
}

std::optional<campaign::CampaignReport>
parseShardReportJson(const std::string &text, std::string *error)
{
    json::Cursor cur(text);
    campaign::CampaignReport report;
    unsigned version = 0;
    bool sawOutcomes = false;
    const auto failed =
        [&]() -> std::optional<campaign::CampaignReport> {
        if (error)
            *error = cur.error().empty() ? "parse error"
                                         : cur.error();
        return std::nullopt;
    };

    if (!cur.expect('{'))
        return failed();
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return failed();
        if (key == "version") {
            version = cur.parseUnsigned();
            if (version != kReportIoVersion) {
                cur.fail("unsupported shard report version");
                return failed();
            }
        } else if (key == "schema") {
            // Absent in files from pre-tag producers, whose field
            // lists were exactly the current ones; when present it
            // must match ours or the outcomes would misparse.
            const std::string found = cur.parseString();
            if (!cur.failed() && found != wireSchemaTag()) {
                cur.fail("schema mismatch: file has '" + found +
                         "', this binary expects '" +
                         wireSchemaTag() + "'");
                return failed();
            }
        } else if (key == "name") {
            report.name = cur.parseString();
        } else if (key == "rows") {
            report.rowLabels = json::parseStringArray(cur);
        } else if (key == "cols") {
            report.colLabels = json::parseStringArray(cur);
        } else if (key == "expandedCount") {
            report.expandedCount = cur.parseU64();
        } else if (key == "uniqueCount") {
            report.uniqueCount = cur.parseU64();
        } else if (key == "shardIndex") {
            report.shardIndex = cur.parseU64();
        } else if (key == "shardCount") {
            report.shardCount = cur.parseU64();
        } else if (key == "executedCount") {
            report.executedCount = cur.parseU64();
        } else if (key == "cacheHits") {
            report.cacheHits = cur.parseU64();
        } else if (key == "modelDecided") {
            report.modelDecided = cur.parseU64();
        } else if (key == "modelUndecided") {
            report.modelUndecided = cur.parseU64();
        } else if (key == "disagreements") {
            report.disagreements = cur.parseU64();
        } else if (key == "replicatedCells") {
            report.replicatedCells = cur.parseU64();
        } else if (key == "workers") {
            report.workers = cur.parseUnsigned();
        } else if (key == "wallMillis") {
            report.wallMillis = cur.parseDouble();
        } else if (key == "outcomes") {
            sawOutcomes = true;
            if (!cur.expect('['))
                return failed();
            if (!cur.peekConsume(']')) {
                do {
                    campaign::ScenarioOutcome o;
                    std::string scenario_key;
                    if (!cur.expect('{'))
                        return failed();
                    do {
                        const std::string field =
                            cur.parseString();
                        if (cur.failed() || !cur.expect(':'))
                            return failed();
                        if (field == "gridIndex")
                            o.gridIndex = cur.parseU64();
                        else if (field == "row")
                            o.row = cur.parseU64();
                        else if (field == "col")
                            o.col = cur.parseU64();
                        else if (field == "rowLabel")
                            o.rowLabel = cur.parseString();
                        else if (field == "colLabel")
                            o.colLabel = cur.parseString();
                        else if (field == "key")
                            scenario_key = cur.parseString();
                        else if (field == "result") {
                            if (!parseAttackResultJson(cur,
                                                       o.result))
                                return failed();
                        } else if (field == "stats") {
                            if (!parseCpuStatsJson(cur, o.stats))
                                return failed();
                        } else if (field == "wallMillis")
                            o.wallMillis = cur.parseDouble();
                        else if (field == "modelVerdict")
                            o.modelVerdict = cur.parseString();
                        else if (field == "agreement")
                            o.agreement = cur.parseString();
                        else if (field == "evidence")
                            o.evidence = cur.parseString();
                        else {
                            cur.fail("unknown outcome key '" +
                                     field + "'");
                            return failed();
                        }
                    } while (!cur.failed() &&
                             cur.peekConsume(','));
                    if (!cur.expect('}'))
                        return failed();
                    if (!campaign::parseScenarioKey(
                            scenario_key, o.variant, o.config,
                            o.options)) {
                        cur.fail("malformed scenario key '" +
                                 scenario_key + "'");
                        return failed();
                    }
                    report.outcomes.push_back(std::move(o));
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return failed();
            }
        } else {
            cur.fail("unknown report key '" + key + "'");
            return failed();
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (cur.failed() || !cur.expect('}'))
        return failed();
    if (!cur.atEnd()) {
        cur.fail("trailing content after shard report");
        return failed();
    }
    if (version == 0) {
        cur.fail("shard report has no version");
        return failed();
    }
    if (!sawOutcomes) {
        cur.fail("shard report has no outcomes");
        return failed();
    }
    report.scenariosPerSecond =
        report.wallMillis > 0.0
            ? 1000.0 *
                  static_cast<double>(report.executedCount) /
                  report.wallMillis
            : 0.0;
    report.recomputeCells();
    return report;
}

} // namespace specsec::tool
