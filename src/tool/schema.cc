#include "schema.hh"

#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.hh"
#include "core/catalog.hh"
#include "report.hh"

namespace specsec::tool
{

char
fieldTypeCode(FieldType type)
{
    switch (type) {
      case FieldType::String:
        return 's';
      case FieldType::UInt:
        return 'u';
      case FieldType::Double:
        return 'd';
      case FieldType::Bool:
        return 'b';
      case FieldType::IntArray:
        return 'a';
    }
    return '?';
}

FieldValue
FieldValue::ofString(std::string v)
{
    FieldValue out;
    out.type = FieldType::String;
    out.s = std::move(v);
    return out;
}

FieldValue
FieldValue::ofUInt(std::uint64_t v)
{
    FieldValue out;
    out.type = FieldType::UInt;
    out.u = v;
    return out;
}

FieldValue
FieldValue::ofDouble(double v)
{
    FieldValue out;
    out.type = FieldType::Double;
    out.d = v;
    return out;
}

FieldValue
FieldValue::ofBool(bool v)
{
    FieldValue out;
    out.type = FieldType::Bool;
    out.b = v;
    return out;
}

FieldValue
FieldValue::ofIntArray(std::vector<std::int64_t> v)
{
    FieldValue out;
    out.type = FieldType::IntArray;
    out.a = std::move(v);
    return out;
}

std::string
formatDouble(double value, DoubleStyle style)
{
    char buf[40];
    std::snprintf(buf, sizeof buf,
                  style == DoubleStyle::Fixed4 ? "%.4f" : "%.17g",
                  value);
    return buf;
}

std::string
shortestExactDouble(double value)
{
    char buf[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            return buf;
    }
    return buf;
}

namespace detail
{

std::string
jsonValue(const FieldValue &value, DoubleStyle style)
{
    switch (value.type) {
      case FieldType::String: {
          std::string out = "\"";
          out += jsonEscape(value.s);
          out += '"';
          return out;
      }
      case FieldType::UInt:
        return std::to_string(value.u);
      case FieldType::Double:
        return formatDouble(value.d, style);
      case FieldType::Bool:
        return value.b ? "true" : "false";
      case FieldType::IntArray: {
          std::string out = "[";
          for (std::size_t i = 0; i < value.a.size(); ++i) {
              if (i)
                  out += ", ";
              out += std::to_string(value.a[i]);
          }
          out += ']';
          return out;
      }
    }
    return "null";
}

std::string
csvValue(const FieldValue &value, DoubleStyle style)
{
    switch (value.type) {
      case FieldType::String:
        return csvField(value.s);
      case FieldType::UInt:
        return std::to_string(value.u);
      case FieldType::Double:
        return formatDouble(value.d, style);
      case FieldType::Bool:
        return value.b ? "1" : "0";
      case FieldType::IntArray: {
          // No CSV surface exports arrays today; ';'-join inside one
          // quotable field keeps the generic writer total.
          std::string joined;
          for (std::size_t i = 0; i < value.a.size(); ++i) {
              if (i)
                  joined += ';';
              joined += std::to_string(value.a[i]);
          }
          return csvField(joined);
      }
    }
    return "";
}

bool
parseValue(json::Cursor &cur, FieldType type, FieldValue &out)
{
    out.type = type;
    switch (type) {
      case FieldType::String:
        out.s = cur.parseString();
        break;
      case FieldType::UInt:
        out.u = cur.parseU64();
        break;
      case FieldType::Double:
        out.d = cur.parseDouble();
        break;
      case FieldType::Bool:
        out.b = cur.parseBool();
        break;
      case FieldType::IntArray:
        out.a = json::parseIntArray(cur);
        break;
    }
    return !cur.failed();
}

} // namespace detail

std::string
mitigationSummary(const attacks::AttackOptions &o)
{
    std::string out;
    const auto add = [&out](bool on, const char *name) {
        if (!on)
            return;
        if (!out.empty())
            out += '+';
        out += name;
    };
    add(o.kpti, "kpti");
    add(o.rsbStuffing, "rsb-stuff");
    add(o.softwareLfence, "lfence");
    add(o.addressMasking, "addr-mask");
    add(o.flushL1OnExit, "flush-l1");
    return out.empty() ? "-" : out;
}

bool
parseMitigationSummary(const std::string &text,
                       attacks::AttackOptions &out)
{
    attacks::AttackOptions parsed = out;
    parsed.kpti = parsed.rsbStuffing = parsed.softwareLfence =
        parsed.addressMasking = parsed.flushL1OnExit = false;
    if (text != "-") {
        std::size_t start = 0;
        while (start <= text.size()) {
            const std::size_t plus = text.find('+', start);
            const std::string name =
                text.substr(start, plus == std::string::npos
                                       ? std::string::npos
                                       : plus - start);
            if (name == "kpti")
                parsed.kpti = true;
            else if (name == "rsb-stuff")
                parsed.rsbStuffing = true;
            else if (name == "lfence")
                parsed.softwareLfence = true;
            else if (name == "addr-mask")
                parsed.addressMasking = true;
            else if (name == "flush-l1")
                parsed.flushL1OnExit = true;
            else
                return false;
            if (plus == std::string::npos)
                break;
            start = plus + 1;
        }
    }
    out = parsed;
    return true;
}

std::string
vulnSummary(const uarch::VulnConfig &v)
{
    std::string out;
    const auto add = [&out](bool enabled, const char *name) {
        if (enabled)
            return;
        if (!out.empty())
            out += '+';
        out += "no-";
        out += name;
    };
    add(v.meltdown, "meltdown");
    add(v.l1tf, "l1tf");
    add(v.mds, "mds");
    add(v.lazyFp, "lazyfp");
    add(v.storeBypass, "store-bypass");
    add(v.msr, "msr");
    add(v.taa, "taa");
    return out.empty() ? "all" : out;
}

bool
parseVulnSummary(const std::string &text, uarch::VulnConfig &out)
{
    uarch::VulnConfig parsed;
    parsed.meltdown = parsed.l1tf = parsed.mds = parsed.lazyFp =
        parsed.storeBypass = parsed.msr = parsed.taa = true;
    if (text != "all") {
        std::size_t start = 0;
        while (start <= text.size()) {
            const std::size_t plus = text.find('+', start);
            const std::string name =
                text.substr(start, plus == std::string::npos
                                       ? std::string::npos
                                       : plus - start);
            if (name == "no-meltdown")
                parsed.meltdown = false;
            else if (name == "no-l1tf")
                parsed.l1tf = false;
            else if (name == "no-mds")
                parsed.mds = false;
            else if (name == "no-lazyfp")
                parsed.lazyFp = false;
            else if (name == "no-store-bypass")
                parsed.storeBypass = false;
            else if (name == "no-msr")
                parsed.msr = false;
            else if (name == "no-taa")
                parsed.taa = false;
            else
                return false;
            if (plus == std::string::npos)
                break;
            start = plus + 1;
        }
    }
    out = parsed;
    return true;
}

std::string
cacheSummary(const uarch::CacheConfig &c)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zux%zu/%zu@%u:%u", c.sets,
                  c.ways, c.lineSize, c.hitLatency, c.missLatency);
    return buf;
}

bool
parseCacheSummary(const std::string &text, uarch::CacheConfig &out)
{
    std::size_t sets = 0, ways = 0, line = 0;
    unsigned hit = 0, miss = 0;
    int consumed = 0;
    if (std::sscanf(text.c_str(), "%zux%zu/%zu@%u:%u%n", &sets,
                    &ways, &line, &hit, &miss, &consumed) != 5 ||
        static_cast<std::size_t>(consumed) != text.size())
        return false;
    out.sets = sets;
    out.ways = ways;
    out.lineSize = line;
    out.hitLatency = hit;
    out.missLatency = miss;
    return true;
}

namespace
{

using campaign::ScenarioOutcome;

/** covertChannelName()'s inverse; false on unknown names. */
bool
parseChannelName(const std::string &name,
                 core::CovertChannelKind &out)
{
    for (const auto kind : {core::CovertChannelKind::FlushReload,
                            core::CovertChannelKind::PrimeProbe}) {
        if (name == core::covertChannelName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

RecordSchema<ScenarioOutcome>
makeOutcomeSchema()
{
    using F = FieldDescriptor<ScenarioOutcome>;
    std::vector<F> fields;
    fields.push_back(
        {"gridIndex", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.gridIndex);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.gridIndex = static_cast<std::size_t>(v.u);
             return true;
         }});
    fields.push_back(
        {"variant", FieldType::String, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(o.rowLabel);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.rowLabel = v.s;
             return true;
         }});
    fields.push_back(
        {"defense", FieldType::String, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(o.colLabel);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.colLabel = v.s;
             return true;
         }});
    fields.push_back(
        {"robSize", FieldType::UInt, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.config.robSize);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.config.robSize = static_cast<std::size_t>(v.u);
             return true;
         }});
    fields.push_back(
        {"permCheckLatency", FieldType::UInt, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.config.permCheckLatency);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.config.permCheckLatency =
                 static_cast<unsigned>(v.u);
             return true;
         }});
    fields.push_back(
        {"channel", FieldType::String, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(
                 core::covertChannelName(o.options.channel));
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             return parseChannelName(v.s, o.options.channel);
         }});
    fields.push_back(
        {"mitigations", FieldType::String, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(
                 mitigationSummary(o.options));
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             return parseMitigationSummary(v.s, o.options);
         }});
    fields.push_back(
        {"vulns", FieldType::String, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(vulnSummary(o.config.vuln));
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             return parseVulnSummary(v.s, o.config.vuln);
         }});
    fields.push_back(
        {"cache", FieldType::String, kKeyComponent,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(
                 cacheSummary(o.config.cache));
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             return parseCacheSummary(v.s, o.config.cache);
         }});
    fields.push_back(
        {"leaked", FieldType::Bool, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofBool(o.result.leaked);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.result.leaked = v.b;
             return true;
         }});
    fields.push_back(
        {"accuracy", FieldType::Double, kAccuracy,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofDouble(o.result.accuracy);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.result.accuracy = v.d;
             return true;
         }});
    fields.push_back(
        {"guestCycles", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.result.guestCycles);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.result.guestCycles = v.u;
             return true;
         }});
    fields.push_back(
        {"transientForwards", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.result.transientForwards);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.result.transientForwards = v.u;
             return true;
         }});
    fields.push_back(
        {"cycles", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.stats.cycles);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.stats.cycles = v.u;
             return true;
         }});
    fields.push_back(
        {"committed", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.stats.committed);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.stats.committed = v.u;
             return true;
         }});
    fields.push_back(
        {"squashed", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.stats.squashed);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.stats.squashed = v.u;
             return true;
         }});
    fields.push_back(
        {"branchMispredicts", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.stats.branchMispredicts);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.stats.branchMispredicts = v.u;
             return true;
         }});
    fields.push_back(
        {"exceptions", FieldType::UInt, 0,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.stats.exceptions);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.stats.exceptions = v.u;
             return true;
         }});
    fields.push_back(
        {"wallMillis", FieldType::Double, kTiming,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofDouble(o.wallMillis);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.wallMillis = v.d;
             return true;
         }});
    fields.push_back(
        {"model_verdict", FieldType::String, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(o.modelVerdict);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.modelVerdict = v.s;
             return true;
         }});
    fields.push_back(
        {"agreement", FieldType::String, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(o.agreement);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.agreement = v.s;
             return true;
         }});
    fields.push_back(
        {"evidence", FieldType::String, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofString(o.evidence);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.evidence = v.s;
             return true;
         }});
    // Static-backend rewrite overhead (zero elsewhere): how many
    // fences / index masks the in-program mitigation inserted and
    // the resulting instruction-count growth.
    fields.push_back(
        {"fences_inserted", FieldType::UInt, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.fencesInserted);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.fencesInserted = v.u;
             return true;
         }});
    fields.push_back(
        {"masks_inserted", FieldType::UInt, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.masksInserted);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.masksInserted = v.u;
             return true;
         }});
    fields.push_back(
        {"extra_instructions", FieldType::UInt, kVerdict,
         [](const ScenarioOutcome &o) {
             return FieldValue::ofUInt(o.extraInstructions);
         },
         [](ScenarioOutcome &o, const FieldValue &v) {
             o.extraInstructions = v.u;
             return true;
         }});
    return RecordSchema<ScenarioOutcome>("outcome",
                                         std::move(fields));
}

RecordSchema<attacks::AttackResult>
makeAttackResultSchema()
{
    using R = attacks::AttackResult;
    using F = FieldDescriptor<R>;
    std::vector<F> fields;
    fields.push_back({"name", FieldType::String, 0,
                      [](const R &r) {
                          return FieldValue::ofString(r.name);
                      },
                      [](R &r, const FieldValue &v) {
                          r.name = v.s;
             return true;
                      }});
    fields.push_back(
        {"recovered", FieldType::IntArray, 0,
         [](const R &r) {
             std::vector<std::int64_t> a(r.recovered.begin(),
                                         r.recovered.end());
             return FieldValue::ofIntArray(std::move(a));
         },
         [](R &r, const FieldValue &v) {
             r.recovered.clear();
             for (const std::int64_t x : v.a)
                 r.recovered.push_back(static_cast<int>(x));
             return true;
         }});
    fields.push_back(
        {"expected", FieldType::IntArray, 0,
         [](const R &r) {
             std::vector<std::int64_t> a(r.expected.begin(),
                                         r.expected.end());
             return FieldValue::ofIntArray(std::move(a));
         },
         [](R &r, const FieldValue &v) {
             r.expected.clear();
             for (const std::int64_t x : v.a)
                 r.expected.push_back(
                     static_cast<std::uint8_t>(x));
             return true;
         }});
    fields.push_back({"accuracy", FieldType::Double, kAccuracy,
                      [](const R &r) {
                          return FieldValue::ofDouble(r.accuracy);
                      },
                      [](R &r, const FieldValue &v) {
                          r.accuracy = v.d;
             return true;
                      }});
    fields.push_back({"leaked", FieldType::Bool, 0,
                      [](const R &r) {
                          return FieldValue::ofBool(r.leaked);
                      },
                      [](R &r, const FieldValue &v) {
                          r.leaked = v.b;
             return true;
                      }});
    fields.push_back({"guestCycles", FieldType::UInt, 0,
                      [](const R &r) {
                          return FieldValue::ofUInt(r.guestCycles);
                      },
                      [](R &r, const FieldValue &v) {
                          r.guestCycles = v.u;
             return true;
                      }});
    fields.push_back(
        {"transientForwards", FieldType::UInt, 0,
         [](const R &r) {
             return FieldValue::ofUInt(r.transientForwards);
         },
         [](R &r, const FieldValue &v) {
             r.transientForwards = v.u;
             return true;
         }});
    return RecordSchema<R>("result", std::move(fields));
}

RecordSchema<uarch::CpuStats>
makeCpuStatsSchema()
{
    using S = uarch::CpuStats;
    using F = FieldDescriptor<S>;
    const auto u64 = [](const char *name,
                        std::uint64_t S::*member) {
        return F{name, FieldType::UInt, 0,
                 [member](const S &s) {
                     return FieldValue::ofUInt(s.*member);
                 },
                 [member](S &s, const FieldValue &v) {
                     s.*member = v.u;
             return true;
                 }};
    };
    std::vector<F> fields{
        u64("cycles", &S::cycles),
        u64("committed", &S::committed),
        u64("squashed", &S::squashed),
        u64("branchMispredicts", &S::branchMispredicts),
        u64("exceptions", &S::exceptions),
        u64("memOrderViolations", &S::memOrderViolations),
        u64("speculativeFills", &S::speculativeFills),
        u64("transientForwards", &S::transientForwards),
    };
    return RecordSchema<S>("stats", std::move(fields));
}

} // namespace

const RecordSchema<campaign::ScenarioOutcome> &
outcomeSchema()
{
    static const RecordSchema<campaign::ScenarioOutcome> schema =
        makeOutcomeSchema();
    return schema;
}

const RecordSchema<attacks::AttackResult> &
attackResultSchema()
{
    static const RecordSchema<attacks::AttackResult> schema =
        makeAttackResultSchema();
    return schema;
}

const RecordSchema<uarch::CpuStats> &
cpuStatsSchema()
{
    static const RecordSchema<uarch::CpuStats> schema =
        makeCpuStatsSchema();
    return schema;
}

std::string
wireSchemaTag()
{
    return attackResultSchema().tag() + ";" +
           cpuStatsSchema().tag() + ";" + outcomeSchema().tag();
}

std::string
attackDescriptorJson(const core::AttackDescriptor &d)
{
    std::string out = "{\"name\": \"" + jsonEscape(d.name) +
                      "\", \"aliases\": " +
                      jsonStringArray(d.aliases);
    out += ", \"class\": \"";
    out += jsonEscape(core::attackClassName(d.klass));
    out += "\", \"cve\": \"" + jsonEscape(d.cve) +
           "\", \"paperSection\": \"" + jsonEscape(d.paperSection) +
           "\", \"defaultChannel\": \"";
    out += jsonEscape(core::covertChannelName(d.defaultChannel));
    out += "\", \"builtin\": ";
    out += d.isExtension() ? "false" : "true";
    out += ", \"executable\": ";
    out += d.execute ? "true" : "false";
    out += ", \"hasGraph\": ";
    out += d.buildGraph ? "true" : "false";
    out += ", \"hasModelVerdict\": ";
    out += d.modelVerdict ? "true" : "false";
    out += ", \"hasStaticProgram\": ";
    out += d.staticProgram ? "true" : "false";
    out += "}";
    return out;
}

const std::vector<std::string> &
exportFormatNames()
{
    static const std::vector<std::string> names{"json", "csv",
                                               "jsonl"};
    return names;
}

std::string
exportFormatFromPath(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return "";
    std::string ext = path.substr(dot + 1);
    for (char &c : ext)
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    for (const std::string &name : exportFormatNames())
        if (ext == name)
            return name;
    return "";
}

} // namespace specsec::tool
