#include "report.hh"

#include <sstream>

#include "core/security_dependency.hh"

namespace specsec::tool
{

std::string
renderReport(const AnalysisResult &result, const Program &program)
{
    std::ostringstream os;
    os << "=== speculative execution vulnerability report ===\n";
    os << "program (" << program.size() << " instructions):\n";
    os << program.disassembleAll();
    os << "\nattack graph: " << result.graph.tsg().nodeCount()
       << " operations, " << result.graph.tsg().edgeCount()
       << " dependencies\n";
    os << "  authorization operations: "
       << result.graph.authorizationNodes().size() << "\n";
    os << "  potential secret accesses: "
       << result.graph.secretAccessNodes().size() << "\n";
    os << "  covert send operations: "
       << result.graph.sendNodes().size() << "\n";
    os << "\nverdict: "
       << (result.vulnerable ? "VULNERABLE" : "no exploitable race")
       << "\n";
    if (result.findings.empty()) {
        os << "no missing security dependencies found\n";
        return os.str();
    }
    os << "missing security dependencies ("
       << result.findings.size() << "):\n";
    for (const Finding &f : result.findings) {
        os << "  - " << f.description << "\n";
        os << "    authorization pc: ";
        if (f.authPc)
            os << *f.authPc;
        else
            os << "(none)";
        os << ", operation pc: ";
        if (f.accessPc)
            os << *f.accessPc;
        else
            os << "(none)";
        os << "\n    suggested strategy: "
           << core::defenseStrategyName(f.suggested) << "\n";
    }
    return os.str();
}

} // namespace specsec::tool
