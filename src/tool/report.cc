#include "report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/campaign.hh"
#include "core/security_dependency.hh"
#include "schema.hh"

namespace specsec::tool
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonStringArray(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        out += i ? ", \"" : "\"";
        out += jsonEscape(items[i]);
        out += "\"";
    }
    out += "]";
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

namespace
{

/** Fixed-precision double rendering: locale-independent, stable. */
std::string
num(double value)
{
    return formatDouble(value, DoubleStyle::Fixed4);
}

} // namespace

std::string
renderReport(const AnalysisResult &result, const Program &program)
{
    std::ostringstream os;
    os << "=== speculative execution vulnerability report ===\n";
    os << "program (" << program.size() << " instructions):\n";
    os << program.disassembleAll();
    os << "\nattack graph: " << result.graph.tsg().nodeCount()
       << " operations, " << result.graph.tsg().edgeCount()
       << " dependencies\n";
    os << "  authorization operations: "
       << result.graph.authorizationNodes().size() << "\n";
    os << "  potential secret accesses: "
       << result.graph.secretAccessNodes().size() << "\n";
    os << "  covert send operations: "
       << result.graph.sendNodes().size() << "\n";
    os << "\nverdict: "
       << (result.vulnerable ? "VULNERABLE" : "no exploitable race")
       << "\n";
    if (result.findings.empty()) {
        os << "no missing security dependencies found\n";
        return os.str();
    }
    os << "missing security dependencies ("
       << result.findings.size() << "):\n";
    for (const Finding &f : result.findings) {
        os << "  - " << f.description << "\n";
        os << "    authorization pc: ";
        if (f.authPc)
            os << *f.authPc;
        else
            os << "(none)";
        os << ", operation pc: ";
        if (f.accessPc)
            os << *f.accessPc;
        else
            os << "(none)";
        os << "\n    suggested strategy: "
           << core::defenseStrategyName(f.suggested) << "\n";
    }
    return os.str();
}

std::string
campaignJson(const campaign::CampaignReport &report,
             bool include_timing)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": \"" << jsonEscape(report.name) << "\",\n";
    os << "  \"expandedCount\": " << report.expandedCount << ",\n";
    os << "  \"uniqueCount\": " << report.uniqueCount << ",\n";
    if (include_timing) {
        // Run provenance: which cells executed vs. hit the result
        // cache is machine/history-dependent, so it lives with the
        // timing fields, outside the deterministic contract.
        os << "  \"executedCount\": " << report.executedCount
           << ",\n";
        os << "  \"cacheHits\": " << report.cacheHits << ",\n";
        os << "  \"workers\": " << report.workers << ",\n";
        os << "  \"wallMillis\": " << num(report.wallMillis)
           << ",\n";
        os << "  \"scenariosPerSecond\": "
           << num(report.scenariosPerSecond) << ",\n";
    }
    os << "  \"rows\": [";
    for (std::size_t i = 0; i < report.rowLabels.size(); ++i) {
        os << (i ? ", " : "") << "\""
           << jsonEscape(report.rowLabels[i]) << "\"";
    }
    os << "],\n  \"cols\": [";
    for (std::size_t i = 0; i < report.colLabels.size(); ++i) {
        os << (i ? ", " : "") << "\""
           << jsonEscape(report.colLabels[i]) << "\"";
    }
    os << "],\n  \"matrix\": [\n";
    for (std::size_t r = 0; r < report.rowLabels.size(); ++r) {
        os << "    {\"variant\": \""
           << jsonEscape(report.rowLabels[r]) << "\", \"cells\": [";
        for (std::size_t c = 0; c < report.colLabels.size(); ++c) {
            os << (c ? ", " : "") << "{\"runs\": "
               << report.cellRuns[r][c] << ", \"leaks\": "
               << report.cellLeaks[r][c] << "}";
        }
        os << "]}"
           << (r + 1 < report.rowLabels.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"outcomes\": [\n";
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        os << "    " << outcomeJson(report.outcomes[i],
                                    include_timing)
           << (i + 1 < report.outcomes.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
outcomeJson(const campaign::ScenarioOutcome &o, bool include_timing)
{
    return outcomeSchema().jsonObject(o, include_timing,
                                      DoubleStyle::Fixed4);
}

std::string
campaignCsvHeader(bool include_timing)
{
    return outcomeSchema().csvHeader(include_timing);
}

std::string
campaignCsvRow(const campaign::ScenarioOutcome &o,
               bool include_timing)
{
    return outcomeSchema().csvRow(o, include_timing,
                                  DoubleStyle::Fixed4);
}

std::string
campaignCsvHeaderMasked(unsigned excludeMask)
{
    return outcomeSchema().csvHeader(excludeMask);
}

std::string
campaignCsvRowMasked(const campaign::ScenarioOutcome &o,
                     unsigned excludeMask)
{
    return outcomeSchema().csvRow(o, excludeMask,
                                  DoubleStyle::Fixed4);
}

std::string
outcomeJsonMasked(const campaign::ScenarioOutcome &o,
                  unsigned excludeMask)
{
    return outcomeSchema().jsonObject(o, excludeMask,
                                      DoubleStyle::Fixed4);
}

std::string
campaignCsv(const campaign::CampaignReport &report,
            bool include_timing)
{
    std::string out = campaignCsvHeader(include_timing);
    for (const campaign::ScenarioOutcome &o : report.outcomes)
        out += campaignCsvRow(o, include_timing);
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &contents)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << contents;
    return static_cast<bool>(f);
}

bool
readTextFile(const std::string &path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return static_cast<bool>(f);
}

} // namespace specsec::tool
