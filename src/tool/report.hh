/**
 * @file
 * Report writers: human-readable vulnerability reports for analyzer
 * results, plus JSON/CSV exporters for campaign sweeps.
 */

#ifndef SPECSEC_TOOL_REPORT_HH
#define SPECSEC_TOOL_REPORT_HH

#include <string>

#include "analyzer.hh"

namespace specsec::campaign
{
struct CampaignReport;
}

namespace specsec::tool
{

/** Render a report: program, graph summary, findings, suggestions. */
std::string renderReport(const AnalysisResult &result,
                         const Program &program);

/**
 * JSON string-body escaping (quotes, backslash, control characters)
 * shared by every JSON writer in the tree.
 */
std::string jsonEscape(const std::string &s);

/** RFC-4180 CSV field quoting (commas, quotes, newlines). */
std::string csvField(const std::string &s);

/**
 * Serialize a campaign report as JSON: campaign metadata, the
 * success matrix (per-cell run/leak counts) and one record per grid
 * cell.  With @p include_timing false the output is a pure function
 * of the spec (byte-identical across serial/parallel runs and
 * machines); with true it adds wall-clock and throughput fields.
 */
std::string campaignJson(const campaign::CampaignReport &report,
                         bool include_timing = true);

/**
 * Serialize a campaign report as CSV, one row per grid cell.  Same
 * determinism contract as campaignJson: timing columns only appear
 * when @p include_timing is set.
 */
std::string campaignCsv(const campaign::CampaignReport &report,
                        bool include_timing = false);

/** Write @p contents to @p path; @return false on I/O failure. */
bool writeTextFile(const std::string &path,
                   const std::string &contents);

} // namespace specsec::tool

#endif // SPECSEC_TOOL_REPORT_HH
