/**
 * @file
 * Human-readable vulnerability reports for analyzer results.
 */

#ifndef SPECSEC_TOOL_REPORT_HH
#define SPECSEC_TOOL_REPORT_HH

#include <string>

#include "analyzer.hh"

namespace specsec::tool
{

/** Render a report: program, graph summary, findings, suggestions. */
std::string renderReport(const AnalysisResult &result,
                         const Program &program);

} // namespace specsec::tool

#endif // SPECSEC_TOOL_REPORT_HH
