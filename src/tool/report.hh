/**
 * @file
 * Report writers: human-readable vulnerability reports for analyzer
 * results, plus JSON/CSV exporters for campaign sweeps.
 */

#ifndef SPECSEC_TOOL_REPORT_HH
#define SPECSEC_TOOL_REPORT_HH

#include <string>
#include <vector>

#include "analyzer.hh"

namespace specsec::campaign
{
struct CampaignReport;
struct ScenarioOutcome;
}

namespace specsec::tool
{

/** Render a report: program, graph summary, findings, suggestions. */
std::string renderReport(const AnalysisResult &result,
                         const Program &program);

/**
 * JSON string-body escaping (quotes, backslash, control characters)
 * shared by every JSON writer in the tree.
 */
std::string jsonEscape(const std::string &s);

/** `["a", "b"]` with each element jsonEscape()d. */
std::string jsonStringArray(const std::vector<std::string> &items);

/** RFC-4180 CSV field quoting (commas, quotes, newlines). */
std::string csvField(const std::string &s);

/**
 * Serialize a campaign report as JSON: campaign metadata, the
 * success matrix (per-cell run/leak counts) and one record per grid
 * cell.  With @p include_timing false the output is a pure function
 * of the spec (byte-identical across serial/parallel runs and
 * machines); with true it adds wall-clock and throughput fields.
 */
std::string campaignJson(const campaign::CampaignReport &report,
                         bool include_timing = true);

/**
 * Serialize a campaign report as CSV, one row per grid cell.  Same
 * determinism contract as campaignJson: timing columns only appear
 * when @p include_timing is set.
 */
std::string campaignCsv(const campaign::CampaignReport &report,
                        bool include_timing = false);

/**
 * @name Per-record formatters shared by the batch exporters above
 * and the streaming sinks (stream_export.hh).  One formatter per
 * format keeps "stream then concatenate" byte-identical to "collect
 * then export" by construction.  All three are thin wrappers over
 * tool::outcomeSchema() (schema.hh): the field list, order, types
 * and flags live in one declaration, and these derive JSON and CSV
 * from it by iteration.
 * @{
 */

/** The campaignCsv column header line, with trailing newline. */
std::string campaignCsvHeader(bool include_timing);

/** One campaignCsv data row for @p outcome, with trailing newline. */
std::string campaignCsvRow(const campaign::ScenarioOutcome &outcome,
                           bool include_timing);

/**
 * The one-line JSON object campaignJson() emits for @p outcome (no
 * surrounding indentation, comma or newline).
 */
std::string outcomeJson(const campaign::ScenarioOutcome &outcome,
                        bool include_timing);

/**
 * @name Exclude-mask variants (tool::kTiming / tool::kVerdict,
 * schema.hh) for callers that opt in to the verdict-backend
 * annotation fields; the bool surfaces above always exclude
 * kVerdict so existing exports stay byte-identical across backends.
 * @{
 */
std::string campaignCsvHeaderMasked(unsigned excludeMask);
std::string campaignCsvRowMasked(
    const campaign::ScenarioOutcome &outcome, unsigned excludeMask);
std::string outcomeJsonMasked(
    const campaign::ScenarioOutcome &outcome, unsigned excludeMask);
/// @}

/// @}

/** Write @p contents to @p path; @return false on I/O failure. */
bool writeTextFile(const std::string &path,
                   const std::string &contents);

/** Slurp @p path into @p out; @return false on I/O failure. */
bool readTextFile(const std::string &path, std::string &out);

} // namespace specsec::tool

#endif // SPECSEC_TOOL_REPORT_HH
