#include "analyzer.hh"

#include <algorithm>
#include <array>
#include <limits>

namespace specsec::tool
{

using core::AttackGraph;
using core::AttackStep;
using core::NodeRole;
using graph::EdgeKind;
using uarch::Instruction;
using uarch::Opcode;

namespace
{

/** Abstract value a register may hold during analysis. */
struct ValueInfo
{
    enum class Kind : std::uint8_t
    {
        Unknown,
        Constant,
        Attacker, ///< attacker-influenced (possibly bounded)
        Secret,   ///< derived from a potential secret access
    };

    Kind kind = Kind::Unknown;
    Word constant = 0;
    bool bounded = false;
    Word maxValue = 0;                       ///< when bounded
    NodeId producer = graph::kInvalidNode;   ///< defining node
};

using Kind = ValueInfo::Kind;

/** Merge for two-operand ALU results. */
Kind
mergeKinds(Kind a, Kind b)
{
    if (a == Kind::Secret || b == Kind::Secret)
        return Kind::Secret;
    if (a == Kind::Attacker || b == Kind::Attacker)
        return Kind::Attacker;
    if (a == Kind::Constant && b == Kind::Constant)
        return Kind::Constant;
    return Kind::Unknown;
}

/** Builder state threaded through the instruction walk. */
struct Builder
{
    AttackGraph g;
    std::vector<std::optional<std::size_t>> nodePc;
    std::vector<NodeId> fences;     ///< fence nodes seen so far
    std::vector<NodeId> sends;
    NodeId lastNode = graph::kInvalidNode;

    NodeId
    addNode(const std::string &label, NodeRole role, AttackStep step,
            std::optional<std::size_t> pc)
    {
        const NodeId id = g.addOperation(label, role, step);
        nodePc.resize(id + 1);
        nodePc[id] = pc;
        return id;
    }

    /** Order node after every fence seen so far (LFENCE semantics:
     *  younger operations wait for the fence). */
    void
    orderAfterFences(NodeId node)
    {
        for (NodeId f : fences)
            g.addDependency(f, node, EdgeKind::Fence);
    }
};

/** One speculation region opened by a forward conditional branch. */
struct SpecRegion
{
    NodeId branchNode;
    NodeId resolveNode;
    std::size_t endPc; ///< first pc no longer guarded
};

/** An earlier store whose address a later load may alias. */
struct StoreRecord
{
    NodeId node;
    std::size_t pc;
    Kind addrKind;
    Word constAddr; ///< valid when addrKind == Constant
    RegId baseReg;
    std::int64_t imm;
};

} // anonymous namespace

Analyzer::Analyzer(Program program,
                   std::vector<ProtectedRange> protected_ranges,
                   ThreatModel model)
    : program_(std::move(program)),
      protected_(std::move(protected_ranges)), model_(model)
{
}

void
Analyzer::setAttackerControlled(RegId reg)
{
    attackerRegs_.push_back(reg);
}

void
Analyzer::setKnownRegister(RegId reg, Word value)
{
    knownRegs_.emplace_back(reg, value);
}

AnalysisResult
Analyzer::analyze() const
{
    Builder b;
    std::array<ValueInfo, uarch::kNumIntRegs> regs{};
    for (RegId r : attackerRegs_)
        regs[r].kind = Kind::Attacker;
    for (const auto &[r, v] : knownRegs_) {
        regs[r].kind = Kind::Constant;
        regs[r].constant = v;
    }

    std::vector<SpecRegion> regions;
    std::vector<StoreRecord> stores;

    const auto dataEdgeFrom = [&](const ValueInfo &v, NodeId to) {
        if (v.producer != graph::kInvalidNode)
            b.g.addDependency(v.producer, to, EdgeKind::Data);
    };

    // Control edges: every open speculation region's branch node
    // speculatively fetches this instruction.
    const auto controlEdges = [&](NodeId node, std::size_t pc) {
        for (const SpecRegion &r : regions) {
            if (pc < r.endPc)
                b.g.addDependency(r.branchNode, node,
                                  EdgeKind::Control);
        }
    };

    // Address range of [base + imm, base + imm + span).
    const auto addrRange =
        [&](const ValueInfo &base,
            std::int64_t imm) -> std::optional<std::pair<Addr, Addr>> {
        if (base.kind == Kind::Constant) {
            const Addr lo = base.constant + static_cast<Word>(imm);
            return std::make_pair(lo, lo + 8);
        }
        return std::nullopt;
    };

    const auto touchesProtected = [&](const ValueInfo &addr_val,
                                      std::int64_t imm) {
        if (addr_val.kind == Kind::Secret)
            return false; // classified as a send, not an access
        if (addr_val.kind == Kind::Attacker) {
            if (!addr_val.bounded)
                return !protected_.empty();
            // Bounded attacker value: base unknown, so treat the
            // bound as relative; a bounded index cannot escape to a
            // protected range when the range analysis says so.  The
            // bounded case arises from masking `base + (idx & m)`,
            // handled at the add below.
            return false;
        }
        if (const auto range = addrRange(addr_val, imm)) {
            for (const ProtectedRange &p : protected_) {
                if (p.overlaps(range->first, range->second))
                    return true;
            }
        }
        return false;
    };

    for (std::size_t pc = 0; pc < program_.size(); ++pc) {
        const Instruction &inst = program_.at(pc);
        // Close expired speculation regions.
        std::erase_if(regions, [pc](const SpecRegion &r) {
            return pc >= r.endPc;
        });

        switch (inst.op) {
          case Opcode::MovImm: {
            const NodeId n =
                b.addNode(std::to_string(pc) + ": " +
                              uarch::disassemble(inst),
                          NodeRole::Other, AttackStep::Unspecified,
                          pc);
            controlEdges(n, pc);
            regs[inst.rd] = ValueInfo{Kind::Constant,
                                      static_cast<Word>(inst.imm),
                                      false, 0, n};
            break;
          }

          case Opcode::Mov:
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::AddImm:
          case Opcode::AndImm:
          case Opcode::ShlImm:
          case Opcode::ShrImm:
          case Opcode::MulImm: {
            const bool two_reg =
                inst.op == Opcode::Add || inst.op == Opcode::Sub ||
                inst.op == Opcode::And || inst.op == Opcode::Or ||
                inst.op == Opcode::Xor || inst.op == Opcode::Shl ||
                inst.op == Opcode::Shr;
            const ValueInfo &a = regs[inst.ra];
            const ValueInfo bval =
                two_reg ? regs[inst.rb] : ValueInfo{};
            const NodeId n =
                b.addNode(std::to_string(pc) + ": " +
                              uarch::disassemble(inst),
                          NodeRole::Other, AttackStep::Unspecified,
                          pc);
            controlEdges(n, pc);
            b.orderAfterFences(n);
            dataEdgeFrom(a, n);
            if (two_reg)
                dataEdgeFrom(bval, n);

            ValueInfo out;
            out.kind = two_reg ? mergeKinds(a.kind, bval.kind)
                               : a.kind;
            out.producer = n;
            // Constant folding for known add/and (address bases).
            if (a.kind == Kind::Constant && !two_reg) {
                if (inst.op == Opcode::AddImm) {
                    out.constant =
                        a.constant + static_cast<Word>(inst.imm);
                } else if (inst.op == Opcode::Mov) {
                    out.constant = a.constant;
                }
            }
            // Masking bounds an attacker value (address masking).
            if (inst.op == Opcode::AndImm &&
                a.kind == Kind::Attacker) {
                out.bounded = true;
                out.maxValue = static_cast<Word>(inst.imm);
            }
            // base(Constant) + bounded-attacker: a clamped address.
            if (inst.op == Opcode::Add &&
                ((a.kind == Kind::Constant && bval.kind == Kind::Attacker &&
                  bval.bounded) ||
                 (bval.kind == Kind::Constant && a.kind == Kind::Attacker &&
                  a.bounded))) {
                const ValueInfo &base =
                    a.kind == Kind::Constant ? a : bval;
                const ValueInfo &idx =
                    a.kind == Kind::Constant ? bval : a;
                bool hits_protected = false;
                for (const ProtectedRange &p : protected_) {
                    if (p.overlaps(base.constant,
                                   base.constant + idx.maxValue + 8))
                        hits_protected = true;
                }
                if (!hits_protected) {
                    out.kind = Kind::Constant; // provably in-bounds
                    out.constant = base.constant;
                }
            }
            regs[inst.rd] = out;
            break;
          }

          case Opcode::Branch: {
            const ValueInfo &a = regs[inst.ra];
            const ValueInfo &bv = regs[inst.rb];
            const NodeId branch = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Trigger, AttackStep::DelayedAuth, pc);
            controlEdges(branch, pc);
            b.orderAfterFences(branch);
            dataEdgeFrom(a, branch);
            dataEdgeFrom(bv, branch);
            const bool guards_attacker =
                a.kind == Kind::Attacker || bv.kind == Kind::Attacker;
            const bool forward =
                inst.imm > static_cast<std::int64_t>(pc);
            if (model_.branchSpeculation && guards_attacker &&
                forward) {
                const NodeId resolve = b.addNode(
                    std::to_string(pc) + ": branch resolution "
                    "(bounds check authorization)",
                    NodeRole::Authorization, AttackStep::DelayedAuth,
                    pc);
                b.g.addDependency(branch, resolve, EdgeKind::Data);
                regions.push_back(
                    {branch, resolve,
                     static_cast<std::size_t>(inst.imm)});
            }
            break;
          }

          case Opcode::Load: {
            const ValueInfo &base = regs[inst.ra];
            const NodeId n = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Other, AttackStep::Unspecified, pc);
            controlEdges(n, pc);
            b.orderAfterFences(n);
            dataEdgeFrom(base, n);

            ValueInfo out;
            out.producer = n;
            out.kind = Kind::Unknown;

            if (base.kind == Kind::Secret) {
                // Address derived from secret data: a covert send.
                b.g.setRole(n, NodeRole::Send);
                b.sends.push_back(n);
            } else if (touchesProtected(base, inst.imm)) {
                if (base.kind == Kind::Constant &&
                    model_.faultingAccess) {
                    // Direct access to a protected range: the
                    // authorization is the in-instruction permission
                    // check -- expand micro-ops (Meltdown-type).
                    const NodeId check = b.addNode(
                        std::to_string(pc) +
                            ": load permission check",
                        NodeRole::Authorization,
                        AttackStep::DelayedAuth, pc);
                    b.g.addDependency(n, check, EdgeKind::Data);
                    const NodeId read = b.addNode(
                        std::to_string(pc) + ": read S (memory/"
                        "cache/buffers)",
                        NodeRole::SecretAccess, AttackStep::Access,
                        pc);
                    b.g.addDependency(n, read, EdgeKind::Data);
                    out.kind = Kind::Secret;
                    out.producer = read;
                } else {
                    // Attacker-steered access guarded (or not) by a
                    // bounds check: instruction-level Spectre-type.
                    b.g.setRole(n, NodeRole::SecretAccess);
                    out.kind = Kind::Secret;
                }
            }

            // Memory disambiguation (Spectre v4): the load may alias
            // an earlier store.
            if (model_.storeBypass) {
                for (const StoreRecord &st : stores) {
                    const bool alias_const =
                        st.addrKind == Kind::Constant &&
                        base.kind == Kind::Constant &&
                        st.constAddr ==
                            base.constant + static_cast<Word>(inst.imm);
                    const bool alias_syntactic =
                        st.addrKind != Kind::Constant &&
                        st.baseReg == inst.ra && st.imm == inst.imm;
                    if (!alias_const && !alias_syntactic)
                        continue;
                    const NodeId disamb = b.addNode(
                        std::to_string(pc) + ": store-load address "
                        "disambiguation",
                        NodeRole::Authorization,
                        AttackStep::DelayedAuth, pc);
                    b.g.addDependency(st.node, disamb,
                                      EdgeKind::Address);
                    b.g.addDependency(n, disamb, EdgeKind::Address);
                    const NodeId stale = b.addNode(
                        std::to_string(pc) + ": read stale data",
                        NodeRole::SecretAccess, AttackStep::Access,
                        pc);
                    b.g.addDependency(n, stale, EdgeKind::Data);
                    out.kind = Kind::Secret;
                    out.producer = stale;
                    break;
                }
            }
            regs[inst.rd] = out;
            break;
          }

          case Opcode::Store: {
            const ValueInfo &base = regs[inst.ra];
            const ValueInfo &data = regs[inst.rb];
            const NodeId n = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Other, AttackStep::Unspecified, pc);
            controlEdges(n, pc);
            b.orderAfterFences(n);
            dataEdgeFrom(base, n);
            dataEdgeFrom(data, n);
            if (data.kind == Kind::Secret) {
                b.g.setRole(n, NodeRole::Send); // store-based send
                b.sends.push_back(n);
            } else if (base.kind == Kind::Attacker && !base.bounded) {
                // Speculative buffer overflow (v1.1-style write).
                b.g.setRole(n, NodeRole::SecretAccess);
            }
            StoreRecord rec;
            rec.node = n;
            rec.pc = pc;
            rec.addrKind = base.kind;
            rec.constAddr =
                base.constant + static_cast<Word>(inst.imm);
            rec.baseReg = inst.ra;
            rec.imm = inst.imm;
            stores.push_back(rec);
            break;
          }

          case Opcode::RdMsr:
          case Opcode::FpRead: {
            const NodeId n = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Trigger, AttackStep::DelayedAuth, pc);
            controlEdges(n, pc);
            b.orderAfterFences(n);
            ValueInfo out;
            out.producer = n;
            out.kind = Kind::Unknown;
            if (model_.faultingAccess) {
                const char *check_label =
                    inst.op == Opcode::RdMsr
                        ? ": RDMSR privilege check"
                        : ": FPU ownership check";
                const NodeId check = b.addNode(
                    std::to_string(pc) + check_label,
                    NodeRole::Authorization, AttackStep::DelayedAuth,
                    pc);
                b.g.addDependency(n, check, EdgeKind::Data);
                const NodeId read = b.addNode(
                    std::to_string(pc) + ": read special register",
                    NodeRole::SecretAccess, AttackStep::Access, pc);
                b.g.addDependency(n, read, EdgeKind::Data);
                out.kind = Kind::Secret;
                out.producer = read;
            }
            regs[inst.rd] = out;
            break;
          }

          case Opcode::Lfence:
          case Opcode::Mfence: {
            const NodeId n = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Other, AttackStep::Unspecified, pc);
            // The fence waits for everything older...
            for (NodeId u = 0; u < n; ++u)
                b.g.addDependency(u, n, EdgeKind::Fence);
            // ...and everything younger waits for it (handled via
            // orderAfterFences on subsequent nodes).
            b.fences.push_back(n);
            break;
          }

          default: {
            const NodeId n = b.addNode(
                std::to_string(pc) + ": " + uarch::disassemble(inst),
                NodeRole::Other, AttackStep::Unspecified, pc);
            controlEdges(n, pc);
            b.orderAfterFences(n);
            break;
          }
        }
    }

    // Receiver node: the attacker's timing measurement observes
    // every send.
    if (!b.sends.empty()) {
        const NodeId recv = b.addNode(
            "receiver: reload probe array and measure time",
            NodeRole::Receive, AttackStep::Receive, std::nullopt);
        for (NodeId send : b.sends)
            b.g.addDependency(send, recv, EdgeKind::Resource);
    }

    AnalysisResult result;
    result.vulnerable = b.g.isVulnerable();
    const auto races = b.g.missingSecurityDependencies();
    for (const core::RaceFinding &race : races) {
        Finding f;
        f.authorization = race.authorization;
        f.operation = race.operation;
        f.operationRole = race.operationRole;
        f.authPc = b.nodePc[race.authorization];
        f.accessPc = b.nodePc[race.operation];
        f.description =
            "race between '" + b.g.tsg().label(race.authorization) +
            "' and '" + b.g.tsg().label(race.operation) + "'";
        switch (race.operationRole) {
          case NodeRole::SecretAccess:
            f.suggested = core::DefenseStrategy::PreventAccess;
            break;
          case NodeRole::Use:
            f.suggested = core::DefenseStrategy::PreventUse;
            break;
          default:
            f.suggested = core::DefenseStrategy::PreventSend;
            break;
        }
        result.findings.push_back(std::move(f));
    }
    result.nodePc = std::move(b.nodePc);
    result.graph = std::move(b.g);
    return result;
}

} // namespace specsec::tool
