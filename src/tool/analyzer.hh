/**
 * @file
 * The attack-graph construction tool of paper Section V-C / Fig. 9.
 *
 * Given a program, a set of protected memory ranges (the
 * SpectreGuard/ConTExT-style annotation the paper recommends) and a
 * threat model, the analyzer:
 *
 *  1. identifies authorization operations (bounds-check branches,
 *     hardware permission checks, address disambiguation),
 *  2. identifies potential secret accesses (instruction level for
 *     misprediction attacks; micro-op expansion for faulting
 *     accesses, per the paper's Spectre/Meltdown-type split),
 *  3. identifies covert send operations (accesses whose address
 *     depends on possibly-secret data),
 *  4. builds the attack graph with existing dependencies (data,
 *     control, fences), and
 *  5. searches for missing security dependencies (Theorem 1 races).
 */

#ifndef SPECSEC_TOOL_ANALYZER_HH
#define SPECSEC_TOOL_ANALYZER_HH

#include <optional>
#include <string>
#include <vector>

#include "core/attack_graph.hh"
#include "core/security_dependency.hh"
#include "uarch/isa.hh"
#include "uarch/memory.hh"

namespace specsec::tool
{

using graph::NodeId;
using uarch::Addr;
using uarch::Program;
using uarch::RegId;
using uarch::Word;

/** A memory range holding secrets or security-critical data. */
struct ProtectedRange
{
    Addr base = 0;
    Addr length = 0;
    std::string name = "secret";

    bool
    overlaps(Addr lo, Addr hi) const // [lo, hi)
    {
        return lo < base + length && base < hi;
    }
};

/** Which attack classes the analysis should consider (Fig. 9). */
struct ThreatModel
{
    bool branchSpeculation = true; ///< left branch: mispredictions
    bool faultingAccess = true;    ///< right branch: faulty accesses
    bool storeBypass = true;       ///< memory disambiguation (v4)
};

/** A missing security dependency found by the tool. */
struct Finding
{
    NodeId authorization = graph::kInvalidNode;
    NodeId operation = graph::kInvalidNode;
    core::NodeRole operationRole = core::NodeRole::Other;
    std::optional<std::size_t> authPc;   ///< pc of the authorization
    std::optional<std::size_t> accessPc; ///< pc of the operation
    std::string description;
    /// The cheapest strategy whose dependency closes this race.
    core::DefenseStrategy suggested =
        core::DefenseStrategy::PreventAccess;
};

/** Full analysis output. */
struct AnalysisResult
{
    core::AttackGraph graph;
    std::vector<std::optional<std::size_t>> nodePc; ///< per NodeId
    std::vector<Finding> findings;
    bool vulnerable = false;
};

/**
 * The static analyzer.  Straight-line analysis with forward-branch
 * speculation regions (backward branches are treated as loop ends
 * and not speculated through).
 */
class Analyzer
{
  public:
    Analyzer(Program program, std::vector<ProtectedRange> protected_,
             ThreatModel model = {});

    /** Declare a register as attacker-controlled program input. */
    void setAttackerControlled(RegId reg);

    /** Declare a register's known constant value (e.g. a base). */
    void setKnownRegister(RegId reg, Word value);

    /** Run the Fig. 9 pipeline. */
    AnalysisResult analyze() const;

  private:
    Program program_;
    std::vector<ProtectedRange> protected_;
    ThreatModel model_;
    std::vector<RegId> attackerRegs_;
    std::vector<std::pair<RegId, Word>> knownRegs_;
};

} // namespace specsec::tool

#endif // SPECSEC_TOOL_ANALYZER_HH
