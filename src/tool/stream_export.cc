#include "stream_export.hh"

#include <sstream>

#include "report.hh"
#include "schema.hh"

namespace specsec::tool
{

namespace
{

std::string
num(double value)
{
    return formatDouble(value, DoubleStyle::Fixed4);
}

/** The JSONL header record, shared by stream and batch writers. */
std::string
jsonlHeaderLine(const std::string &name,
                const std::vector<std::string> &rows,
                const std::vector<std::string> &cols,
                std::size_t expandedCount, std::size_t uniqueCount,
                std::size_t shardIndex, std::size_t shardCount)
{
    std::ostringstream os;
    os << "{\"type\": \"header\", \"name\": \"" << jsonEscape(name)
       << "\", \"expandedCount\": " << expandedCount
       << ", \"uniqueCount\": " << uniqueCount
       << ", \"shardIndex\": " << shardIndex
       << ", \"shardCount\": " << shardCount
       << ", \"rows\": " << jsonStringArray(rows)
       << ", \"cols\": " << jsonStringArray(cols) << "}\n";
    return os.str();
}

std::string
jsonlSummaryLine(std::size_t executedCount, std::size_t cacheHits,
                 unsigned workers, double wallMillis,
                 double scenariosPerSecond)
{
    std::ostringstream os;
    os << "{\"type\": \"summary\", \"executedCount\": "
       << executedCount << ", \"cacheHits\": " << cacheHits
       << ", \"workers\": " << workers
       << ", \"wallMillis\": " << num(wallMillis)
       << ", \"scenariosPerSecond\": " << num(scenariosPerSecond)
       << "}\n";
    return os.str();
}

std::string
jsonlOutcomeLine(const campaign::ScenarioOutcome &o,
                 bool include_timing)
{
    std::string out = "{\"type\": \"outcome\", \"record\": ";
    out += outcomeJson(o, include_timing);
    out += "}\n";
    return out;
}

} // namespace

std::string
jsonlHeaderRecord(const campaign::CampaignHeader &h)
{
    return jsonlHeaderLine(h.name, h.rowLabels, h.colLabels,
                           h.expandedCount, h.uniqueCount,
                           h.shardIndex, h.shardCount);
}

std::string
jsonlOutcomeRecord(const campaign::ScenarioOutcome &o,
                   bool include_timing)
{
    return jsonlOutcomeLine(o, include_timing);
}

std::string
campaignJsonl(const campaign::CampaignReport &report,
              bool include_timing)
{
    std::string out = jsonlHeaderLine(
        report.name, report.rowLabels, report.colLabels,
        report.expandedCount, report.uniqueCount, report.shardIndex,
        report.shardCount);
    for (const campaign::ScenarioOutcome &o : report.outcomes)
        out += jsonlOutcomeLine(o, include_timing);
    if (include_timing)
        out += jsonlSummaryLine(report.executedCount,
                                report.cacheHits, report.workers,
                                report.wallMillis,
                                report.scenariosPerSecond);
    return out;
}

void
OrderedStreamSink::begin(const campaign::CampaignHeader &header)
{
    std::lock_guard<std::mutex> lock(mutex_);
    seqOf_.clear();
    seqOf_.reserve(header.gridIndices.size());
    for (std::size_t i = 0; i < header.gridIndices.size(); ++i)
        seqOf_.emplace(header.gridIndices[i], i);
    pending_.clear();
    next_ = 0;
    total_ = header.gridIndices.size();
    writeHeader(header);
}

void
OrderedStreamSink::consume(const campaign::ScenarioOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = seqOf_.find(outcome.gridIndex);
    if (it == seqOf_.end())
        return; // not announced in begin(); drop
    const std::size_t seq = it->second;
    if (seq != next_) {
        pending_.emplace(seq, outcome);
        return;
    }
    // In order: release it and every consecutive buffered record.
    writeOutcome(outcome);
    ++next_;
    for (auto hit = pending_.find(next_); hit != pending_.end();
         hit = pending_.find(next_)) {
        writeOutcome(hit->second);
        pending_.erase(hit);
        ++next_;
    }
}

void
OrderedStreamSink::end(const campaign::CampaignFooter &footer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Every announced record has been released (the engine emits
    // each exactly once); flush any stragglers defensively so a
    // buggy producer still yields a complete, ordered file.
    while (next_ < total_ && !pending_.empty()) {
        const auto hit = pending_.find(next_);
        if (hit != pending_.end()) {
            writeOutcome(hit->second);
            pending_.erase(hit);
        }
        ++next_;
    }
    writeFooter(footer);
}

std::size_t
OrderedStreamSink::bufferedNow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

void
OrderedStreamSink::writeFooter(const campaign::CampaignFooter &)
{
}

void
CsvStreamSink::writeHeader(const campaign::CampaignHeader &)
{
    out_ << campaignCsvHeader(timing_);
}

void
CsvStreamSink::writeOutcome(const campaign::ScenarioOutcome &o)
{
    out_ << campaignCsvRow(o, timing_);
}

void
JsonlStreamSink::writeHeader(const campaign::CampaignHeader &h)
{
    workers_ = h.workers;
    if (!suppress_header_)
        out_ << jsonlHeaderLine(h.name, h.rowLabels, h.colLabels,
                                h.expandedCount, h.uniqueCount,
                                h.shardIndex, h.shardCount);
}

void
JsonlStreamSink::writeOutcome(const campaign::ScenarioOutcome &o)
{
    out_ << jsonlOutcomeLine(o, timing_);
}

void
JsonlStreamSink::writeFooter(const campaign::CampaignFooter &f)
{
    if (timing_)
        out_ << jsonlSummaryLine(f.executedCount, f.cacheHits,
                                 workers_, f.wallMillis,
                                 f.scenariosPerSecond);
    out_ << std::flush;
}

} // namespace specsec::tool
