/**
 * @file
 * Automatic patching (the "add security dependency" box of Fig. 9):
 * insert lightweight fences until the analyzer finds no missing
 * security dependency, then report the verified-patched program.
 */

#ifndef SPECSEC_TOOL_PATCHER_HH
#define SPECSEC_TOOL_PATCHER_HH

#include "analyzer.hh"
#include "core/catalog.hh"

namespace specsec::tool
{

/** Everything needed to (re-)run an analysis. */
struct AnalysisSpec
{
    Program program;
    std::vector<ProtectedRange> ranges;
    ThreatModel model;
    std::vector<RegId> attackerRegs;
    std::vector<std::pair<RegId, Word>> knownRegs;
};

/** Build and run an analyzer from a spec. */
AnalysisResult analyzeSpec(const AnalysisSpec &spec);

/**
 * Convert a catalog attack's static program (the staticProgram hook
 * payload) into an analyzer input — ranges, attacker/known
 * registers and the shape's declared threat model carry over 1:1.
 */
AnalysisSpec toAnalysisSpec(const core::StaticProgramSpec &spec);

/** Result of automatic patching. */
struct PatchResult
{
    Program patched;
    std::size_t fencesInserted = 0;
    /// Post-patch analysis finds no *exploitable* flow (the paper's
    /// success criterion: the secret may still be accessed, but it
    /// cannot be used or sent — the relaxed strategies 2/3).
    bool verified = false;
    /// Races remaining after patching.  Intra-instruction
    /// authorization/access races (Meltdown-type) cannot be closed
    /// by software fences; they persist here while the exfiltration
    /// path is fenced off.  Eliminating them needs a hardware
    /// defense or isolation (e.g. KPTI).
    std::size_t residualRaces = 0;
    std::size_t iterations = 0;
};

/**
 * Repeatedly insert a fence after the first remaining finding's
 * authorization point until the program is no longer exploitable
 * (or @p max_iterations is reached).
 */
PatchResult autoPatch(const AnalysisSpec &spec,
                      std::size_t max_iterations = 16);

} // namespace specsec::tool

#endif // SPECSEC_TOOL_PATCHER_HH
