#include "jsonio.hh"

#include <cstdio>
#include <cstdlib>

namespace specsec::tool::json
{

void
Cursor::skipWs()
{
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
        ++pos_;
}

bool
Cursor::atEnd()
{
    skipWs();
    return pos_ >= text_.size();
}

bool
Cursor::expect(char c)
{
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
        ++pos_;
        return true;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "expected '%c' at offset %zu", c,
                  pos_);
    return fail(buf);
}

bool
Cursor::peekConsume(char c)
{
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
        ++pos_;
        return true;
    }
    return false;
}

std::string
Cursor::parseString()
{
    std::string out;
    if (!expect('"'))
        return out;
    while (pos_ < text_.size()) {
        const char c = text_[pos_++];
        if (c == '"')
            return out;
        if (c == '\\') {
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return out;
                  }
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' +
                                                        10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' +
                                                        10);
                      else {
                          fail("bad \\u escape digit");
                          return out;
                      }
                  }
                  // Our writers only escape control characters.
                  out += static_cast<char>(code & 0xff);
                  break;
              }
              default:
                  fail("unknown escape in string");
                  return out;
            }
        } else {
            out += c;
        }
    }
    fail("unterminated string");
    return out;
}

unsigned
Cursor::parseUnsigned()
{
    return static_cast<unsigned>(parseU64());
}

std::uint64_t
Cursor::parseU64()
{
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] < '0' ||
        text_[pos_] > '9') {
        char buf[48];
        std::snprintf(buf, sizeof buf,
                      "expected integer at offset %zu", pos_);
        fail(buf);
        return 0;
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' &&
           text_[pos_] <= '9')
        value = value * 10 +
                static_cast<std::uint64_t>(text_[pos_++] - '0');
    return value;
}

std::int64_t
Cursor::parseI64()
{
    skipWs();
    const bool negative =
        pos_ < text_.size() && text_[pos_] == '-';
    if (negative)
        ++pos_;
    const std::uint64_t magnitude = parseU64();
    return negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
}

double
Cursor::parseDouble()
{
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
            c == '.' || c == 'e' || c == 'E')
            ++pos_;
        else
            break;
    }
    if (pos_ == start) {
        char buf[48];
        std::snprintf(buf, sizeof buf,
                      "expected number at offset %zu", start);
        fail(buf);
        return 0.0;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
        fail("malformed number '" + token + "'");
        return 0.0;
    }
    return value;
}

bool
Cursor::parseBool()
{
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
        pos_ += 4;
        return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
        pos_ += 5;
        return false;
    }
    char buf[56];
    std::snprintf(buf, sizeof buf,
                  "expected true/false at offset %zu", pos_);
    fail(buf);
    return false;
}

bool
Cursor::fail(const std::string &message)
{
    if (!failed_) {
        failed_ = true;
        error_ = message;
    }
    return false;
}

std::vector<std::string>
parseStringArray(Cursor &cur)
{
    std::vector<std::string> out;
    if (!cur.expect('['))
        return out;
    if (cur.peekConsume(']'))
        return out;
    do {
        out.push_back(cur.parseString());
    } while (!cur.failed() && cur.peekConsume(','));
    cur.expect(']');
    return out;
}

std::vector<std::int64_t>
parseIntArray(Cursor &cur)
{
    std::vector<std::int64_t> out;
    if (!cur.expect('['))
        return out;
    if (cur.peekConsume(']'))
        return out;
    do {
        out.push_back(cur.parseI64());
    } while (!cur.failed() && cur.peekConsume(','));
    cur.expect(']');
    return out;
}

} // namespace specsec::tool::json
