/**
 * @file
 * Incremental campaign export: OutcomeSinks that write JSONL / CSV
 * records to a stream as scenario executions complete, instead of
 * serializing a collected CampaignReport afterwards.  This is how
 * very large grids export without holding every outcome in memory,
 * and how long runs leave a usable partial export behind when
 * interrupted.
 *
 * Both sinks write records in deterministic grid order even though
 * outcomes arrive in completion order: an in-order release window
 * (indexed by the run's announced gridIndices) buffers early
 * arrivals and flushes every consecutive record as soon as its
 * predecessors land.  Memory is bounded by the completion-order
 * skew, not the grid size.  The streamed bytes are identical to the
 * batch exporters by construction — both sides share the per-record
 * formatters in report.hh:
 *
 *     CsvStreamSink   == tool::campaignCsv(report, timing)
 *     JsonlStreamSink == tool::campaignJsonl(report, timing)
 */

#ifndef SPECSEC_TOOL_STREAM_EXPORT_HH
#define SPECSEC_TOOL_STREAM_EXPORT_HH

#include <mutex>
#include <ostream>
#include <unordered_map>

#include "campaign/sink.hh"

namespace specsec::tool
{

/**
 * JSONL rendering of a campaign, one self-describing record per
 * line: a "header" record (spec name, labels, grid shape, shard),
 * then one "outcome" record per grid cell in grid order — each the
 * same object campaignJson() puts in its outcomes array — and, only
 * when @p include_timing is set, a closing "summary" record with
 * the run's provenance (executed/cached/wall).  Timing-free output
 * is a pure function of the spec, like every other export.
 */
std::string campaignJsonl(const campaign::CampaignReport &report,
                          bool include_timing = false);

/**
 * @name Single JSONL lines.
 * The exact bytes (trailing '\n' included) JsonlStreamSink and
 * campaignJsonl() write for one header / one outcome — exposed so
 * a resuming client (src/serve/client.hh) can validate a killed
 * run's replayed prefix against what a fresh run would have
 * written, byte for byte.
 * @{
 */
std::string jsonlHeaderRecord(const campaign::CampaignHeader &h);
std::string jsonlOutcomeRecord(const campaign::ScenarioOutcome &o,
                               bool include_timing = false);
/// @}

/**
 * Grid-order release window shared by the streaming exporters:
 * subclasses only say how to render a header, one outcome, and a
 * footer; arrival-order buffering and in-order release live here.
 */
class OrderedStreamSink : public campaign::OutcomeSink
{
  public:
    void begin(const campaign::CampaignHeader &header) final;
    void consume(const campaign::ScenarioOutcome &outcome) final;
    void end(const campaign::CampaignFooter &footer) final;

    /** Records buffered right now (test/diagnostic hook). */
    std::size_t bufferedNow() const;

  protected:
    virtual void
    writeHeader(const campaign::CampaignHeader &header) = 0;
    virtual void
    writeOutcome(const campaign::ScenarioOutcome &outcome) = 0;
    virtual void writeFooter(const campaign::CampaignFooter &footer);

  private:
    mutable std::mutex mutex_;
    /// Release position of each announced gridIndex.
    std::unordered_map<std::size_t, std::size_t> seqOf_;
    /// Early arrivals keyed by release position, erased on flush —
    /// the buffer holds only the reorder skew, never the grid.
    std::unordered_map<std::size_t, campaign::ScenarioOutcome>
        pending_;
    std::size_t next_ = 0;
    std::size_t total_ = 0;
};

/** Streams campaignCsv() bytes: header line, then ordered rows. */
class CsvStreamSink final : public OrderedStreamSink
{
  public:
    explicit CsvStreamSink(std::ostream &out,
                           bool include_timing = false)
        : out_(out), timing_(include_timing)
    {
    }

  protected:
    void writeHeader(const campaign::CampaignHeader &) override;
    void writeOutcome(const campaign::ScenarioOutcome &o) override;

  private:
    std::ostream &out_;
    bool timing_;
};

/** Streams campaignJsonl() bytes. */
class JsonlStreamSink final : public OrderedStreamSink
{
  public:
    /**
     * @p suppress_header skips the header line: a resumed run
     * appends to a file whose header (and outcome prefix) already
     * exist, announcing only the still-missing gridIndices in its
     * begin() header.
     */
    explicit JsonlStreamSink(std::ostream &out,
                             bool include_timing = false,
                             bool suppress_header = false)
        : out_(out), timing_(include_timing),
          suppress_header_(suppress_header)
    {
    }

  protected:
    void writeHeader(const campaign::CampaignHeader &h) override;
    void writeOutcome(const campaign::ScenarioOutcome &o) override;
    void writeFooter(const campaign::CampaignFooter &f) override;

  private:
    std::ostream &out_;
    bool timing_;
    bool suppress_header_ = false;
    unsigned workers_ = 1; ///< from the header, for the summary line
};

} // namespace specsec::tool

#endif // SPECSEC_TOOL_STREAM_EXPORT_HH
