/**
 * @file
 * Lossless CampaignReport (de)serialization: the wire format that
 * lets one campaign fan out across processes.  Each shard run writes
 * its partial CampaignReport as a versioned JSON file; a merge step
 * parses them back and folds them with CampaignReport::merge into a
 * report byte-identical — in every timing-free export — to a
 * single-process run of the whole spec.
 *
 * A scenario's full configuration travels as its canonical
 * scenarioKey() string (parsed back with parseScenarioKey), so the
 * format tracks CpuConfig/AttackOptions growth automatically instead
 * of maintaining ~47 named fields in a second schema.
 *
 * The AttackResult/CpuStats fragment helpers are shared with the
 * persistent ResultCache (src/campaign/persist.cc) — one wire
 * encoding for "what a scenario execution produced" everywhere.
 * Both fragments (emit and parse) are derived from the typed field
 * registries in schema.hh, and every shard report carries
 * tool::wireSchemaTag() so a consumer with a different field list
 * rejects the file instead of misparsing it (files from pre-tag
 * producers, whose field lists match the tagless-era schemas,
 * still load).
 */

#ifndef SPECSEC_TOOL_REPORT_IO_HH
#define SPECSEC_TOOL_REPORT_IO_HH

#include <optional>
#include <string>

#include "campaign/campaign.hh"
#include "jsonio.hh"

namespace specsec::tool
{

/** Current shard-report / result-cache file format version. */
inline constexpr unsigned kReportIoVersion = 1;

/**
 * Serialize @p report — full or shard — as a self-contained,
 * deterministic JSON document (one outcome per line).
 */
std::string shardReportJson(const campaign::CampaignReport &report);

/**
 * Parse shardReportJson() output.  @return nullopt (with a message
 * in @p error) on malformed input, an unsupported version, or an
 * outcome whose scenario key does not parse.
 */
std::optional<campaign::CampaignReport>
parseShardReportJson(const std::string &text,
                     std::string *error = nullptr);

/**
 * @name Execution-result JSON fragments.
 * `{"name": ..., "recovered": [...], "expected": [...],
 *   "accuracy": ..., "leaked": ..., "guestCycles": ...,
 *   "transientForwards": ...}` and the 8-element CpuStats array.
 * The accuracy double is printed with %.17g, so a parse/emit
 * round-trip is exact.
 * @{
 */
std::string attackResultJson(const attacks::AttackResult &result);
std::string cpuStatsJson(const uarch::CpuStats &stats);
bool parseAttackResultJson(json::Cursor &cur,
                           attacks::AttackResult &result);
bool parseCpuStatsJson(json::Cursor &cur, uarch::CpuStats &stats);
/// @}

} // namespace specsec::tool

#endif // SPECSEC_TOOL_REPORT_IO_HH
