/**
 * @file
 * Shared minimal JSON reading for the tree's persisted artifacts.
 *
 * Every JSON file this repository writes (golden matrices, shard
 * reports, persisted result caches) is emitted by our own writers as
 * a strict subset of JSON: objects with string keys, arrays,
 * strings, numbers, and the true/false literals.  This cursor parses
 * exactly that subset with byte-offset-tagged errors; it is the one
 * parser behind src/regress/golden.cc, src/tool/report_io.cc and
 * src/campaign/persist.cc.
 */

#ifndef SPECSEC_TOOL_JSONIO_HH
#define SPECSEC_TOOL_JSONIO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace specsec::tool::json
{

/** Cursor over a JSON text; sticky failure with a tagged message. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    void skipWs();

    /** True when only whitespace remains. */
    bool atEnd();

    /** Consume @p c or fail. */
    bool expect(char c);

    /** True (and consumed) when the next token is @p c. */
    bool peekConsume(char c);

    std::string parseString();

    /** Unsigned decimal; fails on sign, fraction or exponent. */
    unsigned parseUnsigned();
    std::uint64_t parseU64();

    /** Signed decimal integer. */
    std::int64_t parseI64();

    /** JSON number including sign/fraction/exponent. */
    double parseDouble();

    /** The @c true / @c false literals. */
    bool parseBool();

    bool fail(const std::string &message);

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

/** `[ "a", "b" ]` */
std::vector<std::string> parseStringArray(Cursor &cur);

/** `[ 1, -2, 3 ]` */
std::vector<std::int64_t> parseIntArray(Cursor &cur);

} // namespace specsec::tool::json

#endif // SPECSEC_TOOL_JSONIO_HH
