#include "mitigations.hh"

#include "core/catalog.hh"

namespace specsec::defense
{

bool
applyMitigation(DefenseMechanism mechanism, CpuConfig &config,
                AttackOptions &options)
{
    const core::DefenseDescriptor *descriptor =
        core::ScenarioCatalog::instance().findDefense(mechanism);
    if (descriptor == nullptr || !descriptor->apply)
        return false;
    descriptor->apply(config, options);
    return true;
}

std::size_t
insertLfenceAfterBranches(Program &program)
{
    std::size_t inserted = 0;
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
        if (program.at(pc).op == uarch::Opcode::Branch) {
            program.insertAt(pc + 1, uarch::lfence());
            ++inserted;
            ++pc; // skip the fence we just inserted
        }
    }
    return inserted;
}

void
insertLfenceBefore(Program &program, std::size_t pc)
{
    program.insertAt(pc, uarch::lfence());
}

void
insertMaskAfterBranch(Program &program, std::size_t branch_pc,
                      uarch::RegId index_reg, std::uint64_t mask)
{
    program.insertAt(branch_pc + 1,
                     uarch::andImm(index_reg, index_reg,
                                   static_cast<std::int64_t>(mask)));
}

std::size_t
insertStoreLoadBarriers(Program &program)
{
    std::size_t inserted = 0;
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
        if (program.at(pc).op != uarch::Opcode::Store)
            continue;
        // Find the next load and fence just before it.
        for (std::size_t j = pc + 1; j < program.size(); ++j) {
            if (program.at(j).op == uarch::Opcode::Load) {
                program.insertAt(j, uarch::lfence());
                ++inserted;
                break;
            }
            if (uarch::isControl(program.at(j).op))
                break;
        }
    }
    return inserted;
}

} // namespace specsec::defense
