#include "mitigations.hh"

namespace specsec::defense
{

bool
applyMitigation(DefenseMechanism mechanism, CpuConfig &config,
                AttackOptions &options)
{
    using enum DefenseMechanism;
    switch (mechanism) {
      case LFence:
      case MFence:
      case Sabc:
        options.softwareLfence = true;
        return true;
      case ContextSensitiveFencing:
        config.defense.fenceSpeculativeLoads = true;
        return true;
      case Kaiser:
      case Kpti:
        options.kpti = true;
        return true;
      case DisableBranchPrediction:
        config.defense.noBranchPrediction = true;
        return true;
      case Ibrs:
      case Stibp:
      case Ibpb:
      case InvalidatePredictorOnContextSwitch:
        config.defense.flushPredictorOnContextSwitch = true;
        return true;
      case Retpoline:
        config.defense.noIndirectPrediction = true;
        return true;
      case CoarseAddressMasking:
      case DataDependentAddressMasking:
        options.addressMasking = true;
        return true;
      case Ssbb:
      case Ssbs:
        config.defense.safeStoreBypass = true;
        return true;
      case RsbStuffing:
        options.rsbStuffing = true;
        return true;
      case SpectreGuard:
      case Nda:
      case ConTExT:
      case SpecShield:
        config.defense.blockSpeculativeForwarding = true;
        return true;
      case SpecShieldErpPlus:
      case Stt:
        config.defense.blockTaintedTransmit = true;
        return true;
      case Dawg:
        config.defense.partitionedCache = true;
        return true;
      case InvisiSpec:
      case SafeSpec:
        config.defense.invisibleSpeculation = true;
        return true;
      case ConditionalSpeculation:
      case EfficientInvisibleSpeculation:
        config.defense.conditionalSpeculation = true;
        return true;
      case CleanupSpec:
        config.defense.cleanupSpec = true;
        return true;
    }
    return false;
}

std::size_t
insertLfenceAfterBranches(Program &program)
{
    std::size_t inserted = 0;
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
        if (program.at(pc).op == uarch::Opcode::Branch) {
            program.insertAt(pc + 1, uarch::lfence());
            ++inserted;
            ++pc; // skip the fence we just inserted
        }
    }
    return inserted;
}

void
insertLfenceBefore(Program &program, std::size_t pc)
{
    program.insertAt(pc, uarch::lfence());
}

void
insertMaskAfterBranch(Program &program, std::size_t branch_pc,
                      uarch::RegId index_reg, std::uint64_t mask)
{
    program.insertAt(branch_pc + 1,
                     uarch::andImm(index_reg, index_reg,
                                   static_cast<std::int64_t>(mask)));
}

std::size_t
insertStoreLoadBarriers(Program &program)
{
    std::size_t inserted = 0;
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
        if (program.at(pc).op != uarch::Opcode::Store)
            continue;
        // Find the next load and fence just before it.
        for (std::size_t j = pc + 1; j < program.size(); ++j) {
            if (program.at(j).op == uarch::Opcode::Load) {
                program.insertAt(j, uarch::lfence());
                ++inserted;
                break;
            }
            if (uarch::isControl(program.at(j).op))
                break;
        }
    }
    return inserted;
}

} // namespace specsec::defense
