/**
 * @file
 * Registration of every built-in defense and software mitigation
 * with the ScenarioCatalog: one DefenseDescriptor per Table II /
 * Section V-B mechanism, pairing the paper metadata (strategy,
 * origin, designed-against list — previously the table in
 * core/defense_catalog.cc) with its simulator realization
 * (previously the switch in defense/mitigations.cc), and one
 * MitigationDescriptor per software-mitigation sweep value.
 */

#include "core/catalog.hh"
#include "verdict/static_verdict.hh"

namespace specsec::core::detail
{

namespace
{

using enum AttackVariant;
using enum DefenseMechanism;
using enum DefenseOrigin;
using enum DefenseStrategy;

using attacks::AttackOptions;
using uarch::CpuConfig;

/** Spectre bounds-bypass family (Table II row "address masking"). */
const std::vector<AttackVariant> kBoundsFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2};

/** Branch-prediction-based family (Table II "prevent mis-training"). */
const std::vector<AttackVariant> kPredictionFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2, SpectreV2};

/** Every variant that exfiltrates through the cache covert channel. */
const std::vector<AttackVariant> kCacheChannelFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2, SpectreV2, Meltdown,
    MeltdownV3a, SpectreV4, SpectreRsb, Foreshadow, ForeshadowOs,
    ForeshadowVmm, LazyFp, Ridl, ZombieLoad, Fallout, Lvi, Taa,
    Cacheout};

/** Realizations shared by several mechanisms. */
void
setSoftwareLfence(CpuConfig &, AttackOptions &options)
{
    options.softwareLfence = true;
}

void
setKpti(CpuConfig &, AttackOptions &options)
{
    options.kpti = true;
}

void
setAddressMasking(CpuConfig &, AttackOptions &options)
{
    options.addressMasking = true;
}

void
setFlushPredictor(CpuConfig &config, AttackOptions &)
{
    config.defense.flushPredictorOnContextSwitch = true;
}

void
setSafeStoreBypass(CpuConfig &config, AttackOptions &)
{
    config.defense.safeStoreBypass = true;
}

void
setBlockForwarding(CpuConfig &config, AttackOptions &)
{
    config.defense.blockSpeculativeForwarding = true;
}

void
setBlockTaintedTransmit(CpuConfig &config, AttackOptions &)
{
    config.defense.blockTaintedTransmit = true;
}

void
setInvisibleSpeculation(CpuConfig &config, AttackOptions &)
{
    config.defense.invisibleSpeculation = true;
}

void
setConditionalSpeculation(CpuConfig &config, AttackOptions &)
{
    config.defense.conditionalSpeculation = true;
}

void
registerDefense(ScenarioCatalog &catalog, DefenseMechanism mechanism,
                const char *name, DefenseOrigin origin,
                DefenseStrategy strategy, const char *description,
                std::vector<AttackVariant> designed_against,
                DefenseApplyFn apply,
                std::vector<std::string> aliases = {})
{
    DefenseDescriptor d;
    d.info = DefenseInfo{mechanism,    name,
                         origin,       strategy,
                         description,  std::move(designed_against)};
    d.aliases = std::move(aliases);
    d.mechanism = mechanism;
    d.apply = std::move(apply);
    catalog.registerDefense(std::move(d));
}

void
registerMitigation(ScenarioCatalog &catalog, const char *name,
                   const char *description,
                   MitigationToggles toggles,
                   std::vector<std::string> aliases = {})
{
    MitigationDescriptor d;
    d.name = name;
    d.aliases = std::move(aliases);
    d.description = description;
    d.toggles = toggles;
    catalog.registerMitigation(std::move(d));
}

} // anonymous namespace

void
registerBuiltinDefenses(ScenarioCatalog &catalog)
{
    registerDefense(
        catalog, LFence, "LFENCE", Industry, PreventAccess,
        "Serializing fence: no younger load executes before the "
        "fence retires, ordering the access after the "
        "authorization.",
        kBoundsFamily, setSoftwareLfence);
    registerDefense(
        catalog, MFence, "MFENCE", Industry, PreventAccess,
        "Full memory fence serializing loads and stores.",
        kBoundsFamily, setSoftwareLfence);
    registerDefense(
        catalog, Kaiser, "KAISER", Industry, PreventAccess,
        "Unmap kernel pages from user space so no transient access "
        "to kernel data is possible before authorization.",
        {Meltdown}, setKpti);
    registerDefense(
        catalog, Kpti, "Kernel Page Table Isolation (KPTI)",
        Industry, PreventAccess,
        "Linux implementation of KAISER: separate user/kernel page "
        "tables remove the secret from the attacker's address "
        "space.",
        {Meltdown}, setKpti, {"kpti"});
    registerDefense(
        catalog, DisableBranchPrediction,
        "Disable branch prediction", Industry, ClearPredictions,
        "No prediction means no attacker-steered transient path.",
        kPredictionFamily,
        [](CpuConfig &config, AttackOptions &) {
            config.defense.noBranchPrediction = true;
        });
    registerDefense(
        catalog, Ibrs,
        "Indirect Branch Restricted Speculation (IBRS)", Industry,
        ClearPredictions,
        "Restricts indirect branch prediction from less privileged "
        "mode's training.",
        {SpectreV2}, setFlushPredictor, {"ibrs"});
    registerDefense(
        catalog, Stibp,
        "Single Thread Indirect Branch Predictor (STIBP)", Industry,
        ClearPredictions,
        "Prevents sibling hyperthread from steering indirect branch "
        "prediction.",
        {SpectreV2}, setFlushPredictor, {"stibp"});
    registerDefense(
        catalog, Ibpb, "Indirect Branch Prediction Barrier (IBPB)",
        Industry, ClearPredictions,
        "Flushes indirect branch predictor state at the barrier so "
        "earlier training cannot influence later branches.",
        {SpectreV2}, setFlushPredictor, {"ibpb"});
    registerDefense(
        catalog, InvalidatePredictorOnContextSwitch,
        "Invalidate branch predictor / BTB on context switch",
        Industry, ClearPredictions,
        "AMD-style predictor invalidation between contexts.",
        {SpectreV2}, setFlushPredictor);
    registerDefense(
        catalog, Retpoline, "Retpoline", Industry, ClearPredictions,
        "Replaces indirect branches (poisoned BTB) with returns "
        "that use the return stack.",
        {SpectreV2},
        [](CpuConfig &config, AttackOptions &) {
            config.defense.noIndirectPrediction = true;
        });
    registerDefense(
        catalog, CoarseAddressMasking, "Coarse address masking",
        Industry, PreventAccess,
        "Force the accessed address into the legal range regardless "
        "of the speculated index (V8 / Linux kernel).",
        kBoundsFamily, setAddressMasking);
    registerDefense(
        catalog, DataDependentAddressMasking,
        "Data-dependent address masking", Industry, PreventAccess,
        "Mask computed from the bounds comparison, clamping "
        "out-of-bounds speculative accesses.",
        kBoundsFamily, setAddressMasking);
    registerDefense(
        catalog, Ssbb, "Speculative Store Bypass Barrier (SSBB)",
        Industry, PreventAccess,
        "ARM barrier: loads cannot bypass older stores' address "
        "resolution across the barrier.",
        {SpectreV4}, setSafeStoreBypass, {"ssbb"});
    registerDefense(
        catalog, Ssbs, "Speculative Store Bypass Safe (SSBS)",
        Industry, PreventAccess,
        "Mode bit disabling speculative store bypass entirely.",
        {SpectreV4}, setSafeStoreBypass, {"ssbs"});
    registerDefense(
        catalog, RsbStuffing, "RSB stuffing", Industry,
        ClearPredictions,
        "Refill the return stack buffer so returns never fall back "
        "to the poisoned BTB or stale entries.",
        {SpectreRsb},
        [](CpuConfig &, AttackOptions &options) {
            options.rsbStuffing = true;
        });
    registerDefense(
        catalog, ContextSensitiveFencing,
        "Context-sensitive fencing", Academia, PreventAccess,
        "Micro-op level fence injection between authorization and "
        "protected access (Taram et al.).",
        kPredictionFamily,
        [](CpuConfig &config, AttackOptions &) {
            config.defense.fenceSpeculativeLoads = true;
        });
    registerDefense(
        catalog, Sabc, "Secure Automatic Bounds Checking (SABC)",
        Academia, PreventAccess,
        "Inserts arithmetic data dependencies between the bounds "
        "check and the access (Ojogbo et al.).",
        kBoundsFamily, setSoftwareLfence, {"sabc"});
    registerDefense(
        catalog, SpectreGuard, "SpectreGuard", Academia, PreventUse,
        "Software-marked secret regions; speculative loads of "
        "marked data are not forwarded to dependents (Fustos et "
        "al.).",
        kCacheChannelFamily, setBlockForwarding);
    registerDefense(
        catalog, Nda, "NDA", Academia, PreventUse,
        "No speculative data propagation: speculatively loaded "
        "values are not forwarded until the load is safe (Weisse et "
        "al.).",
        kCacheChannelFamily, setBlockForwarding);
    registerDefense(
        catalog, ConTExT, "ConTExT", Academia, PreventUse,
        "Secret memory marked non-transient; such values never "
        "enter transient execution (Schwarz et al.).",
        kCacheChannelFamily, setBlockForwarding);
    registerDefense(
        catalog, SpecShield, "SpecShield", Academia, PreventUse,
        "Shields speculative data from forwarding to potential "
        "covert channels (Barber et al.).",
        kCacheChannelFamily, setBlockForwarding);
    registerDefense(
        catalog, SpecShieldErpPlus, "SpecShieldERP+", Academia,
        PreventSend,
        "Blocks only loads whose address depends on speculative "
        "data (Barber et al.).",
        kCacheChannelFamily, setBlockTaintedTransmit);
    registerDefense(
        catalog, Stt, "Speculative Taint Tracking (STT)", Academia,
        PreventSend,
        "Taints speculative data and blocks tainted transmit "
        "instructions until authorization (Yu et al.).",
        kCacheChannelFamily, setBlockTaintedTransmit, {"stt"});
    registerDefense(
        catalog, Dawg, "DAWG", Academia, PreventSend,
        "Way-partitioned cache: the sender's state change is "
        "invisible to receivers in other protection domains "
        "(Kiriansky et al.).",
        kCacheChannelFamily,
        [](CpuConfig &config, AttackOptions &) {
            config.defense.partitionedCache = true;
        });
    registerDefense(
        catalog, InvisiSpec, "InvisiSpec", Academia, PreventSend,
        "Speculative loads fill a shadow buffer, not the cache; the "
        "cache state change happens only after authorization (Yan "
        "et al.).",
        kCacheChannelFamily, setInvisibleSpeculation);
    registerDefense(
        catalog, SafeSpec, "SafeSpec", Academia, PreventSend,
        "Shadow structures for speculative state, discarded on "
        "squash (Khasawneh et al.).",
        kCacheChannelFamily, setInvisibleSpeculation);
    registerDefense(
        catalog, ConditionalSpeculation, "Conditional Speculation",
        Academia, PreventSend,
        "Speculative loads that hit in the cache proceed (no state "
        "change); misses wait for authorization (Li et al.).",
        kCacheChannelFamily, setConditionalSpeculation);
    registerDefense(
        catalog, EfficientInvisibleSpeculation,
        "Efficient Invisible Speculative Execution", Academia,
        PreventSend,
        "Selective delay + value prediction for speculative loads "
        "(Sakalis et al.).",
        kCacheChannelFamily, setConditionalSpeculation);
    registerDefense(
        catalog, CleanupSpec, "CleanupSpec", Academia, PreventSend,
        "Allows speculative cache changes but undoes them on "
        "mis-speculation (Saileshwar and Qureshi).",
        kCacheChannelFamily,
        [](CpuConfig &config, AttackOptions &) {
            config.defense.cleanupSpec = true;
        });
}

void
registerBuiltinMitigations(ScenarioCatalog &catalog)
{
    registerMitigation(catalog, "none",
                       "baseline: no software mitigation", {});
    {
        MitigationToggles t;
        t.kpti = true;
        registerMitigation(
            catalog, "kpti",
            "unmap kernel pages from user space (Meltdown)", t);
    }
    {
        MitigationToggles t;
        t.rsbStuffing = true;
        registerMitigation(
            catalog, "rsb-stuff",
            "benign RSB refill before returns (Spectre-RSB)", t,
            {"rsb-stuffing"});
    }
    {
        MitigationToggles t;
        t.softwareLfence = true;
        registerMitigation(
            catalog, "lfence",
            "LFENCE after bounds checks (bounds-bypass family)", t);
    }
    {
        MitigationToggles t;
        t.addressMasking = true;
        registerMitigation(
            catalog, "addr-mask",
            "index masking after bounds checks (bounds-bypass "
            "family)",
            t, {"address-masking"});
    }
    {
        MitigationToggles t;
        t.flushL1OnExit = true;
        registerMitigation(
            catalog, "flush-l1",
            "L1 flush on enclave/kernel/VMM exit (Foreshadow)", t,
            {"flush-l1-on-exit"});
    }
    // Mitigations-as-transforms: same simulator semantics as
    // "lfence" / "addr-mask" (the toggles), plus a program rewrite
    // the static backend verifies with the Fig. 9 analyzer and
    // reports patch overhead for.
    {
        MitigationToggles t;
        t.softwareLfence = true;
        MitigationDescriptor d;
        d.name = "fence-harden";
        d.aliases = {"fence-hardened"};
        d.description =
            "statically-verified fence insertion: tool::autoPatch "
            "rewrites the attack's static program until no "
            "exploitable flow remains";
        d.toggles = t;
        d.transform = verdict::fenceHardenTransform;
        catalog.registerMitigation(std::move(d));
    }
    {
        MitigationToggles t;
        t.addressMasking = true;
        MitigationDescriptor d;
        d.name = "mask-harden";
        d.aliases = {"mask-hardened"};
        d.description =
            "statically-verified index masking: an "
            "array_index_nospec clamp after the bounds check, "
            "re-analyzed post-transform";
        d.toggles = t;
        d.transform = verdict::maskHardenTransform;
        catalog.registerMitigation(std::move(d));
    }
}

} // namespace specsec::core::detail
