/**
 * @file
 * Runnable mitigations: the bridge between the paper's defense
 * catalog (core/defense_catalog.hh) and the simulator.
 *
 * applyMitigation() translates a cataloged mechanism into the
 * hardware configuration flags and/or scenario options that
 * implement it on the simulated CPU, so experiment harnesses can
 * sweep mechanism x attack.  Program-level transforms (fence
 * insertion, address masking) are also provided standalone for the
 * Fig. 9 tool's patcher.
 */

#ifndef SPECSEC_DEFENSE_MITIGATIONS_HH
#define SPECSEC_DEFENSE_MITIGATIONS_HH

#include "attacks/attack_kit.hh"
#include "core/defense_catalog.hh"
#include "uarch/isa.hh"

namespace specsec::defense
{

using attacks::AttackOptions;
using core::DefenseMechanism;
using uarch::CpuConfig;
using uarch::Program;

/**
 * Apply a cataloged defense mechanism to a CPU configuration and
 * the scenario options, via the mechanism's DefenseDescriptor in
 * the ScenarioCatalog (registered in builtin_defenses.cc).
 *
 * @return false if no registered descriptor realizes the mechanism
 *         (every built-in has one).
 */
bool applyMitigation(DefenseMechanism mechanism, CpuConfig &config,
                     AttackOptions &options);

/**
 * Insert an LFENCE after every conditional branch: the classic
 * strategy-1 software fix for bounds-bypass Spectre.
 *
 * @return number of fences inserted.
 */
std::size_t insertLfenceAfterBranches(Program &program);

/**
 * Insert an LFENCE immediately before the instruction at @p pc
 * (targeted patching, used by the Fig. 9 tool).
 */
void insertLfenceBefore(Program &program, std::size_t pc);

/**
 * Insert `and index, index, mask` immediately after the conditional
 * branch at @p branch_pc (coarse address masking).
 */
void insertMaskAfterBranch(Program &program, std::size_t branch_pc,
                           uarch::RegId index_reg, std::uint64_t mask);

/**
 * Insert an SSBB-style barrier (modeled as LFENCE) between every
 * store and the next load.
 *
 * @return number of barriers inserted.
 */
std::size_t insertStoreLoadBarriers(Program &program);

} // namespace specsec::defense

#endif // SPECSEC_DEFENSE_MITIGATIONS_HH
