#include "server.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "attacks/snapshot.hh"
#include "verdict/model.hh"

namespace specsec::serve
{

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Server::~Server()
{
    stop();
    // serveForever() joins its threads before returning; this
    // sweep covers the start()-but-never-served case.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        threads.swap(threads_);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
}

bool
Server::start(std::string *error)
{
    fingerprint_ = campaign::modelFingerprint();
    if (!options_.cachePath.empty()) {
        std::string load_error;
        if (cache_.loadFromFile(options_.cachePath, fingerprint_,
                                &load_error))
            std::fprintf(stderr, "serve: loaded %zu cache entries "
                                 "from %s\n",
                         cache_.size(),
                         options_.cachePath.c_str());
        else
            std::fprintf(stderr, "serve: cold cache (%s)\n",
                         load_error.c_str());
    }
    net::Endpoint endpoint;
    endpoint.host = options_.host;
    endpoint.port = options_.port;
    return listener_.listenOn(endpoint, error);
}

void
Server::serveForever()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        net::Conn accepted = listener_.acceptOne(100);
        if (!accepted.valid())
            continue;
        auto conn = std::make_shared<net::Conn>(
            std::move(accepted));
        std::lock_guard<std::mutex> lock(mutex_);
        ++connections_;
        conns_.push_back(conn);
        threads_.emplace_back(
            [this, conn] { handleConnection(conn); });
    }
    // Wake every connection thread blocked in readLine(), then
    // join them all so the daemon exits with no thread in flight.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &weak : conns_)
            if (const auto conn = weak.lock())
                conn->shutdownBoth();
        threads.swap(threads_);
        conns_.clear();
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    saveCache();
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_relaxed);
}

StatsMsg
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatsMsg msg;
    msg.connections = connections_;
    msg.requests = requests_;
    msg.executed = executed_;
    msg.cacheHits = cacheHits_;
    msg.cacheSize = cache_.size();
    const attacks::ScenarioForkStats fork =
        attacks::scenarioForkStats();
    msg.forked = fork.forked;
    msg.rebuilt = fork.rebuilt;
    msg.pooledArenas = fork.pooled;
    const attacks::WarmSnapshotStats warm =
        attacks::warmSnapshotStats();
    msg.warmHits = warm.hits;
    msg.warmMisses = warm.misses;
    msg.warmEntries = warm.entries;
    msg.modelDecided = modelDecided_;
    msg.modelUndecided = modelUndecided_;
    msg.modelDisagreements = modelDisagreements_;
    return msg;
}

void
Server::saveCache()
{
    if (options_.cachePath.empty())
        return;
    std::string error, lockWarning;
    if (!cache_.saveToFile(options_.cachePath, fingerprint_,
                           &error, &lockWarning))
        std::fprintf(stderr, "serve: cache save failed: %s\n",
                     error.c_str());
    if (!lockWarning.empty())
        std::fprintf(stderr, "serve: cache save degraded: %s\n",
                     lockWarning.c_str());
}

bool
Server::handleSubmit(net::Conn &conn, const SubmitMsg &submit)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++requests_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> decided{0}, undecided{0}, disagreed{0};
    std::mutex write_mutex;
    std::string batch_error;
    const bool ok = campaign::executeKeyBatch(
        submit.keys, options_.workers, &cache_,
        [&](std::size_t index,
            const campaign::KeyBatchItem &item) {
            ResultMsg msg;
            msg.index = index;
            msg.cached = item.cached;
            msg.wallMillis = item.wallMillis;
            msg.result = item.result;
            msg.stats = item.stats;
            if (item.cached)
                hits.fetch_add(1, std::memory_order_relaxed);
            // Judge every served cell with the analytic model and
            // track live agreement against the simulator verdict
            // the client is about to receive (see stats{}).
            core::AttackVariant variant{};
            campaign::CpuConfig config;
            campaign::AttackOptions options;
            if (campaign::parseScenarioKey(submit.keys[index],
                                           variant, config,
                                           options)) {
                const core::ModelJudgement judged =
                    verdict::judgeScenario(variant, config,
                                           options);
                if (!judged.decided()) {
                    undecided.fetch_add(
                        1, std::memory_order_relaxed);
                } else {
                    decided.fetch_add(1,
                                      std::memory_order_relaxed);
                    if (judged.predictsLeak() !=
                        item.result.leaked)
                        disagreed.fetch_add(
                            1, std::memory_order_relaxed);
                }
            }
            // One writer at a time: result lines must not
            // interleave mid-frame.  A failed write means the
            // client is gone; cancel the rest of the batch.
            std::lock_guard<std::mutex> lock(write_mutex);
            return conn.writeLine(resultLine(msg));
        },
        &batch_error);
    if (!ok) {
        conn.writeLine(errorLine("submit rejected: " +
                                 batch_error));
        return true; // protocol error, connection still healthy
    }

    DoneMsg done;
    done.cacheHits = hits.load(std::memory_order_relaxed);
    done.executed = submit.keys.size() - done.cacheHits;
    done.wallMillis = millisSince(t0);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        executed_ += done.executed;
        cacheHits_ += done.cacheHits;
        modelDecided_ +=
            decided.load(std::memory_order_relaxed);
        modelUndecided_ +=
            undecided.load(std::memory_order_relaxed);
        modelDisagreements_ +=
            disagreed.load(std::memory_order_relaxed);
    }
    saveCache();
    return conn.writeLine(doneLine(done));
}

void
Server::handleConnection(std::shared_ptr<net::Conn> conn)
{
    // Handshake first: anything else on a fresh connection is
    // rejected and the connection dropped, so a client built from
    // a different field registry can never receive misparsable
    // result frames.
    std::string line;
    if (!conn->readLine(line))
        return;
    ParsedMsg first = parseLine(line);
    if (first.type != MsgType::Hello) {
        conn->writeLine(errorLine(
            first.type == MsgType::Invalid
                ? "handshake failed: " + first.error
                : "handshake failed: expected hello, got "
                  "something else"));
        return;
    }
    std::string mismatch;
    if (!checkHello(first.hello, &mismatch)) {
        conn->writeLine(errorLine("handshake rejected: " +
                                  mismatch));
        return;
    }
    HelloMsg reply = localHello();
    reply.workers = options_.workers != 0
                        ? options_.workers
                        : std::max(
                              1u,
                              std::thread::hardware_concurrency());
    if (!conn->writeLine(helloLine(reply, true)))
        return;

    while (conn->readLine(line)) {
        const ParsedMsg msg = parseLine(line);
        switch (msg.type) {
        case MsgType::Submit:
            if (!handleSubmit(*conn, msg.submit))
                return; // client vanished mid-stream
            break;
        case MsgType::CacheGet: {
            std::vector<CacheEntryMsg> entries;
            for (const std::string &key : msg.cache.keys) {
                if (const auto hit = cache_.lookup(key)) {
                    CacheEntryMsg entry;
                    entry.key = key;
                    entry.result = hit->result;
                    entry.stats = hit->stats;
                    entries.push_back(std::move(entry));
                }
            }
            if (!conn->writeLine(cacheEntriesLine(entries)))
                return;
            break;
        }
        case MsgType::CachePut: {
            std::size_t stored = 0;
            for (const CacheEntryMsg &entry : msg.cache.entries) {
                // Only canonical keys enter the shared cache; a
                // client cannot poison it with unparseable keys.
                core::AttackVariant variant{};
                campaign::CpuConfig config;
                campaign::AttackOptions options;
                if (!campaign::parseScenarioKey(entry.key, variant,
                                                config, options))
                    continue;
                cache_.store(entry.key,
                             {entry.result, entry.stats});
                ++stored;
            }
            saveCache();
            if (!conn->writeLine(okLine(stored)))
                return;
            break;
        }
        case MsgType::Stats:
            if (!conn->writeLine(statsLine(stats())))
                return;
            break;
        case MsgType::Shutdown:
            conn->writeLine(okLine(0));
            stop();
            return;
        case MsgType::Invalid:
            // Malformed line: report and keep serving — a client
            // bug must not cost other clients their daemon.
            if (!conn->writeLine(errorLine("bad request: " +
                                           msg.error)))
                return;
            break;
        default:
            if (!conn->writeLine(errorLine(
                    "unexpected message type for a request")))
                return;
            break;
        }
    }
}

} // namespace specsec::serve
