/**
 * @file
 * The campaign daemon: one process owning one ResultCache, serving
 * scenario-execution batches and cache queries to any number of
 * concurrent clients over the line-delimited JSON protocol
 * (src/serve/protocol.hh).
 *
 * Each accepted connection gets its own thread; a submit expands
 * into an executeKeyBatch() on the server's worker pool with
 * results streamed back as they complete, so several clients'
 * batches interleave on the pool and every execution lands in the
 * one shared cache.  A client that disconnects mid-stream cancels
 * only its own batch (the failed write's emit callback returns
 * false); the daemon and every other connection stay healthy.
 *
 * With a --cache-file the cache is loaded at start and re-saved
 * (load-merge-save under the lock file, see persist.cc) after
 * every batch, so even a killed daemon loses at most the batch in
 * flight.
 */

#ifndef SPECSEC_SERVE_SERVER_HH
#define SPECSEC_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"

namespace specsec::serve
{

class Server
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0; ///< 0 = ephemeral; read back port()
        /// Worker threads per submit batch; 0 = all cores.
        unsigned workers = 0;
        /// Optional persistent cache (load at start, save per batch).
        std::string cachePath;
    };

    explicit Server(Options options) : options_(std::move(options))
    {
    }
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + load the cache; false with a reason. */
    bool start(std::string *error = nullptr);

    /** The bound port (after start()). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Accept-and-serve until stop() or a client's shutdown
     * message.  Blocks; run it on a dedicated thread for
     * in-process use (tests), or directly from main() for the
     * CLI daemon.
     */
    void serveForever();

    /** Signal serveForever() to drain and return. */
    void stop();

    /** Live counters (also served over the wire as stats{}). */
    StatsMsg stats() const;

    const campaign::ResultCache &cache() const { return cache_; }

  private:
    void handleConnection(std::shared_ptr<net::Conn> conn);
    bool handleSubmit(net::Conn &conn, const SubmitMsg &submit);
    void saveCache();

    Options options_;
    net::Listener listener_;
    campaign::ResultCache cache_;
    std::string fingerprint_;
    std::atomic<bool> stopping_{false};

    mutable std::mutex mutex_; ///< guards conns_/threads_/counters
    std::vector<std::weak_ptr<net::Conn>> conns_;
    std::vector<std::thread> threads_;
    std::size_t connections_ = 0;
    std::size_t requests_ = 0;
    std::size_t executed_ = 0;
    std::size_t cacheHits_ = 0;
    std::size_t modelDecided_ = 0;
    std::size_t modelUndecided_ = 0;
    std::size_t modelDisagreements_ = 0;
};

} // namespace specsec::serve

#endif // SPECSEC_SERVE_SERVER_HH
