#include "protocol.hh"

#include <sstream>

#include "campaign/campaign.hh"
#include "tool/jsonio.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"
#include "tool/schema.hh"

namespace specsec::serve
{

namespace
{

std::string
quoted(const std::string &s)
{
    return "\"" + tool::jsonEscape(s) + "\"";
}

std::string
num(double value)
{
    // Exact17 so wallMillis round-trips bit-exactly, like every
    // other double on the tree's wire formats.
    return tool::formatDouble(value, tool::DoubleStyle::Exact17);
}

std::string
entryJson(const CacheEntryMsg &entry)
{
    std::string out = "{\"key\": " + quoted(entry.key);
    out += ", \"result\": " + tool::attackResultJson(entry.result);
    out += ", \"stats\": " + tool::cpuStatsJson(entry.stats);
    out += "}";
    return out;
}

std::string
entriesJson(const std::vector<CacheEntryMsg> &entries)
{
    std::string out = "[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            out += ", ";
        out += entryJson(entries[i]);
    }
    out += "]";
    return out;
}

/** Expect the next object key to be exactly @p name. */
bool
expectKey(tool::json::Cursor &cur, const char *name)
{
    const std::string key = cur.parseString();
    if (cur.failed())
        return false;
    if (key != name)
        return cur.fail("expected key '" + std::string(name) +
                        "', got '" + key + "'");
    return cur.expect(':');
}

bool
parseEntries(tool::json::Cursor &cur,
             std::vector<CacheEntryMsg> &entries)
{
    if (!cur.expect('['))
        return false;
    if (cur.peekConsume(']'))
        return true;
    do {
        CacheEntryMsg entry;
        if (!cur.expect('{') || !expectKey(cur, "key"))
            return false;
        entry.key = cur.parseString();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "result") ||
            !tool::parseAttackResultJson(cur, entry.result))
            return false;
        if (!cur.expect(',') || !expectKey(cur, "stats") ||
            !tool::parseCpuStatsJson(cur, entry.stats))
            return false;
        if (!cur.expect('}'))
            return false;
        entries.push_back(std::move(entry));
    } while (cur.peekConsume(','));
    return cur.expect(']');
}

} // namespace

std::string
helloLine(const HelloMsg &msg, bool with_workers)
{
    std::ostringstream os;
    os << "{\"type\": \"hello\", \"protocol\": " << msg.protocol
       << ", \"schema\": " << quoted(msg.schema)
       << ", \"fingerprint\": " << quoted(msg.fingerprint);
    if (with_workers)
        os << ", \"workers\": " << msg.workers;
    os << "}";
    return os.str();
}

std::string
submitLine(const SubmitMsg &msg)
{
    std::string out =
        "{\"type\": \"submit\", \"name\": " + quoted(msg.name) +
        ", \"keys\": [";
    for (std::size_t i = 0; i < msg.keys.size(); ++i) {
        if (i)
            out += ", ";
        out += quoted(msg.keys[i]);
    }
    out += "]}";
    return out;
}

std::string
resultLine(const ResultMsg &msg)
{
    std::ostringstream os;
    os << "{\"type\": \"result\", \"index\": " << msg.index
       << ", \"cached\": " << (msg.cached ? "true" : "false")
       << ", \"wallMillis\": " << num(msg.wallMillis)
       << ", \"result\": " << tool::attackResultJson(msg.result)
       << ", \"stats\": " << tool::cpuStatsJson(msg.stats) << "}";
    return os.str();
}

std::string
doneLine(const DoneMsg &msg)
{
    std::ostringstream os;
    os << "{\"type\": \"done\", \"executed\": " << msg.executed
       << ", \"cacheHits\": " << msg.cacheHits
       << ", \"wallMillis\": " << num(msg.wallMillis) << "}";
    return os.str();
}

std::string
cacheGetLine(const std::vector<std::string> &keys)
{
    std::string out = "{\"type\": \"cache-get\", \"keys\": [";
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i)
            out += ", ";
        out += quoted(keys[i]);
    }
    out += "]}";
    return out;
}

std::string
cacheEntriesLine(const std::vector<CacheEntryMsg> &entries)
{
    return "{\"type\": \"cache-entries\", \"entries\": " +
           entriesJson(entries) + "}";
}

std::string
cachePutLine(const std::vector<CacheEntryMsg> &entries)
{
    return "{\"type\": \"cache-put\", \"entries\": " +
           entriesJson(entries) + "}";
}

std::string
okLine(std::size_t count)
{
    return "{\"type\": \"ok\", \"count\": " +
           std::to_string(count) + "}";
}

std::string
statsRequestLine()
{
    return "{\"type\": \"stats\"}";
}

std::string
statsLine(const StatsMsg &msg)
{
    std::ostringstream os;
    os << "{\"type\": \"stats\", \"connections\": "
       << msg.connections << ", \"requests\": " << msg.requests
       << ", \"executed\": " << msg.executed
       << ", \"cacheHits\": " << msg.cacheHits
       << ", \"cacheSize\": " << msg.cacheSize
       << ", \"forked\": " << msg.forked
       << ", \"rebuilt\": " << msg.rebuilt
       << ", \"pooledArenas\": " << msg.pooledArenas
       << ", \"warmHits\": " << msg.warmHits
       << ", \"warmMisses\": " << msg.warmMisses
       << ", \"warmEntries\": " << msg.warmEntries
       << ", \"modelDecided\": " << msg.modelDecided
       << ", \"modelUndecided\": " << msg.modelUndecided
       << ", \"modelDisagreements\": " << msg.modelDisagreements
       << "}";
    return os.str();
}

std::string
shutdownLine()
{
    return "{\"type\": \"shutdown\"}";
}

std::string
errorLine(const std::string &message)
{
    return "{\"type\": \"error\", \"message\": " + quoted(message) +
           "}";
}

ParsedMsg
parseLine(const std::string &line)
{
    ParsedMsg msg;
    tool::json::Cursor cur(line);
    const auto invalid = [&](const std::string &fallback) {
        msg.type = MsgType::Invalid;
        msg.error = cur.error().empty() ? fallback : cur.error();
        return msg;
    };

    if (!cur.expect('{') || !expectKey(cur, "type"))
        return invalid("message is not a JSON object");
    const std::string type = cur.parseString();
    if (cur.failed())
        return invalid("missing message type");

    if (type == "hello") {
        if (!cur.expect(',') || !expectKey(cur, "protocol"))
            return invalid("malformed hello");
        msg.hello.protocol = cur.parseUnsigned();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "schema"))
            return invalid("malformed hello");
        msg.hello.schema = cur.parseString();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "fingerprint"))
            return invalid("malformed hello");
        msg.hello.fingerprint = cur.parseString();
        if (cur.failed())
            return invalid("malformed hello");
        if (cur.peekConsume(',')) {
            if (!expectKey(cur, "workers"))
                return invalid("malformed hello");
            msg.hello.workers = cur.parseUnsigned();
            if (cur.failed())
                return invalid("malformed hello");
        }
        if (!cur.expect('}') || !cur.atEnd())
            return invalid("trailing bytes after hello");
        msg.type = MsgType::Hello;
        return msg;
    }
    if (type == "submit") {
        if (!cur.expect(',') || !expectKey(cur, "name"))
            return invalid("malformed submit");
        msg.submit.name = cur.parseString();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "keys"))
            return invalid("malformed submit");
        msg.submit.keys = tool::json::parseStringArray(cur);
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed submit");
        msg.type = MsgType::Submit;
        return msg;
    }
    if (type == "result") {
        if (!cur.expect(',') || !expectKey(cur, "index"))
            return invalid("malformed result");
        msg.result.index = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "cached"))
            return invalid("malformed result");
        msg.result.cached = cur.parseBool();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "wallMillis"))
            return invalid("malformed result");
        msg.result.wallMillis = cur.parseDouble();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "result") ||
            !tool::parseAttackResultJson(cur, msg.result.result))
            return invalid("malformed result payload");
        if (!cur.expect(',') || !expectKey(cur, "stats") ||
            !tool::parseCpuStatsJson(cur, msg.result.stats))
            return invalid("malformed result stats");
        if (!cur.expect('}') || !cur.atEnd())
            return invalid("trailing bytes after result");
        msg.type = MsgType::Result;
        return msg;
    }
    if (type == "done") {
        if (!cur.expect(',') || !expectKey(cur, "executed"))
            return invalid("malformed done");
        msg.done.executed = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "cacheHits"))
            return invalid("malformed done");
        msg.done.cacheHits = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "wallMillis"))
            return invalid("malformed done");
        msg.done.wallMillis = cur.parseDouble();
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed done");
        msg.type = MsgType::Done;
        return msg;
    }
    if (type == "cache-get") {
        if (!cur.expect(',') || !expectKey(cur, "keys"))
            return invalid("malformed cache-get");
        msg.cache.keys = tool::json::parseStringArray(cur);
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed cache-get");
        msg.type = MsgType::CacheGet;
        return msg;
    }
    if (type == "cache-entries" || type == "cache-put") {
        if (!cur.expect(',') || !expectKey(cur, "entries") ||
            !parseEntries(cur, msg.cache.entries))
            return invalid("malformed " + type);
        if (!cur.expect('}') || !cur.atEnd())
            return invalid("malformed " + type);
        msg.type = type == "cache-put" ? MsgType::CachePut
                                       : MsgType::CacheEntries;
        return msg;
    }
    if (type == "ok") {
        if (!cur.expect(',') || !expectKey(cur, "count"))
            return invalid("malformed ok");
        msg.ok.count = cur.parseU64();
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed ok");
        msg.type = MsgType::Ok;
        return msg;
    }
    if (type == "stats") {
        if (cur.peekConsume('}')) {
            if (!cur.atEnd())
                return invalid("trailing bytes after stats");
            msg.type = MsgType::Stats; // bare request
            return msg;
        }
        if (!cur.expect(',') || !expectKey(cur, "connections"))
            return invalid("malformed stats");
        msg.stats.connections = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "requests"))
            return invalid("malformed stats");
        msg.stats.requests = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "executed"))
            return invalid("malformed stats");
        msg.stats.executed = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "cacheHits"))
            return invalid("malformed stats");
        msg.stats.cacheHits = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "cacheSize"))
            return invalid("malformed stats");
        msg.stats.cacheSize = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "forked"))
            return invalid("malformed stats");
        msg.stats.forked = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "rebuilt"))
            return invalid("malformed stats");
        msg.stats.rebuilt = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "pooledArenas"))
            return invalid("malformed stats");
        msg.stats.pooledArenas = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "warmHits"))
            return invalid("malformed stats");
        msg.stats.warmHits = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "warmMisses"))
            return invalid("malformed stats");
        msg.stats.warmMisses = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "warmEntries"))
            return invalid("malformed stats");
        msg.stats.warmEntries = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "modelDecided"))
            return invalid("malformed stats");
        msg.stats.modelDecided = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "modelUndecided"))
            return invalid("malformed stats");
        msg.stats.modelUndecided = cur.parseU64();
        if (cur.failed() || !cur.expect(',') ||
            !expectKey(cur, "modelDisagreements"))
            return invalid("malformed stats");
        msg.stats.modelDisagreements = cur.parseU64();
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed stats");
        msg.type = MsgType::Stats;
        return msg;
    }
    if (type == "shutdown") {
        if (!cur.expect('}') || !cur.atEnd())
            return invalid("malformed shutdown");
        msg.type = MsgType::Shutdown;
        return msg;
    }
    if (type == "error") {
        if (!cur.expect(',') || !expectKey(cur, "message"))
            return invalid("malformed error");
        msg.error = cur.parseString();
        if (cur.failed() || !cur.expect('}') || !cur.atEnd())
            return invalid("malformed error");
        msg.type = MsgType::Error;
        return msg;
    }
    return invalid("unknown message type '" + type + "'");
}

HelloMsg
localHello()
{
    HelloMsg msg;
    msg.protocol = kProtocolVersion;
    msg.schema = tool::wireSchemaTag();
    msg.fingerprint = campaign::modelFingerprint();
    return msg;
}

bool
checkHello(const HelloMsg &peer, std::string *error)
{
    const HelloMsg ours = localHello();
    const auto fail = [error](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };
    if (peer.protocol != ours.protocol)
        return fail("protocol version mismatch: peer speaks v" +
                    std::to_string(peer.protocol) +
                    ", this binary speaks v" +
                    std::to_string(ours.protocol));
    if (peer.schema != ours.schema)
        return fail(
            "schema tag mismatch: peer '" + peer.schema +
            "' vs local '" + ours.schema +
            "' (rebuild both sides from the same field registry)");
    if (peer.fingerprint != ours.fingerprint)
        return fail(
            "model fingerprint mismatch: peer '" +
            peer.fingerprint + "' vs local '" + ours.fingerprint +
            "' (different model version, struct shapes, or "
            "extension registrations)");
    return true;
}

} // namespace specsec::serve
