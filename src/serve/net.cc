#include "net.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace specsec::serve::net
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/// getaddrinfo over TCP/IPv4+6; empty host means loopback.
struct ResolvedAddrs
{
    addrinfo *list = nullptr;
    ~ResolvedAddrs()
    {
        if (list)
            ::freeaddrinfo(list);
    }
};

bool
resolve(const std::string &host, std::uint16_t port, bool passive,
        ResolvedAddrs &out, std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    const std::string service = std::to_string(port);
    const char *node =
        host.empty() ? (passive ? nullptr : "127.0.0.1")
                     : host.c_str();
    const int rc =
        ::getaddrinfo(node, service.c_str(), &hints, &out.list);
    if (rc != 0)
        return fail(error, "cannot resolve '" + host +
                               "': " + ::gai_strerror(rc));
    return true;
}

} // namespace

bool
parseEndpoint(const std::string &text, Endpoint &endpoint,
              std::string *error)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos)
        return fail(error, "expected HOST:PORT, got '" + text + "'");
    const std::string port_text = text.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") !=
            std::string::npos)
        return fail(error,
                    "bad port in '" + text + "' (decimal required)");
    const unsigned long port = std::strtoul(port_text.c_str(),
                                            nullptr, 10);
    if (port == 0 || port > 65535)
        return fail(error, "port out of range in '" + text + "'");
    endpoint.host =
        colon == 0 ? std::string("127.0.0.1") : text.substr(0, colon);
    endpoint.port = static_cast<std::uint16_t>(port);
    return true;
}

Conn::Conn(Conn &&other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_))
{
    other.fd_ = -1;
}

Conn &
Conn::operator=(Conn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

bool
Conn::readLine(std::string &line)
{
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF or error; any partial frame is dropped
    }
}

bool
Conn::writeLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    // Blocking send loop, audited for the two ways send() delivers
    // less than asked: a *short write* (kernel buffer smaller than
    // the frame — protocol lines carry whole campaign exports, far
    // beyond SO_SNDBUF) advances off and loops until every byte is
    // out, and EINTR retries the same offset.  Mirrors readLine's
    // EINTR handling above; tests/serve_test.cc forces a partial
    // write through a shrunken send buffer to pin this.
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
Conn::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

Conn
dial(const Endpoint &endpoint, std::string *error)
{
    ResolvedAddrs addrs;
    if (!resolve(endpoint.host, endpoint.port, false, addrs, error))
        return Conn();
    std::string reason = "connect failed";
    for (addrinfo *ai = addrs.list; ai; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            return Conn(fd);
        }
        reason = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
    }
    fail(error, reason + " (" + endpoint.host + ":" +
                    std::to_string(endpoint.port) + ")");
    return Conn();
}

bool
Listener::listenOn(const Endpoint &endpoint, std::string *error)
{
    close();
    ResolvedAddrs addrs;
    if (!resolve(endpoint.host, endpoint.port, true, addrs, error))
        return false;
    std::string reason = "bind failed";
    for (addrinfo *ai = addrs.list; ai; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0) {
            sockaddr_storage bound{};
            socklen_t len = sizeof bound;
            if (::getsockname(
                    fd, reinterpret_cast<sockaddr *>(&bound),
                    &len) == 0) {
                if (bound.ss_family == AF_INET)
                    port_ = ntohs(
                        reinterpret_cast<sockaddr_in *>(&bound)
                            ->sin_port);
                else if (bound.ss_family == AF_INET6)
                    port_ = ntohs(
                        reinterpret_cast<sockaddr_in6 *>(&bound)
                            ->sin6_port);
            }
            fd_ = fd;
            return true;
        }
        reason = std::string("bind/listen: ") +
                 std::strerror(errno);
        ::close(fd);
    }
    return fail(error, reason + " (" + endpoint.host + ":" +
                           std::to_string(endpoint.port) + ")");
}

Conn
Listener::acceptOne(int timeout_ms)
{
    if (fd_ < 0)
        return Conn();
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0)
        return Conn();
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0)
        return Conn();
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof one);
    return Conn(client);
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

} // namespace specsec::serve::net
