#include "client.hh"

#include <algorithm>
#include <map>

#include "tool/stream_export.hh"

namespace specsec::serve
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

campaign::CampaignHeader
headerForGrid(const campaign::ScenarioSpec &spec,
              const campaign::ExpandedGrid &grid,
              campaign::ShardRange shard, unsigned workers)
{
    const std::size_t count = shard.count == 0 ? 1 : shard.count;
    const campaign::ShardSelection sel =
        grid.shard(shard.index, count);

    campaign::CampaignHeader header;
    header.name = spec.name;
    // Every (row, col) of the grid appears in the expansion, so
    // the label axes are recoverable without the engine's private
    // catalog resolvers — a remote header is byte-identical to a
    // local one.
    for (const campaign::Scenario &s : grid.expanded) {
        if (s.row >= header.rowLabels.size())
            header.rowLabels.resize(s.row + 1);
        if (s.col >= header.colLabels.size())
            header.colLabels.resize(s.col + 1);
        header.rowLabels[s.row] = s.rowLabel;
        header.colLabels[s.col] = s.colLabel;
    }
    header.expandedCount = grid.expanded.size();
    header.uniqueCount = grid.uniqueIndices.size();
    header.gridIndices = sel.expandedIndices;
    header.shardUniqueCount = sel.uniquePositions.size();
    header.shardIndex = shard.index;
    header.shardCount = count;
    header.workers = workers;
    return header;
}

bool
Client::connect(const net::Endpoint &endpoint, std::string *error)
{
    conn_ = net::dial(endpoint, error);
    if (!conn_.valid())
        return false;
    if (!conn_.writeLine(helloLine(localHello(), false)))
        return fail(error, "connection lost during handshake");
    std::string line;
    if (!conn_.readLine(line))
        return fail(error, "server closed during handshake");
    const ParsedMsg reply = parseLine(line);
    if (reply.type == MsgType::Error)
        return fail(error, reply.error);
    if (reply.type != MsgType::Hello)
        return fail(error, "handshake failed: unexpected reply");
    std::string mismatch;
    if (!checkHello(reply.hello, &mismatch))
        return fail(error, "handshake rejected: " + mismatch);
    serverWorkers_ =
        reply.hello.workers == 0 ? 1 : reply.hello.workers;
    return true;
}

bool
Client::run(const campaign::ScenarioSpec &spec,
            const std::vector<campaign::OutcomeSink *> &sinks,
            campaign::ShardRange shard, std::string *error)
{
    const campaign::ExpandedGrid grid = campaign::dedupGrid(spec);
    const campaign::CampaignHeader header =
        headerForGrid(spec, grid, shard, serverWorkers_);
    return runSubset(grid, header, header.gridIndices, sinks,
                     error);
}

bool
Client::runSubset(
    const campaign::ExpandedGrid &grid,
    const campaign::CampaignHeader &header,
    const std::vector<std::size_t> &expandedIndices,
    const std::vector<campaign::OutcomeSink *> &sinks,
    std::string *error)
{
    if (!conn_.valid())
        return fail(error, "not connected");

    // The unique executions backing the wanted grid points, in
    // first-appearance order; each fans back out to every wanted
    // duplicate when its result arrives.
    std::map<std::size_t, std::vector<std::size_t>> backedBy;
    for (const std::size_t e : expandedIndices)
        backedBy[grid.dupOf[e]].push_back(e);
    SubmitMsg submit;
    submit.name = header.name;
    std::vector<std::size_t> uniquePositions;
    for (const auto &kv : backedBy) {
        uniquePositions.push_back(kv.first);
        submit.keys.push_back(
            grid.expanded[grid.uniqueIndices[kv.first]].key);
    }

    for (campaign::OutcomeSink *sink : sinks)
        sink->begin(header);

    if (!conn_.writeLine(submitLine(submit)))
        return fail(error, "connection lost sending submit");

    std::size_t received = 0;
    std::string line;
    while (conn_.readLine(line)) {
        const ParsedMsg msg = parseLine(line);
        if (msg.type == MsgType::Error)
            return fail(error, "server: " + msg.error);
        if (msg.type == MsgType::Done) {
            if (received != submit.keys.size())
                return fail(error,
                            "server finished early: " +
                                std::to_string(received) + " of " +
                                std::to_string(
                                    submit.keys.size()) +
                                " results");
            campaign::CampaignFooter footer;
            footer.executedCount = msg.done.executed;
            footer.cacheHits = msg.done.cacheHits;
            footer.wallMillis = msg.done.wallMillis;
            footer.scenariosPerSecond =
                msg.done.wallMillis > 0.0
                    ? 1000.0 *
                          static_cast<double>(msg.done.executed) /
                          msg.done.wallMillis
                    : 0.0;
            for (campaign::OutcomeSink *sink : sinks)
                sink->end(footer);
            return true;
        }
        if (msg.type != MsgType::Result)
            return fail(error,
                        "unexpected mid-stream message: " +
                            (msg.type == MsgType::Invalid
                                 ? msg.error
                                 : line));
        if (msg.result.index >= uniquePositions.size())
            return fail(error, "result index out of range");
        ++received;
        const std::size_t pos = uniquePositions[msg.result.index];
        for (const std::size_t e : backedBy.at(pos)) {
            const campaign::Scenario &dup = grid.expanded[e];
            campaign::ScenarioOutcome o;
            o.variant = dup.variant;
            o.row = dup.row;
            o.col = dup.col;
            o.gridIndex = dup.gridIndex;
            o.rowLabel = dup.rowLabel;
            o.colLabel = dup.colLabel;
            o.config = dup.config;
            o.options = dup.options;
            o.result = msg.result.result;
            o.stats = msg.result.stats;
            o.wallMillis = msg.result.wallMillis;
            for (campaign::OutcomeSink *sink : sinks)
                sink->consume(o);
        }
    }
    return fail(error, "connection lost mid-stream");
}

bool
Client::cacheGet(const std::vector<std::string> &keys,
                 std::vector<CacheEntryMsg> &entries,
                 std::string *error)
{
    if (!conn_.writeLine(cacheGetLine(keys)))
        return fail(error, "connection lost");
    std::string line;
    if (!conn_.readLine(line))
        return fail(error, "connection lost");
    ParsedMsg msg = parseLine(line);
    if (msg.type == MsgType::Error)
        return fail(error, "server: " + msg.error);
    if (msg.type != MsgType::CacheEntries)
        return fail(error, "unexpected cache-get reply");
    entries = std::move(msg.cache.entries);
    return true;
}

bool
Client::cachePut(const std::vector<CacheEntryMsg> &entries,
                 std::size_t *stored, std::string *error)
{
    if (!conn_.writeLine(cachePutLine(entries)))
        return fail(error, "connection lost");
    std::string line;
    if (!conn_.readLine(line))
        return fail(error, "connection lost");
    const ParsedMsg msg = parseLine(line);
    if (msg.type == MsgType::Error)
        return fail(error, "server: " + msg.error);
    if (msg.type != MsgType::Ok)
        return fail(error, "unexpected cache-put reply");
    if (stored)
        *stored = msg.ok.count;
    return true;
}

bool
Client::serverStats(StatsMsg &stats, std::string *error)
{
    if (!conn_.writeLine(statsRequestLine()))
        return fail(error, "connection lost");
    std::string line;
    if (!conn_.readLine(line))
        return fail(error, "connection lost");
    const ParsedMsg msg = parseLine(line);
    if (msg.type == MsgType::Error)
        return fail(error, "server: " + msg.error);
    if (msg.type != MsgType::Stats)
        return fail(error, "unexpected stats reply");
    stats = msg.stats;
    return true;
}

bool
Client::requestShutdown(std::string *error)
{
    if (!conn_.writeLine(shutdownLine()))
        return fail(error, "connection lost");
    std::string line;
    if (!conn_.readLine(line))
        return fail(error, "connection lost");
    const ParsedMsg msg = parseLine(line);
    if (msg.type == MsgType::Error)
        return fail(error, "server: " + msg.error);
    if (msg.type != MsgType::Ok)
        return fail(error, "unexpected shutdown reply");
    return true;
}

bool
planJsonlResume(const campaign::CampaignHeader &header,
                const std::string &existingText, ResumePlan &plan,
                std::string *error)
{
    plan = ResumePlan();
    plan.missing = header.gridIndices;
    if (existingText.empty())
        return true; // nothing survived; a fresh run is the plan

    const std::string expected_header =
        tool::jsonlHeaderRecord(header);
    if (existingText.size() < expected_header.size() ||
        existingText.compare(0, expected_header.size(),
                             expected_header) != 0) {
        // A complete-but-different header is another run's file —
        // resuming over it would corrupt that export.  A single
        // newline-less line is ambiguous: a writer killed
        // mid-header (torn header) vs. a file that simply isn't
        // ours.  Disambiguate by prefix: a torn line that matches
        // the start of *this* run's header (including the edge
        // case of the full header with the trailing newline still
        // unwritten) is an empty run — resume from scratch with
        // zero kept outcomes.  Anything else is another run's torn
        // line; refuse rather than silently overwrite it.
        if (existingText.find('\n') == std::string::npos) {
            if (expected_header.compare(0, existingText.size(),
                                        existingText) == 0)
                return true;
            return fail(error,
                        "existing JSONL is a torn line from a "
                        "different run; refusing to resume over "
                        "it");
        }
        return fail(error,
                    "existing JSONL header does not match this "
                    "spec/shard; refusing to resume over it");
    }

    plan.keepText = expected_header;
    std::size_t pos = expected_header.size();
    while (plan.covered < header.gridIndices.size()) {
        const std::size_t nl = existingText.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn tail line: drop it, re-fetch that cell
        const std::string line =
            existingText.substr(pos, nl + 1 - pos);
        // Outcome lines open with their gridIndex (the record's
        // first schema field); the prefix is valid exactly while
        // the indices follow the announced grid order.
        const std::string want =
            "{\"type\": \"outcome\", \"record\": {\"gridIndex\": " +
            std::to_string(header.gridIndices[plan.covered]) +
            ", ";
        if (line.compare(0, want.size(), want) != 0)
            return fail(error,
                        "existing JSONL line " +
                            std::to_string(plan.covered + 1) +
                            " is not the expected outcome for "
                            "gridIndex " +
                            std::to_string(
                                header.gridIndices[plan.covered]) +
                            "; refusing to resume");
        plan.keepText += line;
        ++plan.covered;
        pos = nl + 1;
    }
    if (plan.covered == header.gridIndices.size() &&
        pos < existingText.size())
        return fail(error,
                    "existing JSONL has trailing bytes after a "
                    "complete run; nothing to resume");
    plan.missing.assign(header.gridIndices.begin() +
                            static_cast<std::ptrdiff_t>(
                                plan.covered),
                        header.gridIndices.end());
    return true;
}

} // namespace specsec::serve
