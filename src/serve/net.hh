/**
 * @file
 * Minimal blocking TCP plumbing for the campaign service: a
 * listener with a poll-interruptible accept, and a connection
 * wrapper speaking the service's framing — one '\n'-terminated
 * message per line, no other byte-level structure.  Everything
 * above this layer (src/serve/protocol.hh) deals in complete
 * lines; everything below is plain POSIX sockets, so the daemon
 * needs nothing the toolchain does not already ship.
 *
 * Error handling is boolean-with-message like the rest of the
 * tree: a false return carries a human-readable reason, never an
 * errno the caller has to decode.  Writes use MSG_NOSIGNAL so a
 * client that vanished mid-stream surfaces as a failed write, not
 * a SIGPIPE that kills the daemon.
 */

#ifndef SPECSEC_SERVE_NET_HH
#define SPECSEC_SERVE_NET_HH

#include <cstdint>
#include <string>

namespace specsec::serve::net
{

/** "HOST:PORT" as used by --connect / serve --host/--port. */
struct Endpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/**
 * Parse "HOST:PORT" (host may be empty: ":9000" means loopback).
 * @return false with a message in @p error on a malformed spelling.
 */
bool parseEndpoint(const std::string &text, Endpoint &endpoint,
                   std::string *error = nullptr);

/**
 * One accepted or dialed stream connection with buffered
 * line-oriented reads.  Movable, not copyable; closes on
 * destruction.
 */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn() { close(); }

    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Block until one complete line arrives; @p line receives it
     * without the trailing '\n'.  @return false on EOF or a socket
     * error (including a torn connection); bytes after the last
     * newline at EOF — a truncated frame — are discarded.
     */
    bool readLine(std::string &line);

    /** Write @p line plus '\n'; false when the peer is gone. */
    bool writeLine(const std::string &line);

    /**
     * Shut both directions down without closing the fd, so a
     * thread blocked in readLine() on this connection wakes with
     * EOF (used by Server::stop to drain connection threads).
     */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
    std::string buffer_; ///< bytes read past the last returned line
};

/**
 * Dial @p endpoint.  @return an invalid Conn with a message in
 * @p error when the host does not resolve or the connect fails.
 */
Conn dial(const Endpoint &endpoint, std::string *error = nullptr);

/** Listening socket with an interruptible accept. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { close(); }
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen on @p endpoint; port 0 picks an ephemeral
     * port (read it back with port()).
     */
    bool listenOn(const Endpoint &endpoint,
                  std::string *error = nullptr);

    /** The bound port (resolves port-0 binds). */
    std::uint16_t port() const { return port_; }

    /**
     * Wait up to @p timeout_ms for one connection.  @return the
     * accepted Conn, or an invalid Conn on timeout/error —
     * distinguishable because timeouts are the caller's polling
     * loop, not failures.
     */
    Conn acceptOne(int timeout_ms);

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace specsec::serve::net

#endif // SPECSEC_SERVE_NET_HH
