/**
 * @file
 * The campaign-service wire protocol: line-delimited JSON messages
 * over one TCP connection.  Every message is a single-line JSON
 * object whose first key is "type"; the execution-result payloads
 * (AttackResult / CpuStats) travel as the same schema-derived
 * fragments shard reports and the persistent cache use
 * (tool/report_io.hh), so the protocol tracks the field registry
 * in tool/schema.hh automatically instead of maintaining a second
 * field list.
 *
 * Session shape:
 *
 *   client                          server
 *   ------                          ------
 *   hello{protocol,schema,fp}  -->
 *                              <--  hello{protocol,schema,fp,workers}
 *   submit{name,keys[]}        -->
 *                              <--  result{index,cached,wallMillis,
 *                                          result,stats}   (xN, any order)
 *                              <--  done{executed,cacheHits,wallMillis}
 *   cache-get{keys[]}          -->
 *                              <--  cache-entries{entries[]}
 *   cache-put{entries[]}       -->
 *                              <--  ok{count}
 *   stats{}                    -->
 *                              <--  stats{connections,requests,...}
 *   shutdown{}                 -->
 *                              <--  ok{count:0}, then the daemon stops
 *
 * Any malformed or unexpected message yields error{message}; the
 * connection survives unless the handshake itself was rejected.
 * The handshake pins BOTH tool::wireSchemaTag() (field registry)
 * and campaign::modelFingerprint() (struct shapes, defaults and
 * extension-slot bindings): two binaries interoperate exactly when
 * they would also share cache files.
 *
 * Parsers accept keys strictly in the order the emitters write
 * them — both ends are this file, and strictness turns a framing
 * bug into a loud error instead of a silently-defaulted field.
 */

#ifndef SPECSEC_SERVE_PROTOCOL_HH
#define SPECSEC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack_kit.hh"
#include "uarch/cpu.hh"

namespace specsec::serve
{

/** Protocol revision; bumped on any message-shape change.
 *  v2: stats grew the scenario-fork and warm-snapshot counters.
 *  v3: stats grew the verdict-model agreement counters. */
inline constexpr unsigned kProtocolVersion = 3;

/** The leading "type" value of a parsed message. */
enum class MsgType
{
    Hello,
    Submit,
    Result,
    Done,
    CacheGet,
    CacheEntries,
    CachePut,
    Ok,
    Stats,
    Shutdown,
    Error,
    Invalid, ///< unparseable line; see ParsedMsg::error
};

struct HelloMsg
{
    unsigned protocol = 0;
    std::string schema;      ///< tool::wireSchemaTag()
    std::string fingerprint; ///< campaign::modelFingerprint()
    unsigned workers = 0;    ///< server reply only
};

struct SubmitMsg
{
    std::string name; ///< spec name, for the server's log/stats
    std::vector<std::string> keys; ///< canonical scenarioKey()s
};

struct ResultMsg
{
    std::size_t index = 0; ///< position in the submit's key list
    bool cached = false;
    double wallMillis = 0.0;
    attacks::AttackResult result;
    uarch::CpuStats stats;
};

struct DoneMsg
{
    std::size_t executed = 0;
    std::size_t cacheHits = 0;
    double wallMillis = 0.0;
};

struct CacheEntryMsg
{
    std::string key;
    attacks::AttackResult result;
    uarch::CpuStats stats;
};

struct CacheMsg
{
    std::vector<std::string> keys;        ///< cache-get
    std::vector<CacheEntryMsg> entries;   ///< cache-entries / put
};

struct OkMsg
{
    std::size_t count = 0;
};

struct StatsMsg
{
    std::size_t connections = 0;
    std::size_t requests = 0;
    std::size_t executed = 0;
    std::size_t cacheHits = 0;
    std::size_t cacheSize = 0;
    // Execution-path counters (v2): scenario fork pool and
    // warm-attack snapshot cache health of the daemon process.
    std::size_t forked = 0;
    std::size_t rebuilt = 0;
    std::size_t pooledArenas = 0;
    std::size_t warmHits = 0;
    std::size_t warmMisses = 0;
    std::size_t warmEntries = 0;
    // Verdict-model counters (v3): the daemon judges every cell it
    // executes with the analytic model (verdict/model.hh) and tracks
    // live agreement against the simulator.
    std::size_t modelDecided = 0;
    std::size_t modelUndecided = 0;
    std::size_t modelDisagreements = 0;
};

/** One decoded line: the type tag plus the matching payload. */
struct ParsedMsg
{
    MsgType type = MsgType::Invalid;
    HelloMsg hello;
    SubmitMsg submit;
    ResultMsg result;
    DoneMsg done;
    CacheMsg cache;
    OkMsg ok;
    StatsMsg stats;
    std::string error; ///< Error payload, or the parse failure
};

/** @name Emitters — one single-line JSON message each. @{ */
std::string helloLine(const HelloMsg &msg, bool with_workers);
std::string submitLine(const SubmitMsg &msg);
std::string resultLine(const ResultMsg &msg);
std::string doneLine(const DoneMsg &msg);
std::string cacheGetLine(const std::vector<std::string> &keys);
std::string
cacheEntriesLine(const std::vector<CacheEntryMsg> &entries);
std::string cachePutLine(const std::vector<CacheEntryMsg> &entries);
std::string okLine(std::size_t count);
std::string statsRequestLine();
std::string statsLine(const StatsMsg &msg);
std::string shutdownLine();
std::string errorLine(const std::string &message);
/// @}

/**
 * Decode one line.  Never throws; an unparseable line comes back
 * as MsgType::Invalid with a human-readable reason in .error (an
 * explicit error message decodes as MsgType::Error).
 */
ParsedMsg parseLine(const std::string &line);

/**
 * The handshake line this binary sends/expects: current protocol,
 * wireSchemaTag(), modelFingerprint().
 */
HelloMsg localHello();

/**
 * Validate a peer's hello against ours.  @return false with a
 * message naming the mismatched layer (protocol version, schema
 * tag, model fingerprint).
 */
bool checkHello(const HelloMsg &peer, std::string *error);

} // namespace specsec::serve

#endif // SPECSEC_SERVE_PROTOCOL_HH
