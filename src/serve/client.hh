/**
 * @file
 * Client side of the campaign service: a handshaked connection
 * that can run a ScenarioSpec against the daemon through the same
 * OutcomeSink interface CampaignEngine::run drives locally.
 *
 * The client owns the grid: it expands and deduplicates the spec
 * itself and submits only the unique canonical scenarioKey()s, so
 * the daemon is spec-agnostic (arbitrary defense lambdas never
 * cross the wire) and every remote run is byte-identical — in
 * every timing-free export — to the offline path by construction:
 * the sinks see the identical header and identical outcomes, only
 * the executions happen elsewhere.
 *
 * Resume: planJsonlResume() validates a killed run's JSONL file
 * (header byte-compared against what this spec would write, then
 * the longest prefix of outcome lines in grid order), and
 * Client::runSubset() executes only the still-missing grid
 * indices, appending through a header-suppressed JsonlStreamSink.
 */

#ifndef SPECSEC_SERVE_CLIENT_HH
#define SPECSEC_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"

namespace specsec::serve
{

/**
 * Build the CampaignHeader a run of @p spec restricted to
 * @p shard announces — labels recovered from the expanded grid,
 * so remote runs need none of the engine's private resolvers.
 * @p workers is advisory (the executing side's pool size).
 */
campaign::CampaignHeader
headerForGrid(const campaign::ScenarioSpec &spec,
              const campaign::ExpandedGrid &grid,
              campaign::ShardRange shard, unsigned workers);

class Client
{
  public:
    /** Dial + handshake; false with a reason (including server-
     *  side handshake rejections, verbatim). */
    bool connect(const net::Endpoint &endpoint,
                 std::string *error = nullptr);

    /** The daemon's worker-pool size, from its hello. */
    unsigned serverWorkers() const { return serverWorkers_; }

    /**
     * Remote CampaignEngine::run: same sink contract, same bytes.
     * @return false (sinks may have seen begin/partial consumes)
     * when the connection tears or the server rejects the batch.
     */
    bool run(const campaign::ScenarioSpec &spec,
             const std::vector<campaign::OutcomeSink *> &sinks,
             campaign::ShardRange shard = {},
             std::string *error = nullptr);

    /**
     * Run only @p expandedIndices (ascending positions into
     * @p grid.expanded) of an already-expanded spec — the resume
     * path.  Sinks' begin() announces exactly those indices.
     */
    bool runSubset(
        const campaign::ExpandedGrid &grid,
        const campaign::CampaignHeader &header,
        const std::vector<std::size_t> &expandedIndices,
        const std::vector<campaign::OutcomeSink *> &sinks,
        std::string *error = nullptr);

    /** Shared-cache GET: entries come back for the keys present. */
    bool cacheGet(const std::vector<std::string> &keys,
                  std::vector<CacheEntryMsg> &entries,
                  std::string *error = nullptr);

    /** Shared-cache PUT; @p stored counts accepted entries. */
    bool cachePut(const std::vector<CacheEntryMsg> &entries,
                  std::size_t *stored = nullptr,
                  std::string *error = nullptr);

    bool serverStats(StatsMsg &stats,
                     std::string *error = nullptr);

    /** Ask the daemon to drain and exit. */
    bool requestShutdown(std::string *error = nullptr);

    void close() { conn_.close(); }

  private:
    net::Conn conn_;
    unsigned serverWorkers_ = 0;
};

/** What survives of a killed run's JSONL export. */
struct ResumePlan
{
    /// Header + the longest valid outcome prefix, exactly the
    /// bytes to keep (a truncated tail line is dropped).
    std::string keepText;
    /// Outcome lines kept (gridIndices[0..covered) are done).
    std::size_t covered = 0;
    /// Expanded grid indices still missing, ascending.
    std::vector<std::size_t> missing;
};

/**
 * Plan a resume of @p header's run from the bytes of its killed
 * JSONL export (timing-free runs only — timing output embeds a
 * summary line and machine-local wall times).  The header line
 * must match @p header byte-for-byte; outcome lines must follow
 * the announced grid order.  @return false when the file cannot
 * belong to this run (wrong spec, reordered lines) — resuming
 * would then corrupt the export.  An empty/absent file is a valid
 * plan covering nothing.
 */
bool planJsonlResume(const campaign::CampaignHeader &header,
                     const std::string &existingText,
                     ResumePlan &plan,
                     std::string *error = nullptr);

} // namespace specsec::serve

#endif // SPECSEC_SERVE_CLIENT_HH
