#include "tsg.hh"

#include <algorithm>
#include <stdexcept>

namespace specsec::graph
{

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::Data: return "data";
      case EdgeKind::Control: return "control";
      case EdgeKind::Address: return "address";
      case EdgeKind::Fence: return "fence";
      case EdgeKind::Resource: return "resource";
      case EdgeKind::Security: return "security";
    }
    return "unknown";
}

NodeId
Tsg::addNode(std::string label)
{
    const NodeId id = static_cast<NodeId>(labels_.size());
    labels_.push_back(std::move(label));
    out_.emplace_back();
    in_.emplace_back();
    succCache_.emplace_back();
    succCacheValid_.push_back(false);
    return id;
}

void
Tsg::checkNode(NodeId u) const
{
    if (u >= labels_.size())
        throw std::out_of_range("Tsg: node id out of range");
}

bool
Tsg::hasEdge(NodeId u, NodeId v) const
{
    checkNode(u);
    checkNode(v);
    const auto &outs = out_[u];
    return std::any_of(outs.begin(), outs.end(),
                       [v](const OutEdge &e) { return e.to == v; });
}

std::optional<EdgeKind>
Tsg::edgeKind(NodeId u, NodeId v) const
{
    checkNode(u);
    checkNode(v);
    for (const auto &e : out_[u]) {
        if (e.to == v)
            return e.kind;
    }
    return std::nullopt;
}

bool
Tsg::wouldCreateCycle(NodeId u, NodeId v) const
{
    checkNode(u);
    checkNode(v);
    if (u == v)
        return true;
    // A cycle appears iff u is already reachable from v.
    std::vector<bool> visited(labels_.size(), false);
    std::vector<NodeId> stack{v};
    visited[v] = true;
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        if (cur == u)
            return true;
        for (const auto &e : out_[cur]) {
            if (!visited[e.to]) {
                visited[e.to] = true;
                stack.push_back(e.to);
            }
        }
    }
    return false;
}

bool
Tsg::addEdge(NodeId u, NodeId v, EdgeKind kind)
{
    checkNode(u);
    checkNode(v);
    if (hasEdge(u, v))
        return true;
    if (wouldCreateCycle(u, v))
        return false;
    out_[u].push_back({v, kind});
    in_[v].push_back(u);
    edgeList_.push_back({u, v, kind});
    ++edgeCount_;
    succCacheValid_[u] = false;
    return true;
}

bool
Tsg::removeEdge(NodeId u, NodeId v)
{
    checkNode(u);
    checkNode(v);
    auto &outs = out_[u];
    auto it = std::find_if(outs.begin(), outs.end(),
                           [v](const OutEdge &e) { return e.to == v; });
    if (it == outs.end())
        return false;
    outs.erase(it);
    auto &ins = in_[v];
    ins.erase(std::find(ins.begin(), ins.end(), u));
    auto lit = std::find_if(edgeList_.begin(), edgeList_.end(),
                            [u, v](const Edge &e) {
                                return e.from == u && e.to == v;
                            });
    edgeList_.erase(lit);
    --edgeCount_;
    succCacheValid_[u] = false;
    return true;
}

const std::vector<NodeId> &
Tsg::successors(NodeId u) const
{
    checkNode(u);
    if (!succCacheValid_[u]) {
        succCache_[u].clear();
        succCache_[u].reserve(out_[u].size());
        for (const auto &e : out_[u])
            succCache_[u].push_back(e.to);
        succCacheValid_[u] = true;
    }
    return succCache_[u];
}

const std::vector<NodeId> &
Tsg::predecessors(NodeId u) const
{
    checkNode(u);
    return in_[u];
}

const std::string &
Tsg::label(NodeId u) const
{
    checkNode(u);
    return labels_[u];
}

void
Tsg::setLabel(NodeId u, std::string label)
{
    checkNode(u);
    labels_[u] = std::move(label);
}

std::optional<NodeId>
Tsg::findByLabel(const std::string &label) const
{
    for (NodeId u = 0; u < labels_.size(); ++u) {
        if (labels_[u] == label)
            return u;
    }
    return std::nullopt;
}

std::vector<Edge>
Tsg::edges() const
{
    return edgeList_;
}

std::vector<NodeId>
Tsg::nodes() const
{
    std::vector<NodeId> all(labels_.size());
    for (NodeId u = 0; u < labels_.size(); ++u)
        all[u] = u;
    return all;
}

} // namespace specsec::graph
