#include "topo.hh"

#include <algorithm>
#include <queue>

namespace specsec::graph
{

std::vector<NodeId>
topologicalSort(const Tsg &g)
{
    const std::size_t n = g.nodeCount();
    std::vector<std::size_t> indeg(n, 0);
    for (NodeId u = 0; u < n; ++u)
        indeg[u] = g.predecessors(u).size();

    std::priority_queue<NodeId, std::vector<NodeId>,
                        std::greater<NodeId>> ready;
    for (NodeId u = 0; u < n; ++u) {
        if (indeg[u] == 0)
            ready.push(u);
    }

    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const NodeId u = ready.top();
        ready.pop();
        order.push_back(u);
        for (NodeId v : g.successors(u)) {
            if (--indeg[v] == 0)
                ready.push(v);
        }
    }
    return order;
}

bool
isValidOrdering(const Tsg &g, const std::vector<NodeId> &order)
{
    const std::size_t n = g.nodeCount();
    if (order.size() != n)
        return false;
    std::vector<std::size_t> pos(n, 0);
    std::vector<bool> seen(n, false);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const NodeId u = order[i];
        if (u >= n || seen[u])
            return false;
        seen[u] = true;
        pos[u] = i;
    }
    for (const Edge &e : g.edges()) {
        if (pos[e.from] >= pos[e.to])
            return false;
    }
    return true;
}

namespace
{

/** Shared backtracking core for enumeration and counting. */
struct OrderingEnumerator
{
    const Tsg &g;
    std::vector<std::size_t> indeg;
    std::vector<NodeId> current;
    std::vector<std::vector<NodeId>> *sink = nullptr;
    std::size_t limit = 0;
    std::uint64_t count = 0;
    std::uint64_t cap = 0;

    explicit
    OrderingEnumerator(const Tsg &graph)
        : g(graph), indeg(graph.nodeCount(), 0)
    {
        for (NodeId u = 0; u < g.nodeCount(); ++u)
            indeg[u] = g.predecessors(u).size();
    }

    /** @return false once the limit/cap is hit and recursion must stop. */
    bool
    recurse()
    {
        if (current.size() == g.nodeCount()) {
            ++count;
            if (sink)
                sink->push_back(current);
            if (sink && limit != kNoOrderingLimit && sink->size() >= limit)
                return false;
            if (!sink && cap != 0 && count >= cap)
                return false;
            return true;
        }
        for (NodeId u = 0; u < g.nodeCount(); ++u) {
            if (indeg[u] != 0 || used[u])
                continue;
            used[u] = true;
            current.push_back(u);
            for (NodeId v : g.successors(u))
                --indeg[v];
            const bool keep_going = recurse();
            for (NodeId v : g.successors(u))
                ++indeg[v];
            current.pop_back();
            used[u] = false;
            if (!keep_going)
                return false;
        }
        return true;
    }

    std::vector<bool> used = std::vector<bool>(g.nodeCount(), false);
};

} // anonymous namespace

std::vector<std::vector<NodeId>>
allValidOrderings(const Tsg &g, std::size_t limit)
{
    std::vector<std::vector<NodeId>> result;
    OrderingEnumerator e(g);
    e.sink = &result;
    e.limit = limit;
    e.recurse();
    return result;
}

std::uint64_t
countValidOrderings(const Tsg &g, std::uint64_t cap)
{
    OrderingEnumerator e(g);
    e.cap = cap;
    e.recurse();
    return e.count;
}

std::vector<NodeId>
randomValidOrdering(const Tsg &g, std::mt19937 &rng)
{
    const std::size_t n = g.nodeCount();
    std::vector<std::size_t> indeg(n, 0);
    for (NodeId u = 0; u < n; ++u)
        indeg[u] = g.predecessors(u).size();

    std::vector<NodeId> ready;
    for (NodeId u = 0; u < n; ++u) {
        if (indeg[u] == 0)
            ready.push_back(u);
    }

    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        std::uniform_int_distribution<std::size_t>
            pick(0, ready.size() - 1);
        const std::size_t i = pick(rng);
        const NodeId u = ready[i];
        ready[i] = ready.back();
        ready.pop_back();
        order.push_back(u);
        for (NodeId v : g.successors(u)) {
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    return order;
}

} // namespace specsec::graph
