/**
 * @file
 * Race-condition detection on TSGs (paper Section IV-B, Theorem 1).
 *
 * A race condition exists between vertices u and v iff there are two
 * valid orderings that disagree on their relative order.  Theorem 1
 * proves this is equivalent to: *no* directed path connects u and v
 * (in either direction).  This module implements both sides:
 * path-based detection (the efficient check a tool would use) and
 * ordering-enumeration detection (the definition, used to cross-check
 * the theorem in tests and benchmarks).
 */

#ifndef SPECSEC_GRAPH_RACE_HH
#define SPECSEC_GRAPH_RACE_HH

#include <optional>
#include <utility>
#include <vector>

#include "tsg.hh"

namespace specsec::graph
{

/**
 * @return true if a directed path (possibly of length zero, i.e.
 *         u == v) exists from u to v.
 */
bool pathExists(const Tsg &g, NodeId u, NodeId v);

/**
 * Precomputed transitive closure for O(1) reachability queries.
 *
 * Uses a bitset-per-node closure computed in reverse topological
 * order: O(V * E / 64).  Snapshot semantics: the matrix reflects the
 * graph at construction time.
 */
class ReachabilityMatrix
{
  public:
    explicit ReachabilityMatrix(const Tsg &g);

    /** @return true if v is reachable from u (u == v counts). */
    bool reachable(NodeId u, NodeId v) const;

    /** @return number of nodes the matrix was built for. */
    std::size_t size() const { return n_; }

  private:
    std::size_t n_;
    std::size_t words_;
    std::vector<std::uint64_t> bits_;
};

/**
 * Theorem 1 check: u and v race iff neither reaches the other.
 * @pre u != v (a node cannot race with itself; returns false).
 */
bool hasRace(const Tsg &g, NodeId u, NodeId v);

/** hasRace() against a prebuilt closure, for bulk queries. */
bool hasRace(const ReachabilityMatrix &m, NodeId u, NodeId v);

/** @return all unordered racing pairs (u < v). */
std::vector<std::pair<NodeId, NodeId>> racePairs(const Tsg &g);

/**
 * Two valid orderings witnessing a race: one with u before v, one
 * with v before u.  Built constructively following the proof of
 * Theorem 1 (schedule the non-target side first).
 */
struct RaceWitness
{
    std::vector<NodeId> uFirst; ///< valid ordering with u before v
    std::vector<NodeId> vFirst; ///< valid ordering with v before u
};

/**
 * Produce a witness for the race between u and v.
 *
 * @return nullopt if u and v do not race (a path connects them).
 */
std::optional<RaceWitness> raceWitness(const Tsg &g, NodeId u, NodeId v);

/**
 * Definition-level race check: enumerate valid orderings and look for
 * disagreement on the relative order of u and v.  Exponential; only
 * for small graphs (tests / Theorem 1 validation).
 */
bool raceByEnumeration(const Tsg &g, NodeId u, NodeId v);

} // namespace specsec::graph

#endif // SPECSEC_GRAPH_RACE_HH
