#include "race.hh"

#include <algorithm>
#include <stdexcept>

#include "topo.hh"

namespace specsec::graph
{

bool
pathExists(const Tsg &g, NodeId u, NodeId v)
{
    if (!g.isNode(u) || !g.isNode(v))
        throw std::out_of_range("pathExists: node id out of range");
    if (u == v)
        return true;
    std::vector<bool> visited(g.nodeCount(), false);
    std::vector<NodeId> stack{u};
    visited[u] = true;
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        for (NodeId next : g.successors(cur)) {
            if (next == v)
                return true;
            if (!visited[next]) {
                visited[next] = true;
                stack.push_back(next);
            }
        }
    }
    return false;
}

ReachabilityMatrix::ReachabilityMatrix(const Tsg &g)
    : n_(g.nodeCount()), words_((n_ + 63) / 64), bits_(n_ * words_, 0)
{
    // Process nodes in reverse topological order so every successor's
    // closure row is final before it is OR-ed into its predecessors.
    const std::vector<NodeId> order = topologicalSort(g);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId u = *it;
        std::uint64_t *row = &bits_[u * words_];
        row[u / 64] |= (std::uint64_t{1} << (u % 64));
        for (NodeId v : g.successors(u)) {
            const std::uint64_t *vrow = &bits_[v * words_];
            for (std::size_t w = 0; w < words_; ++w)
                row[w] |= vrow[w];
        }
    }
}

bool
ReachabilityMatrix::reachable(NodeId u, NodeId v) const
{
    if (u >= n_ || v >= n_)
        throw std::out_of_range("ReachabilityMatrix: node out of range");
    return (bits_[u * words_ + v / 64] >> (v % 64)) & 1;
}

bool
hasRace(const Tsg &g, NodeId u, NodeId v)
{
    if (u == v)
        return false;
    return !pathExists(g, u, v) && !pathExists(g, v, u);
}

bool
hasRace(const ReachabilityMatrix &m, NodeId u, NodeId v)
{
    if (u == v)
        return false;
    return !m.reachable(u, v) && !m.reachable(v, u);
}

std::vector<std::pair<NodeId, NodeId>>
racePairs(const Tsg &g)
{
    const ReachabilityMatrix m(g);
    std::vector<std::pair<NodeId, NodeId>> races;
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        for (NodeId v = u + 1; v < g.nodeCount(); ++v) {
            if (hasRace(m, u, v))
                races.emplace_back(u, v);
        }
    }
    return races;
}

namespace
{

/**
 * Kahn's algorithm that defers @p deferred as long as possible, which
 * schedules every operation not depending on it first.  If @p winner
 * does not depend on @p deferred, the result orders winner before
 * deferred -- the constructive step in the proof of Theorem 1.
 */
std::vector<NodeId>
orderingDeferring(const Tsg &g, NodeId deferred)
{
    const std::size_t n = g.nodeCount();
    std::vector<std::size_t> indeg(n, 0);
    for (NodeId u = 0; u < n; ++u)
        indeg[u] = g.predecessors(u).size();

    std::vector<NodeId> ready;
    for (NodeId u = 0; u < n; ++u) {
        if (indeg[u] == 0)
            ready.push_back(u);
    }

    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        // Pick any ready node other than `deferred` if one exists.
        std::size_t pick = 0;
        bool found = false;
        for (std::size_t i = 0; i < ready.size(); ++i) {
            if (ready[i] != deferred) {
                pick = i;
                found = true;
                break;
            }
        }
        if (!found)
            pick = 0; // only `deferred` is ready; emit it
        const NodeId u = ready[pick];
        ready.erase(ready.begin() +
                    static_cast<std::ptrdiff_t>(pick));
        order.push_back(u);
        for (NodeId v : g.successors(u)) {
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    return order;
}

} // anonymous namespace

std::optional<RaceWitness>
raceWitness(const Tsg &g, NodeId u, NodeId v)
{
    if (!hasRace(g, u, v))
        return std::nullopt;
    RaceWitness w;
    w.uFirst = orderingDeferring(g, v);
    w.vFirst = orderingDeferring(g, u);
    return w;
}

bool
raceByEnumeration(const Tsg &g, NodeId u, NodeId v)
{
    if (u == v)
        return false;
    bool seen_u_first = false;
    bool seen_v_first = false;
    // Enumerate orderings lazily would be nicer; for the graph sizes
    // used in tests full enumeration is fine.
    for (const auto &order : allValidOrderings(g)) {
        for (NodeId x : order) {
            if (x == u) {
                seen_u_first = true;
                break;
            }
            if (x == v) {
                seen_v_first = true;
                break;
            }
        }
        if (seen_u_first && seen_v_first)
            return true;
    }
    return false;
}

} // namespace specsec::graph
