/**
 * @file
 * Graphviz (DOT) export of TSGs, used by benches and examples to
 * regenerate the paper's attack-graph figures.
 */

#ifndef SPECSEC_GRAPH_DOT_HH
#define SPECSEC_GRAPH_DOT_HH

#include <functional>
#include <string>

#include "tsg.hh"

namespace specsec::graph
{

/** Rendering options for toDot(). */
struct DotOptions
{
    /** Graph name emitted in the digraph header. */
    std::string name = "tsg";

    /** Layout direction; the paper's figures flow top-down. */
    std::string rankdir = "TB";

    /**
     * Optional extra per-node attributes, e.g. role-based coloring.
     * Return a string like "fillcolor=red,style=filled" or "".
     */
    std::function<std::string(NodeId)> nodeStyle;
};

/** @return the DOT source for @p g. */
std::string toDot(const Tsg &g, const DotOptions &options = {});

} // namespace specsec::graph

#endif // SPECSEC_GRAPH_DOT_HH
