/**
 * @file
 * Reachability queries that treat a subset of nodes as absent.
 *
 * Attack graphs with several alternative secret sources (paper
 * Fig. 4) are OR-joins: the dependent computation fires as soon as
 * *any* source supplies data.  Evaluating whether one particular
 * source-to-send flow is ordered after an authorization therefore
 * must ignore ordering constraints that pass through the *other*
 * sources.  This helper provides path queries with an excluded set.
 */

#ifndef SPECSEC_GRAPH_RACE_AVOID_HH
#define SPECSEC_GRAPH_RACE_AVOID_HH

#include <vector>

#include "tsg.hh"

namespace specsec::graph
{

/**
 * @return true if a directed path from u to v exists whose interior
 *         nodes all have excluded[node] == false.  Endpoints u and v
 *         are never treated as excluded.  u == v returns true.
 */
bool pathExistsAvoiding(const Tsg &g, NodeId u, NodeId v,
                        const std::vector<bool> &excluded);

} // namespace specsec::graph

#endif // SPECSEC_GRAPH_RACE_AVOID_HH
