/**
 * @file
 * Topological orderings of a TSG.
 *
 * The paper defines a *valid ordering* of a TSG as a permutation of
 * all vertices such that for every edge (u, v), u comes before v.
 * Race conditions are defined over the set of valid orderings, so
 * this module provides sorting, validity checking, exhaustive
 * enumeration (for small graphs / property tests) and uniform random
 * sampling of valid orderings.
 */

#ifndef SPECSEC_GRAPH_TOPO_HH
#define SPECSEC_GRAPH_TOPO_HH

#include <cstdint>
#include <random>
#include <vector>

#include "tsg.hh"

namespace specsec::graph
{

/** No limit for allValidOrderings(). */
constexpr std::size_t kNoOrderingLimit = 0;

/**
 * Compute one valid ordering using Kahn's algorithm.
 *
 * Ties are broken by smallest node id, so the result is
 * deterministic.
 *
 * @return a valid ordering of all nodes.  The graph is acyclic by
 *         construction, so one always exists.
 */
std::vector<NodeId> topologicalSort(const Tsg &g);

/**
 * Check whether @p order is a valid ordering of @p g: it must contain
 * every vertex exactly once and respect every edge.
 */
bool isValidOrdering(const Tsg &g, const std::vector<NodeId> &order);

/**
 * Enumerate valid orderings by backtracking.
 *
 * @param limit Stop after this many orderings (kNoOrderingLimit
 *              enumerates all; exponential in general, intended for
 *              graphs of at most ~12 nodes).
 */
std::vector<std::vector<NodeId>>
allValidOrderings(const Tsg &g, std::size_t limit = kNoOrderingLimit);

/**
 * Count valid orderings without materializing them.
 *
 * @param cap Stop counting once the count reaches @p cap (0 = exact).
 * @return the number of valid orderings, saturated at @p cap.
 */
std::uint64_t countValidOrderings(const Tsg &g, std::uint64_t cap = 0);

/**
 * Sample a random valid ordering: at each step pick uniformly among
 * the currently ready vertices.  (This is not uniform over orderings,
 * but reaches every valid ordering with non-zero probability, which
 * is what the race property tests need.)
 */
std::vector<NodeId> randomValidOrdering(const Tsg &g, std::mt19937 &rng);

} // namespace specsec::graph

#endif // SPECSEC_GRAPH_TOPO_HH
