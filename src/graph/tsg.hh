/**
 * @file
 * Topological Sort Graph (TSG), the formal object underlying attack
 * graphs in "New Models for Understanding and Reasoning about
 * Speculative Execution Attacks" (HPCA 2021), Section IV-B.
 *
 * A TSG is a directed acyclic graph whose vertices are operations and
 * whose edges are dependencies: if an edge (u, v) exists, operation u
 * must happen before operation v in every valid ordering.  The library
 * distinguishes edge kinds (data, control, address, fence, resource,
 * security) because the paper's central concept -- the *security
 * dependency* -- is an edge kind that hardware must honor in addition
 * to data and control dependencies.
 */

#ifndef SPECSEC_GRAPH_TSG_HH
#define SPECSEC_GRAPH_TSG_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace specsec::graph
{

/** Identifier of a vertex (operation) in a TSG. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/**
 * Kind of a dependency edge.
 *
 * Data, Control and Address dependencies arise from ordinary program
 * semantics.  Fence edges are inserted by serializing instructions.
 * Resource edges model structural hazards (e.g. a shared port).
 * Security edges are the paper's new dependency kind: an ordering of
 * an authorization operation before a protected operation that must be
 * enforced to avoid a security breach (Definition 2).
 */
enum class EdgeKind : std::uint8_t
{
    Data,
    Control,
    Address,
    Fence,
    Resource,
    Security,
};

/** @return a stable human-readable name for an edge kind. */
const char *edgeKindName(EdgeKind kind);

/** A directed dependency edge from one operation to another. */
struct Edge
{
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    EdgeKind kind = EdgeKind::Data;

    bool operator==(const Edge &other) const = default;
};

/**
 * A topological sort graph: a labeled DAG with kinded edges.
 *
 * The class maintains the acyclicity invariant: addEdge() refuses to
 * insert an edge that would create a directed cycle, since a cyclic
 * dependency graph has no valid ordering and cannot model a program.
 *
 * Node ids are dense and stable: the i-th added node has id i.
 */
class Tsg
{
  public:
    Tsg() = default;

    /**
     * Add an operation vertex.
     *
     * @param label Human-readable description of the operation.
     * @return The id of the new vertex.
     */
    NodeId addNode(std::string label);

    /**
     * Add a dependency edge u -> v ("u happens before v").
     *
     * Inserting an edge that already exists is an idempotent success
     * (the original kind is kept).  Self-loops and cycle-creating
     * edges are rejected.
     *
     * @return true if the edge exists after the call, false if it was
     *         rejected because it would create a cycle or self-loop.
     * @throws std::out_of_range if either endpoint is not a node.
     */
    bool addEdge(NodeId u, NodeId v, EdgeKind kind = EdgeKind::Data);

    /**
     * Remove the edge u -> v if present.
     * @return true if an edge was removed.
     */
    bool removeEdge(NodeId u, NodeId v);

    /** @return true if the edge u -> v is present. */
    bool hasEdge(NodeId u, NodeId v) const;

    /** @return the kind of edge u -> v, or nullopt if absent. */
    std::optional<EdgeKind> edgeKind(NodeId u, NodeId v) const;

    /** @return true if adding u -> v would create a directed cycle. */
    bool wouldCreateCycle(NodeId u, NodeId v) const;

    /** @return number of vertices. */
    std::size_t nodeCount() const { return labels_.size(); }

    /** @return number of edges. */
    std::size_t edgeCount() const { return edgeCount_; }

    /** @return successor node ids of u (direct dependents). */
    const std::vector<NodeId> &successors(NodeId u) const;

    /** @return predecessor node ids of u (direct dependencies). */
    const std::vector<NodeId> &predecessors(NodeId u) const;

    /** @return the label of node u. */
    const std::string &label(NodeId u) const;

    /** Replace the label of node u. */
    void setLabel(NodeId u, std::string label);

    /** @return the first node whose label equals @p label, if any. */
    std::optional<NodeId> findByLabel(const std::string &label) const;

    /** @return a snapshot of every edge, in insertion order. */
    std::vector<Edge> edges() const;

    /** @return all node ids, i.e. 0 .. nodeCount()-1. */
    std::vector<NodeId> nodes() const;

    /** @return true if @p u is a valid node id. */
    bool isNode(NodeId u) const { return u < labels_.size(); }

  private:
    /** Throw std::out_of_range unless u is a valid node id. */
    void checkNode(NodeId u) const;

    struct OutEdge
    {
        NodeId to;
        EdgeKind kind;
    };

    std::vector<std::string> labels_;
    std::vector<std::vector<OutEdge>> out_;
    std::vector<std::vector<NodeId>> in_;
    std::vector<Edge> edgeList_;
    std::size_t edgeCount_ = 0;

    // successors() returns a reference; cache the id-only projection.
    mutable std::vector<std::vector<NodeId>> succCache_;
    mutable std::vector<bool> succCacheValid_;
};

} // namespace specsec::graph

#endif // SPECSEC_GRAPH_TSG_HH
