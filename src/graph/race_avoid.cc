#include "race_avoid.hh"

#include <stdexcept>

namespace specsec::graph
{

bool
pathExistsAvoiding(const Tsg &g, NodeId u, NodeId v,
                   const std::vector<bool> &excluded)
{
    if (!g.isNode(u) || !g.isNode(v))
        throw std::out_of_range("pathExistsAvoiding: node out of range");
    if (excluded.size() != g.nodeCount())
        throw std::invalid_argument(
            "pathExistsAvoiding: excluded mask size mismatch");
    if (u == v)
        return true;
    std::vector<bool> visited(g.nodeCount(), false);
    std::vector<NodeId> stack{u};
    visited[u] = true;
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        for (NodeId next : g.successors(cur)) {
            if (next == v)
                return true;
            if (!visited[next] && !excluded[next]) {
                visited[next] = true;
                stack.push_back(next);
            }
        }
    }
    return false;
}

} // namespace specsec::graph
