#include "dot.hh"

#include <sstream>

namespace specsec::graph
{

namespace
{

/** Escape double quotes and backslashes for a DOT string literal. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char *
edgeStyle(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::Data: return "";
      case EdgeKind::Control: return " [style=dashed]";
      case EdgeKind::Address: return " [style=dotted]";
      case EdgeKind::Fence: return " [color=blue]";
      case EdgeKind::Resource: return " [color=gray]";
      case EdgeKind::Security:
        return " [color=red,penwidth=2,label=\"security\"]";
    }
    return "";
}

} // anonymous namespace

std::string
toDot(const Tsg &g, const DotOptions &options)
{
    std::ostringstream os;
    os << "digraph \"" << escape(options.name) << "\" {\n";
    os << "  rankdir=" << options.rankdir << ";\n";
    os << "  node [shape=box,fontname=\"Helvetica\"];\n";
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        os << "  n" << u << " [label=\"" << escape(g.label(u)) << "\"";
        if (options.nodeStyle) {
            const std::string extra = options.nodeStyle(u);
            if (!extra.empty())
                os << "," << extra;
        }
        os << "];\n";
    }
    for (const Edge &e : g.edges()) {
        os << "  n" << e.from << " -> n" << e.to
           << edgeStyle(e.kind) << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace specsec::graph
