#include "sink.hh"

namespace specsec::campaign
{

void
OutcomeSink::begin(const CampaignHeader &)
{
}

void
OutcomeSink::end(const CampaignFooter &)
{
}

void
ReportSink::begin(const CampaignHeader &header)
{
    std::lock_guard<std::mutex> lock(mutex_);
    report_ = CampaignReport{};
    report_.name = header.name;
    report_.rowLabels = header.rowLabels;
    report_.colLabels = header.colLabels;
    report_.expandedCount = header.expandedCount;
    report_.uniqueCount = header.uniqueCount;
    report_.shardIndex = header.shardIndex;
    report_.shardCount = header.shardCount;
    report_.workers = header.workers;
    slots_.assign(header.gridIndices.size(), std::nullopt);
    slotOf_.clear();
    slotOf_.reserve(header.gridIndices.size());
    for (std::size_t i = 0; i < header.gridIndices.size(); ++i)
        slotOf_.emplace(header.gridIndices[i], i);
}

void
ReportSink::consume(const ScenarioOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slotOf_.find(outcome.gridIndex);
    if (it == slotOf_.end())
        return; // not announced in begin(); drop rather than corrupt
    slots_[it->second] = outcome;
}

void
ReportSink::end(const CampaignFooter &footer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    report_.outcomes.clear();
    report_.outcomes.reserve(slots_.size());
    // Slots are ordered by the header's ascending gridIndices, so
    // this flush is the deterministic grid order regardless of the
    // completion order consume() observed.
    for (std::optional<ScenarioOutcome> &slot : slots_)
        if (slot)
            report_.outcomes.push_back(std::move(*slot));
    slots_.clear();
    slotOf_.clear();
    report_.executedCount = footer.executedCount;
    report_.cacheHits = footer.cacheHits;
    report_.wallMillis = footer.wallMillis;
    report_.scenariosPerSecond = footer.scenariosPerSecond;
    report_.modelDecided = footer.modelDecided;
    report_.modelUndecided = footer.modelUndecided;
    report_.disagreements = footer.disagreements;
    report_.replicatedCells = footer.replicatedCells;
    report_.recomputeCells();
}

void
ProgressSink::begin(const CampaignHeader &header)
{
    std::lock_guard<std::mutex> lock(mutex_);
    name_ = header.name;
    if (header.shardCount > 1) {
        char buf[48];
        std::snprintf(buf, sizeof buf, " [shard %zu/%zu]",
                      header.shardIndex, header.shardCount);
        name_ += buf;
    }
    total_ = header.gridIndices.size();
    done_ = 0;
    render(0);
}

void
ProgressSink::consume(const ScenarioOutcome &)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (done_ % every_ == 0 || done_ == total_)
        render(done_);
}

void
ProgressSink::end(const CampaignFooter &footer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    render(done_);
    if (out_)
        std::fprintf(out_,
                     "  (%zu executed, %zu cached, %.1f ms)\n",
                     footer.executedCount, footer.cacheHits,
                     footer.wallMillis);
}

std::size_t
ProgressSink::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

void
ProgressSink::render(std::size_t done)
{
    if (!out_)
        return;
    std::fprintf(out_, "\r%s: %zu/%zu scenarios", name_.c_str(),
                 done, total_);
    std::fflush(out_);
}

} // namespace specsec::campaign
