/**
 * @file
 * Declarative, parallel scenario-sweep engine.
 *
 * The paper's central deliverables are matrices: which attack
 * variants succeed under which hardware defense strategies (Tables
 * II/III).  Instead of hand-writing one loop per experiment, a
 * ScenarioSpec declares a grid over
 *
 *     AttackVariant x defense axis x CpuConfig knob sweeps
 *                   x covert channel,
 *
 * and the CampaignEngine expands the grid, deduplicates identical
 * (variant, config, options) cells, and executes the unique
 * scenarios across a worker-thread pool.  Each worker owns its
 * Memory/PageTable/Cpu (the simulator is single-threaded per
 * instance; attacks::runVariant constructs a private Scenario per
 * call), so scenario execution is embarrassingly parallel and the
 * outcome of every cell is independent of scheduling.
 *
 * Every result field except the wall-clock timings is a pure
 * function of the cell's configuration, so a parallel run produces
 * byte-identical results (success matrix, per-cell outcomes, CSV
 * rows) to a serial run of the same spec.
 */

#ifndef SPECSEC_CAMPAIGN_CAMPAIGN_HH
#define SPECSEC_CAMPAIGN_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "attacks/attack_kit.hh"
#include "core/variants.hh"

namespace specsec::campaign
{

using attacks::AttackOptions;
using attacks::AttackResult;
using uarch::CpuConfig;
using uarch::CpuStats;

/**
 * One named defense column of the sweep: a mutation applied to the
 * baseline CpuConfig/AttackOptions.  A null @c apply is the baseline
 * (no mutation).
 */
struct DefenseAxis
{
    std::string label;
    std::function<void(CpuConfig &, AttackOptions &)> apply;
};

/** Declarative description of a campaign grid. */
struct ScenarioSpec
{
    std::string name = "campaign";

    /// Rows.  Empty means core::allVariants().
    std::vector<core::AttackVariant> variants;

    /// Columns.  Empty means a single baseline column.
    std::vector<DefenseAxis> defenses;

    /// Baseline configuration every cell starts from.
    CpuConfig baseConfig;
    AttackOptions baseOptions;

    /// @name Knob sweeps (cartesian with rows x columns).
    /// An empty vector means "the baseline value only".
    /// @{
    std::vector<std::size_t> robSizes;
    std::vector<unsigned> permCheckLatencies;
    std::vector<core::CovertChannelKind> channels;
    /// @}

    /// Number of grid points before deduplication.
    std::size_t gridSize() const;

    /**
     * The paper's defense matrix (the sweep previously hand-rolled
     * in examples/defense_matrix.cpp): every variant except Spoiler
     * against the baseline plus the seven hardware defense strategy
     * realizations of Sections V-B/V-C.
     */
    static ScenarioSpec defenseMatrix();
};

/** One fully expanded cell of the grid. */
struct Scenario
{
    core::AttackVariant variant{};
    CpuConfig config;
    AttackOptions options;
    std::size_t row = 0;       ///< variant index in the spec
    std::size_t col = 0;       ///< defense index in the spec
    std::size_t gridIndex = 0; ///< position in expansion order
    std::string rowLabel;
    std::string colLabel;
    std::string key; ///< canonical dedup key (scenarioKey())
};

/**
 * Canonical serialization of everything that determines a run's
 * outcome.  Two grid points with equal keys are the same experiment
 * and are executed once.  Must cover every field of CpuConfig
 * (including nested CacheConfig / VulnConfig / HwDefenseConfig) and
 * AttackOptions; extend when those structs grow.
 */
std::string scenarioKey(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options);

/**
 * Expand @p spec into scenarios in deterministic row-major order:
 * variant (outer), defense, robSize, permCheckLatency, channel
 * (inner).
 */
std::vector<Scenario> expandGrid(const ScenarioSpec &spec);

/** Grid expansion with duplicate cells folded onto one execution. */
struct ExpandedGrid
{
    std::vector<Scenario> expanded; ///< every grid point, grid order

    /// Indices into @c expanded of the first occurrence of each
    /// distinct key, in grid order: the scenarios actually executed.
    std::vector<std::size_t> uniqueIndices;

    /// For every expanded index, the position in @c uniqueIndices of
    /// the execution that produces its result.
    std::vector<std::size_t> dupOf;
};

ExpandedGrid dedupGrid(const ScenarioSpec &spec);

/** Outcome of one grid cell. */
struct ScenarioOutcome
{
    core::AttackVariant variant{};
    std::size_t row = 0;
    std::size_t col = 0;
    std::size_t gridIndex = 0;
    std::string rowLabel;
    std::string colLabel;
    /// The exact configuration the cell ran under, so exports are
    /// self-contained (knob sweeps differ only here).
    CpuConfig config;
    AttackOptions options;
    AttackResult result;
    CpuStats stats;
    /// Wall time of the unique execution backing this cell.
    /// Machine- and scheduling-dependent: excluded from the
    /// deterministic exports (resultsCsv / success matrix).
    double wallMillis = 0.0;
};

/** Aggregated results of a campaign. */
struct CampaignReport
{
    std::string name;
    std::vector<std::string> rowLabels;
    std::vector<std::string> colLabels;

    /// One outcome per expanded grid point, grid order (deduplicated
    /// cells share the result of their unique execution).
    std::vector<ScenarioOutcome> outcomes;

    /// Per (row, col) cell: grid points landing in the cell and how
    /// many of them leaked.  Knob sweeps put several runs per cell.
    std::vector<std::vector<unsigned>> cellRuns;
    std::vector<std::vector<unsigned>> cellLeaks;

    std::size_t expandedCount = 0;
    std::size_t uniqueCount = 0;
    unsigned workers = 1;
    double wallMillis = 0.0;
    double scenariosPerSecond = 0.0; ///< unique executions / wall

    /**
     * 'L' when every run in the cell leaked, '.' when none did, 'p'
     * when mixed, ' ' when the cell is empty.
     */
    char cellGlyph(std::size_t row, std::size_t col) const;

    /** Deterministic text rendering of the success matrix. */
    std::string successMatrixText() const;
};

/** The parallel campaign executor. */
class CampaignEngine
{
  public:
    struct Options
    {
        /// Worker threads; 0 means std::thread::hardware_concurrency.
        unsigned workers = 0;
    };

    CampaignEngine() = default;
    explicit CampaignEngine(Options options) : options_(options) {}

    /** Resolved worker count (>= 1). */
    unsigned workers() const;

    /** Expand, deduplicate and execute @p spec. */
    CampaignReport run(const ScenarioSpec &spec) const;

  private:
    Options options_;
};

} // namespace specsec::campaign

#endif // SPECSEC_CAMPAIGN_CAMPAIGN_HH
