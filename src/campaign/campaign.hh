/**
 * @file
 * Declarative, parallel scenario-sweep engine.
 *
 * The paper's central deliverables are matrices: which attack
 * variants succeed under which hardware defense strategies (Tables
 * II/III).  Instead of hand-writing one loop per experiment, a
 * ScenarioSpec declares a grid over
 *
 *     AttackVariant x defense axis x CpuConfig knob sweeps
 *                   x covert channel,
 *
 * and the CampaignEngine expands the grid, deduplicates identical
 * (variant, config, options) cells, and executes the unique
 * scenarios across a worker-thread pool.  Each worker owns its
 * Memory/PageTable/Cpu (the simulator is single-threaded per
 * instance; attacks::runVariant constructs a private Scenario per
 * call), so scenario execution is embarrassingly parallel and the
 * outcome of every cell is independent of scheduling.
 *
 * Every result field except the wall-clock timings is a pure
 * function of the cell's configuration, so a parallel run produces
 * byte-identical results (success matrix, per-cell outcomes, CSV
 * rows) to a serial run of the same spec.
 *
 * The engine itself owns no aggregation: outcomes stream into
 * OutcomeSinks (src/campaign/sink.hh) as workers complete them, and
 * report accumulation, incremental JSONL/CSV export and live
 * progress are all sinks.  Grids partition deterministically across
 * processes (ExpandedGrid::shard) into shard reports that merge back
 * bit-identically (CampaignReport::merge), and a ResultCache
 * persists to disk (persist.cc) so repeated runs skip unchanged
 * cells.
 */

#ifndef SPECSEC_CAMPAIGN_CAMPAIGN_HH
#define SPECSEC_CAMPAIGN_CAMPAIGN_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/attack_kit.hh"
#include "core/catalog.hh"
#include "core/variants.hh"
#include "verdict/verdict.hh"

namespace specsec::campaign
{

using attacks::AttackOptions;
using attacks::AttackResult;
using uarch::CpuConfig;
using uarch::CpuStats;

/**
 * One named defense column of the sweep: a mutation applied to the
 * baseline CpuConfig/AttackOptions.  A null @c apply is the baseline
 * (no mutation).
 */
struct DefenseAxis
{
    std::string label;
    std::function<void(CpuConfig &, AttackOptions &)> apply;
};

/**
 * Software-mitigation grid dimension: a named set of AttackOptions
 * toggles (the Table II software fixes).  Data-only so a sweep entry
 * is fully described by its fields; toggles are OR-ed into the
 * baseline options, never cleared.
 */
struct SoftwareMitigation
{
    std::string label = "none";

    /// The toggle set (core::MitigationToggles, the same data a
    /// MitigationDescriptor carries — one definition of the sweep
    /// semantics).
    core::MitigationToggles toggles;

    void applyTo(AttackOptions &options) const
    {
        toggles.applyTo(options);
    }

    /** Sweep value for a cataloged MitigationDescriptor: its name
     *  becomes the label, its toggles copy over. */
    static SoftwareMitigation
    fromCatalog(const core::MitigationDescriptor &descriptor);

    /** fromCatalog() by registry name/alias; nullopt when unknown
     *  (callers print ScenarioCatalog::mitigationSuggestions). */
    static std::optional<SoftwareMitigation>
    byName(const std::string &name);
};

/**
 * VulnConfig-ablation grid dimension: which transient forwarding
 * paths the simulated core has.  Sweeping ablations shows every
 * Meltdown-type attack dying exactly when its path is removed.
 */
struct VulnAblation
{
    std::string label = "all-paths";
    uarch::VulnConfig vuln;
};

/** Cache-geometry grid dimension (sets/ways/line/latency sweeps). */
struct CacheGeometry
{
    std::string label = "default";
    uarch::CacheConfig cache;
};

/** Declarative description of a campaign grid. */
struct ScenarioSpec
{
    std::string name = "campaign";

    /// Rows by enum slot.  When both this and @c attackNames are
    /// empty, the rows are every catalog attack with an enumerator
    /// (== core::allVariants(); registered extensions only join a
    /// grid that names them).
    std::vector<core::AttackVariant> variants;

    /// Extra rows resolved from the ScenarioCatalog by name or
    /// alias — the open extension seam: attacks registered at
    /// startup (including out-of-tree ones with no AttackVariant
    /// value) join the grid like any built-in.  Appended after
    /// @c variants; unknown names make gridSize()/expandGrid()
    /// throw std::invalid_argument with did-you-mean suggestions.
    std::vector<std::string> attackNames;

    /// Columns.  Empty means a single baseline column.
    std::vector<DefenseAxis> defenses;

    /// Baseline configuration every cell starts from.
    CpuConfig baseConfig;
    AttackOptions baseOptions;

    /// @name Knob sweeps (cartesian with rows x columns).
    /// An empty vector means "the baseline value only".
    /// @{
    std::vector<SoftwareMitigation> mitigations;
    std::vector<VulnAblation> vulnAblations;
    std::vector<CacheGeometry> cacheGeometries;
    std::vector<std::size_t> robSizes;
    std::vector<unsigned> permCheckLatencies;
    std::vector<core::CovertChannelKind> channels;
    /// @}

    /// Number of grid points before deduplication.
    std::size_t gridSize() const;

    /**
     * The paper's defense matrix (the sweep previously hand-rolled
     * in examples/defense_matrix.cpp): every variant except Spoiler
     * against the baseline plus the seven hardware defense strategy
     * realizations of Sections V-B/V-C.
     */
    static ScenarioSpec defenseMatrix();
};

/** One fully expanded cell of the grid. */
struct Scenario
{
    core::AttackVariant variant{};
    CpuConfig config;
    AttackOptions options;
    std::size_t row = 0;       ///< variant index in the spec
    std::size_t col = 0;       ///< defense index in the spec
    std::size_t gridIndex = 0; ///< position in expansion order
    std::string rowLabel;
    std::string colLabel;
    std::string key; ///< canonical dedup key (scenarioKey())
};

/**
 * Canonical serialization of everything that determines a run's
 * outcome.  Two grid points with equal keys are the same experiment
 * and are executed once.  Must cover every field of CpuConfig
 * (including nested CacheConfig / VulnConfig / HwDefenseConfig) and
 * AttackOptions; extend when those structs grow.
 */
std::string scenarioKey(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options);

/**
 * Invert scenarioKey(): reconstruct the (variant, config, options)
 * triple from its canonical key.  The key is the wire encoding of a
 * scenario's configuration in shard report files (src/tool/
 * report_io) — one string instead of ~47 named fields.  Must stay in
 * lockstep with scenarioKey(); the static_asserts there and the
 * round-trip test in tests/shard_test.cc tripwire both directions.
 *
 * @return false when @p key is not a well-formed scenario key.
 */
bool parseScenarioKey(const std::string &key,
                      core::AttackVariant &variant,
                      CpuConfig &config, AttackOptions &options);

/**
 * Expand @p spec into scenarios in deterministic row-major order:
 * variant (outer), defense, robSize, permCheckLatency, channel
 * (inner).
 */
std::vector<Scenario> expandGrid(const ScenarioSpec &spec);

/** One shard of a partitioned grid: shard @c index of @c count. */
struct ShardRange
{
    std::size_t index = 0;
    std::size_t count = 1;
};

/**
 * Parse the user-facing "I/N" shard spelling (strict decimals,
 * N > 0, I < N) shared by every CLI front-end.
 */
bool parseShardRange(const std::string &text, ShardRange &shard);

/**
 * The slice of an ExpandedGrid owned by one shard: which unique
 * executions it runs and which expanded grid points those back.
 */
struct ShardSelection
{
    /// Positions into ExpandedGrid::uniqueIndices, ascending.
    std::vector<std::size_t> uniquePositions;

    /// Indices into ExpandedGrid::expanded whose results this shard
    /// produces, ascending (grid order).
    std::vector<std::size_t> expandedIndices;
};

/** Grid expansion with duplicate cells folded onto one execution. */
struct ExpandedGrid
{
    std::vector<Scenario> expanded; ///< every grid point, grid order

    /// Indices into @c expanded of the first occurrence of each
    /// distinct key, in grid order: the scenarios actually executed.
    std::vector<std::size_t> uniqueIndices;

    /// For every expanded index, the position in @c uniqueIndices of
    /// the execution that produces its result.
    std::vector<std::size_t> dupOf;

    /**
     * Deterministic, dedup-stable partition for multi-process runs:
     * unique execution j goes to shard j % count (round-robin over
     * the deduplicated work, so shards balance even when duplicates
     * cluster), and every expanded grid point follows the shard of
     * its backing unique execution — a duplicate cell is never split
     * from the execution that produces its result.  The union of all
     * shards is the whole grid; shards are pairwise disjoint;
     * shard(0, 1) selects everything.
     */
    ShardSelection shard(std::size_t index, std::size_t count) const;
};

ExpandedGrid dedupGrid(const ScenarioSpec &spec);

/**
 * Cross-campaign memo of executed scenarios, keyed on scenarioKey().
 * dedupGrid() folds duplicates *within* one spec; the cache folds
 * them *across* campaigns: CI regression matrices and overlapping
 * specs (e.g. every spec's baseline column) execute each distinct
 * cell once per process.  Thread-safe; a CampaignEngine given a
 * cache consults it before executing and stores every fresh result.
 *
 * Because every cached field is a pure function of the key, hitting
 * the cache cannot change any timing-free export.
 */
class ResultCache
{
  public:
    struct Entry
    {
        AttackResult result;
        CpuStats stats;
    };

    /** @return the memoized entry for @p key, if present. */
    std::optional<Entry> lookup(const std::string &key) const;

    /** Memoize @p entry under @p key (first write wins). */
    void store(const std::string &key, const Entry &entry);

    /** Distinct scenarios memoized so far. */
    std::size_t size() const;

    /** @name Lifetime lookup counters. @{ */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /// @}

    void clear();

    /** Every entry, sorted by key (deterministic save files). */
    std::vector<std::pair<std::string, Entry>> snapshot() const;

    /**
     * @name Disk persistence (implemented in persist.cc).
     *
     * The cache survives the process as a versioned JSON file so
     * repeated CI and local runs skip unchanged cells.  Entries are
     * only trusted when the file's fingerprint equals the caller's
     * (see modelFingerprint()): a stale fingerprint, a corrupt or
     * truncated file, or a missing file all load nothing and return
     * false — never fatal, the run just starts cold.  Saving writes
     * a temp file and renames it into place, so a concurrent reader
     * (or a crash mid-save) sees the old file or the new one, never
     * a torn write.
     *
     * Saves normally load-merge-save under a sibling ".lock" file
     * so concurrent writers union their entries.  When that lock
     * cannot even be created (read-only directory, ENOSPC), the
     * save falls back to the unlocked atomic write and reports why
     * in @p lockWarning — degraded, never silent.
     * @{
     */
    bool loadFromFile(const std::string &path,
                      const std::string &fingerprint,
                      std::string *error = nullptr);
    bool saveToFile(const std::string &path,
                    const std::string &fingerprint,
                    std::string *error = nullptr,
                    std::string *lockWarning = nullptr) const;
    /// @}

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

/**
 * The ResultCache key a backend's entries live under.  Entries
 * produced by the *simulator* (Simulator, Differential and Triage
 * backends all simulate what they store) use the bare scenarioKey()
 * — mutually compatible, and compatible with persisted caches, which
 * only ever hold simulated results.  Entries synthesized by the
 * analytic model are tagged with a "model|" prefix so a model run
 * can never poison a simulator lookup (or vice versa); the tagged
 * keys fail parseScenarioKey() on purpose, so persistence drops
 * them rather than replaying model predictions as measurements.
 */
std::string backendCacheKey(verdict::VerdictBackend backend,
                            const std::string &key);

/**
 * Fingerprint of the simulated model for cache invalidation: any
 * change to the shape *or defaults* of CpuConfig / AttackOptions
 * (captured by the canonical key of a default-configured scenario,
 * which serializes every field) or to the result/stats structs
 * invalidates persisted caches.  Deliberate semantic changes that
 * keep every struct identical must bump the version constant inside.
 */
std::string modelFingerprint();

/**
 * @name Key-batch execution: the engine entry the campaign service
 * is built on.
 *
 * A batch is a list of canonical scenarioKey() strings — the wire
 * encoding of "which experiments to run" (src/serve/protocol.hh) —
 * executed across a worker pool against an externally-owned
 * ResultCache.  Results stream into the caller's callback from
 * worker threads as they complete; the caller owns all aggregation,
 * exactly like OutcomeSinks do for CampaignEngine::run.
 * @{
 */

/** One completed key of a batch. */
struct KeyBatchItem
{
    AttackResult result;
    CpuStats stats;
    /// Served from @p cache instead of executed.
    bool cached = false;
    /// Wall time of the execution (0 when cached).  Machine- and
    /// load-dependent; excluded from deterministic outputs.
    double wallMillis = 0.0;
};

/**
 * Execute every key of @p keys on @p workers threads (0 = hardware
 * concurrency), consulting and filling @p cache (may be null) and
 * invoking @p emit(index, item) from worker threads as each key
 * completes, in completion order.  @p emit must be thread-safe;
 * returning false from it cancels the rest of the batch (workers
 * drain without starting new keys — how the server stops burning
 * cycles for a vanished client).
 *
 * Every key is validated with parseScenarioKey() up front: a
 * malformed key fails the whole batch (@return false with a message
 * in @p error naming the key index) before anything executes.
 *
 * Executed keys build their simulator state through the snapshot/
 * fork path (attacks/snapshot.hh) under the process-wide build
 * mode: the serve daemon and sharded offline runs all stamp cells
 * out of the same pooled arenas, which outlive any one batch.
 */
bool executeKeyBatch(
    const std::vector<std::string> &keys, unsigned workers,
    ResultCache *cache,
    const std::function<bool(std::size_t, const KeyBatchItem &)>
        &emit,
    std::string *error = nullptr);

/// @}

/** Outcome of one grid cell. */
struct ScenarioOutcome
{
    core::AttackVariant variant{};
    std::size_t row = 0;
    std::size_t col = 0;
    std::size_t gridIndex = 0;
    std::string rowLabel;
    std::string colLabel;
    /// The exact configuration the cell ran under, so exports are
    /// self-contained (knob sweeps differ only here).
    CpuConfig config;
    AttackOptions options;
    AttackResult result;
    CpuStats stats;
    /// Wall time of the unique execution backing this cell.
    /// Machine- and scheduling-dependent: excluded from the
    /// deterministic exports (resultsCsv / success matrix).
    double wallMillis = 0.0;

    /// @name Verdict-backend annotations (src/verdict/).
    ///
    /// Empty under the plain simulator backend.  Model / Differential
    /// / Triage fill modelVerdict ("leak" / "blocked" /
    /// "inapplicable" / "undecided") and its evidence line; the
    /// differential backend additionally sets agreement ("agree" /
    /// "disagree" when the model decided, "undecided" otherwise).
    /// Annotations, not results: excluded from the default exports
    /// (schema flag kVerdict) and ignored by shard-merge conflict
    /// detection, exactly like wallMillis.
    /// @{
    std::string modelVerdict;
    std::string agreement;
    std::string evidence;
    /// Static-backend rewrite overhead: fences / index masks the
    /// in-program mitigation inserted into the attack's static
    /// program before analysis, and the resulting instruction-count
    /// growth.  All zero outside `--backend static`.
    std::size_t fencesInserted = 0;
    std::size_t masksInserted = 0;
    std::size_t extraInstructions = 0;
    /// @}
};

/** Aggregated results of a campaign (possibly one shard of one). */
struct CampaignReport
{
    std::string name;
    std::vector<std::string> rowLabels;
    std::vector<std::string> colLabels;

    /// One outcome per grid point this report covers, grid order
    /// (deduplicated cells share the result of their unique
    /// execution).  A full report covers every expanded grid point;
    /// a shard report covers its shard's subset, each outcome still
    /// carrying its full-grid @c gridIndex so shards merge back
    /// losslessly.
    std::vector<ScenarioOutcome> outcomes;

    /// Per (row, col) cell: grid points landing in the cell and how
    /// many of them leaked.  Knob sweeps put several runs per cell.
    std::vector<std::vector<unsigned>> cellRuns;
    std::vector<std::vector<unsigned>> cellLeaks;

    /// Full-grid counts, identical across every shard of one spec.
    std::size_t expandedCount = 0;
    std::size_t uniqueCount = 0;
    /// Unique cells actually executed this run (this shard's unique
    /// share minus result-cache hits).
    std::size_t executedCount = 0;
    /// Unique cells served from the engine's ResultCache.
    std::size_t cacheHits = 0;
    /// Which shard this report is (0 of 1 = the whole grid).
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    unsigned workers = 1;
    double wallMillis = 0.0;
    double scenariosPerSecond = 0.0; ///< executed scenarios / wall

    /// @name Verdict-backend counters (src/verdict/); all zero under
    /// the plain simulator backend.  Summed by merge().
    /// @{

    /// Unique cells the analytic model decided (leak / blocked /
    /// inapplicable).
    std::size_t modelDecided = 0;
    /// Unique cells the model left undecided (simulated under the
    /// triage backend; unchecked under differential).
    std::size_t modelUndecided = 0;
    /// Differential only: unique cells where a decided model verdict
    /// contradicted the simulator's leak bit.
    std::size_t disagreements = 0;
    /// Triage only: unique cells served by replicating the simulated
    /// result of an options-canonicalization classmate instead of
    /// executing (executedCount excludes them).
    std::size_t replicatedCells = 0;
    /// @}

    /// True while outcomes cover only part of the expanded grid.
    bool partial() const { return outcomes.size() != expandedCount; }

    /**
     * Fold @p other (another shard of the same spec) into this
     * report: outcomes are unioned and re-sorted into grid order,
     * per-cell counts recomputed, provenance counters summed.  After
     * the last shard lands the merged report is indistinguishable —
     * byte-identical in every timing-free export — from a
     * single-process run of the whole spec.
     *
     * Shard counts may be heterogeneous: a 3-shard and a 2-shard run
     * of the same spec cover overlapping gridIndices, and every
     * timing-free result field is a pure function of the cell's
     * configuration, so an outcome present in both reports is
     * accepted (first occurrence kept) when the two agree on
     * everything but wall time.  Provenance counters still sum, so
     * executedCount can exceed uniqueCount after an overlapping
     * merge — the overlap really was executed twice.
     *
     * Conflicts are detected, not absorbed: mismatched spec name,
     * row/column labels or grid shape, and two reports claiming the
     * same gridIndex with *different* results fail the merge with a
     * message in @p error and leave this report unchanged.
     */
    bool merge(const CampaignReport &other,
               std::string *error = nullptr);

    /** Rebuild cellRuns/cellLeaks from the outcomes present. */
    void recomputeCells();

    /**
     * 'L' when every run in the cell leaked, '.' when none did, 'p'
     * when mixed, ' ' when the cell is empty.
     */
    char cellGlyph(std::size_t row, std::size_t col) const;

    /** Deterministic text rendering of the success matrix. */
    std::string successMatrixText() const;
};

class OutcomeSink; // src/campaign/sink.hh

/**
 * The parallel campaign executor: a thin driver that expands and
 * deduplicates a spec, executes (its shard of) the unique scenarios
 * on the worker pool, and streams every ScenarioOutcome into the
 * caller's OutcomeSinks as its backing execution completes.  All
 * aggregation — report accumulation, incremental JSONL/CSV export,
 * live progress — lives in sinks (src/campaign/sink.hh,
 * src/tool/stream_export.hh), not in the engine.
 */
class CampaignEngine
{
  public:
    struct Options
    {
        /// Worker threads; 0 means std::thread::hardware_concurrency.
        unsigned workers = 0;

        /// Optional cross-campaign result cache (not owned).  Cells
        /// whose scenarioKey() is already memoized are not
        /// re-executed; fresh results are stored back.
        ResultCache *cache = nullptr;

        /// Build each cell's simulator state by forking the pooled
        /// ScenarioSnapshot arenas (attacks/snapshot.hh) instead of
        /// reconstructing Memory/PageTable from scratch.  The two
        /// paths are byte-identical in every timing-free export
        /// (tests/snapshot_test.cc proves it per golden spec); this
        /// knob exists for that comparison and for bisecting any
        /// future divergence, not for production use.
        bool forkScenarios = true;

        /// Let attack runners restore cached post-prologue machine
        /// state (warm-attack snapshots, attacks/snapshot.hh)
        /// instead of re-running predictor training per cell.  Warm
        /// and cold cells are cycle-identical (tests/snapshot_test.cc
        /// proves it per golden spec); like forkScenarios, the off
        /// position exists for that comparison and for bisection.
        bool warmAttacks = true;

        /// How each unique cell gets its verdict (src/verdict/):
        /// simulate (default), judge analytically, do both and flag
        /// disagreement, or triage — judge everything, simulate only
        /// the frontier the model cannot replicate or decide.
        /// Simulator, Differential and Triage produce byte-identical
        /// timing-free exports; Model synthesizes results from
        /// verdicts alone (leak bit = predicted verdict, accuracy
        /// and counters zero) and is only comparable through the
        /// verdict columns.
        verdict::VerdictBackend backend =
            verdict::VerdictBackend::Simulator;
    };

    CampaignEngine() = default;
    explicit CampaignEngine(Options options) : options_(options) {}

    /** Resolved worker count (>= 1). */
    unsigned workers() const;

    /**
     * Execute shard @p shard of @p spec, streaming outcomes into
     * @p sinks.  Each sink sees begin() once, then consume() once
     * per grid point the shard covers — from any worker thread, in
     * completion order — then end() once after the pool drains.
     */
    void run(const ScenarioSpec &spec,
             const std::vector<OutcomeSink *> &sinks,
             ShardRange shard = {}) const;

    /** Expand, deduplicate and execute @p spec into a report. */
    CampaignReport run(const ScenarioSpec &spec) const;

    /** Shard-of-a-report convenience over the sink API. */
    CampaignReport run(const ScenarioSpec &spec,
                       ShardRange shard) const;

  private:
    Options options_;
};

} // namespace specsec::campaign

#endif // SPECSEC_CAMPAIGN_CAMPAIGN_HH
