/**
 * @file
 * OutcomeSink: the streaming consumer side of the campaign engine.
 *
 * CampaignEngine::run pushes every ScenarioOutcome into the caller's
 * sinks as its backing unique execution completes, instead of
 * collecting a whole CampaignReport in memory first.  That is what
 * lets very large grids export incrementally (src/tool/
 * stream_export.hh), report live progress, and fan out across
 * processes as shards whose reports merge afterwards.
 *
 * Contract, per engine run:
 *   - begin(header) once, from the driving thread, before any work;
 *     the header names the spec, the full-grid shape, and exactly
 *     which gridIndices this (shard of a) run will emit.
 *   - consume(outcome) once per grid point the run covers — from
 *     any worker thread, in completion order.  Implementations must
 *     be thread-safe; outcomes carry their gridIndex, so sinks that
 *     need grid order either reorder on the fly (stream_export) or
 *     place by index and flush ordered at end (ReportSink).
 *   - end(footer) once, from the driving thread, after the worker
 *     pool drains, with the run's provenance counters.
 */

#ifndef SPECSEC_CAMPAIGN_SINK_HH
#define SPECSEC_CAMPAIGN_SINK_HH

#include <cstdio>
#include <mutex>
#include <optional>

#include "campaign.hh"

namespace specsec::campaign
{

/** Everything known about a run before the first cell executes. */
struct CampaignHeader
{
    std::string name;
    std::vector<std::string> rowLabels;
    std::vector<std::string> colLabels;

    /// Full-grid counts (identical across every shard of one spec).
    std::size_t expandedCount = 0;
    std::size_t uniqueCount = 0;

    /// The expanded gridIndices this run will emit, ascending (grid
    /// order).  Covers the whole grid when shardCount == 1.
    std::vector<std::size_t> gridIndices;

    /// This run's share of the deduplicated work.
    std::size_t shardUniqueCount = 0;

    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    unsigned workers = 1;
};

/** Run provenance, known only after the worker pool drains. */
struct CampaignFooter
{
    std::size_t executedCount = 0;
    std::size_t cacheHits = 0;
    double wallMillis = 0.0;
    double scenariosPerSecond = 0.0;

    /// Verdict-backend counters (see CampaignReport for semantics);
    /// all zero under the plain simulator backend.
    std::size_t modelDecided = 0;
    std::size_t modelUndecided = 0;
    std::size_t disagreements = 0;
    std::size_t replicatedCells = 0;
};

/** Receives a run's outcomes as workers complete them. */
class OutcomeSink
{
  public:
    virtual ~OutcomeSink() = default;

    virtual void begin(const CampaignHeader &header);
    virtual void consume(const ScenarioOutcome &outcome) = 0;
    virtual void end(const CampaignFooter &footer);
};

/**
 * The sink the classic collect-then-return API is built on:
 * accumulates a CampaignReport.  Outcomes are placed by gridIndex as
 * they arrive (any order, any thread) and flushed into grid order at
 * end(), so the finished report is byte-identical to what the
 * pre-streaming engine produced — including for shard runs, where
 * the report covers only the shard's grid points.
 */
class ReportSink : public OutcomeSink
{
  public:
    void begin(const CampaignHeader &header) override;
    void consume(const ScenarioOutcome &outcome) override;
    void end(const CampaignFooter &footer) override;

    /** Valid after end(). */
    const CampaignReport &report() const { return report_; }
    CampaignReport takeReport() { return std::move(report_); }

  private:
    std::mutex mutex_;
    CampaignReport report_;
    /// Slot per emitted grid point, indexed by position in the
    /// header's gridIndices list.
    std::vector<std::optional<ScenarioOutcome>> slots_;
    std::unordered_map<std::size_t, std::size_t> slotOf_;
};

/**
 * Live progress to a stream (default stderr): a counter line
 * rewritten in place every @p every completions and at the end.
 * Purely observational — attaches to any run without touching the
 * deterministic outputs.
 */
class ProgressSink : public OutcomeSink
{
  public:
    explicit ProgressSink(std::FILE *out = stderr,
                          std::size_t every = 16)
        : out_(out), every_(every == 0 ? 1 : every)
    {
    }

    void begin(const CampaignHeader &header) override;
    void consume(const ScenarioOutcome &outcome) override;
    void end(const CampaignFooter &footer) override;

    std::size_t completed() const;

  private:
    void render(std::size_t done);

    mutable std::mutex mutex_;
    std::FILE *out_;
    std::size_t every_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::string name_;
};

} // namespace specsec::campaign

#endif // SPECSEC_CAMPAIGN_SINK_HH
