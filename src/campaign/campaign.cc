#include "campaign.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "attacks/runner.hh"

namespace specsec::campaign
{

namespace
{

std::vector<core::AttackVariant>
resolveVariants(const ScenarioSpec &spec)
{
    if (!spec.variants.empty())
        return spec.variants;
    return core::allVariants();
}

std::vector<DefenseAxis>
resolveDefenses(const ScenarioSpec &spec)
{
    if (!spec.defenses.empty())
        return spec.defenses;
    return {DefenseAxis{"baseline", nullptr}};
}

template <typename T>
std::vector<T>
resolveKnob(const std::vector<T> &sweep, T baseline)
{
    if (!sweep.empty())
        return sweep;
    return {baseline};
}

void
appendField(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu;",
                  static_cast<unsigned long long>(value));
    out += buf;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::vector<SoftwareMitigation>
resolveMitigations(const ScenarioSpec &spec)
{
    if (!spec.mitigations.empty())
        return spec.mitigations;
    return {SoftwareMitigation{}};
}

std::vector<VulnAblation>
resolveVulns(const ScenarioSpec &spec)
{
    if (!spec.vulnAblations.empty())
        return spec.vulnAblations;
    return {VulnAblation{"baseline", spec.baseConfig.vuln}};
}

std::vector<CacheGeometry>
resolveCaches(const ScenarioSpec &spec)
{
    if (!spec.cacheGeometries.empty())
        return spec.cacheGeometries;
    return {CacheGeometry{"baseline", spec.baseConfig.cache}};
}

} // namespace

void
SoftwareMitigation::applyTo(AttackOptions &options) const
{
    options.kpti |= kpti;
    options.rsbStuffing |= rsbStuffing;
    options.softwareLfence |= softwareLfence;
    options.addressMasking |= addressMasking;
    options.flushL1OnExit |= flushL1OnExit;
}

std::size_t
ScenarioSpec::gridSize() const
{
    // Same resolution rules as expandGrid, so the two always agree.
    return resolveVariants(*this).size() *
           resolveDefenses(*this).size() *
           resolveMitigations(*this).size() *
           resolveVulns(*this).size() * resolveCaches(*this).size() *
           resolveKnob(robSizes, baseConfig.robSize).size() *
           resolveKnob(permCheckLatencies,
                       baseConfig.permCheckLatency)
               .size() *
           resolveKnob(channels, baseOptions.channel).size();
}

ScenarioSpec
ScenarioSpec::defenseMatrix()
{
    ScenarioSpec spec;
    spec.name = "defense-matrix";
    for (core::AttackVariant v : core::allVariants()) {
        if (v == core::AttackVariant::Spoiler)
            continue; // timing attack; no leak/blocked verdict
        spec.variants.push_back(v);
    }
    const auto hw = [](void (*set)(uarch::HwDefenseConfig &)) {
        return [set](CpuConfig &c, AttackOptions &) {
            set(c.defense);
        };
    };
    spec.defenses = {
        {"baseline", nullptr},
        {"fence(1)", hw([](uarch::HwDefenseConfig &d) {
             d.fenceSpeculativeLoads = true;
         })},
        {"nda(2)", hw([](uarch::HwDefenseConfig &d) {
             d.blockSpeculativeForwarding = true;
         })},
        {"stt(3)", hw([](uarch::HwDefenseConfig &d) {
             d.blockTaintedTransmit = true;
         })},
        {"invisi(3)", hw([](uarch::HwDefenseConfig &d) {
             d.invisibleSpeculation = true;
         })},
        {"cleanup(3)", hw([](uarch::HwDefenseConfig &d) {
             d.cleanupSpec = true;
         })},
        {"cond(3)", hw([](uarch::HwDefenseConfig &d) {
             d.conditionalSpeculation = true;
         })},
        {"flush(4)", hw([](uarch::HwDefenseConfig &d) {
             d.flushPredictorOnContextSwitch = true;
         })},
    };
    return spec;
}

std::string
scenarioKey(core::AttackVariant variant, const CpuConfig &c,
            const AttackOptions &o)
{
    // Tripwire: scenarioKey must cover every field that determines a
    // run's outcome, or dedup silently folds distinct scenarios.
    // When either struct grows, extend the serialization below, then
    // update the expected size.
#if defined(__x86_64__) && defined(__linux__)
    static_assert(sizeof(CpuConfig) == 120,
                  "CpuConfig changed: extend scenarioKey()");
    static_assert(sizeof(AttackOptions) == 32,
                  "AttackOptions changed: extend scenarioKey()");
#endif
    std::string key;
    key.reserve(160);
    appendField(key, static_cast<std::uint64_t>(variant));
    // CpuConfig scalars.
    appendField(key, c.robSize);
    appendField(key, c.fetchWidth);
    appendField(key, c.commitWidth);
    appendField(key, c.permCheckLatency);
    appendField(key, c.branchResolveLatency);
    appendField(key, c.retResolveLatency);
    appendField(key, c.exceptionDeliveryLatency);
    appendField(key, c.txnAbortDetectLatency);
    appendField(key, c.partialAliasPenalty);
    appendField(key, c.physAliasPenalty);
    appendField(key, c.rsbDepth);
    appendField(key, c.lfbEntries);
    // CacheConfig.
    appendField(key, c.cache.sets);
    appendField(key, c.cache.ways);
    appendField(key, c.cache.lineSize);
    appendField(key, c.cache.hitLatency);
    appendField(key, c.cache.missLatency);
    // VulnConfig.
    appendField(key, c.vuln.meltdown);
    appendField(key, c.vuln.l1tf);
    appendField(key, c.vuln.mds);
    appendField(key, c.vuln.lazyFp);
    appendField(key, c.vuln.storeBypass);
    appendField(key, c.vuln.msr);
    appendField(key, c.vuln.taa);
    // HwDefenseConfig.
    appendField(key, c.defense.fenceSpeculativeLoads);
    appendField(key, c.defense.blockSpeculativeForwarding);
    appendField(key, c.defense.blockTaintedTransmit);
    appendField(key, c.defense.invisibleSpeculation);
    appendField(key, c.defense.cleanupSpec);
    appendField(key, c.defense.conditionalSpeculation);
    appendField(key, c.defense.partitionedCache);
    appendField(key, c.defense.flushPredictorOnContextSwitch);
    appendField(key, c.defense.noIndirectPrediction);
    appendField(key, c.defense.noBranchPrediction);
    appendField(key, c.defense.clearBuffersOnContextSwitch);
    appendField(key, c.defense.eagerFpuSwitch);
    appendField(key, c.defense.safeStoreBypass);
    // AttackOptions.
    appendField(key, static_cast<std::uint64_t>(o.channel));
    appendField(key, o.secretLen);
    appendField(key, o.flushL1OnExit);
    appendField(key, o.kpti);
    appendField(key, o.rsbStuffing);
    appendField(key, o.softwareLfence);
    appendField(key, o.addressMasking);
    appendField(key, o.trainingRounds);
    appendField(key, o.delayAuthorization);
    return key;
}

std::vector<Scenario>
expandGrid(const ScenarioSpec &spec)
{
    const auto variants = resolveVariants(spec);
    const auto defenses = resolveDefenses(spec);
    const auto mitigations = resolveMitigations(spec);
    const auto vulns = resolveVulns(spec);
    const auto caches = resolveCaches(spec);
    const auto robs =
        resolveKnob(spec.robSizes, spec.baseConfig.robSize);
    const auto lats = resolveKnob(spec.permCheckLatencies,
                                  spec.baseConfig.permCheckLatency);
    const auto chans =
        resolveKnob(spec.channels, spec.baseOptions.channel);

    std::vector<Scenario> grid;
    grid.reserve(variants.size() * defenses.size() *
                 mitigations.size() * vulns.size() * caches.size() *
                 robs.size() * lats.size() * chans.size());
    for (std::size_t vi = 0; vi < variants.size(); ++vi)
    for (std::size_t di = 0; di < defenses.size(); ++di)
    for (const SoftwareMitigation &mit : mitigations)
    for (const VulnAblation &vuln : vulns)
    for (const CacheGeometry &geom : caches)
    for (std::size_t rob : robs)
    for (unsigned lat : lats)
    for (core::CovertChannelKind chan : chans) {
        Scenario s;
        s.variant = variants[vi];
        s.config = spec.baseConfig;
        s.options = spec.baseOptions;
        s.config.vuln = vuln.vuln;
        s.config.cache = geom.cache;
        s.config.robSize = rob;
        s.config.permCheckLatency = lat;
        s.options.channel = chan;
        mit.applyTo(s.options);
        // The defense column mutation runs last so it wins over
        // every knob dimension (e.g. a column may pin a geometry).
        if (defenses[di].apply)
            defenses[di].apply(s.config, s.options);
        s.row = vi;
        s.col = di;
        s.gridIndex = grid.size();
        s.rowLabel = core::variantInfo(s.variant).name;
        s.colLabel = defenses[di].label;
        s.key = scenarioKey(s.variant, s.config, s.options);
        grid.push_back(std::move(s));
    }
    return grid;
}

ExpandedGrid
dedupGrid(const ScenarioSpec &spec)
{
    ExpandedGrid g;
    g.expanded = expandGrid(spec);
    g.dupOf.resize(g.expanded.size());
    std::unordered_map<std::string, std::size_t> seen;
    seen.reserve(g.expanded.size());
    for (std::size_t i = 0; i < g.expanded.size(); ++i) {
        const auto [it, inserted] =
            seen.emplace(g.expanded[i].key, g.uniqueIndices.size());
        if (inserted)
            g.uniqueIndices.push_back(i);
        g.dupOf[i] = it->second;
    }
    return g;
}

std::optional<ResultCache::Entry>
ResultCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
ResultCache::store(const std::string &key, const Entry &entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, entry);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

char
CampaignReport::cellGlyph(std::size_t row, std::size_t col) const
{
    const unsigned runs = cellRuns.at(row).at(col);
    if (runs == 0)
        return ' ';
    const unsigned leaks = cellLeaks.at(row).at(col);
    if (leaks == runs)
        return 'L';
    if (leaks == 0)
        return '.';
    return 'p';
}

std::string
CampaignReport::successMatrixText() const
{
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%-26s", "variant");
    out += buf;
    for (const std::string &col : colLabels) {
        std::snprintf(buf, sizeof buf, " %10.10s", col.c_str());
        out += buf;
    }
    out += '\n';
    for (std::size_t r = 0; r < rowLabels.size(); ++r) {
        std::snprintf(buf, sizeof buf, "%-26.26s",
                      rowLabels[r].c_str());
        out += buf;
        for (std::size_t c = 0; c < colLabels.size(); ++c) {
            std::snprintf(buf, sizeof buf, " %10c", cellGlyph(r, c));
            out += buf;
        }
        out += '\n';
    }
    return out;
}

unsigned
CampaignEngine::workers() const
{
    if (options_.workers > 0)
        return options_.workers;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

CampaignReport
CampaignEngine::run(const ScenarioSpec &spec) const
{
    const ExpandedGrid grid = dedupGrid(spec);
    const auto variants = resolveVariants(spec);
    const auto defenses = resolveDefenses(spec);
    const unsigned nworkers = workers();

    struct UniqueOutcome
    {
        AttackResult result;
        CpuStats stats;
        double wallMillis = 0.0;
    };
    std::vector<UniqueOutcome> unique(grid.uniqueIndices.size());

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> cacheHits{0};
    ResultCache *const cache = options_.cache;
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= grid.uniqueIndices.size())
                return;
            const Scenario &s =
                grid.expanded[grid.uniqueIndices[i]];
            if (cache) {
                if (const auto hit = cache->lookup(s.key)) {
                    unique[i].result = hit->result;
                    unique[i].stats = hit->stats;
                    cacheHits.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
            }
            const auto s0 = std::chrono::steady_clock::now();
            unique[i].result = attacks::runVariant(
                s.variant, s.config, s.options, unique[i].stats);
            unique[i].wallMillis = millisSince(s0);
            if (cache)
                cache->store(s.key, {unique[i].result,
                                     unique[i].stats});
        }
    };
    if (nworkers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nworkers);
        for (unsigned w = 0; w < nworkers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    const double wall = millisSince(t0);

    CampaignReport report;
    report.name = spec.name;
    for (core::AttackVariant v : variants)
        report.rowLabels.push_back(core::variantInfo(v).name);
    for (const DefenseAxis &d : defenses)
        report.colLabels.push_back(d.label);
    report.cellRuns.assign(
        variants.size(),
        std::vector<unsigned>(defenses.size(), 0));
    report.cellLeaks.assign(
        variants.size(),
        std::vector<unsigned>(defenses.size(), 0));
    report.outcomes.reserve(grid.expanded.size());
    for (std::size_t i = 0; i < grid.expanded.size(); ++i) {
        const Scenario &s = grid.expanded[i];
        const UniqueOutcome &u = unique[grid.dupOf[i]];
        ScenarioOutcome o;
        o.variant = s.variant;
        o.row = s.row;
        o.col = s.col;
        o.gridIndex = s.gridIndex;
        o.rowLabel = s.rowLabel;
        o.colLabel = s.colLabel;
        o.config = s.config;
        o.options = s.options;
        o.result = u.result;
        o.stats = u.stats;
        o.wallMillis = u.wallMillis;
        report.cellRuns[s.row][s.col] += 1;
        if (u.result.leaked)
            report.cellLeaks[s.row][s.col] += 1;
        report.outcomes.push_back(std::move(o));
    }
    report.expandedCount = grid.expanded.size();
    report.uniqueCount = grid.uniqueIndices.size();
    report.cacheHits = cacheHits.load(std::memory_order_relaxed);
    report.executedCount = report.uniqueCount - report.cacheHits;
    report.workers = nworkers;
    report.wallMillis = wall;
    report.scenariosPerSecond =
        wall > 0.0
            ? 1000.0 * static_cast<double>(report.executedCount) /
                  wall
            : 0.0;
    return report;
}

} // namespace specsec::campaign
