#include "campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "attacks/runner.hh"
#include "attacks/snapshot.hh"
#include "core/catalog.hh"
#include "sink.hh"
#include "verdict/model.hh"
#include "verdict/static_verdict.hh"

namespace specsec::campaign
{

namespace
{

/**
 * The grid's rows as catalog descriptors: the enum-addressed
 * `variants` first, then the name-addressed `attackNames` (the
 * extension seam), defaulting to every enum-backed attack.  Throws
 * std::invalid_argument — with did-you-mean suggestions — on names
 * the catalog does not know, so a typo fails the campaign up front
 * instead of producing a half-empty grid.
 */
std::vector<const core::AttackDescriptor *>
resolveAttacks(const ScenarioSpec &spec)
{
    const core::ScenarioCatalog &catalog =
        core::ScenarioCatalog::instance();
    std::vector<const core::AttackDescriptor *> rows;
    for (const core::AttackVariant v : spec.variants) {
        const core::AttackDescriptor *d = catalog.findAttack(v);
        if (d == nullptr) {
            throw std::invalid_argument(
                "campaign: spec names an unregistered attack "
                "variant slot");
        }
        rows.push_back(d);
    }
    for (const std::string &name : spec.attackNames) {
        const core::AttackDescriptor *d = catalog.findAttack(name);
        if (d == nullptr) {
            throw std::invalid_argument(core::unknownNameMessage(
                "attack", name, catalog.attackSuggestions(name)));
        }
        rows.push_back(d);
    }
    if (rows.empty()) {
        for (const core::AttackDescriptor *d : catalog.attacks()) {
            if (d->variant)
                rows.push_back(d);
        }
    }
    return rows;
}

std::vector<DefenseAxis>
resolveDefenses(const ScenarioSpec &spec)
{
    if (!spec.defenses.empty())
        return spec.defenses;
    return {DefenseAxis{"baseline", nullptr}};
}

template <typename T>
std::vector<T>
resolveKnob(const std::vector<T> &sweep, T baseline)
{
    if (!sweep.empty())
        return sweep;
    return {baseline};
}

void
appendField(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu;",
                  static_cast<unsigned long long>(value));
    out += buf;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::vector<SoftwareMitigation>
resolveMitigations(const ScenarioSpec &spec)
{
    if (!spec.mitigations.empty())
        return spec.mitigations;
    return {SoftwareMitigation{}};
}

std::vector<VulnAblation>
resolveVulns(const ScenarioSpec &spec)
{
    if (!spec.vulnAblations.empty())
        return spec.vulnAblations;
    return {VulnAblation{"baseline", spec.baseConfig.vuln}};
}

std::vector<CacheGeometry>
resolveCaches(const ScenarioSpec &spec)
{
    if (!spec.cacheGeometries.empty())
        return spec.cacheGeometries;
    return {CacheGeometry{"baseline", spec.baseConfig.cache}};
}

} // namespace

SoftwareMitigation
SoftwareMitigation::fromCatalog(
    const core::MitigationDescriptor &descriptor)
{
    SoftwareMitigation m;
    m.label = descriptor.name;
    m.toggles = descriptor.toggles;
    return m;
}

std::optional<SoftwareMitigation>
SoftwareMitigation::byName(const std::string &name)
{
    const core::MitigationDescriptor *descriptor =
        core::ScenarioCatalog::instance().findMitigation(name);
    if (descriptor == nullptr)
        return std::nullopt;
    return fromCatalog(*descriptor);
}

std::size_t
ScenarioSpec::gridSize() const
{
    // Same resolution rules as expandGrid, so the two always agree.
    return resolveAttacks(*this).size() *
           resolveDefenses(*this).size() *
           resolveMitigations(*this).size() *
           resolveVulns(*this).size() * resolveCaches(*this).size() *
           resolveKnob(robSizes, baseConfig.robSize).size() *
           resolveKnob(permCheckLatencies,
                       baseConfig.permCheckLatency)
               .size() *
           resolveKnob(channels, baseOptions.channel).size();
}

ScenarioSpec
ScenarioSpec::defenseMatrix()
{
    ScenarioSpec spec;
    spec.name = "defense-matrix";
    for (core::AttackVariant v : core::allVariants()) {
        if (v == core::AttackVariant::Spoiler)
            continue; // timing attack; no leak/blocked verdict
        spec.variants.push_back(v);
    }
    const auto hw = [](void (*set)(uarch::HwDefenseConfig &)) {
        return [set](CpuConfig &c, AttackOptions &) {
            set(c.defense);
        };
    };
    spec.defenses = {
        {"baseline", nullptr},
        {"fence(1)", hw([](uarch::HwDefenseConfig &d) {
             d.fenceSpeculativeLoads = true;
         })},
        {"nda(2)", hw([](uarch::HwDefenseConfig &d) {
             d.blockSpeculativeForwarding = true;
         })},
        {"stt(3)", hw([](uarch::HwDefenseConfig &d) {
             d.blockTaintedTransmit = true;
         })},
        {"invisi(3)", hw([](uarch::HwDefenseConfig &d) {
             d.invisibleSpeculation = true;
         })},
        {"cleanup(3)", hw([](uarch::HwDefenseConfig &d) {
             d.cleanupSpec = true;
         })},
        {"cond(3)", hw([](uarch::HwDefenseConfig &d) {
             d.conditionalSpeculation = true;
         })},
        {"flush(4)", hw([](uarch::HwDefenseConfig &d) {
             d.flushPredictorOnContextSwitch = true;
         })},
    };
    return spec;
}

std::string
scenarioKey(core::AttackVariant variant, const CpuConfig &c,
            const AttackOptions &o)
{
    // Tripwire: scenarioKey must cover every field that determines a
    // run's outcome, or dedup silently folds distinct scenarios.
    // When either struct grows, extend the serialization below, then
    // update the expected size.
#if defined(__x86_64__) && defined(__linux__)
    static_assert(sizeof(CpuConfig) == 120,
                  "CpuConfig changed: extend scenarioKey()");
    static_assert(sizeof(AttackOptions) == 32,
                  "AttackOptions changed: extend scenarioKey()");
#endif
    std::string key;
    key.reserve(160);
    appendField(key, static_cast<std::uint64_t>(variant));
    // CpuConfig scalars.
    appendField(key, c.robSize);
    appendField(key, c.fetchWidth);
    appendField(key, c.commitWidth);
    appendField(key, c.permCheckLatency);
    appendField(key, c.branchResolveLatency);
    appendField(key, c.retResolveLatency);
    appendField(key, c.exceptionDeliveryLatency);
    appendField(key, c.txnAbortDetectLatency);
    appendField(key, c.partialAliasPenalty);
    appendField(key, c.physAliasPenalty);
    appendField(key, c.rsbDepth);
    appendField(key, c.lfbEntries);
    // CacheConfig.
    appendField(key, c.cache.sets);
    appendField(key, c.cache.ways);
    appendField(key, c.cache.lineSize);
    appendField(key, c.cache.hitLatency);
    appendField(key, c.cache.missLatency);
    // VulnConfig.
    appendField(key, c.vuln.meltdown);
    appendField(key, c.vuln.l1tf);
    appendField(key, c.vuln.mds);
    appendField(key, c.vuln.lazyFp);
    appendField(key, c.vuln.storeBypass);
    appendField(key, c.vuln.msr);
    appendField(key, c.vuln.taa);
    // HwDefenseConfig.
    appendField(key, c.defense.fenceSpeculativeLoads);
    appendField(key, c.defense.blockSpeculativeForwarding);
    appendField(key, c.defense.blockTaintedTransmit);
    appendField(key, c.defense.invisibleSpeculation);
    appendField(key, c.defense.cleanupSpec);
    appendField(key, c.defense.conditionalSpeculation);
    appendField(key, c.defense.partitionedCache);
    appendField(key, c.defense.flushPredictorOnContextSwitch);
    appendField(key, c.defense.noIndirectPrediction);
    appendField(key, c.defense.noBranchPrediction);
    appendField(key, c.defense.clearBuffersOnContextSwitch);
    appendField(key, c.defense.eagerFpuSwitch);
    appendField(key, c.defense.safeStoreBypass);
    // AttackOptions.
    appendField(key, static_cast<std::uint64_t>(o.channel));
    appendField(key, o.secretLen);
    appendField(key, o.flushL1OnExit);
    appendField(key, o.kpti);
    appendField(key, o.rsbStuffing);
    appendField(key, o.softwareLfence);
    appendField(key, o.addressMasking);
    appendField(key, o.trainingRounds);
    appendField(key, o.delayAuthorization);
    return key;
}

namespace
{

/**
 * Field-by-field consumer for parseScenarioKey: pops the next
 * ';'-terminated decimal field of the key.
 */
class KeyReader
{
  public:
    explicit KeyReader(const std::string &key) : key_(key) {}

    std::uint64_t next()
    {
        if (failed_ || pos_ >= key_.size()) {
            failed_ = true;
            return 0;
        }
        const std::size_t semi = key_.find(';', pos_);
        if (semi == std::string::npos || semi == pos_) {
            failed_ = true;
            return 0;
        }
        std::uint64_t value = 0;
        for (std::size_t i = pos_; i < semi; ++i) {
            const char c = key_[i];
            if (c < '0' || c > '9') {
                failed_ = true;
                return 0;
            }
            value = value * 10 +
                    static_cast<std::uint64_t>(c - '0');
        }
        pos_ = semi + 1;
        return value;
    }

    bool done() const { return !failed_ && pos_ == key_.size(); }
    bool failed() const { return failed_; }

  private:
    const std::string &key_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

bool
parseScenarioKey(const std::string &key,
                 core::AttackVariant &variant, CpuConfig &c,
                 AttackOptions &o)
{
    // Mirror of scenarioKey(): consume the fields in the exact
    // order that function appends them.  The static_asserts there
    // cover this function too — both must be extended together.
    KeyReader in(key);
    const std::uint64_t v = in.next();
    // CpuConfig scalars.
    c.robSize = static_cast<std::size_t>(in.next());
    c.fetchWidth = static_cast<unsigned>(in.next());
    c.commitWidth = static_cast<unsigned>(in.next());
    c.permCheckLatency = static_cast<unsigned>(in.next());
    c.branchResolveLatency = static_cast<unsigned>(in.next());
    c.retResolveLatency = static_cast<unsigned>(in.next());
    c.exceptionDeliveryLatency = static_cast<unsigned>(in.next());
    c.txnAbortDetectLatency = static_cast<unsigned>(in.next());
    c.partialAliasPenalty = static_cast<unsigned>(in.next());
    c.physAliasPenalty = static_cast<unsigned>(in.next());
    c.rsbDepth = static_cast<std::size_t>(in.next());
    c.lfbEntries = static_cast<std::size_t>(in.next());
    // CacheConfig.
    c.cache.sets = static_cast<std::size_t>(in.next());
    c.cache.ways = static_cast<std::size_t>(in.next());
    c.cache.lineSize = static_cast<std::size_t>(in.next());
    c.cache.hitLatency = static_cast<std::uint32_t>(in.next());
    c.cache.missLatency = static_cast<std::uint32_t>(in.next());
    // VulnConfig.
    c.vuln.meltdown = in.next() != 0;
    c.vuln.l1tf = in.next() != 0;
    c.vuln.mds = in.next() != 0;
    c.vuln.lazyFp = in.next() != 0;
    c.vuln.storeBypass = in.next() != 0;
    c.vuln.msr = in.next() != 0;
    c.vuln.taa = in.next() != 0;
    // HwDefenseConfig.
    c.defense.fenceSpeculativeLoads = in.next() != 0;
    c.defense.blockSpeculativeForwarding = in.next() != 0;
    c.defense.blockTaintedTransmit = in.next() != 0;
    c.defense.invisibleSpeculation = in.next() != 0;
    c.defense.cleanupSpec = in.next() != 0;
    c.defense.conditionalSpeculation = in.next() != 0;
    c.defense.partitionedCache = in.next() != 0;
    c.defense.flushPredictorOnContextSwitch = in.next() != 0;
    c.defense.noIndirectPrediction = in.next() != 0;
    c.defense.noBranchPrediction = in.next() != 0;
    c.defense.clearBuffersOnContextSwitch = in.next() != 0;
    c.defense.eagerFpuSwitch = in.next() != 0;
    c.defense.safeStoreBypass = in.next() != 0;
    // AttackOptions.
    o.channel = static_cast<core::CovertChannelKind>(in.next());
    o.secretLen = static_cast<std::size_t>(in.next());
    o.flushL1OnExit = in.next() != 0;
    o.kpti = in.next() != 0;
    o.rsbStuffing = in.next() != 0;
    o.softwareLfence = in.next() != 0;
    o.addressMasking = in.next() != 0;
    o.trainingRounds = static_cast<unsigned>(in.next());
    o.delayAuthorization = in.next() != 0;
    if (!in.done())
        return false;
    variant = static_cast<core::AttackVariant>(v);
    return true;
}

std::vector<Scenario>
expandGrid(const ScenarioSpec &spec)
{
    const auto attacks = resolveAttacks(spec);
    const auto defenses = resolveDefenses(spec);
    const auto mitigations = resolveMitigations(spec);
    const auto vulns = resolveVulns(spec);
    const auto caches = resolveCaches(spec);
    const auto robs =
        resolveKnob(spec.robSizes, spec.baseConfig.robSize);
    const auto lats = resolveKnob(spec.permCheckLatencies,
                                  spec.baseConfig.permCheckLatency);
    const auto chans =
        resolveKnob(spec.channels, spec.baseOptions.channel);

    std::vector<Scenario> grid;
    grid.reserve(attacks.size() * defenses.size() *
                 mitigations.size() * vulns.size() * caches.size() *
                 robs.size() * lats.size() * chans.size());
    for (std::size_t vi = 0; vi < attacks.size(); ++vi)
    for (std::size_t di = 0; di < defenses.size(); ++di)
    for (const SoftwareMitigation &mit : mitigations)
    for (const VulnAblation &vuln : vulns)
    for (const CacheGeometry &geom : caches)
    for (std::size_t rob : robs)
    for (unsigned lat : lats)
    for (core::CovertChannelKind chan : chans) {
        Scenario s;
        s.variant = attacks[vi]->id;
        s.config = spec.baseConfig;
        s.options = spec.baseOptions;
        s.config.vuln = vuln.vuln;
        s.config.cache = geom.cache;
        s.config.robSize = rob;
        s.config.permCheckLatency = lat;
        s.options.channel = chan;
        mit.applyTo(s.options);
        // The defense column mutation runs last so it wins over
        // every knob dimension (e.g. a column may pin a geometry).
        if (defenses[di].apply)
            defenses[di].apply(s.config, s.options);
        s.row = vi;
        s.col = di;
        s.gridIndex = grid.size();
        s.rowLabel = attacks[vi]->name;
        s.colLabel = defenses[di].label;
        s.key = scenarioKey(s.variant, s.config, s.options);
        grid.push_back(std::move(s));
    }
    return grid;
}

bool
parseShardRange(const std::string &text, ShardRange &shard)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    const auto parseField = [&text](std::size_t begin,
                                    std::size_t end,
                                    std::size_t &out) {
        std::size_t value = 0;
        if (begin == end)
            return false;
        for (std::size_t i = begin; i < end; ++i) {
            const char c = text[i];
            if (c < '0' || c > '9')
                return false;
            value = value * 10 + static_cast<std::size_t>(c - '0');
        }
        out = value;
        return true;
    };
    return parseField(0, slash, shard.index) &&
           parseField(slash + 1, text.size(), shard.count) &&
           shard.count > 0 && shard.index < shard.count;
}

ShardSelection
ExpandedGrid::shard(std::size_t index, std::size_t count) const
{
    if (count == 0)
        count = 1;
    ShardSelection sel;
    if (index >= count)
        return sel;
    // Round-robin over the deduplicated executions: unique position
    // j belongs to shard j % count.  Duplicates follow dupOf, so a
    // cell and the execution backing it always share a shard.
    for (std::size_t j = index; j < uniqueIndices.size();
         j += count)
        sel.uniquePositions.push_back(j);
    for (std::size_t i = 0; i < expanded.size(); ++i)
        if (dupOf[i] % count == index)
            sel.expandedIndices.push_back(i);
    return sel;
}

ExpandedGrid
dedupGrid(const ScenarioSpec &spec)
{
    ExpandedGrid g;
    g.expanded = expandGrid(spec);
    g.dupOf.resize(g.expanded.size());
    std::unordered_map<std::string, std::size_t> seen;
    seen.reserve(g.expanded.size());
    for (std::size_t i = 0; i < g.expanded.size(); ++i) {
        const auto [it, inserted] =
            seen.emplace(g.expanded[i].key, g.uniqueIndices.size());
        if (inserted)
            g.uniqueIndices.push_back(i);
        g.dupOf[i] = it->second;
    }
    return g;
}

std::optional<ResultCache::Entry>
ResultCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
ResultCache::store(const std::string &key, const Entry &entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, entry);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

std::vector<std::pair<std::string, ResultCache::Entry>>
ResultCache::snapshot() const
{
    std::vector<std::pair<std::string, Entry>> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.assign(entries_.begin(), entries_.end());
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

char
CampaignReport::cellGlyph(std::size_t row, std::size_t col) const
{
    const unsigned runs = cellRuns.at(row).at(col);
    if (runs == 0)
        return ' ';
    const unsigned leaks = cellLeaks.at(row).at(col);
    if (leaks == runs)
        return 'L';
    if (leaks == 0)
        return '.';
    return 'p';
}

std::string
CampaignReport::successMatrixText() const
{
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%-26s", "variant");
    out += buf;
    for (const std::string &col : colLabels) {
        std::snprintf(buf, sizeof buf, " %10.10s", col.c_str());
        out += buf;
    }
    out += '\n';
    for (std::size_t r = 0; r < rowLabels.size(); ++r) {
        std::snprintf(buf, sizeof buf, "%-26.26s",
                      rowLabels[r].c_str());
        out += buf;
        for (std::size_t c = 0; c < colLabels.size(); ++c) {
            std::snprintf(buf, sizeof buf, " %10c", cellGlyph(r, c));
            out += buf;
        }
        out += '\n';
    }
    return out;
}

void
CampaignReport::recomputeCells()
{
    cellRuns.assign(rowLabels.size(),
                    std::vector<unsigned>(colLabels.size(), 0));
    cellLeaks.assign(rowLabels.size(),
                     std::vector<unsigned>(colLabels.size(), 0));
    for (const ScenarioOutcome &o : outcomes) {
        if (o.row >= rowLabels.size() || o.col >= colLabels.size())
            continue;
        cellRuns[o.row][o.col] += 1;
        if (o.result.leaked)
            cellLeaks[o.row][o.col] += 1;
    }
}

namespace
{

/**
 * Do two outcomes for the same gridIndex agree on everything except
 * wall time?  Heterogeneous-shard merges accept overlapping cells
 * exactly when this holds.  Configuration is compared through the
 * canonical key (one definition of "the same experiment"); result
 * and stats field-by-field.
 */
bool
sameTimingFreeOutcome(const ScenarioOutcome &a,
                      const ScenarioOutcome &b)
{
    return a.gridIndex == b.gridIndex && a.row == b.row &&
           a.col == b.col && a.rowLabel == b.rowLabel &&
           a.colLabel == b.colLabel &&
           scenarioKey(a.variant, a.config, a.options) ==
               scenarioKey(b.variant, b.config, b.options) &&
           a.result.name == b.result.name &&
           a.result.recovered == b.result.recovered &&
           a.result.expected == b.result.expected &&
           a.result.accuracy == b.result.accuracy &&
           a.result.leaked == b.result.leaked &&
           a.result.guestCycles == b.result.guestCycles &&
           a.result.transientForwards ==
               b.result.transientForwards &&
           a.stats.cycles == b.stats.cycles &&
           a.stats.committed == b.stats.committed &&
           a.stats.squashed == b.stats.squashed &&
           a.stats.branchMispredicts == b.stats.branchMispredicts &&
           a.stats.exceptions == b.stats.exceptions &&
           a.stats.memOrderViolations ==
               b.stats.memOrderViolations &&
           a.stats.speculativeFills == b.stats.speculativeFills &&
           a.stats.transientForwards == b.stats.transientForwards;
}

} // namespace

bool
CampaignReport::merge(const CampaignReport &other,
                      std::string *error)
{
    const auto fail = [error](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };
    if (name != other.name)
        return fail("spec name mismatch: '" + name + "' vs '" +
                    other.name + "'");
    if (rowLabels != other.rowLabels)
        return fail("row labels differ between shard reports");
    if (colLabels != other.colLabels)
        return fail("column labels differ between shard reports");
    if (expandedCount != other.expandedCount ||
        uniqueCount != other.uniqueCount) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "grid shape mismatch: %zu/%zu expanded, "
                      "%zu/%zu unique",
                      expandedCount, other.expandedCount,
                      uniqueCount, other.uniqueCount);
        return fail(buf);
    }
    std::unordered_map<std::size_t, const ScenarioOutcome *> present;
    present.reserve(outcomes.size());
    for (const ScenarioOutcome &o : outcomes)
        present.emplace(o.gridIndex, &o);
    // Overlap is legal exactly when the two reports agree on the
    // cell (heterogeneous shard counts re-execute cells, and every
    // timing-free field is a pure function of the configuration);
    // a disagreeing overlap is a genuine conflict.
    std::vector<const ScenarioOutcome *> fresh;
    fresh.reserve(other.outcomes.size());
    for (const ScenarioOutcome &o : other.outcomes) {
        if (o.gridIndex >= expandedCount) {
            char buf[64];
            std::snprintf(buf, sizeof buf,
                          "gridIndex %zu out of range (%zu)",
                          o.gridIndex, expandedCount);
            return fail(buf);
        }
        const auto it = present.find(o.gridIndex);
        if (it == present.end()) {
            fresh.push_back(&o);
            continue;
        }
        if (!sameTimingFreeOutcome(*it->second, o)) {
            char buf[96];
            std::snprintf(buf, sizeof buf,
                          "conflicting shards: gridIndex %zu has "
                          "different results in the two reports",
                          o.gridIndex);
            return fail(buf);
        }
    }

    for (const ScenarioOutcome *o : fresh)
        outcomes.push_back(*o);
    std::sort(outcomes.begin(), outcomes.end(),
              [](const ScenarioOutcome &a, const ScenarioOutcome &b) {
                  return a.gridIndex < b.gridIndex;
              });
    recomputeCells();
    executedCount += other.executedCount;
    cacheHits += other.cacheHits;
    modelDecided += other.modelDecided;
    modelUndecided += other.modelUndecided;
    disagreements += other.disagreements;
    replicatedCells += other.replicatedCells;
    workers = std::max(workers, other.workers);
    // Shard wall-clocks add (they model separate processes); the
    // merged throughput is re-derived from the totals.
    wallMillis += other.wallMillis;
    scenariosPerSecond =
        wallMillis > 0.0
            ? 1000.0 * static_cast<double>(executedCount) /
                  wallMillis
            : 0.0;
    if (!partial()) {
        // Complete again: indistinguishable from a 1-process run.
        shardIndex = 0;
        shardCount = 1;
    }
    return true;
}

std::string
backendCacheKey(verdict::VerdictBackend backend,
                const std::string &key)
{
    // Simulator, Differential, Static and Triage all memoize
    // *simulated* entries, mutually compatible under the bare key
    // (Static's analyzer verdict is an annotation beside the
    // simulation, never cached).  Model entries are predictions, not
    // measurements: tag them so neither side can ever satisfy the
    // other's lookup.
    if (backend == verdict::VerdictBackend::Model)
        return "model|" + key;
    return key;
}

bool
executeKeyBatch(
    const std::vector<std::string> &keys, unsigned workers,
    ResultCache *cache,
    const std::function<bool(std::size_t, const KeyBatchItem &)>
        &emit,
    std::string *error)
{
    // Validate the whole batch before executing any of it: a
    // malformed key is a protocol/caller bug, not a per-cell
    // failure, and half-executed batches are hard to reason about.
    struct Parsed
    {
        core::AttackVariant variant{};
        CpuConfig config;
        AttackOptions options;
    };
    std::vector<Parsed> parsed(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (!parseScenarioKey(keys[i], parsed[i].variant,
                              parsed[i].config,
                              parsed[i].options)) {
            if (error)
                *error = "malformed scenario key at index " +
                         std::to_string(i);
            return false;
        }
    }

    if (workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 0 ? hw : 1;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    const auto worker = [&]() {
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= keys.size())
                return;
            KeyBatchItem item;
            if (cache) {
                if (const auto hit = cache->lookup(keys[i])) {
                    item.result = hit->result;
                    item.stats = hit->stats;
                    item.cached = true;
                }
            }
            if (!item.cached) {
                const auto t0 = std::chrono::steady_clock::now();
                item.result = attacks::runVariant(
                    parsed[i].variant, parsed[i].config,
                    parsed[i].options, item.stats);
                item.wallMillis = millisSince(t0);
                if (cache)
                    cache->store(keys[i],
                                 {item.result, item.stats});
            }
            if (!emit(i, item))
                cancelled.store(true, std::memory_order_relaxed);
        }
    };
    if (workers <= 1 || keys.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const unsigned n = std::min<std::size_t>(
            workers, keys.size());
        pool.reserve(n);
        for (unsigned w = 0; w < n; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return true;
}

unsigned
CampaignEngine::workers() const
{
    if (options_.workers > 0)
        return options_.workers;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
CampaignEngine::run(const ScenarioSpec &spec,
                    const std::vector<OutcomeSink *> &sinks,
                    ShardRange shard) const
{
    // Scenario build-path selection for this run (worker threads
    // read the process-wide mode): fork pooled snapshot arenas by
    // default, rebuild-from-scratch when the caller wants the
    // reference path for a byte-identity comparison.
    const attacks::ScenarioBuildModeGuard buildMode(
        options_.forkScenarios
            ? attacks::ScenarioBuildMode::Fork
            : attacks::ScenarioBuildMode::Rebuild);
    // Likewise for the second snapshot tier: reuse post-prologue
    // warm-attack snapshots by default, force every cell to re-run
    // its prologue when the caller wants the reference path.
    const attacks::WarmSnapshotModeGuard warmMode(
        options_.warmAttacks ? attacks::WarmSnapshotMode::Reuse
                             : attacks::WarmSnapshotMode::Rebuild);

    const ExpandedGrid grid = dedupGrid(spec);
    const ShardSelection sel = grid.shard(shard.index, shard.count);
    const unsigned nworkers = workers();

    // Expanded grid points grouped by the unique-execution position
    // that backs them, restricted to this shard: the emission list
    // of each completed execution.
    std::unordered_map<std::size_t, std::vector<std::size_t>>
        backedBy;
    backedBy.reserve(sel.uniquePositions.size());
    for (const std::size_t e : sel.expandedIndices)
        backedBy[grid.dupOf[e]].push_back(e);

    CampaignHeader header;
    header.name = spec.name;
    for (const core::AttackDescriptor *attack : resolveAttacks(spec))
        header.rowLabels.push_back(attack->name);
    for (const DefenseAxis &d : resolveDefenses(spec))
        header.colLabels.push_back(d.label);
    header.expandedCount = grid.expanded.size();
    header.uniqueCount = grid.uniqueIndices.size();
    header.gridIndices = sel.expandedIndices;
    header.shardUniqueCount = sel.uniquePositions.size();
    header.shardIndex = shard.index;
    header.shardCount = shard.count == 0 ? 1 : shard.count;
    header.workers = nworkers;
    for (OutcomeSink *sink : sinks)
        sink->begin(header);

    const verdict::VerdictBackend backend = options_.backend;

    // Triage replication classes: unique positions whose (variant,
    // config, canonical options) coincide are the same experiment to
    // the runner (the descriptor's canonicalOptions hook resets
    // exactly the AttackOptions fields the runner never reads), so
    // one member's simulation serves the whole class byte-for-byte.
    // Attacks without the hook form singleton classes.
    std::vector<std::vector<std::size_t>> classes;
    if (backend == verdict::VerdictBackend::Triage) {
        const core::ScenarioCatalog &catalog =
            core::ScenarioCatalog::instance();
        std::unordered_map<std::string, std::size_t> classOf;
        classOf.reserve(sel.uniquePositions.size());
        for (const std::size_t pos : sel.uniquePositions) {
            const Scenario &s =
                grid.expanded[grid.uniqueIndices[pos]];
            std::string ckey = s.key;
            const core::AttackDescriptor *d =
                catalog.findAttack(s.variant);
            if (d && d->canonicalOptions) {
                ckey = scenarioKey(s.variant, s.config,
                                   d->canonicalOptions(s.options));
            }
            const auto [it, fresh] =
                classOf.emplace(std::move(ckey), classes.size());
            if (fresh)
                classes.emplace_back();
            classes[it->second].push_back(pos);
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> cacheHits{0};
    std::atomic<std::size_t> modelDecided{0};
    std::atomic<std::size_t> modelUndecided{0};
    std::atomic<std::size_t> disagreements{0};
    std::atomic<std::size_t> replicatedCells{0};
    ResultCache *const cache = options_.cache;

    // Stream one outcome per expanded grid point the execution at
    // @p pos backs, straight from the worker thread.  (.at():
    // lookups must not mutate the shared map.)
    const auto emit = [&](std::size_t pos, const AttackResult &result,
                          const CpuStats &stats, double wallMillis,
                          const core::ModelJudgement *judgement,
                          const char *agreement,
                          const verdict::StaticJudgement *rewrite =
                              nullptr) {
        for (const std::size_t e : backedBy.at(pos)) {
            const Scenario &dup = grid.expanded[e];
            ScenarioOutcome o;
            o.variant = dup.variant;
            o.row = dup.row;
            o.col = dup.col;
            o.gridIndex = dup.gridIndex;
            o.rowLabel = dup.rowLabel;
            o.colLabel = dup.colLabel;
            o.config = dup.config;
            o.options = dup.options;
            o.result = result;
            o.stats = stats;
            o.wallMillis = wallMillis;
            if (judgement) {
                o.modelVerdict =
                    core::modelVerdictName(judgement->verdict);
                o.evidence = judgement->evidence;
            }
            if (agreement)
                o.agreement = agreement;
            if (rewrite) {
                o.fencesInserted = rewrite->fencesInserted;
                o.masksInserted = rewrite->masksInserted;
                o.extraInstructions = rewrite->extraInstructions;
            }
            for (OutcomeSink *sink : sinks)
                sink->consume(o);
        }
    };

    /// Count one judged cell; @return the judgement.  Under the
    /// Static backend the verdict comes from the Fig. 9 program
    /// analyzer (and @p rewrite, when given, receives the applied
    /// program rewrite's overhead); every other backend asks the
    /// graph model.
    const auto judged = [&](const Scenario &s,
                            verdict::StaticJudgement *rewrite =
                                nullptr) {
        core::ModelJudgement j;
        if (backend == verdict::VerdictBackend::Static) {
            verdict::StaticJudgement sj = verdict::judgeScenarioStatic(
                s.variant, s.config, s.options);
            if (rewrite)
                *rewrite = sj;
            j = std::move(sj.judgement);
        } else {
            j = verdict::judgeScenario(s.variant, s.config,
                                       s.options);
        }
        (j.decided() ? modelDecided : modelUndecided)
            .fetch_add(1, std::memory_order_relaxed);
        return j;
    };

    // Simulate @p s with the shared cache under the bare key;
    // @return true when the result was served from the cache.
    const auto simulate = [&](const Scenario &s, AttackResult &result,
                              CpuStats &stats, double &wallMillis) {
        if (cache) {
            if (const auto hit = cache->lookup(s.key)) {
                result = hit->result;
                stats = hit->stats;
                cacheHits.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        const auto s0 = std::chrono::steady_clock::now();
        result = attacks::runVariant(s.variant, s.config, s.options,
                                     stats);
        wallMillis = millisSince(s0);
        if (cache)
            cache->store(s.key, {result, stats});
        return false;
    };

    // Simulator / Model / Differential: one unique position per
    // work item.
    const auto worker = [&]() {
        for (;;) {
            const std::size_t n =
                next.fetch_add(1, std::memory_order_relaxed);
            if (n >= sel.uniquePositions.size())
                return;
            const std::size_t pos = sel.uniquePositions[n];
            const Scenario &s =
                grid.expanded[grid.uniqueIndices[pos]];

            if (backend == verdict::VerdictBackend::Model) {
                // Analysis only: never touches the simulator.  The
                // synthesized result carries the predicted leak bit
                // and nothing else; cache entries live under the
                // tagged key so they can never satisfy a simulator
                // lookup.
                const core::ModelJudgement j = judged(s);
                AttackResult result;
                CpuStats stats;
                const std::string mkey =
                    backendCacheKey(backend, s.key);
                bool cached = false;
                if (cache) {
                    if (const auto hit = cache->lookup(mkey)) {
                        result = hit->result;
                        stats = hit->stats;
                        cached = true;
                        cacheHits.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                }
                if (!cached) {
                    result.name = s.rowLabel;
                    result.leaked = j.predictsLeak();
                    if (cache)
                        cache->store(mkey, {result, stats});
                }
                emit(pos, result, stats, 0.0, &j, nullptr);
                continue;
            }

            AttackResult result;
            CpuStats stats;
            double wallMillis = 0.0;
            simulate(s, result, stats, wallMillis);
            if (backend == verdict::VerdictBackend::Differential ||
                backend == verdict::VerdictBackend::Static) {
                verdict::StaticJudgement sj;
                const core::ModelJudgement j = judged(s, &sj);
                const char *agreement = "undecided";
                if (j.decided()) {
                    agreement =
                        j.predictsLeak() == result.leaked
                            ? "agree"
                            : "disagree";
                    if (j.predictsLeak() != result.leaked)
                        disagreements.fetch_add(
                            1, std::memory_order_relaxed);
                }
                emit(pos, result, stats, wallMillis, &j, agreement,
                     backend == verdict::VerdictBackend::Static
                         ? &sj
                         : nullptr);
            } else {
                emit(pos, result, stats, wallMillis, nullptr,
                     nullptr);
            }
        }
    };

    // Triage: one replication class per work item.  Every member is
    // judged (the counters below report the model's coverage); the
    // class is served by a cache hit or one simulated representative
    // and the rest replicate that entry verbatim.
    const auto triageWorker = [&]() {
        for (;;) {
            const std::size_t n =
                next.fetch_add(1, std::memory_order_relaxed);
            if (n >= classes.size())
                return;
            const std::vector<std::size_t> &members = classes[n];

            std::vector<core::ModelJudgement> judgements;
            judgements.reserve(members.size());
            bool conflict = false;
            bool sawDecided = false;
            bool decidedLeak = false;
            for (const std::size_t pos : members) {
                const Scenario &s =
                    grid.expanded[grid.uniqueIndices[pos]];
                judgements.push_back(judged(s));
                const core::ModelJudgement &j = judgements.back();
                if (!j.decided())
                    continue;
                if (sawDecided && decidedLeak != j.predictsLeak())
                    conflict = true;
                sawDecided = true;
                decidedLeak = j.predictsLeak();
            }

            // Cache pass: members already memoized emit directly and
            // the first hit doubles as the class representative.
            std::vector<std::size_t> missing;
            std::optional<ResultCache::Entry> have;
            for (std::size_t m = 0; m < members.size(); ++m) {
                const std::size_t pos = members[m];
                const Scenario &s =
                    grid.expanded[grid.uniqueIndices[pos]];
                bool cached = false;
                if (cache) {
                    if (const auto hit = cache->lookup(s.key)) {
                        emit(pos, hit->result, hit->stats, 0.0,
                             &judgements[m], nullptr);
                        cacheHits.fetch_add(
                            1, std::memory_order_relaxed);
                        if (!have)
                            have = *hit;
                        cached = true;
                    }
                }
                if (!cached)
                    missing.push_back(m);
            }
            if (missing.empty())
                continue;

            if (conflict) {
                // Soundness tripwire: decided verdicts disagreeing
                // inside one class would mean the canonicalization
                // folded two genuinely different experiments.
                // Should be unreachable; simulate every member
                // individually rather than replicate anything.
                for (const std::size_t m : missing) {
                    const std::size_t pos = members[m];
                    const Scenario &s =
                        grid.expanded[grid.uniqueIndices[pos]];
                    AttackResult result;
                    CpuStats stats;
                    double wallMillis = 0.0;
                    simulate(s, result, stats, wallMillis);
                    emit(pos, result, stats, wallMillis,
                         &judgements[m], nullptr);
                }
                continue;
            }

            std::size_t first = 0;
            if (!have) {
                // Simulate the class representative (first missing
                // member, stored under its own bare key only —
                // replicated entries are never stored, so the cache
                // stays a record of real executions).
                const std::size_t m = missing.front();
                const std::size_t pos = members[m];
                const Scenario &s =
                    grid.expanded[grid.uniqueIndices[pos]];
                AttackResult result;
                CpuStats stats;
                double wallMillis = 0.0;
                simulate(s, result, stats, wallMillis);
                emit(pos, result, stats, wallMillis, &judgements[m],
                     nullptr);
                have = ResultCache::Entry{result, stats};
                first = 1;
            }
            for (std::size_t i = first; i < missing.size(); ++i) {
                const std::size_t m = missing[i];
                emit(members[m], have->result, have->stats, 0.0,
                     &judgements[m], nullptr);
                replicatedCells.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
    };

    const std::function<void()> work =
        backend == verdict::VerdictBackend::Triage
            ? std::function<void()>(triageWorker)
            : std::function<void()>(worker);
    if (nworkers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nworkers);
        for (unsigned w = 0; w < nworkers; ++w)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
    }

    CampaignFooter footer;
    footer.cacheHits = cacheHits.load(std::memory_order_relaxed);
    footer.replicatedCells =
        replicatedCells.load(std::memory_order_relaxed);
    footer.executedCount = sel.uniquePositions.size() -
                           footer.cacheHits -
                           footer.replicatedCells;
    footer.modelDecided =
        modelDecided.load(std::memory_order_relaxed);
    footer.modelUndecided =
        modelUndecided.load(std::memory_order_relaxed);
    footer.disagreements =
        disagreements.load(std::memory_order_relaxed);
    footer.wallMillis = millisSince(t0);
    footer.scenariosPerSecond =
        footer.wallMillis > 0.0
            ? 1000.0 *
                  static_cast<double>(footer.executedCount) /
                  footer.wallMillis
            : 0.0;
    for (OutcomeSink *sink : sinks)
        sink->end(footer);
}

CampaignReport
CampaignEngine::run(const ScenarioSpec &spec) const
{
    return run(spec, ShardRange{});
}

CampaignReport
CampaignEngine::run(const ScenarioSpec &spec, ShardRange shard) const
{
    ReportSink sink;
    run(spec, {&sink}, shard);
    return sink.takeReport();
}

} // namespace specsec::campaign
