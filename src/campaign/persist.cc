/**
 * @file
 * ResultCache disk persistence + the model fingerprint.
 *
 * The cache file is versioned JSON: a fingerprint of the simulated
 * model and one entry per memoized scenario, keyed on the canonical
 * scenarioKey().  The result/stats record bodies are the schema-
 * derived wire fragments of tool/report_io.cc (tool/schema.hh), so
 * the cache format tracks the field registry automatically.  Loading trusts entries only under an exact
 * fingerprint match; anything else (stale fingerprint, corrupt or
 * truncated file, missing file, bad version) loads nothing and
 * reports false without raising — a persistent cache must never be
 * able to fail a run, only to stop accelerating it.  Saving is
 * atomic (sibling temp file + rename) and concurrent-writer safe:
 * each save load-merge-saves under a sibling ".lock" flock, so two
 * processes persisting to one path union their entries instead of
 * the last writer dropping the first writer's work.
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <unordered_map>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "campaign.hh"
#include "core/catalog.hh"
#include "tool/jsonio.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"

namespace specsec::campaign
{

namespace
{

/// Bump on deliberate semantic model changes that keep every
/// config/result struct byte-identical (see modelFingerprint()).
constexpr unsigned kModelVersion = 1;

bool
loadFail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/**
 * Holds flock(LOCK_EX) on @p path's sibling ".lock" file for its
 * lifetime.  The lock file itself is created once and never
 * unlinked (removing it would race a waiter locking the dead
 * inode); it is zero bytes of permanent scaffolding next to the
 * cache.  Lock failure degrades to lockless operation — like
 * every other cache-persistence failure, contention may cost
 * entries but can never fail a run — but it is *reported*, not
 * swallowed: locked()/error() tell the caller the merge-union
 * guarantee is gone for this save so it can warn the user.
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
        : fd_(::open((path + ".lock").c_str(),
                     O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd_ < 0) {
            error_ = "cannot create " + path +
                     ".lock: " + std::strerror(errno);
            return;
        }
        if (::flock(fd_, LOCK_EX) != 0) {
            error_ = "cannot flock " + path +
                     ".lock: " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~FileLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    bool locked() const { return fd_ >= 0; }
    const std::string &error() const { return error_; }

  private:
    int fd_ = -1;
    std::string error_;
};

/**
 * The parsing core shared by loadFromFile and the save-side
 * merge: validate @p text as a cache file written under
 * @p fingerprint and append its entries to @p loaded.  All-or-
 * nothing — any failure leaves @p loaded untouched.
 */
bool
parseCacheFile(const std::string &text,
               const std::string &fingerprint,
               std::vector<std::pair<std::string,
                                     ResultCache::Entry>> &loaded,
               std::string *error)
{
    tool::json::Cursor cur(text);
    unsigned version = 0;
    bool fingerprintOk = false;
    std::vector<std::pair<std::string, ResultCache::Entry>> parsed;

    if (!cur.expect('{'))
        return loadFail(error, cur.error());
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return loadFail(error, cur.error());
        if (key == "version") {
            version = cur.parseUnsigned();
            if (version != tool::kReportIoVersion)
                return loadFail(error,
                                "unsupported cache version");
        } else if (key == "fingerprint") {
            const std::string found = cur.parseString();
            if (found != fingerprint)
                return loadFail(
                    error,
                    "stale fingerprint (model changed); "
                    "ignoring cache");
            fingerprintOk = true;
        } else if (key == "entries") {
            if (!fingerprintOk || version == 0)
                return loadFail(error,
                                "entries before fingerprint/"
                                "version; ignoring cache");
            if (!cur.expect('['))
                return loadFail(error, cur.error());
            if (!cur.peekConsume(']')) {
                do {
                    std::string entry_key;
                    ResultCache::Entry entry;
                    if (!cur.expect('{'))
                        return loadFail(error, cur.error());
                    do {
                        const std::string field =
                            cur.parseString();
                        if (cur.failed() || !cur.expect(':'))
                            return loadFail(error, cur.error());
                        if (field == "key")
                            entry_key = cur.parseString();
                        else if (field == "result") {
                            if (!tool::parseAttackResultJson(
                                    cur, entry.result))
                                return loadFail(error,
                                                cur.error());
                        } else if (field == "stats") {
                            if (!tool::parseCpuStatsJson(
                                    cur, entry.stats))
                                return loadFail(error,
                                                cur.error());
                        } else
                            return loadFail(
                                error,
                                "unknown cache entry key '" +
                                    field + "'");
                    } while (!cur.failed() &&
                             cur.peekConsume(','));
                    if (!cur.expect('}'))
                        return loadFail(error, cur.error());
                    if (entry_key.empty())
                        return loadFail(error,
                                        "cache entry without key");
                    parsed.emplace_back(std::move(entry_key),
                                        std::move(entry));
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return loadFail(error, cur.error());
            }
        } else {
            return loadFail(error,
                            "unknown cache key '" + key + "'");
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (cur.failed() || !cur.expect('}') || !cur.atEnd())
        return loadFail(error, cur.error().empty()
                                   ? "trailing content"
                                   : cur.error());
    if (version == 0 || !fingerprintOk)
        return loadFail(error, "cache missing version/fingerprint");
    for (auto &kv : parsed)
        loaded.push_back(std::move(kv));
    return true;
}

} // namespace

std::string
modelFingerprint()
{
    // The canonical key of a default-configured scenario serializes
    // every CpuConfig/AttackOptions field, so both struct *shape*
    // changes (via the sizeofs) and *default-value* changes (via
    // the key) invalidate persisted caches automatically.
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "specsec-model-v%u;cfg%zu;opt%zu;res%zu;stat%zu;",
                  kModelVersion, sizeof(CpuConfig),
                  sizeof(AttackOptions), sizeof(AttackResult),
                  sizeof(CpuStats));
    std::string fingerprint =
        buf + scenarioKey(core::AttackVariant::SpectreV1,
                          CpuConfig{}, AttackOptions{});
    // Extension attacks are keyed on catalog-assigned synthetic
    // slots, and slot assignment follows registration order — which
    // another binary (or a rebuild reordering static registrars) is
    // free to change.  Pinning each slot -> name binding into the
    // fingerprint makes a cache written under a different extension
    // set load nothing instead of silently replaying one extension's
    // results as another's.  Two binaries share caches exactly when
    // they register the same extensions in the same order (every
    // binary carries at least the built-in composed v2xFPU entry);
    // a binary registering more, like custom_attack, keeps its own.
    for (const core::AttackDescriptor *d :
         core::ScenarioCatalog::instance().attacks()) {
        if (!d->isExtension())
            continue;
        fingerprint += "ext";
        fingerprint += std::to_string(static_cast<unsigned>(d->id));
        fingerprint += "=";
        fingerprint += d->name;
        fingerprint += ";";
    }
    return fingerprint;
}

bool
ResultCache::loadFromFile(const std::string &path,
                          const std::string &fingerprint,
                          std::string *error)
{
    std::string text;
    if (!tool::readTextFile(path, text))
        return loadFail(error, "cannot read " + path);

    std::vector<std::pair<std::string, Entry>> loaded;
    if (!parseCacheFile(text, fingerprint, loaded, error))
        return false;

    // Only a fully validated file mutates the cache: a truncated
    // tail can't leave half a file's entries behind.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : loaded)
        entries_.emplace(std::move(kv.first),
                         std::move(kv.second));
    return true;
}

bool
ResultCache::saveToFile(const std::string &path,
                        const std::string &fingerprint,
                        std::string *error,
                        std::string *lockWarning) const
{
    // Load-merge-save under a lock file: two processes saving the
    // same path concurrently used to last-writer-win, dropping the
    // loser's fresh entries.  Under the lock each writer first
    // folds in whatever a concurrent writer already persisted, so
    // saves compose; entries are pure functions of their key, so
    // merge order cannot change any value (our snapshot wins on
    // the — necessarily identical — overlaps).
    const FileLock lock(path);
    if (!lock.locked() && lockWarning) {
        // A lock that cannot even be created (read-only dir,
        // ENOSPC) used to degrade silently; the save below still
        // proceeds — unlocked but atomic via tmp+rename — and the
        // caller learns the merge-union guarantee was lost.
        *lockWarning =
            lock.error() +
            "; falling back to an unlocked atomic save (a "
            "concurrent writer's entries may be dropped)";
    }

    auto merged = snapshot();
    {
        std::unordered_map<std::string, bool> ours;
        ours.reserve(merged.size());
        for (const auto &kv : merged)
            ours.emplace(kv.first, true);
        std::string existing;
        std::vector<std::pair<std::string, Entry>> on_disk;
        if (tool::readTextFile(path, existing) &&
            parseCacheFile(existing, fingerprint, on_disk,
                           nullptr)) {
            for (auto &kv : on_disk)
                if (ours.find(kv.first) == ours.end())
                    merged.push_back(std::move(kv));
        }
        // An unreadable / stale / corrupt existing file merges
        // nothing and is simply overwritten, as before.
    }
    // snapshot() is key-sorted; keep the file deterministic after
    // appending the other writer's entries.
    std::sort(merged.begin(), merged.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    std::ostringstream os;
    os << "{\n\"version\": " << tool::kReportIoVersion << ",\n";
    os << "\"fingerprint\": \"" << tool::jsonEscape(fingerprint)
       << "\",\n";
    os << "\"entries\": [";
    for (std::size_t i = 0; i < merged.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "{\"key\": \"" << tool::jsonEscape(merged[i].first)
           << "\", \"result\": "
           << tool::attackResultJson(merged[i].second.result)
           << ", \"stats\": "
           << tool::cpuStatsJson(merged[i].second.stats) << "}";
    }
    os << "\n]\n}\n";

    const std::string tmp = path + ".tmp";
    if (!tool::writeTextFile(tmp, os.str()))
        return loadFail(error, "cannot write " + tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return loadFail(error, "cannot rename " + tmp + " -> " +
                                   path);
    }
    return true;
}

} // namespace specsec::campaign
