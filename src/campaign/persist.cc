/**
 * @file
 * ResultCache disk persistence + the model fingerprint.
 *
 * The cache file is versioned JSON: a fingerprint of the simulated
 * model and one entry per memoized scenario, keyed on the canonical
 * scenarioKey().  The result/stats record bodies are the schema-
 * derived wire fragments of tool/report_io.cc (tool/schema.hh), so
 * the cache format tracks the field registry automatically.  Loading trusts entries only under an exact
 * fingerprint match; anything else (stale fingerprint, corrupt or
 * truncated file, missing file, bad version) loads nothing and
 * reports false without raising — a persistent cache must never be
 * able to fail a run, only to stop accelerating it.  Saving is
 * atomic: write a sibling temp file, then rename over the target.
 */

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "campaign.hh"
#include "core/catalog.hh"
#include "tool/jsonio.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"

namespace specsec::campaign
{

namespace
{

/// Bump on deliberate semantic model changes that keep every
/// config/result struct byte-identical (see modelFingerprint()).
constexpr unsigned kModelVersion = 1;

bool
loadFail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

std::string
modelFingerprint()
{
    // The canonical key of a default-configured scenario serializes
    // every CpuConfig/AttackOptions field, so both struct *shape*
    // changes (via the sizeofs) and *default-value* changes (via
    // the key) invalidate persisted caches automatically.
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "specsec-model-v%u;cfg%zu;opt%zu;res%zu;stat%zu;",
                  kModelVersion, sizeof(CpuConfig),
                  sizeof(AttackOptions), sizeof(AttackResult),
                  sizeof(CpuStats));
    std::string fingerprint =
        buf + scenarioKey(core::AttackVariant::SpectreV1,
                          CpuConfig{}, AttackOptions{});
    // Extension attacks are keyed on catalog-assigned synthetic
    // slots, and slot assignment follows registration order — which
    // another binary (or a rebuild reordering static registrars) is
    // free to change.  Pinning each slot -> name binding into the
    // fingerprint makes a cache written under a different extension
    // set load nothing instead of silently replaying one extension's
    // results as another's.  Two binaries share caches exactly when
    // they register the same extensions in the same order (every
    // binary carries at least the built-in composed v2xFPU entry);
    // a binary registering more, like custom_attack, keeps its own.
    for (const core::AttackDescriptor *d :
         core::ScenarioCatalog::instance().attacks()) {
        if (!d->isExtension())
            continue;
        fingerprint += "ext";
        fingerprint += std::to_string(static_cast<unsigned>(d->id));
        fingerprint += "=";
        fingerprint += d->name;
        fingerprint += ";";
    }
    return fingerprint;
}

bool
ResultCache::loadFromFile(const std::string &path,
                          const std::string &fingerprint,
                          std::string *error)
{
    std::string text;
    if (!tool::readTextFile(path, text))
        return loadFail(error, "cannot read " + path);

    tool::json::Cursor cur(text);
    unsigned version = 0;
    bool fingerprintOk = false;
    std::vector<std::pair<std::string, Entry>> loaded;

    if (!cur.expect('{'))
        return loadFail(error, cur.error());
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return loadFail(error, cur.error());
        if (key == "version") {
            version = cur.parseUnsigned();
            if (version != tool::kReportIoVersion)
                return loadFail(error,
                                "unsupported cache version");
        } else if (key == "fingerprint") {
            const std::string found = cur.parseString();
            if (found != fingerprint)
                return loadFail(
                    error,
                    "stale fingerprint (model changed); "
                    "ignoring cache");
            fingerprintOk = true;
        } else if (key == "entries") {
            if (!fingerprintOk || version == 0)
                return loadFail(error,
                                "entries before fingerprint/"
                                "version; ignoring cache");
            if (!cur.expect('['))
                return loadFail(error, cur.error());
            if (!cur.peekConsume(']')) {
                do {
                    std::string entry_key;
                    Entry entry;
                    if (!cur.expect('{'))
                        return loadFail(error, cur.error());
                    do {
                        const std::string field =
                            cur.parseString();
                        if (cur.failed() || !cur.expect(':'))
                            return loadFail(error, cur.error());
                        if (field == "key")
                            entry_key = cur.parseString();
                        else if (field == "result") {
                            if (!tool::parseAttackResultJson(
                                    cur, entry.result))
                                return loadFail(error,
                                                cur.error());
                        } else if (field == "stats") {
                            if (!tool::parseCpuStatsJson(
                                    cur, entry.stats))
                                return loadFail(error,
                                                cur.error());
                        } else
                            return loadFail(
                                error,
                                "unknown cache entry key '" +
                                    field + "'");
                    } while (!cur.failed() &&
                             cur.peekConsume(','));
                    if (!cur.expect('}'))
                        return loadFail(error, cur.error());
                    if (entry_key.empty())
                        return loadFail(error,
                                        "cache entry without key");
                    loaded.emplace_back(std::move(entry_key),
                                        std::move(entry));
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return loadFail(error, cur.error());
            }
        } else {
            return loadFail(error,
                            "unknown cache key '" + key + "'");
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (cur.failed() || !cur.expect('}') || !cur.atEnd())
        return loadFail(error, cur.error().empty()
                                   ? "trailing content"
                                   : cur.error());
    if (version == 0 || !fingerprintOk)
        return loadFail(error, "cache missing version/fingerprint");

    // Only a fully validated file mutates the cache: a truncated
    // tail can't leave half a file's entries behind.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : loaded)
        entries_.emplace(std::move(kv.first),
                         std::move(kv.second));
    return true;
}

bool
ResultCache::saveToFile(const std::string &path,
                        const std::string &fingerprint,
                        std::string *error) const
{
    std::ostringstream os;
    os << "{\n\"version\": " << tool::kReportIoVersion << ",\n";
    os << "\"fingerprint\": \"" << tool::jsonEscape(fingerprint)
       << "\",\n";
    os << "\"entries\": [";
    const auto entries = snapshot();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "{\"key\": \"" << tool::jsonEscape(entries[i].first)
           << "\", \"result\": "
           << tool::attackResultJson(entries[i].second.result)
           << ", \"stats\": "
           << tool::cpuStatsJson(entries[i].second.stats) << "}";
    }
    os << "\n]\n}\n";

    const std::string tmp = path + ".tmp";
    if (!tool::writeTextFile(tmp, os.str()))
        return loadFail(error, "cannot write " + tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return loadFail(error, "cannot rename " + tmp + " -> " +
                                   path);
    }
    return true;
}

} // namespace specsec::campaign
