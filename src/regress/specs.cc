#include "specs.hh"

#include <cstdio>
#include <stdexcept>

#include "core/catalog.hh"
#include "core/defense_catalog.hh"
#include "defense/mitigations.hh"

namespace specsec::regress
{

using campaign::CacheGeometry;
using campaign::DefenseAxis;
using campaign::ScenarioSpec;
using campaign::SoftwareMitigation;
using campaign::VulnAblation;
using core::AttackVariant;
using core::DefenseMechanism;

namespace
{

/** A defense column realizing a cataloged mechanism: the
 *  descriptor's canonical name over its apply hook. */
DefenseAxis
mechanismAxis(DefenseMechanism mechanism)
{
    const core::DefenseDescriptor *descriptor =
        core::ScenarioCatalog::instance().findDefense(mechanism);
    if (descriptor == nullptr)
        throw std::logic_error(
            "regress spec names an unregistered defense mechanism");
    return {descriptor->info.name, descriptor->apply};
}

/** Baseline column plus one column per mechanism. */
std::vector<DefenseAxis>
mechanismColumns(const std::vector<DefenseMechanism> &mechanisms)
{
    std::vector<DefenseAxis> cols = {{"baseline", nullptr}};
    for (DefenseMechanism m : mechanisms)
        cols.push_back(mechanismAxis(m));
    return cols;
}

std::string
label(const char *prefix, unsigned value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s=%u", prefix, value);
    return buf;
}

} // namespace

ScenarioSpec
table2IndustrySpec()
{
    ScenarioSpec spec;
    spec.name = "table2-industry";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::SpectreV1_1,
                     AttackVariant::SpectreV2,
                     AttackVariant::SpectreV4,
                     AttackVariant::SpectreRsb,
                     AttackVariant::Meltdown};
    spec.defenses = mechanismColumns({
        DefenseMechanism::LFence,
        DefenseMechanism::MFence,
        DefenseMechanism::Kaiser,
        DefenseMechanism::Kpti,
        DefenseMechanism::DisableBranchPrediction,
        DefenseMechanism::Ibrs,
        DefenseMechanism::Stibp,
        DefenseMechanism::Ibpb,
        DefenseMechanism::InvalidatePredictorOnContextSwitch,
        DefenseMechanism::Retpoline,
        DefenseMechanism::CoarseAddressMasking,
        DefenseMechanism::DataDependentAddressMasking,
        DefenseMechanism::Ssbb,
        DefenseMechanism::Ssbs,
        DefenseMechanism::RsbStuffing,
    });
    return spec;
}

ScenarioSpec
table2AcademiaSpec()
{
    ScenarioSpec spec;
    spec.name = "table2-academia";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::SpectreV2,
                     AttackVariant::Meltdown,
                     AttackVariant::Foreshadow,
                     AttackVariant::LazyFp,
                     AttackVariant::ZombieLoad};
    spec.defenses = mechanismColumns({
        DefenseMechanism::ContextSensitiveFencing,
        DefenseMechanism::Sabc,
        DefenseMechanism::SpectreGuard,
        DefenseMechanism::Nda,
        DefenseMechanism::ConTExT,
        DefenseMechanism::SpecShield,
        DefenseMechanism::Stt,
        DefenseMechanism::Dawg,
        DefenseMechanism::InvisiSpec,
        DefenseMechanism::SafeSpec,
        DefenseMechanism::ConditionalSpeculation,
        DefenseMechanism::EfficientInvisibleSpeculation,
        DefenseMechanism::CleanupSpec,
    });
    return spec;
}

ScenarioSpec
table3BaselineSpec()
{
    ScenarioSpec spec;
    spec.name = "table3-baseline";
    for (AttackVariant v : core::tableIIIVariants()) {
        if (v == AttackVariant::Spoiler)
            continue; // timing attack; no leak/blocked verdict
        spec.variants.push_back(v);
    }
    return spec;
}

ScenarioSpec
ablationSpectreWindowSpec()
{
    ScenarioSpec spec;
    spec.name = "ablation-spectre-window";
    spec.variants = {AttackVariant::SpectreV1};
    for (unsigned miss : {6u, 8u, 10u, 12u, 16u, 24u, 40u, 80u,
                          200u}) {
        spec.defenses.push_back(
            {label("miss", miss),
             [miss](uarch::CpuConfig &config,
                    attacks::AttackOptions &) {
                 config.cache.missLatency = miss;
             }});
    }
    return spec;
}

ScenarioSpec
ablationMeltdownDeliverySpec()
{
    ScenarioSpec spec;
    spec.name = "ablation-meltdown-delivery";
    spec.variants = {AttackVariant::Meltdown};
    for (unsigned delivery : {0u, 2u, 4u, 8u, 12u, 16u, 32u}) {
        spec.defenses.push_back(
            {label("delivery", delivery),
             [delivery](uarch::CpuConfig &config,
                        attacks::AttackOptions &) {
                 config.exceptionDeliveryLatency = delivery;
             }});
    }
    return spec;
}

ScenarioSpec
ablationForeshadowAuthSpec()
{
    ScenarioSpec spec;
    spec.name = "ablation-foreshadow-auth";
    spec.variants = {AttackVariant::Foreshadow};
    // Immediate squash: the speculation window IS the check latency.
    spec.baseConfig.exceptionDeliveryLatency = 0;
    for (unsigned perm : {1u, 2u, 4u, 8u, 16u, 30u, 60u}) {
        spec.defenses.push_back(
            {label("perm", perm),
             [perm](uarch::CpuConfig &config,
                    attacks::AttackOptions &) {
                 config.permCheckLatency = perm;
             }});
    }
    return spec;
}

ScenarioSpec
mitigationMatrixSpec()
{
    ScenarioSpec spec;
    spec.name = "mitigation-matrix";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::SpectreV1_1,
                     AttackVariant::SpectreRsb,
                     AttackVariant::Meltdown,
                     AttackVariant::Foreshadow};
    // The sweep values come from the registry, so this spec and the
    // CLI's --mitigations parse the same catalog.
    for (const char *name :
         {"none", "kpti", "rsb-stuff", "lfence", "addr-mask",
          "flush-l1"}) {
        const auto m = SoftwareMitigation::byName(name);
        if (!m)
            throw std::logic_error(
                "regress spec names an unregistered mitigation");
        spec.mitigations.push_back(*m);
    }
    return spec;
}

ScenarioSpec
vulnAblationSpec()
{
    ScenarioSpec spec;
    spec.name = "vuln-ablation";
    spec.variants = {AttackVariant::Meltdown,
                     AttackVariant::MeltdownV3a,
                     AttackVariant::Foreshadow,
                     AttackVariant::LazyFp,
                     AttackVariant::SpectreV4,
                     AttackVariant::Ridl,
                     AttackVariant::ZombieLoad,
                     AttackVariant::Fallout,
                     AttackVariant::Taa};
    const uarch::VulnConfig all;
    spec.vulnAblations.push_back({"all-paths", all});
    const auto ablate =
        [&spec, &all](const char *name,
                      bool uarch::VulnConfig::*path) {
            uarch::VulnConfig v = all;
            v.*path = false;
            spec.vulnAblations.push_back({name, v});
        };
    ablate("no-meltdown", &uarch::VulnConfig::meltdown);
    ablate("no-l1tf", &uarch::VulnConfig::l1tf);
    ablate("no-mds", &uarch::VulnConfig::mds);
    ablate("no-lazyfp", &uarch::VulnConfig::lazyFp);
    ablate("no-store-bypass", &uarch::VulnConfig::storeBypass);
    ablate("no-msr", &uarch::VulnConfig::msr);
    ablate("no-taa", &uarch::VulnConfig::taa);
    return spec;
}

ScenarioSpec
staticHardeningSpec()
{
    // Hardened-vs-unhardened across the whole catalog: every
    // enum-backed attack with a static program (all but Spoiler)
    // against the transform-backed mitigations.  The simulator runs
    // the toggles; `--backend static` re-judges each cell from the
    // rewritten program, so bounds-family leaks must flip to
    // blocked under both columns and the divergence pins stay
    // empty/documented.
    ScenarioSpec spec;
    spec.name = "static-hardening";
    spec.variants = {
        AttackVariant::SpectreV1,  AttackVariant::SpectreV1_1,
        AttackVariant::SpectreV1_2, AttackVariant::SpectreV2,
        AttackVariant::Meltdown,   AttackVariant::MeltdownV3a,
        AttackVariant::SpectreV4,  AttackVariant::SpectreRsb,
        AttackVariant::Foreshadow, AttackVariant::ForeshadowOs,
        AttackVariant::ForeshadowVmm, AttackVariant::LazyFp,
        AttackVariant::Ridl,       AttackVariant::ZombieLoad,
        AttackVariant::Fallout,    AttackVariant::Lvi,
        AttackVariant::Taa,        AttackVariant::Cacheout,
    };
    for (const char *name : {"none", "fence-harden", "mask-harden"}) {
        const auto m = SoftwareMitigation::byName(name);
        if (!m)
            throw std::logic_error(
                "regress spec names an unregistered mitigation");
        spec.mitigations.push_back(*m);
    }
    return spec;
}

ScenarioSpec
cacheGeometrySpec()
{
    ScenarioSpec spec;
    spec.name = "cache-geometry";
    spec.variants = {AttackVariant::SpectreV1,
                     AttackVariant::SpectreV2,
                     AttackVariant::Meltdown};
    spec.channels = {core::CovertChannelKind::FlushReload,
                     core::CovertChannelKind::PrimeProbe};
    const auto geometry = [](const char *name, std::size_t sets,
                             std::size_t ways,
                             std::uint32_t missLatency) {
        CacheGeometry g;
        g.label = name;
        g.cache.sets = sets;
        g.cache.ways = ways;
        g.cache.missLatency = missLatency;
        return g;
    };
    spec.cacheGeometries = {
        geometry("default-256x4", 256, 4, 200),
        geometry("small-64x4", 64, 4, 200),
        geometry("direct-256x1", 256, 1, 200),
        geometry("fast-miss-256x4", 256, 4, 20),
    };
    return spec;
}

const std::vector<NamedSpec> &
registeredSpecs()
{
    static const std::vector<NamedSpec> specs = {
        {"defense-matrix",
         "Tables II/III: every variant vs. the seven hardware "
         "defense strategies",
         ScenarioSpec::defenseMatrix()},
        {"table2-industry",
         "Table II industry mechanisms, classified and executed",
         table2IndustrySpec()},
        {"table2-academia",
         "Section V-B academia mechanisms, classified and executed",
         table2AcademiaSpec()},
        {"table3-baseline",
         "Table III cross-check: all variants leak on the "
         "undefended core",
         table3BaselineSpec()},
        {"ablation-spectre-window",
         "Spectre v1 leak vs. speculation-window length",
         ablationSpectreWindowSpec()},
        {"ablation-meltdown-delivery",
         "Meltdown leak vs. exception-delivery window",
         ablationMeltdownDeliverySpec()},
        {"ablation-foreshadow-auth",
         "Foreshadow leak vs. authorization latency",
         ablationForeshadowAuthSpec()},
        {"mitigation-matrix",
         "software mitigations as a first-class grid dimension",
         mitigationMatrixSpec()},
        {"vuln-ablation",
         "Meltdown-type variants vs. cores with forwarding paths "
         "removed",
         vulnAblationSpec()},
        {"cache-geometry",
         "cache-geometry sweeps across both covert channels",
         cacheGeometrySpec()},
        {"static-hardening",
         "transform-backed mitigations vs. the catalog, verified "
         "by the static backend",
         staticHardeningSpec()},
    };
    return specs;
}

const NamedSpec *
findSpec(const std::string &name)
{
    for (const NamedSpec &spec : registeredSpecs())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

} // namespace specsec::regress
