/**
 * @file
 * specsec_regress: the golden success-matrix regression gate.
 *
 * Records one golden matrix per named campaign spec (JSON under
 * golden/) and checks fresh runs against them cell-by-cell:
 *
 *   specsec_regress --list
 *   specsec_regress --record [--spec NAME] [--golden-dir DIR]
 *   specsec_regress --check  [--spec NAME] [--golden-dir DIR]
 *                            [--artifact-dir DIR] [--workers N]
 *                            [--cache-file PATH]
 *   specsec_regress --check --shard I/N [--shard-dir DIR]
 *   specsec_regress --merge [--shard-dir DIR] ...
 *
 * --check exits 0 when every matrix matches its golden, 1 on drift
 * (printing a diff naming each changed (variant, defense) cell and
 * writing actual/diff/campaign artifacts for CI upload), 2 on usage
 * or I/O errors.  --flip-vuln PATH deliberately removes a forwarding
 * path from the checked specs' baseline core -- a self-test that the
 * gate catches model changes.
 *
 * Sharded operation fans one gate across processes: `--check
 * --shard I/N` executes shard I of every selected spec and writes a
 * mergeable shard report per spec into --shard-dir instead of
 * comparing; a final `--merge` invocation loads every shard file,
 * re-joins them with CampaignReport::merge, and compares the merged
 * matrices against the goldens -- byte-identically to a
 * single-process --check (tests/shard_test.cc pins this).
 *
 * --cache-file makes the cross-spec ResultCache persistent: entries
 * are loaded before the first spec (ignored wholesale when the
 * model fingerprint is stale or the file is corrupt) and saved back
 * atomically at exit, so an unchanged matrix re-run executes zero
 * cells even across processes and CI jobs.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/sink.hh"
#include "core/catalog.hh"
#include "regress/golden.hh"
#include "regress/specs.hh"
#include "serve/client.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"
#include "verdict/differential.hh"
#include "verdict/model.hh"
#include "verdict/static_verdict.hh"
#include "verdict/verdict.hh"

using namespace specsec;
using namespace specsec::regress;

namespace
{

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--list | --record | --check | --merge] "
        "[options]\n"
        "  --list             print the registered specs\n"
        "  --json             with --list: one JSON object per spec "
        "(the same\n"
        "                     shape campaign_cli list-attacks --json "
        "uses)\n"
        "  --record           (re)write goldens from a fresh run; "
        "always runs the\n"
        "                     differential backend and also "
        "(re)writes the\n"
        "                     disagreement pins "
        "golden/differential-<spec>.json and\n"
        "                     golden/differential-static-<spec>.json\n"
        "  --check            compare a fresh run against goldens "
        "(default)\n"
        "  --backend B        with --check: simulator (default), "
        "differential\n"
        "                     (also gate model-vs-simulator "
        "disagreements against\n"
        "                     the committed pins), triage (model "
        "first, simulate\n"
        "                     only the undecided frontier; matrices "
        "must still\n"
        "                     match the goldens byte-for-byte) or "
        "static (gate\n"
        "                     analyzer-vs-simulator disagreements "
        "against the\n"
        "                     differential-static-<spec>.json pins)\n"
        "  --merge            merge shard reports from --shard-dir "
        "and compare\n"
        "                     the merged matrices against goldens\n"
        "  --spec NAME        limit to one registered spec\n"
        "  --golden-dir DIR   golden file directory (default: "
        "golden)\n"
        "  --artifact-dir DIR where --check drops actual/diff/"
        "campaign files on drift\n"
        "                     (default: regress-artifacts)\n"
        "  --workers N        engine worker threads (default: all "
        "cores)\n"
        "  --shard I/N        with --check: execute only shard I of "
        "N of each spec\n"
        "                     and write mergeable shard reports to "
        "--shard-dir\n"
        "                     instead of comparing\n"
        "  --shard-dir DIR    shard report directory (default: "
        "regress-shards)\n"
        "  --cache-file PATH  persistent result cache: load before "
        "running, save\n"
        "                     (atomically) after; stale/corrupt "
        "files are ignored\n"
        "  --connect HOST:P   with --check: execute every spec on "
        "a running\n"
        "                     `campaign_cli serve` daemon (shared "
        "cache fleet)\n"
        "                     instead of in-process; results are "
        "byte-identical\n"
        "  --with-accuracy    with --record: also pin every "
        "schema-declared\n"
        "                     accuracy field per grid point "
        "(compared under\n"
        "                     the golden's absEps tolerance)\n"
        "  --accuracy-eps E   absolute tolerance recorded into "
        "accuracy goldens\n"
        "                     (implies --with-accuracy)\n"
        "  --format-from DIR  with --record: inherit each spec's "
        "golden format\n"
        "                     (accuracy fields + absEps) from the "
        "goldens in DIR\n"
        "                     (default: --golden-dir), so "
        "re-recording into a\n"
        "                     scratch dir reproduces committed "
        "files byte-for-byte\n"
        "  --flip-vuln PATH   drift self-test: disable a forwarding "
        "path (meltdown,\n"
        "                     l1tf, mds, lazyfp, store-bypass, msr, "
        "taa) before running\n",
        prog);
    return 2;
}

bool
flipVuln(const std::string &path, uarch::VulnConfig &vuln)
{
    if (path == "meltdown")
        vuln.meltdown = !vuln.meltdown;
    else if (path == "l1tf")
        vuln.l1tf = !vuln.l1tf;
    else if (path == "mds")
        vuln.mds = !vuln.mds;
    else if (path == "lazyfp")
        vuln.lazyFp = !vuln.lazyFp;
    else if (path == "store-bypass")
        vuln.storeBypass = !vuln.storeBypass;
    else if (path == "msr")
        vuln.msr = !vuln.msr;
    else if (path == "taa")
        vuln.taa = !vuln.taa;
    else
        return false;
    return true;
}

bool
ensureDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec;
}

std::string
shardFileName(const std::string &spec, std::size_t index,
              std::size_t count)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, ".shard-%zu-of-%zu.json", index,
                  count);
    return spec + buf;
}

/** Exit-code bookkeeping shared by --check and --merge. */
struct GateStatus
{
    bool drift = false;
    bool io_error = false;
};

/**
 * The golden comparison step: compare @p report against the
 * committed golden of @p named, printing ok/DRIFT and dropping
 * artifacts on drift.
 */
void
checkAgainstGolden(const NamedSpec &named,
                   const campaign::CampaignReport &report,
                   const std::string &golden_dir,
                   const std::string &artifact_dir,
                   GateStatus &status)
{
    const std::string golden_path =
        golden_dir + "/" + named.name + ".json";

    std::string text;
    if (!tool::readTextFile(golden_path, text)) {
        std::fprintf(stderr,
                     "%s: missing golden %s (run "
                     "specsec_regress --record)\n",
                     named.name.c_str(), golden_path.c_str());
        status.io_error = true;
        return;
    }
    std::string parse_error;
    const auto golden = parseGoldenJson(text, &parse_error);
    if (!golden) {
        std::fprintf(stderr, "%s: malformed golden %s: %s\n",
                     named.name.c_str(), golden_path.c_str(),
                     parse_error.c_str());
        status.io_error = true;
        return;
    }

    // The golden dictates the comparison contract: accuracy values
    // are captured and checked (under its absEps) only when the
    // golden pins them.
    GoldenMatrix actual =
        GoldenMatrix::fromReport(report, golden->hasAccuracy);
    actual.absEps = golden->absEps;

    const MatrixDiff diff = compareGolden(*golden, actual);
    if (diff.empty()) {
        std::printf("ok       %-28s %4zu cells (%zu executed, "
                    "%zu cached)\n",
                    named.name.c_str(), report.expandedCount,
                    report.executedCount, report.cacheHits);
        return;
    }

    status.drift = true;
    std::printf("DRIFT    %-28s %zu structural, %zu cell "
                "change(s):\n%s",
                named.name.c_str(), diff.structural.size(),
                diff.cells.size(), renderDiff(diff).c_str());
    if (ensureDir(artifact_dir)) {
        const std::string stem = artifact_dir + "/" + named.name;
        tool::writeTextFile(stem + ".actual.json",
                            goldenJson(actual));
        tool::writeTextFile(stem + ".diff.txt", renderDiff(diff));
        tool::writeTextFile(stem + ".campaign.json",
                            tool::campaignJson(report, false));
        tool::writeTextFile(stem + ".campaign.csv",
                            tool::campaignCsv(report, false));
        std::printf("         artifacts under %s/\n",
                    artifact_dir.c_str());
    }
}

/**
 * --merge: load and fold every shard report of @p named from
 * @p shard_dir; nullopt (with a printed message) when files are
 * missing, malformed, conflicting, or the union is incomplete.
 */
std::optional<campaign::CampaignReport>
mergeShards(const NamedSpec &named, const std::string &shard_dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    const std::string prefix = named.name + ".shard-";
    for (const auto &entry :
         std::filesystem::directory_iterator(shard_dir, ec)) {
        const std::string file = entry.path().filename().string();
        if (file.rfind(prefix, 0) == 0 &&
            file.size() > 5 &&
            file.compare(file.size() - 5, 5, ".json") == 0)
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::fprintf(stderr, "%s: cannot read shard dir %s\n",
                     named.name.c_str(), shard_dir.c_str());
        return std::nullopt;
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "%s: no shard reports under %s (run --check "
                     "--shard I/N first)\n",
                     named.name.c_str(), shard_dir.c_str());
        return std::nullopt;
    }
    // Deterministic fold order regardless of directory order.
    std::sort(files.begin(), files.end());

    std::optional<campaign::CampaignReport> merged;
    for (const std::string &path : files) {
        std::string text;
        if (!tool::readTextFile(path, text)) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return std::nullopt;
        }
        std::string error;
        auto shard = tool::parseShardReportJson(text, &error);
        if (!shard) {
            std::fprintf(stderr, "%s: malformed shard report: %s\n",
                         path.c_str(), error.c_str());
            return std::nullopt;
        }
        if (!merged) {
            merged = std::move(*shard);
            continue;
        }
        if (!merged->merge(*shard, &error)) {
            std::fprintf(stderr, "%s: merge conflict: %s\n",
                         path.c_str(), error.c_str());
            return std::nullopt;
        }
    }
    if (merged->partial()) {
        std::fprintf(stderr,
                     "%s: merged shards cover %zu of %zu grid "
                     "points -- missing shard file(s)?\n",
                     named.name.c_str(), merged->outcomes.size(),
                     merged->expandedCount);
        return std::nullopt;
    }
    return merged;
}

/** Pin-file basename prefix for a judging backend's divergences. */
const char *
pinPrefix(verdict::VerdictBackend backend)
{
    return backend == verdict::VerdictBackend::Static
               ? "differential-static-"
               : "differential-";
}

/**
 * The disagreements of a differential- or static-backend run, one
 * entry per distinct scenario key (grid dedup can back several cells
 * with one execution), with the judging backend's rationale
 * re-derived so recorded pins are self-documenting.
 */
verdict::DisagreementSet
freshDisagreements(const NamedSpec &named,
                   const campaign::CampaignReport &report,
                   verdict::VerdictBackend backend)
{
    verdict::DisagreementSet set;
    set.spec = named.name;
    std::vector<std::string> seen;
    for (const campaign::ScenarioOutcome &o : report.outcomes) {
        if (o.agreement != "disagree")
            continue;
        const std::string key = campaign::scenarioKey(
            o.variant, o.config, o.options);
        if (std::find(seen.begin(), seen.end(), key) != seen.end())
            continue;
        seen.push_back(key);
        verdict::Disagreement d;
        d.key = key;
        d.row = o.rowLabel;
        d.col = o.colLabel;
        d.model = o.modelVerdict;
        d.simulator = o.result.leaked ? "leak" : "blocked";
        d.evidence = o.evidence;
        d.rationale =
            backend == verdict::VerdictBackend::Static
                ? verdict::judgeScenarioStatic(o.variant, o.config,
                                               o.options)
                      .judgement.rationale
                : verdict::judgeScenario(o.variant, o.config,
                                         o.options)
                      .rationale;
        set.disagreements.push_back(std::move(d));
    }
    return set;
}

/**
 * The differential gate: compare the run's disagreements against
 * the committed pins in golden/differential-<spec>.json.  A missing
 * pin file is only an error when the run actually disagrees
 * somewhere (pre-pin goldens stay checkable).
 */
void
checkDisagreements(const NamedSpec &named,
                   const campaign::CampaignReport &report,
                   verdict::VerdictBackend backend,
                   const std::string &golden_dir,
                   const std::string &artifact_dir,
                   GateStatus &status)
{
    const verdict::DisagreementSet fresh =
        freshDisagreements(named, report, backend);
    const std::string pin_path = golden_dir + "/" +
                                 pinPrefix(backend) + named.name +
                                 ".json";

    verdict::DisagreementSet pinned;
    pinned.spec = named.name;
    std::string text;
    if (tool::readTextFile(pin_path, text)) {
        std::string parse_error;
        const auto parsed =
            verdict::parseDisagreementJson(text, &parse_error);
        if (!parsed) {
            std::fprintf(stderr,
                         "%s: malformed disagreement pins %s: %s\n",
                         named.name.c_str(), pin_path.c_str(),
                         parse_error.c_str());
            status.io_error = true;
            return;
        }
        pinned = *parsed;
    } else if (!fresh.disagreements.empty()) {
        std::fprintf(stderr,
                     "%s: missing disagreement pins %s (run "
                     "specsec_regress --record)\n",
                     named.name.c_str(), pin_path.c_str());
        status.io_error = true;
        return;
    }

    const std::vector<std::string> drift =
        verdict::compareDisagreements(pinned, fresh);
    if (drift.empty()) {
        std::printf("agree    %-28s %zu decided, %zu undecided, "
                    "%zu pinned divergence(s)\n",
                    named.name.c_str(), report.modelDecided,
                    report.modelUndecided,
                    fresh.disagreements.size());
        return;
    }

    status.drift = true;
    std::printf("DISAGREE %-28s %zu drift line(s):\n",
                named.name.c_str(), drift.size());
    for (const std::string &line : drift)
        std::printf("  %s\n", line.c_str());
    if (ensureDir(artifact_dir)) {
        const std::string stem = artifact_dir + "/" + named.name;
        tool::writeTextFile(stem + ".disagreements.json",
                            verdict::disagreementJson(fresh));
        std::string lines;
        for (const std::string &line : drift)
            lines += line + "\n";
        tool::writeTextFile(stem + ".disagreement-drift.txt",
                            lines);
        std::printf("         artifacts under %s/\n",
                    artifact_dir.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    enum class Mode { List, Record, Check, Merge };
    Mode mode = Mode::Check;
    std::string only_spec;
    std::string golden_dir = "golden";
    std::string artifact_dir = "regress-artifacts";
    std::string shard_dir = "regress-shards";
    std::string cache_file;
    std::string connect_endpoint;
    std::string flip;
    std::string format_from;
    bool list_json = false;
    bool backend_given = false;
    verdict::VerdictBackend backend =
        verdict::VerdictBackend::Simulator;
    bool with_accuracy = false;
    std::optional<double> accuracy_eps;
    campaign::ShardRange shard;
    bool sharded = false;
    campaign::CampaignEngine::Options engine_opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list")
            mode = Mode::List;
        else if (arg == "--record")
            mode = Mode::Record;
        else if (arg == "--check")
            mode = Mode::Check;
        else if (arg == "--merge")
            mode = Mode::Merge;
        else if (arg == "--json")
            list_json = true;
        else if (arg == "--backend") {
            const std::string name = value();
            if (!verdict::parseBackend(name, backend)) {
                std::fprintf(
                    stderr, "%s\n",
                    verdict::unknownBackendMessage(name).c_str());
                return 2;
            }
            backend_given = true;
        } else if (arg == "--spec")
            only_spec = value();
        else if (arg == "--golden-dir")
            golden_dir = value();
        else if (arg == "--artifact-dir")
            artifact_dir = value();
        else if (arg == "--shard-dir")
            shard_dir = value();
        else if (arg == "--cache-file")
            cache_file = value();
        else if (arg == "--connect")
            connect_endpoint = value();
        else if (arg == "--with-accuracy")
            with_accuracy = true;
        else if (arg == "--accuracy-eps") {
            const char *v = value();
            char *end = nullptr;
            const double eps = std::strtod(v, &end);
            if (*v == '\0' || end == nullptr || *end != '\0' ||
                !std::isfinite(eps) || eps < 0.0) {
                std::fprintf(stderr,
                             "--accuracy-eps: '%s' is not a "
                             "non-negative number\n",
                             v);
                return 2;
            }
            accuracy_eps = eps;
        } else if (arg == "--format-from")
            format_from = value();
        else if (arg == "--shard") {
            if (!campaign::parseShardRange(value(), shard)) {
                std::fprintf(stderr,
                             "--shard: expected I/N with I < N\n");
                return 2;
            }
            sharded = true;
        } else if (arg == "--workers") {
            const char *v = value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || end == nullptr || *end != '\0') {
                std::fprintf(stderr,
                             "--workers: '%s' is not a number\n",
                             v);
                return 2;
            }
            engine_opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--flip-vuln")
            flip = value();
        else
            return usage(argv[0]);
    }

    if (list_json && mode != Mode::List) {
        std::fprintf(stderr, "--json only applies to --list\n");
        return 2;
    }
    if (backend_given) {
        if (mode != Mode::Check) {
            std::fprintf(stderr,
                         "--backend only applies to --check "
                         "(--record always runs the differential "
                         "backend; --merge re-joins shard runs)\n");
            return 2;
        }
        if (backend == verdict::VerdictBackend::Model) {
            std::fprintf(stderr,
                         "--backend model cannot gate goldens: the "
                         "model synthesizes verdicts and the golden "
                         "matrices pin the simulator -- use "
                         "differential or triage\n");
            return 2;
        }
        if (sharded ||
            (!connect_endpoint.empty() &&
             backend != verdict::VerdictBackend::Simulator)) {
            std::fprintf(stderr,
                         "--backend cannot be combined with --shard "
                         "or --connect (shard reports and the serve "
                         "daemon always carry simulator results)\n");
            return 2;
        }
    }
    if (mode == Mode::Record && !flip.empty()) {
        // Recording from a deliberately broken core would poison the
        // goldens: every later --check would pass against the wrong
        // model.  The flip is a --check self-test only.
        std::fprintf(stderr,
                     "--flip-vuln cannot be combined with --record\n");
        return 2;
    }
    if (mode == Mode::Merge && !flip.empty()) {
        // Merge never executes scenarios, so the flip would be a
        // silent no-op and the self-test would "pass" vacuously.
        std::fprintf(stderr,
                     "--flip-vuln cannot be combined with --merge "
                     "(merge runs nothing; flip the shard runs "
                     "instead)\n");
        return 2;
    }
    if (sharded && mode != Mode::Check) {
        std::fprintf(stderr,
                     "--shard only applies to --check (goldens and "
                     "merges need the whole grid)\n");
        return 2;
    }
    if (!connect_endpoint.empty()) {
        if (mode != Mode::Check) {
            std::fprintf(stderr,
                         "--connect only applies to --check "
                         "(goldens are recorded from the local "
                         "model)\n");
            return 2;
        }
        if (sharded || !cache_file.empty()) {
            // Remote runs already share the daemon's cache and
            // its worker pool; client-side shards and caches
            // would only obscure whose results a check used.
            std::fprintf(stderr,
                         "--connect cannot be combined with "
                         "--shard or --cache-file (the daemon "
                         "owns both concerns)\n");
            return 2;
        }
    }
    if (mode != Mode::Record &&
        (with_accuracy || accuracy_eps || !format_from.empty())) {
        std::fprintf(stderr,
                     "--with-accuracy / --accuracy-eps / "
                     "--format-from only apply to --record (--check "
                     "follows the committed golden's format)\n");
        return 2;
    }
    if (format_from.empty())
        format_from = golden_dir;

    if (mode == Mode::List) {
        if (list_json) {
            // The same shape `campaign_cli list-attacks --json`
            // uses: a JSON array, one object per line, so fleet
            // tooling can discover specs and attacks identically.
            const auto &specs = registeredSpecs();
            std::printf("[\n");
            for (std::size_t i = 0; i < specs.size(); ++i) {
                const NamedSpec &named = specs[i];
                std::printf(
                    "  {\"name\": \"%s\", \"cells\": %zu, "
                    "\"description\": \"%s\"}%s\n",
                    tool::jsonEscape(named.name).c_str(),
                    named.spec.gridSize(),
                    tool::jsonEscape(named.description).c_str(),
                    i + 1 < specs.size() ? "," : "");
            }
            std::printf("]\n");
            return 0;
        }
        for (const NamedSpec &named : registeredSpecs())
            std::printf("%-28s %4zu cells  %s\n",
                        named.name.c_str(), named.spec.gridSize(),
                        named.description.c_str());
        return 0;
    }

    std::vector<NamedSpec> selected;
    for (const NamedSpec &named : registeredSpecs())
        if (only_spec.empty() || named.name == only_spec)
            selected.push_back(named);
    if (selected.empty()) {
        // One near-miss helper for the whole tree: the same
        // suggestion list the catalog lookups print.
        std::vector<std::string> names;
        for (const NamedSpec &named : registeredSpecs())
            names.push_back(named.name);
        std::fprintf(stderr, "%s\n",
                     core::unknownNameMessage(
                         "spec", only_spec,
                         core::suggestNames(names, only_spec))
                         .c_str());
        return 2;
    }

    campaign::ResultCache cache;
    engine_opts.cache = &cache;
    // Recording always runs the differential backend so the golden
    // matrices (simulator results, byte-identical to a plain run)
    // and the disagreement pins come from one sweep.
    if (mode == Mode::Record)
        engine_opts.backend = verdict::VerdictBackend::Differential;
    else if (mode == Mode::Check)
        engine_opts.backend = backend;
    const campaign::CampaignEngine engine(engine_opts);
    const std::string fingerprint = campaign::modelFingerprint();
    serve::Client client;
    if (!connect_endpoint.empty()) {
        serve::net::Endpoint endpoint;
        std::string error;
        if (!serve::net::parseEndpoint(connect_endpoint, endpoint,
                                       &error) ||
            !client.connect(endpoint, &error)) {
            std::fprintf(stderr, "connect %s: %s\n",
                         connect_endpoint.c_str(), error.c_str());
            return 2;
        }
        std::printf("connected to %s (%u server workers)\n",
                    connect_endpoint.c_str(),
                    client.serverWorkers());
    }
    if (!cache_file.empty() && mode != Mode::Merge) {
        std::string error;
        if (cache.loadFromFile(cache_file, fingerprint, &error))
            std::printf("cache    loaded %zu entries from %s\n",
                        cache.size(), cache_file.c_str());
        else
            std::printf("cache    cold start (%s)\n",
                        error.c_str());
    }

    if (mode == Mode::Record && !ensureDir(golden_dir)) {
        std::fprintf(stderr, "cannot create %s\n",
                     golden_dir.c_str());
        return 2;
    }
    if (sharded && !ensureDir(shard_dir)) {
        std::fprintf(stderr, "cannot create %s\n",
                     shard_dir.c_str());
        return 2;
    }

    GateStatus status;
    for (NamedSpec &named : selected) {
        if (!flip.empty() &&
            !flipVuln(flip, named.spec.baseConfig.vuln)) {
            std::fprintf(stderr, "unknown --flip-vuln path '%s'\n",
                         flip.c_str());
            return 2;
        }

        if (mode == Mode::Merge) {
            const auto merged = mergeShards(named, shard_dir);
            if (!merged) {
                status.io_error = true;
                continue;
            }
            checkAgainstGolden(named, *merged, golden_dir,
                               artifact_dir, status);
            continue;
        }

        campaign::CampaignReport report;
        if (connect_endpoint.empty()) {
            report = engine.run(named.spec, shard);
        } else {
            // The remote path drives the same ReportSink the
            // engine's collect API is built on, so the report —
            // and every golden comparison below — is
            // byte-identical to the offline run by construction.
            campaign::ReportSink sink;
            std::string error;
            if (!client.run(named.spec, {&sink}, shard, &error)) {
                std::fprintf(stderr, "%s: remote run failed: %s\n",
                             named.name.c_str(), error.c_str());
                status.io_error = true;
                continue;
            }
            report = sink.takeReport();
        }

        if (sharded) {
            const std::string path =
                shard_dir + "/" +
                shardFileName(named.name, shard.index,
                              shard.count);
            if (!tool::writeTextFile(
                    path, tool::shardReportJson(report))) {
                std::fprintf(stderr, "cannot write %s\n",
                             path.c_str());
                status.io_error = true;
                continue;
            }
            std::printf("sharded  %-28s shard %zu/%zu: %4zu of "
                        "%4zu cells (%zu executed, %zu cached) "
                        "-> %s\n",
                        named.name.c_str(), shard.index,
                        shard.count, report.outcomes.size(),
                        report.expandedCount,
                        report.executedCount, report.cacheHits,
                        path.c_str());
            continue;
        }

        if (mode == Mode::Record) {
            // The recorded format: explicit flags win; otherwise
            // each spec inherits the shape (accuracy fields +
            // absEps) of its golden under --format-from, so a
            // re-record into a scratch directory reproduces the
            // committed files byte-for-byte (the CI schema-drift
            // job relies on this).
            bool record_accuracy =
                with_accuracy || accuracy_eps.has_value();
            double eps = accuracy_eps.value_or(0.0);
            std::string prior_text;
            if (tool::readTextFile(format_from + "/" + named.name +
                                       ".json",
                                   prior_text)) {
                if (const auto prior =
                        parseGoldenJson(prior_text)) {
                    if (!with_accuracy && !accuracy_eps)
                        record_accuracy = prior->hasAccuracy;
                    if (!accuracy_eps && prior->hasAccuracy)
                        eps = prior->absEps;
                }
            }
            GoldenMatrix actual =
                GoldenMatrix::fromReport(report, record_accuracy);
            actual.absEps = eps;
            const std::string golden_path =
                golden_dir + "/" + named.name + ".json";
            if (!tool::writeTextFile(golden_path,
                                     goldenJson(actual))) {
                std::fprintf(stderr, "cannot write %s\n",
                             golden_path.c_str());
                status.io_error = true;
                continue;
            }
            std::printf("recorded %-28s %4zu cells (%zu executed, "
                        "%zu cached) -> %s\n",
                        named.name.c_str(), report.expandedCount,
                        report.executedCount, report.cacheHits,
                        golden_path.c_str());

            // The disagreement pins ride along with every record:
            // one differential-<spec>.json per spec, empty list
            // included, so a re-record into a scratch directory
            // reproduces the committed set byte-for-byte (the CI
            // schema-drift job compares both directions).
            const verdict::DisagreementSet fresh =
                freshDisagreements(
                    named, report,
                    verdict::VerdictBackend::Differential);
            const std::string pin_path =
                golden_dir + "/differential-" + named.name +
                ".json";
            if (!tool::writeTextFile(
                    pin_path, verdict::disagreementJson(fresh))) {
                std::fprintf(stderr, "cannot write %s\n",
                             pin_path.c_str());
                status.io_error = true;
                continue;
            }
            std::printf("pinned   %-28s %4zu divergence(s) -> %s\n",
                        named.name.c_str(),
                        fresh.disagreements.size(),
                        pin_path.c_str());

            // Static-analyzer pins ride along too: re-judge the same
            // grid under the static backend (every simulation is a
            // cache hit from the sweep above) and pin its
            // divergences next to the model's.
            campaign::CampaignEngine::Options static_opts =
                engine_opts;
            static_opts.backend = verdict::VerdictBackend::Static;
            const campaign::CampaignReport static_report =
                campaign::CampaignEngine(static_opts).run(named.spec);
            const verdict::DisagreementSet static_fresh =
                freshDisagreements(named, static_report,
                                   verdict::VerdictBackend::Static);
            const std::string static_pin_path =
                golden_dir + "/differential-static-" + named.name +
                ".json";
            if (!tool::writeTextFile(
                    static_pin_path,
                    verdict::disagreementJson(static_fresh))) {
                std::fprintf(stderr, "cannot write %s\n",
                             static_pin_path.c_str());
                status.io_error = true;
                continue;
            }
            std::printf("pinned   %-28s %4zu static divergence(s) "
                        "-> %s\n",
                        named.name.c_str(),
                        static_fresh.disagreements.size(),
                        static_pin_path.c_str());
            continue;
        }

        checkAgainstGolden(named, report, golden_dir, artifact_dir,
                           status);
        if (backend == verdict::VerdictBackend::Differential ||
            backend == verdict::VerdictBackend::Static)
            checkDisagreements(named, report, backend, golden_dir,
                               artifact_dir, status);
        else if (backend == verdict::VerdictBackend::Triage)
            std::printf("triage   %-28s %zu decided, %zu "
                        "undecided; %zu simulated, %zu "
                        "replicated, %zu cached\n",
                        named.name.c_str(), report.modelDecided,
                        report.modelUndecided,
                        report.executedCount,
                        report.replicatedCells, report.cacheHits);
    }

    if (!cache_file.empty() && mode != Mode::Merge) {
        std::string error, lockWarning;
        if (cache.saveToFile(cache_file, fingerprint, &error,
                             &lockWarning))
            std::printf("cache    saved %zu entries to %s\n",
                        cache.size(), cache_file.c_str());
        else
            std::fprintf(stderr, "cache    save failed: %s\n",
                         error.c_str());
        if (!lockWarning.empty())
            std::fprintf(stderr, "cache    save degraded: %s\n",
                         lockWarning.c_str());
    }

    if (status.io_error)
        return 2;
    if (status.drift) {
        std::printf("golden success matrices drifted -- inspect "
                    "the diff above; if the change is intended, "
                    "re-record with: specsec_regress --record\n");
        return 1;
    }
    return 0;
}
