/**
 * @file
 * specsec_regress: the golden success-matrix regression gate.
 *
 * Records one golden matrix per named campaign spec (JSON under
 * golden/) and checks fresh runs against them cell-by-cell:
 *
 *   specsec_regress --list
 *   specsec_regress --record [--spec NAME] [--golden-dir DIR]
 *   specsec_regress --check  [--spec NAME] [--golden-dir DIR]
 *                            [--artifact-dir DIR] [--workers N]
 *
 * --check exits 0 when every matrix matches its golden, 1 on drift
 * (printing a diff naming each changed (variant, defense) cell and
 * writing actual/diff/campaign artifacts for CI upload), 2 on usage
 * or I/O errors.  --flip-vuln PATH deliberately removes a forwarding
 * path from the checked specs' baseline core -- a self-test that the
 * gate catches model changes.
 *
 * All specs in one invocation share a ResultCache, so cells
 * appearing in several matrices (e.g. every baseline column)
 * execute once.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "regress/golden.hh"
#include "regress/specs.hh"
#include "tool/report.hh"

using namespace specsec;
using namespace specsec::regress;

namespace
{

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--list | --record | --check] [options]\n"
        "  --list             print the registered specs\n"
        "  --record           (re)write goldens from a fresh run\n"
        "  --check            compare a fresh run against goldens "
        "(default)\n"
        "  --spec NAME        limit to one registered spec\n"
        "  --golden-dir DIR   golden file directory (default: "
        "golden)\n"
        "  --artifact-dir DIR where --check drops actual/diff/"
        "campaign files on drift\n"
        "                     (default: regress-artifacts)\n"
        "  --workers N        engine worker threads (default: all "
        "cores)\n"
        "  --flip-vuln PATH   drift self-test: disable a forwarding "
        "path (meltdown,\n"
        "                     l1tf, mds, lazyfp, store-bypass, msr, "
        "taa) before running\n",
        prog);
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

bool
flipVuln(const std::string &path, uarch::VulnConfig &vuln)
{
    if (path == "meltdown")
        vuln.meltdown = !vuln.meltdown;
    else if (path == "l1tf")
        vuln.l1tf = !vuln.l1tf;
    else if (path == "mds")
        vuln.mds = !vuln.mds;
    else if (path == "lazyfp")
        vuln.lazyFp = !vuln.lazyFp;
    else if (path == "store-bypass")
        vuln.storeBypass = !vuln.storeBypass;
    else if (path == "msr")
        vuln.msr = !vuln.msr;
    else if (path == "taa")
        vuln.taa = !vuln.taa;
    else
        return false;
    return true;
}

bool
ensureDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec;
}

} // namespace

int
main(int argc, char **argv)
{
    enum class Mode { List, Record, Check };
    Mode mode = Mode::Check;
    std::string only_spec;
    std::string golden_dir = "golden";
    std::string artifact_dir = "regress-artifacts";
    std::string flip;
    campaign::CampaignEngine::Options engine_opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list")
            mode = Mode::List;
        else if (arg == "--record")
            mode = Mode::Record;
        else if (arg == "--check")
            mode = Mode::Check;
        else if (arg == "--spec")
            only_spec = value();
        else if (arg == "--golden-dir")
            golden_dir = value();
        else if (arg == "--artifact-dir")
            artifact_dir = value();
        else if (arg == "--workers") {
            const char *v = value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (*v == '\0' || end == nullptr || *end != '\0') {
                std::fprintf(stderr,
                             "--workers: '%s' is not a number\n",
                             v);
                return 2;
            }
            engine_opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--flip-vuln")
            flip = value();
        else
            return usage(argv[0]);
    }

    if (mode == Mode::Record && !flip.empty()) {
        // Recording from a deliberately broken core would poison the
        // goldens: every later --check would pass against the wrong
        // model.  The flip is a --check self-test only.
        std::fprintf(stderr,
                     "--flip-vuln cannot be combined with --record\n");
        return 2;
    }

    if (mode == Mode::List) {
        for (const NamedSpec &named : registeredSpecs())
            std::printf("%-28s %4zu cells  %s\n",
                        named.name.c_str(), named.spec.gridSize(),
                        named.description.c_str());
        return 0;
    }

    std::vector<NamedSpec> selected;
    for (const NamedSpec &named : registeredSpecs())
        if (only_spec.empty() || named.name == only_spec)
            selected.push_back(named);
    if (selected.empty()) {
        std::fprintf(stderr, "no registered spec named '%s'\n",
                     only_spec.c_str());
        return 2;
    }

    campaign::ResultCache cache;
    engine_opts.cache = &cache;
    const campaign::CampaignEngine engine(engine_opts);

    if (mode == Mode::Record && !ensureDir(golden_dir)) {
        std::fprintf(stderr, "cannot create %s\n",
                     golden_dir.c_str());
        return 2;
    }

    bool drift = false;
    bool io_error = false;
    for (NamedSpec &named : selected) {
        if (!flip.empty() &&
            !flipVuln(flip, named.spec.baseConfig.vuln)) {
            std::fprintf(stderr, "unknown --flip-vuln path '%s'\n",
                         flip.c_str());
            return 2;
        }
        const campaign::CampaignReport report =
            engine.run(named.spec);
        const GoldenMatrix actual =
            GoldenMatrix::fromReport(report);
        const std::string golden_path =
            golden_dir + "/" + named.name + ".json";

        if (mode == Mode::Record) {
            if (!tool::writeTextFile(golden_path,
                                     goldenJson(actual))) {
                std::fprintf(stderr, "cannot write %s\n",
                             golden_path.c_str());
                io_error = true;
                continue;
            }
            std::printf("recorded %-28s %4zu cells (%zu executed, "
                        "%zu cached) -> %s\n",
                        named.name.c_str(), report.expandedCount,
                        report.executedCount, report.cacheHits,
                        golden_path.c_str());
            continue;
        }

        std::string text;
        if (!readFile(golden_path, text)) {
            std::fprintf(stderr,
                         "%s: missing golden %s (run "
                         "specsec_regress --record)\n",
                         named.name.c_str(), golden_path.c_str());
            io_error = true;
            continue;
        }
        std::string parse_error;
        const auto golden = parseGoldenJson(text, &parse_error);
        if (!golden) {
            std::fprintf(stderr, "%s: malformed golden %s: %s\n",
                         named.name.c_str(), golden_path.c_str(),
                         parse_error.c_str());
            io_error = true;
            continue;
        }

        const MatrixDiff diff = compareGolden(*golden, actual);
        if (diff.empty()) {
            std::printf("ok       %-28s %4zu cells (%zu executed, "
                        "%zu cached)\n",
                        named.name.c_str(), report.expandedCount,
                        report.executedCount, report.cacheHits);
            continue;
        }

        drift = true;
        std::printf("DRIFT    %-28s %zu structural, %zu cell "
                    "change(s):\n%s",
                    named.name.c_str(), diff.structural.size(),
                    diff.cells.size(), renderDiff(diff).c_str());
        if (ensureDir(artifact_dir)) {
            const std::string stem =
                artifact_dir + "/" + named.name;
            tool::writeTextFile(stem + ".actual.json",
                                goldenJson(actual));
            tool::writeTextFile(stem + ".diff.txt",
                                renderDiff(diff));
            tool::writeTextFile(stem + ".campaign.json",
                                tool::campaignJson(report, false));
            tool::writeTextFile(stem + ".campaign.csv",
                                tool::campaignCsv(report, false));
            std::printf("         artifacts under %s/\n",
                        artifact_dir.c_str());
        }
    }

    if (io_error)
        return 2;
    if (drift) {
        std::printf("golden success matrices drifted -- inspect "
                    "the diff above; if the change is intended, "
                    "re-record with: specsec_regress --record\n");
        return 1;
    }
    return 0;
}
