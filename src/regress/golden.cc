#include "golden.hh"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "tool/jsonio.hh"
#include "tool/report.hh"
#include "tool/schema.hh"

namespace specsec::regress
{

namespace
{

// The strict JSON subset goldenJson() emits is read back with the
// tree-wide cursor shared by every persisted-artifact parser.
using tool::json::Cursor;
using tool::json::parseStringArray;

/** True when @p name is a kAccuracy field of the outcome schema —
 *  the only extra keys a golden cell may carry. */
bool
isAccuracyField(const std::string &name)
{
    const auto *field = tool::outcomeSchema().find(name);
    return field != nullptr && (field->flags & tool::kAccuracy);
}

GoldenCell
parseCell(Cursor &cur)
{
    GoldenCell cell;
    if (!cur.expect('{'))
        return cell;
    do {
        const std::string key = cur.parseString();
        if (!cur.expect(':'))
            return cell;
        if (key == "runs")
            cell.runs = cur.parseUnsigned();
        else if (key == "leaks")
            cell.leaks = cur.parseUnsigned();
        else if (key == "pattern")
            cell.pattern = cur.parseString();
        else if (isAccuracyField(key)) {
            std::vector<double> values;
            if (!cur.expect('['))
                return cell;
            if (!cur.peekConsume(']')) {
                do {
                    values.push_back(cur.parseDouble());
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return cell;
            }
            cell.accuracy.emplace(key, std::move(values));
        } else {
            cur.fail("unknown cell key '" + key + "'");
            return cell;
        }
    } while (!cur.failed() && cur.peekConsume(','));
    cur.expect('}');
    return cell;
}

std::string
describeCell(const std::optional<GoldenCell> &cell)
{
    if (!cell)
        return "(absent)";
    char buf[48];
    std::snprintf(buf, sizeof buf, "%u/%u leaks", cell->leaks,
                  cell->runs);
    std::string out = buf;
    if (cell->runs > 1 && !cell->pattern.empty())
        out += " [" + cell->pattern + "]";
    return out;
}

} // namespace

GoldenMatrix
GoldenMatrix::fromReport(const campaign::CampaignReport &report,
                         bool with_accuracy)
{
    GoldenMatrix m;
    m.spec = report.name;
    m.rows = report.rowLabels;
    m.cols = report.colLabels;
    m.hasAccuracy = with_accuracy;
    m.cells.resize(m.rows.size());
    for (std::size_t r = 0; r < m.rows.size(); ++r) {
        m.cells[r].resize(m.cols.size());
        for (std::size_t c = 0; c < m.cols.size(); ++c) {
            m.cells[r][c].runs = report.cellRuns[r][c];
            m.cells[r][c].leaks = report.cellLeaks[r][c];
        }
    }
    // Outcomes are in deterministic grid-expansion order, so the
    // per-cell patterns (and accuracy arrays) are a stable
    // fingerprint of which knob values leaked, and how well.
    for (const campaign::ScenarioOutcome &o : report.outcomes) {
        GoldenCell &cell = m.cells[o.row][o.col];
        cell.pattern += o.result.leaked ? '1' : '0';
        if (!with_accuracy)
            continue;
        for (const auto &field : tool::outcomeSchema().fields()) {
            if (!(field.flags & tool::kAccuracy))
                continue;
            cell.accuracy[field.name].push_back(field.get(o).d);
        }
    }
    return m;
}

std::string
goldenJson(const GoldenMatrix &matrix)
{
    std::ostringstream os;
    os << "{\n  \"spec\": \"" << tool::jsonEscape(matrix.spec)
       << "\",\n";
    if (matrix.hasAccuracy)
        os << "  \"absEps\": "
           << tool::shortestExactDouble(matrix.absEps) << ",\n";
    os << "  \"cols\": [";
    for (std::size_t c = 0; c < matrix.cols.size(); ++c)
        os << (c ? ", " : "") << "\""
           << tool::jsonEscape(matrix.cols[c]) << "\"";
    os << "],\n  \"rows\": [";
    for (std::size_t r = 0; r < matrix.rows.size(); ++r)
        os << (r ? ", " : "") << "\""
           << tool::jsonEscape(matrix.rows[r]) << "\"";
    os << "],\n  \"cells\": [";
    for (std::size_t r = 0; r < matrix.cells.size(); ++r) {
        os << (r ? "," : "") << "\n    [";
        for (std::size_t c = 0; c < matrix.cells[r].size(); ++c) {
            const GoldenCell &cell = matrix.cells[r][c];
            os << (c ? ", " : "") << "{\"runs\": " << cell.runs
               << ", \"leaks\": " << cell.leaks
               << ", \"pattern\": \""
               << tool::jsonEscape(cell.pattern) << "\"";
            for (const auto &[name, values] : cell.accuracy) {
                os << ", \"" << tool::jsonEscape(name) << "\": [";
                for (std::size_t i = 0; i < values.size(); ++i)
                    os << (i ? ", " : "")
                       << tool::shortestExactDouble(values[i]);
                os << "]";
            }
            os << "}";
        }
        os << "]";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::optional<GoldenMatrix>
parseGoldenJson(const std::string &text, std::string *error)
{
    Cursor cur(text);
    GoldenMatrix m;
    const auto failed = [&]() -> std::optional<GoldenMatrix> {
        if (error)
            *error = cur.error();
        return std::nullopt;
    };

    if (!cur.expect('{'))
        return failed();
    bool sawCells = false;
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return failed();
        if (key == "spec") {
            m.spec = cur.parseString();
        } else if (key == "absEps") {
            m.absEps = cur.parseDouble();
            m.hasAccuracy = true;
        } else if (key == "cols") {
            m.cols = parseStringArray(cur);
        } else if (key == "rows") {
            m.rows = parseStringArray(cur);
        } else if (key == "cells") {
            sawCells = true;
            if (!cur.expect('['))
                return failed();
            if (!cur.peekConsume(']')) {
                do {
                    std::vector<GoldenCell> row;
                    if (!cur.expect('['))
                        return failed();
                    if (!cur.peekConsume(']')) {
                        do {
                            row.push_back(parseCell(cur));
                        } while (!cur.failed() &&
                                 cur.peekConsume(','));
                        if (!cur.expect(']'))
                            return failed();
                    }
                    m.cells.push_back(std::move(row));
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return failed();
            }
        } else {
            cur.fail("unknown key '" + key + "'");
            return failed();
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (cur.failed() || !cur.expect('}'))
        return failed();
    if (!cur.atEnd()) {
        cur.fail("trailing content after golden object");
        return failed();
    }
    if (!sawCells) {
        cur.fail("golden has no \"cells\" key");
        return failed();
    }
    if (m.cells.size() != m.rows.size()) {
        cur.fail("cells row count does not match rows");
        return failed();
    }
    for (const auto &row : m.cells) {
        if (row.size() != m.cols.size()) {
            cur.fail("cells column count does not match cols");
            return failed();
        }
    }
    for (const auto &row : m.cells) {
        for (const GoldenCell &cell : row) {
            if (!m.hasAccuracy && !cell.accuracy.empty()) {
                cur.fail("cell has accuracy values but the golden "
                         "declares no absEps tolerance");
                return failed();
            }
            for (const auto &[name, values] : cell.accuracy) {
                if (values.size() != cell.runs) {
                    cur.fail("cell " + name + " array has " +
                             std::to_string(values.size()) +
                             " values for " +
                             std::to_string(cell.runs) + " runs");
                    return failed();
                }
            }
        }
    }
    return m;
}

MatrixDiff
compareGolden(const GoldenMatrix &golden, const GoldenMatrix &actual)
{
    MatrixDiff diff;

    const auto indexOf = [](const std::vector<std::string> &labels) {
        std::map<std::string, std::size_t> index;
        for (std::size_t i = 0; i < labels.size(); ++i)
            index.emplace(labels[i], i);
        return index;
    };
    const auto goldenRows = indexOf(golden.rows);
    const auto goldenCols = indexOf(golden.cols);
    const auto actualRows = indexOf(actual.rows);
    const auto actualCols = indexOf(actual.cols);

    for (const std::string &row : golden.rows)
        if (!actualRows.count(row))
            diff.structural.push_back("row removed: " + row);
    for (const std::string &row : actual.rows)
        if (!goldenRows.count(row))
            diff.structural.push_back("row added: " + row);
    for (const std::string &col : golden.cols)
        if (!actualCols.count(col))
            diff.structural.push_back("column removed: " + col);
    for (const std::string &col : actual.cols)
        if (!goldenCols.count(col))
            diff.structural.push_back("column added: " + col);

    const auto cellAt =
        [](const GoldenMatrix &m,
           const std::map<std::string, std::size_t> &rows,
           const std::map<std::string, std::size_t> &cols,
           const std::string &row, const std::string &col)
        -> std::optional<GoldenCell> {
        const auto r = rows.find(row);
        const auto c = cols.find(col);
        if (r == rows.end() || c == cols.end())
            return std::nullopt;
        return m.cells[r->second][c->second];
    };

    // Walk the union of labels in golden order first, then the
    // additions, so diff output order is deterministic.
    std::vector<std::string> rowUnion = golden.rows;
    for (const std::string &row : actual.rows)
        if (!goldenRows.count(row))
            rowUnion.push_back(row);
    std::vector<std::string> colUnion = golden.cols;
    for (const std::string &col : actual.cols)
        if (!goldenCols.count(col))
            colUnion.push_back(col);

    // Accuracy values compare under the golden's recorded
    // tolerance, every other cell field exactly.  Each violation
    // becomes a note naming the field, the grid point within the
    // cell, both values and the delta.
    const auto accuracyDrift = [&golden](const GoldenCell &g,
                                         const GoldenCell &a) {
        std::vector<std::string> notes;
        if (!golden.hasAccuracy)
            return notes;
        const double eps = golden.absEps;
        for (const auto &[name, expected] : g.accuracy) {
            const auto hit = a.accuracy.find(name);
            if (hit == a.accuracy.end()) {
                notes.push_back(name + ": missing from actual");
                continue;
            }
            const std::vector<double> &got = hit->second;
            if (got.size() != expected.size()) {
                notes.push_back(
                    name + ": golden has " +
                    std::to_string(expected.size()) +
                    " values, actual " +
                    std::to_string(got.size()));
                continue;
            }
            for (std::size_t i = 0; i < expected.size(); ++i) {
                const double delta =
                    std::fabs(expected[i] - got[i]);
                if (delta <= eps)
                    continue;
                char buf[160];
                std::snprintf(
                    buf, sizeof buf,
                    "%s[%zu]: golden %s -> actual %s "
                    "(|delta| %s > absEps %s)",
                    name.c_str(), i,
                    tool::shortestExactDouble(expected[i]).c_str(),
                    tool::shortestExactDouble(got[i]).c_str(),
                    tool::shortestExactDouble(delta).c_str(),
                    tool::shortestExactDouble(eps).c_str());
                notes.push_back(buf);
            }
        }
        for (const auto &[name, values] : a.accuracy)
            if (!g.accuracy.count(name))
                notes.push_back(name + ": missing from golden");
        return notes;
    };

    for (const std::string &row : rowUnion) {
        for (const std::string &col : colUnion) {
            const auto g =
                cellAt(golden, goldenRows, goldenCols, row, col);
            const auto a =
                cellAt(actual, actualRows, actualCols, row, col);
            if (!g && !a)
                continue;
            if (g && a) {
                const bool exact_equal = g->runs == a->runs &&
                                         g->leaks == a->leaks &&
                                         g->pattern == a->pattern;
                auto notes = accuracyDrift(*g, *a);
                if (exact_equal && notes.empty())
                    continue;
                diff.cells.push_back(
                    {row, col, g, a, std::move(notes)});
                continue;
            }
            diff.cells.push_back({row, col, g, a, {}});
        }
    }
    return diff;
}

std::string
renderDiff(const MatrixDiff &diff)
{
    if (diff.empty())
        return "matrices agree\n";
    std::ostringstream os;
    for (const std::string &note : diff.structural)
        os << "  [shape] " << note << "\n";
    for (const CellDiff &cell : diff.cells) {
        os << "  [cell] (" << cell.row << " x " << cell.col
           << "): golden " << describeCell(cell.golden)
           << " -> actual " << describeCell(cell.actual) << "\n";
        for (const std::string &note : cell.accuracyNotes)
            os << "         " << note << "\n";
    }
    return os.str();
}

} // namespace specsec::regress
