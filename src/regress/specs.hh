/**
 * @file
 * The named campaign specs pinned by the golden regression gate.
 *
 * Each spec here is the single source of truth for one
 * table/figure-producing sweep: the bench reproductions
 * (bench_table2, bench_table3, bench_ablation) run these exact specs
 * through the engine, and specsec_regress gates their success
 * matrices against committed goldens -- so the path that prints a
 * paper table and the path CI checks are the same code.
 */

#ifndef SPECSEC_REGRESS_SPECS_HH
#define SPECSEC_REGRESS_SPECS_HH

#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace specsec::regress
{

/** One gated spec: golden file stem + what it reproduces. */
struct NamedSpec
{
    std::string name; ///< golden/<name>.json
    std::string description;
    campaign::ScenarioSpec spec;
};

/** Every spec gated by the golden regression suite, stable order. */
const std::vector<NamedSpec> &registeredSpecs();

/** @return the registered spec called @p name, or nullptr. */
const NamedSpec *findSpec(const std::string &name);

/** @name Spec builders shared with the bench reproductions. @{ */

/// Table II industry rows: each mechanism as a defense column over
/// the variants the table pairs it with.
campaign::ScenarioSpec table2IndustrySpec();

/// Table II / Section V-B academia mechanisms, same shape.
campaign::ScenarioSpec table2AcademiaSpec();

/// Table III executable cross-check: every runnable variant against
/// the undefended baseline core (all must leak).
campaign::ScenarioSpec table3BaselineSpec();

/// bench_ablation 1: Spectre v1 vs. the speculation window
/// (bound-fetch miss latency), one column per latency.
campaign::ScenarioSpec ablationSpectreWindowSpec();

/// bench_ablation 2: Meltdown vs. the exception-delivery window.
campaign::ScenarioSpec ablationMeltdownDeliverySpec();

/// bench_ablation 3: Foreshadow vs. authorization latency with an
/// immediate squash.
campaign::ScenarioSpec ablationForeshadowAuthSpec();

/// Software mitigations (kpti, RSB stuffing, lfence, address
/// masking, L1 flush) as a first-class grid dimension.
campaign::ScenarioSpec mitigationMatrixSpec();

/// VulnConfig ablations: every Meltdown-type variant against cores
/// with one forwarding path removed at a time.
campaign::ScenarioSpec vulnAblationSpec();

/// Cache-geometry sweeps (sets/ways/latency) as a grid dimension.
campaign::ScenarioSpec cacheGeometrySpec();

/// Transform-backed mitigations (fence-harden, mask-harden) across
/// every enum-backed attack with a static program; the static
/// backend re-verifies each hardened cell from the rewritten
/// program.
campaign::ScenarioSpec staticHardeningSpec();

/// @}

} // namespace specsec::regress

#endif // SPECSEC_REGRESS_SPECS_HH
