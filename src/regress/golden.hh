/**
 * @file
 * Golden success-matrix regression gate.
 *
 * The paper's core results are success matrices: which attack
 * variants leak under which defenses (Tables II/III).  A reproduction
 * is only trustworthy if those matrices cannot drift silently as the
 * codebase grows, so each named campaign spec (src/regress/specs.hh)
 * pins its matrix as a golden JSON file under golden/.  The gate
 * re-runs the spec, compares cell-by-cell, and renders a
 * human-readable diff naming every changed (variant, defense) cell.
 *
 * Goldens recorded with `--record --with-accuracy` additionally pin
 * every schema-declared kAccuracy field (tool/schema.hh) per grid
 * point, compared under an explicit absolute tolerance (absEps)
 * recorded in the golden file — accuracy drift beyond the tolerance
 * fails the gate with a line naming the field, the grid point, both
 * values and the delta.  Legacy goldens (no accuracy arrays)
 * compare exactly as before.
 */

#ifndef SPECSEC_REGRESS_GOLDEN_HH
#define SPECSEC_REGRESS_GOLDEN_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace specsec::regress
{

/** One (variant, defense) cell: grid points run and how many leaked. */
struct GoldenCell
{
    unsigned runs = 0;
    unsigned leaks = 0;
    /// Per-grid-point leak bits ('1'/'0') in expansion order.  Cells
    /// aggregating a knob sweep (mitigations, vuln ablations, cache
    /// geometries, ...) would otherwise pin only the leak *count*: a
    /// regression that swaps WHICH sweep value leaks while keeping
    /// the total would pass.  The pattern pins the full shape.
    std::string pattern;

    /// Per-grid-point values of every schema-declared kAccuracy
    /// field (tool::outcomeSchema()), expansion order, keyed by
    /// field name — parallel to @c pattern.  Empty in goldens
    /// recorded before the accuracy migration; such files compare
    /// exactly as they always did.  Populated cells are compared
    /// under the matrix's explicit absEps tolerance, so partially-
    /// leaking cells pin their accuracy *values*, not just counts.
    std::map<std::string, std::vector<double>> accuracy;

    bool operator==(const GoldenCell &) const = default;
};

/** The persisted contract of one named campaign spec. */
struct GoldenMatrix
{
    std::string spec;
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    /// cells[r][c] pairs rows[r] with cols[c].
    std::vector<std::vector<GoldenCell>> cells;

    /// True when this golden pins accuracy values; recorded via an
    /// explicit `specsec_regress --record --with-accuracy`
    /// migration, never implicitly.
    bool hasAccuracy = false;

    /// Absolute tolerance for accuracy comparisons, recorded in the
    /// golden file itself ("absEps") so the gate's contract is
    /// explicit and per-spec.
    double absEps = 0.0;

    /**
     * Build from a report; @p with_accuracy additionally captures
     * every kAccuracy outcome field per grid point (the caller
     * sets absEps — typically inherited from the golden being
     * checked or re-recorded).
     */
    static GoldenMatrix
    fromReport(const campaign::CampaignReport &report,
               bool with_accuracy = false);
};

/**
 * Serialize as stable, line-per-row JSON: byte-identical for equal
 * matrices, so goldens diff cleanly under version control.
 */
std::string goldenJson(const GoldenMatrix &matrix);

/**
 * Parse goldenJson() output (a strict subset of JSON: objects,
 * arrays, strings, unsigned integers).  @return nullopt on malformed
 * input, with a position-tagged message in @p error when given.
 */
std::optional<GoldenMatrix>
parseGoldenJson(const std::string &text,
                std::string *error = nullptr);

/** One drifted cell: present-but-different, added, or removed. */
struct CellDiff
{
    std::string row;
    std::string col;
    std::optional<GoldenCell> golden; ///< nullopt: cell is new
    std::optional<GoldenCell> actual; ///< nullopt: cell disappeared

    /// Human-readable accuracy drift, one line per out-of-tolerance
    /// value, naming the field, grid point, both values, the delta
    /// and the tolerance it exceeded.
    std::vector<std::string> accuracyNotes;
};

/** Everything that changed between a golden and a fresh run. */
struct MatrixDiff
{
    /// Shape changes: added/removed row or column labels.
    std::vector<std::string> structural;
    std::vector<CellDiff> cells;

    bool empty() const
    {
        return structural.empty() && cells.empty();
    }
};

/**
 * Cell-by-cell comparison.  Rows/columns are matched by label (not
 * index) so a pure reordering reports no cell drift; labels present
 * on only one side become structural notes plus per-cell entries.
 * Runs/leaks/patterns compare exactly; when @p golden pins accuracy
 * values they compare under its absEps (|golden - actual| <= eps
 * per grid point), and each violation is named in the cell's
 * accuracyNotes.
 */
MatrixDiff compareGolden(const GoldenMatrix &golden,
                         const GoldenMatrix &actual);

/** Human-readable rendering, one line per change. */
std::string renderDiff(const MatrixDiff &diff);

} // namespace specsec::regress

#endif // SPECSEC_REGRESS_GOLDEN_HH
