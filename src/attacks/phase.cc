#include "phase.hh"

#include <atomic>

namespace specsec::attacks
{

namespace
{

struct PhaseCounters
{
    std::atomic<std::uint64_t> nanos[4]{};
    std::atomic<std::uint64_t> cells{0};
};

PhaseCounters gCounters;

} // namespace

PhaseProfile
phaseProfile()
{
    PhaseProfile p;
    p.buildNanos = gCounters.nanos[static_cast<int>(Phase::Build)]
                       .load(std::memory_order_relaxed);
    p.prologueNanos =
        gCounters.nanos[static_cast<int>(Phase::Prologue)].load(
            std::memory_order_relaxed);
    p.teardownNanos =
        gCounters.nanos[static_cast<int>(Phase::Teardown)].load(
            std::memory_order_relaxed);
    p.totalNanos = gCounters.nanos[static_cast<int>(Phase::Total)]
                       .load(std::memory_order_relaxed);
    p.cells = gCounters.cells.load(std::memory_order_relaxed);
    return p;
}

void
resetPhaseProfile()
{
    for (auto &n : gCounters.nanos)
        n.store(0, std::memory_order_relaxed);
    gCounters.cells.store(0, std::memory_order_relaxed);
}

void
recordPhaseNanos(Phase phase, std::uint64_t nanos)
{
    gCounters.nanos[static_cast<int>(phase)].fetch_add(
        nanos, std::memory_order_relaxed);
    if (phase == Phase::Total)
        gCounters.cells.fetch_add(1, std::memory_order_relaxed);
}

} // namespace specsec::attacks
