/**
 * @file
 * A *new* attack composed per Section V-A: combine the Spectre v2
 * trigger (indirect-branch target injection) with the LazyFP secret
 * source (stale FPU state) — a point in the paper's attack space
 * that no published variant occupies.
 *
 * The attacker trains the BTB so the victim's indirect branch
 * transiently executes a gadget that reads the *previous* context's
 * floating-point register (never raising the FPU fault, because the
 * gadget is squashed before commit) and sends it through the cache
 * channel.
 */

#ifndef SPECSEC_ATTACKS_COMPOSED_HH
#define SPECSEC_ATTACKS_COMPOSED_HH

#include "attack_kit.hh"

namespace specsec::attacks
{

/** BTB injection steering into a stale-FPU read gadget. */
AttackResult runComposedV2FpuGadget(const CpuConfig &config,
                                    const AttackOptions &options = {});

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_COMPOSED_HH
