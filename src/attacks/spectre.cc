#include "spectre.hh"

#include "snapshot.hh"

using namespace specsec::uarch;

namespace specsec::attacks
{

namespace
{

/** Registers used by the attack programs. */
constexpr RegId rIdx = 1;    ///< attacker-controlled index
constexpr RegId rPtr = 2;    ///< address of the slow (flushed) word
constexpr RegId rBase = 3;   ///< victim data base
constexpr RegId rProbe = 4;  ///< probe array base
constexpr RegId rSlow = 5;   ///< value loaded from [rPtr]
constexpr RegId rByte = 6;   ///< the secret byte
constexpr RegId rAddr = 7;   ///< computed address
constexpr RegId rEnc = 8;    ///< encoded probe offset
constexpr RegId rSend = 9;   ///< probe address
constexpr RegId rSink = 10;  ///< send target
constexpr RegId rVal = 11;   ///< attacker-chosen store value
constexpr RegId rIdx2 = 12;  ///< reloaded index
constexpr RegId rIdxPtr = 13;///< address of the index variable
constexpr RegId rTable = 14; ///< table base

/** Emit the "use + send" tail: encode rByte and touch the probe. */
void
emitSend(Program &p, unsigned shift)
{
    p.emit(shlImm(rEnc, rByte, shift));
    p.emit(add(rSend, rProbe, rEnc));
    p.emit(load8(rSink, rSend, 0));
}

/** Bounds-check-bypass program shared by v1/v1.1/v1.2. */
struct BoundsProgram
{
    Program program;
    std::size_t bailPc = 0;
};

} // anonymous namespace

AttackResult
runSpectreV1(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);

    // ChannelHarness construction only records bases/refs, so it is
    // safe outside the warm bracket; everything the prologue lambda
    // produces is captured by / restored from the snapshot.
    ChannelHarness ch(cpu, opt.channel);

    warmPrologue(s, warmAttackKey("spectre-v1", config, opt), [&] {
        s.plantBytes(Layout::kUserSecret, secret);
        s.mem().write64(Layout::kVictimBound, 16);

        Program p;
        p.emit(load64(rSlow, rPtr, 0)); // bound (flushed at attack
                                        // time)
        auto bail = p.newLabel();
        p.emitBranch(Cond::Geu, rIdx, rSlow, bail); // authorization
        if (opt.softwareLfence)
            p.emit(lfence()); // strategy 1: serialize after the check
        if (opt.addressMasking)
            p.emit(andImm(rIdx, rIdx, 0xf)); // clamp into [0, 16)
        p.emit(add(rAddr, rBase, rIdx));
        p.emit(load8(rByte, rAddr, 0)); // Load S (OOB when attacking)
        emitSend(p, ch.sendShift());
        p.bind(bail);
        p.emit(halt());
        cpu.loadProgram(p);
        cpu.setPrivilege(Privilege::User);

        cpu.setReg(rPtr, Layout::kVictimBound);
        cpu.setReg(rBase, Layout::kVictimArray);
        cpu.setReg(rProbe, ch.sendBase());

        // Step 1(b): train the bounds-check branch toward not-taken.
        for (unsigned t = 0; t < opt.trainingRounds; ++t) {
            cpu.warmLine(Layout::kVictimBound);
            cpu.setReg(rIdx, t % 16);
            cpu.run(0);
        }
    });

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        ch.setup();                                  // step 1(a)
        if (opt.delayAuthorization)
            cpu.flushLineVirt(Layout::kVictimBound); // step 2: delay
        else
            cpu.warmLine(Layout::kVictimBound);
        cpu.warmLine(Layout::kUserSecret + i);       // victim-hot data
        cpu.setReg(rIdx,
                   Layout::kUserSecret + i - Layout::kVictimArray);
        cpu.run(0);
        recovered.push_back(ch.recover({
            ch.noiseSet(Layout::kVictimBound),
            ch.noiseSet(Layout::kUserSecret + i),
        }));
        // Re-train after the mispredict nudged the counter.
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(rIdx, i % 16);
        cpu.run(0);
    }
    return scoreResult("Spectre v1", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

namespace
{

/** Shared v1.1 / v1.2 implementation: the transient store target
 *  differs (writable victim page vs. read-only page). */
AttackResult
runStoreRedirect(const char *name, Addr idx_addr,
                 const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);

    ChannelHarness ch(cpu, opt.channel);

    // The key is per-attack: v1.1 and v1.2 differ in idx_addr (and
    // thus in planted memory and trained register state).
    warmPrologue(s, warmAttackKey(name, config, opt), [&] {
        s.plantBytes(Layout::kUserSecret, secret);
        s.mem().write64(Layout::kVictimBound, 16);
        s.mem().write64(idx_addr, 0); // benign index value

        Program p;
        p.emit(load64(rSlow, rPtr, 0)); // bound (flushed)
        auto bail = p.newLabel();
        p.emitBranch(Cond::Geu, rIdx, rSlow, bail);
        if (opt.softwareLfence)
            p.emit(lfence());
        if (opt.addressMasking)
            p.emit(andImm(rIdx, rIdx, 0xf));
        p.emit(add(rAddr, rBase, rIdx));
        p.emit(store64(rAddr, 0, rVal)); // transient OOB / read-only
                                         // store
        p.emit(load64(rIdx2, rIdxPtr, 0)); // forwarded attacker value
        p.emit(add(rAddr, rTable, rIdx2));
        p.emit(load8(rByte, rAddr, 0));    // victim secret
        emitSend(p, ch.sendShift());
        p.bind(bail);
        p.emit(halt());
        cpu.loadProgram(p);
        cpu.setPrivilege(Privilege::User);

        cpu.setReg(rPtr, Layout::kVictimBound);
        cpu.setReg(rBase, Layout::kVictimArray);
        cpu.setReg(rProbe, ch.sendBase());
        cpu.setReg(rIdxPtr, idx_addr);
        cpu.setReg(rTable, Layout::kVictimTable);

        for (unsigned t = 0; t < opt.trainingRounds; ++t) {
            cpu.warmLine(Layout::kVictimBound);
            cpu.setReg(rIdx, t % 16);
            cpu.setReg(rVal, 0);
            cpu.run(0);
        }
    });

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        ch.setup();
        cpu.flushLineVirt(Layout::kVictimBound);
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.setReg(rIdx, idx_addr - Layout::kVictimArray); // OOB
        cpu.setReg(rVal,
                   Layout::kUserSecret + i - Layout::kVictimTable);
        cpu.run(0);
        recovered.push_back(ch.recover({
            ch.noiseSet(Layout::kVictimBound),
            ch.noiseSet(idx_addr),
            ch.noiseSet(Layout::kUserSecret + i),
        }));
        cpu.warmLine(Layout::kVictimBound);
        cpu.setReg(rIdx, i % 16);
        cpu.setReg(rVal, 0);
        cpu.run(0);
    }
    return scoreResult(name, recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // anonymous namespace

AttackResult
runSpectreV1_1(const CpuConfig &config, const AttackOptions &opt)
{
    return runStoreRedirect("Spectre v1.1", Layout::kVictimIdx, config,
                            opt);
}

AttackResult
runSpectreV1_2(const CpuConfig &config, const AttackOptions &opt)
{
    return runStoreRedirect("Spectre v1.2", Layout::kReadOnlyIdx,
                            config, opt);
}

AttackResult
runSpectreV2(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(Layout::kUserSecret, secret);
    s.mem().write64(Layout::kVictimPtr, 2); // legitimate target: pc 2

    ChannelHarness ch(cpu, opt.channel);

    // Victim: indirect branch whose target loads slowly; the gadget
    // at pc 8 is legitimate victim code the attacker repurposes.
    Program victim;
    victim.emit(load64(rSlow, rPtr, 0)); // 0: target (flushed)
    victim.emit(jmpInd(rSlow));          // 1: indirect branch
    victim.emit(halt());                 // 2: legitimate target
    while (victim.size() < 8)
        victim.emit(nop());
    victim.emit(load8(rByte, rAddr, 0)); // 8: gadget: Load S
    emitSend(victim, ch.sendShift());
    victim.emit(halt());

    // Attacker: trains BTB[1] -> 8 from its own context.
    Program trainer;
    trainer.emit(movImm(rSlow, 8)); // 0
    trainer.emit(jmpInd(rSlow));    // 1: same pc as victim's branch
    while (trainer.size() < 8)
        trainer.emit(nop());
    trainer.emit(halt());           // 8

    cpu.setPrivilege(Privilege::User);

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        // Step 1(b): mistrain from the attacker context.
        cpu.contextSwitch(1);
        cpu.loadProgram(trainer);
        for (unsigned t = 0; t < opt.trainingRounds; ++t)
            cpu.run(0);

        // Victim runs with attacker-influenced register state.
        cpu.contextSwitch(0);
        cpu.loadProgram(victim);
        ch.setup();
        cpu.flushLineVirt(Layout::kVictimPtr); // delay authorization
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.setReg(rPtr, Layout::kVictimPtr);
        cpu.setReg(rAddr, Layout::kUserSecret + i);
        cpu.setReg(rProbe, ch.sendBase());
        cpu.run(0);

        // Receiver measures from the attacker context.
        cpu.contextSwitch(1);
        recovered.push_back(ch.recover({
            ch.noiseSet(Layout::kVictimPtr),
            ch.noiseSet(Layout::kUserSecret + i),
        }));
    }
    return scoreResult("Spectre v2", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

AttackResult
runSpectreV4(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);

    ChannelHarness ch(cpu, opt.channel);

    // Victim: store through a slow pointer, then load the same
    // address directly.  The load speculatively bypasses the store
    // and reads the stale secret.
    Program p;
    p.emit(load64(rSlow, rPtr, 0));  // 0: store address (flushed)
    p.emit(store64(rSlow, 0, rVal)); // 1: overwrite stale secret
    p.emit(load8(rByte, rBase, 0));  // 2: bypassing load (Read S)
    emitSend(p, ch.sendShift());
    p.emit(halt());
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::User);

    s.mem().write64(Layout::kVictimPtr, Layout::kStaleAddr);
    cpu.setReg(rPtr, Layout::kVictimPtr);
    cpu.setReg(rBase, Layout::kStaleAddr);
    cpu.setReg(rProbe, ch.sendBase());
    cpu.setReg(rVal, 0); // the fresh (non-secret) value

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        s.mem().write8(Layout::kStaleAddr, secret[i]); // stale data
        ch.setup();
        cpu.warmLine(Layout::kStaleAddr);
        cpu.flushLineVirt(Layout::kVictimPtr); // delay disambiguation
        cpu.run(0);
        // The committed re-execution sends rVal (0): exclude slot 0,
        // plus victim-line sets under Prime+Probe.
        recovered.push_back(ch.recover({
            0,
            ch.noiseSet(Layout::kVictimPtr),
            ch.noiseSet(Layout::kStaleAddr),
        }));
    }
    return scoreResult("Spectre v4", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

AttackResult
runSpectreRsb(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(Layout::kUserSecret, secret);

    ChannelHarness ch(cpu, opt.channel);

    // Victim: a return whose RSB entry was consumed (underflow); the
    // actual target resolves slowly (deep stack, cold line).
    Program victim;
    victim.emit(ret());  // 0: underflowing return
    victim.emit(halt()); // 1: actual fall-through target
    while (victim.size() < 8)
        victim.emit(nop());
    victim.emit(load8(rByte, rAddr, 0)); // 8: gadget
    emitSend(victim, ch.sendShift());
    victim.emit(halt());

    // Attacker: trains BTB[0] -> 8 (the underflow fallback path).
    Program trainer;
    trainer.emit(jmpInd(rSlow)); // 0
    while (trainer.size() < 8)
        trainer.emit(nop());
    trainer.emit(halt());        // 8

    cpu.setPrivilege(Privilege::User);
    cpu.setRetResolveExtraDelay(300);

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        cpu.contextSwitch(1);
        cpu.loadProgram(trainer);
        cpu.setReg(rSlow, 8);
        for (unsigned t = 0; t < opt.trainingRounds; ++t)
            cpu.run(0);

        cpu.contextSwitch(0);
        cpu.loadProgram(victim);
        ch.setup();
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.setReg(rAddr, Layout::kUserSecret + i);
        cpu.setReg(rProbe, ch.sendBase());
        if (opt.rsbStuffing)
            cpu.rsb().stuff(1); // benign stuffed target
        cpu.run(0);

        cpu.contextSwitch(1);
        recovered.push_back(
            ch.recover({ch.noiseSet(Layout::kUserSecret + i)}));
    }
    cpu.setRetResolveExtraDelay(0);
    return scoreResult("Spectre RSB", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

AttackResult
runSpoiler(const CpuConfig &config, const AttackOptions &opt)
{
    (void)opt;
    Scenario s(config);
    Cpu &cpu = s.cpu();

    // Candidate pages 0..15 are identity phys-mapped at 0x500000 +
    // j*4K; the probe target sits at 0x600000 + hidden*4K.  The low
    // 20 physical address bits of candidate j match the target's iff
    // j == hidden: the 1MB alias Spoiler detects by timing.
    constexpr int kCandidates = 16;
    const int hidden = 11;
    for (int j = 0; j < kCandidates; ++j) {
        Pte pte;
        pte.physPage = (0x500000 / kPageSize) + static_cast<Addr>(j);
        s.pageTable().map(Layout::kSpoilerBase +
                              static_cast<Addr>(j) * kPageSize,
                          pte);
    }
    Pte target;
    target.physPage =
        (0x600000 / kPageSize) + static_cast<Addr>(hidden);
    s.pageTable().map(Layout::kScratch, target);

    // r5 = candidate address (same page offset as the load target),
    // store data comes off a dependency chain so the store lingers
    // in the store buffer while the load issues.
    Program p;
    p.emit(movImm(rVal, 1));
    for (int k = 0; k < 8; ++k)
        p.emit(add(rVal, rVal, rVal));
    p.emit(store64(rSlow, 0, rVal));
    p.emit(nop());
    p.emit(nop());
    p.emit(load8(rByte, rBase, 0));
    p.emit(halt());
    cpu.loadProgram(p);
    cpu.setPrivilege(Privilege::User);
    cpu.setReg(rBase, Layout::kScratch + 0x40);

    const std::uint64_t c0 = cpu.stats().cycles;
    std::uint64_t best_cycles = 0;
    int best_j = -1;
    for (int j = 0; j < kCandidates; ++j) {
        const Addr candidate = Layout::kSpoilerBase +
                               static_cast<Addr>(j) * kPageSize + 0x40;
        cpu.warmLine(candidate);
        cpu.warmLine(Layout::kScratch + 0x40);
        cpu.setReg(rSlow, candidate);
        const RunResult r = cpu.run(0);
        if (r.cycles > best_cycles) {
            best_cycles = r.cycles;
            best_j = j;
        }
    }
    return scoreResult("Spoiler", {best_j},
                       {static_cast<std::uint8_t>(hidden)},
                       cpu.stats().cycles - c0, 0);
}

} // namespace specsec::attacks
