/**
 * @file
 * Scenario scaffolding shared by every executable attack: the memory
 * layout, page table setup, covert-channel harness and result
 * scoring.
 *
 * Every attack runner follows the paper's five steps: (1) channel
 * setup + predictor/buffer preparation, (2) delayed authorization,
 * (3) transient secret access, (4) use + send through the channel,
 * (5) receive by timing.  A run leaks when the recovered bytes match
 * the planted secret.
 */

#ifndef SPECSEC_ATTACKS_ATTACK_KIT_HH
#define SPECSEC_ATTACKS_ATTACK_KIT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/variants.hh"
#include "uarch/covert.hh"
#include "uarch/cpu.hh"

namespace specsec::attacks
{
struct ScenarioArena; // snapshot.hh
}

namespace specsec::attacks
{

using core::CovertChannelKind;
using uarch::Addr;
using uarch::Cpu;
using uarch::CpuConfig;
using uarch::Word;

/** Fixed virtual memory layout for all scenarios. */
struct Layout
{
    static constexpr Addr kProbeArray = 0x100000;  ///< 256 x 4KB shared
    static constexpr Addr kEvictArray = 0x200000;  ///< prime+probe fill
    static constexpr Addr kVictimArray = 0x300000; ///< bounds-checked
    static constexpr Addr kVictimBound = 0x301000; ///< array length
    static constexpr Addr kVictimTable = 0x302000; ///< v1.1 table
    static constexpr Addr kVictimIdx = 0x303040;   ///< v1.1 index var
    static constexpr Addr kStaleAddr = 0x304000;   ///< v4 stale slot
    static constexpr Addr kVictimPtr = 0x305000;   ///< slow pointers
    static constexpr Addr kScratch = 0x306000;
    static constexpr Addr kReadOnlyPage = 0x308000; ///< v1.2 target
    static constexpr Addr kReadOnlyIdx = 0x308040;
    static constexpr Addr kUserSecret = 0x310000;  ///< victim secret
    static constexpr Addr kKernelData = 0x320000;  ///< Meltdown
    static constexpr Addr kEnclaveData = 0x330000; ///< Foreshadow
    static constexpr Addr kVmmData = 0x340000;     ///< Foreshadow-VMM
    static constexpr Addr kUnmapped = 0x3f0000;    ///< MDS faults
    static constexpr Addr kSpoilerBase = 0x400000; ///< candidate pages
    static constexpr std::size_t kMemorySize = 0x800000;
};

/**
 * A scenario owns the memory, page table and CPU for one attack.
 *
 * The Memory/PageTable pair lives in a ScenarioArena forked from
 * the process-wide ScenarioSnapshot (snapshot.hh): under the
 * default Fork build mode the arena comes from a pool and is reset
 * — not reconstructed — between scenarios, which is what makes
 * sweep cells cheap.  The Cpu is always built fresh (its config is
 * the thing grid cells vary).
 */
class Scenario
{
  public:
    explicit Scenario(const CpuConfig &config);
    ~Scenario();

    Cpu &cpu() { return *cpu_; }
    uarch::Memory &mem();
    uarch::PageTable &pageTable();

    /** Plant bytes at a virtual (identity-mapped) address. */
    void plantBytes(Addr vaddr, const std::vector<std::uint8_t> &data);

    /** Read bytes back for verification. */
    std::vector<std::uint8_t> readBytes(Addr vaddr,
                                        std::size_t len) const;

  private:
    std::unique_ptr<ScenarioArena> arena_;
    std::unique_ptr<Cpu> cpu_;
};

/**
 * Channel harness: one interface over Flush+Reload and Prime+Probe,
 * providing the shift amount the sender program must apply to encode
 * a byte as a probe address.
 */
class ChannelHarness
{
  public:
    ChannelHarness(Cpu &cpu, CovertChannelKind kind);

    /** Step 1(a). */
    void setup();

    /**
     * Step 5; @return recovered byte or -1.
     *
     * @param exclude Slots to ignore: the value a committed
     *        re-execution sends (Spectre v4), or -- for Prime+Probe
     *        -- cache sets the victim's non-send loads evict, which
     *        a real attacker calibrates away by profiling runs with
     *        known-absent secrets.
     */
    int recover(const std::vector<int> &exclude = {});

    /**
     * The cache set a victim access at @p vaddr disturbs: a noise
     * slot the Prime+Probe receiver should exclude.  Returns -1 for
     * Flush+Reload (page-strided slots do not collide with victim
     * data lines).
     */
    int noiseSet(Addr vaddr) const;

    /** log2(stride) the sender applies to the secret byte. */
    unsigned sendShift() const;

    /** Base address the sender adds the shifted byte to. */
    Addr sendBase() const { return Layout::kProbeArray; }

    CovertChannelKind kind() const { return kind_; }

  private:
    Cpu &cpu_;
    CovertChannelKind kind_;
    uarch::FlushReloadChannel fr_;
    uarch::PrimeProbeChannel pp_;
};

/** Options shared by the attack runners. */
struct AttackOptions
{
    CovertChannelKind channel = CovertChannelKind::FlushReload;
    std::size_t secretLen = 8;
    /// Foreshadow: flush L1 on enclave/kernel/VMM exit (defense).
    bool flushL1OnExit = false;
    /// Meltdown: unmap kernel pages from the user page table (KPTI).
    bool kpti = false;
    /// Spectre-RSB: stuff the RSB with a benign target (defense).
    bool rsbStuffing = false;
    /// Bounds-bypass family: insert LFENCE after the bounds check
    /// (the Table II serialization defense, strategy 1).
    bool softwareLfence = false;
    /// Bounds-bypass family: mask the index into the legal range
    /// (the Table II address-masking defense, strategy 1).
    bool addressMasking = false;
    /// Number of predictor training iterations.
    unsigned trainingRounds = 8;
    /// Step 2 control: when false the authorization is NOT delayed
    /// (the bound stays cached), so the speculation window closes
    /// before the transient chain runs -- the attack must fail.
    /// Demonstrates that delayed authorization is a necessary
    /// attack step, per Section III.
    bool delayAuthorization = true;
};

/** Outcome of one attack experiment. */
struct AttackResult
{
    std::string name;
    std::vector<int> recovered;
    std::vector<std::uint8_t> expected;
    double accuracy = 0.0; ///< fraction of bytes recovered correctly
    bool leaked = false;   ///< accuracy >= 0.9
    std::uint64_t guestCycles = 0;
    std::uint64_t transientForwards = 0;
};

/** Score recovered bytes against the planted secret. */
AttackResult scoreResult(std::string name,
                         const std::vector<int> &recovered,
                         const std::vector<std::uint8_t> &expected,
                         std::uint64_t guest_cycles,
                         std::uint64_t transient_forwards);

/** The default secret used by the attack runners. */
std::vector<std::uint8_t> defaultSecret(std::size_t len);

/**
 * Final CpuStats of the most recently destroyed Scenario on this
 * thread.  Every attack runner owns exactly one Scenario that dies
 * when the runner returns, so a caller reading this right after a
 * runner call observes that run's pipeline counters.  Thread-local,
 * so parallel sweep engines can collect stats without sharing.
 *
 * Callers relying on the one-Scenario-per-run invariant should
 * check scenarioDeathCount() advanced by exactly one across the
 * call (runner.cc does); a runner that constructs several Scenarios
 * must be taught to report stats explicitly instead.
 */
const uarch::CpuStats &lastScenarioStats();

/** Scenarios destroyed on this thread so far (invariant checking). */
std::uint64_t scenarioDeathCount();

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_ATTACK_KIT_HH
