/**
 * @file
 * Dispatcher: run any cataloged attack variant on a configured CPU.
 */

#ifndef SPECSEC_ATTACKS_RUNNER_HH
#define SPECSEC_ATTACKS_RUNNER_HH

#include "core/variants.hh"
#include "meltdown.hh"
#include "mds.hh"
#include "spectre.hh"

namespace specsec::attacks
{

/** Run the executable attack for @p variant. */
AttackResult runVariant(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options = {});

/**
 * Run the executable attack for @p variant and also report the final
 * pipeline counters of the scenario CPU in @p stats_out.  This is
 * the execution backend of the campaign engine (src/campaign): each
 * worker calls this overload once per unique scenario, and the
 * result + stats flow into every OutcomeSink observing the run (and
 * into the persistent ResultCache) as part of the ScenarioOutcome.
 */
AttackResult runVariant(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options,
                        uarch::CpuStats &stats_out);

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_RUNNER_HH
