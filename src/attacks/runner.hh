/**
 * @file
 * Dispatcher: run any cataloged attack variant on a configured CPU.
 *
 * Since the ScenarioCatalog redesign this is a thin lookup: the
 * variant's AttackDescriptor::execute hook (registered in
 * builtin_attacks.cc, or by an out-of-tree extension) does the work,
 * so registered attacks without an AttackVariant enumerator run
 * through the same entry points.
 */

#ifndef SPECSEC_ATTACKS_RUNNER_HH
#define SPECSEC_ATTACKS_RUNNER_HH

#include "core/catalog.hh"
#include "core/variants.hh"
#include "meltdown.hh"
#include "mds.hh"
#include "spectre.hh"

namespace specsec::attacks
{

/** Run the executable attack for @p variant. */
AttackResult runVariant(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options = {});

/**
 * Run the executable attack for @p variant and also report the final
 * pipeline counters of the scenario CPU in @p stats_out.  This is
 * the execution backend of the campaign engine (src/campaign): each
 * worker calls this overload once per unique scenario, and the
 * result + stats flow into every OutcomeSink observing the run (and
 * into the persistent ResultCache) as part of the ScenarioOutcome.
 */
AttackResult runVariant(core::AttackVariant variant,
                        const CpuConfig &config,
                        const AttackOptions &options,
                        uarch::CpuStats &stats_out);

/**
 * Wrap a plain `(config, options) -> AttackResult` attack runner
 * into the catalog's execute signature: run @p fn, then report the
 * final CpuStats of the Scenario it owned via lastScenarioStats().
 *
 * The wrapper enforces the one-Scenario-per-run invariant that makes
 * lastScenarioStats() this run's counters (scenarioDeathCount() must
 * advance by exactly one), failing loudly otherwise.  Every built-in
 * registration uses it; out-of-tree attacks built from attack_kit
 * steps should too.
 */
core::AttackExecuteFn statsCollectingExecute(
    std::function<AttackResult(const CpuConfig &,
                               const AttackOptions &)> fn);

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_RUNNER_HH
