#include "meltdown.hh"

using namespace specsec::uarch;

namespace specsec::attacks
{

namespace
{

constexpr RegId rBase = 3;
constexpr RegId rProbe = 4;
constexpr RegId rByte = 6;
constexpr RegId rTmp = 7;
constexpr RegId rEnc = 8;
constexpr RegId rSend = 9;
constexpr RegId rSink = 10;

/** Faulting-load program: load, encode, send, halt (the handler). */
Program
faultingLoadProgram(unsigned shift)
{
    Program p;
    p.emit(load8(rByte, rBase, 0)); // authorize-and-access
    p.emit(shlImm(rEnc, rByte, shift));
    p.emit(add(rSend, rProbe, rEnc));
    p.emit(load8(rSink, rSend, 0)); // send
    p.emit(halt());                 // 4: fault handler target
    return p;
}

constexpr Addr kHandlerPc = 4;

/** Word-source program: extract byte @p i of a 64-bit value that a
 *  special-register read produces. */
Program
wordExtractProgram(unsigned shift, unsigned byte_index, bool use_msr)
{
    Program p;
    if (use_msr)
        p.emit(rdmsr(rByte, 5));
    else
        p.emit(fpRead(rByte, 2));
    p.emit(shrImm(rTmp, rByte, 8 * byte_index));
    p.emit(andImm(rTmp, rTmp, 0xff));
    p.emit(shlImm(rEnc, rTmp, shift));
    p.emit(add(rSend, rProbe, rEnc));
    p.emit(load8(rSink, rSend, 0));
    p.emit(halt()); // 7: handler
    return p;
}

constexpr Addr kWordHandlerPc = 7;

Word
packWord(const std::vector<std::uint8_t> &bytes)
{
    Word w = 0;
    for (std::size_t i = 0; i < bytes.size() && i < 8; ++i)
        w |= static_cast<Word>(bytes[i]) << (8 * i);
    return w;
}

} // anonymous namespace

AttackResult
runMeltdown(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(Layout::kKernelData, secret);
    if (opt.kpti) {
        // KPTI: the kernel page simply is not in the user page table.
        s.pageTable().unmap(Layout::kKernelData);
    }

    ChannelHarness ch(cpu, opt.channel);
    cpu.loadProgram(faultingLoadProgram(ch.sendShift()));
    cpu.setPrivilege(Privilege::User);
    cpu.setFaultHandler(kHandlerPc);
    cpu.setReg(rProbe, ch.sendBase());

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        ch.setup();
        cpu.setReg(rBase, Layout::kKernelData + i);
        cpu.run(0);
        recovered.push_back(
            ch.recover({ch.noiseSet(Layout::kKernelData + i)}));
    }
    return scoreResult("Meltdown", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

AttackResult
runMeltdownV3a(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(std::min<std::size_t>(
        opt.secretLen, 8)); // one 64-bit system register
    cpu.setMsr(5, packWord(secret));

    ChannelHarness ch(cpu, opt.channel);
    cpu.setPrivilege(Privilege::User);
    cpu.setFaultHandler(kWordHandlerPc);
    cpu.setReg(rProbe, ch.sendBase());

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        cpu.loadProgram(wordExtractProgram(
            ch.sendShift(), static_cast<unsigned>(i), true));
        ch.setup();
        cpu.run(0);
        recovered.push_back(ch.recover());
    }
    return scoreResult("Meltdown v3a", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

namespace
{

/** Shared Foreshadow implementation across the three domains. */
AttackResult
runTerminalFault(const char *name, Addr secret_base,
                 Privilege victim_privilege, bool victim_enclave,
                 const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(secret_base, secret);

    // The attacker (acting as the OS for SGX, or a malicious guest
    // setup) clears the present bit: accesses now terminal-fault.
    s.pageTable().setPresent(secret_base, false);

    ChannelHarness ch(cpu, opt.channel);
    cpu.loadProgram(faultingLoadProgram(ch.sendShift()));
    cpu.setFaultHandler(kHandlerPc);
    cpu.setReg(rProbe, ch.sendBase());

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        ch.setup();

        // Victim phase: the protected domain touches its secret,
        // leaving it in the L1.
        cpu.setPrivilege(victim_privilege);
        cpu.setEnclaveMode(victim_enclave);
        cpu.warmLine(secret_base + i);
        if (opt.flushL1OnExit)
            cpu.flushLineVirt(secret_base + i); // the L1TF defense

        // Attacker phase.
        cpu.setPrivilege(Privilege::User);
        cpu.setEnclaveMode(false);
        cpu.setReg(rBase, secret_base + i);
        cpu.run(0);
        recovered.push_back(
            ch.recover({ch.noiseSet(secret_base + i)}));
    }
    return scoreResult(name, recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // anonymous namespace

AttackResult
runForeshadow(const CpuConfig &config, const AttackOptions &opt)
{
    return runTerminalFault("Foreshadow (L1TF)", Layout::kEnclaveData,
                            Privilege::User, true, config, opt);
}

AttackResult
runForeshadowOs(const CpuConfig &config, const AttackOptions &opt)
{
    return runTerminalFault("Foreshadow-OS", Layout::kKernelData,
                            Privilege::Kernel, false, config, opt);
}

AttackResult
runForeshadowVmm(const CpuConfig &config, const AttackOptions &opt)
{
    return runTerminalFault("Foreshadow-VMM", Layout::kVmmData,
                            Privilege::Vmm, false, config, opt);
}

AttackResult
runLazyFp(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(std::min<std::size_t>(
        opt.secretLen, 8)); // one FP register

    // Victim (context 0) puts its secret in f2.
    Program victim;
    victim.emit(fpMov(2, 1));
    victim.emit(halt());
    cpu.loadProgram(victim);
    cpu.setPrivilege(Privilege::User);
    cpu.setReg(1, packWord(secret));
    cpu.run(0);

    // Context switch without an eager FPU save (unless defended).
    cpu.contextSwitch(1);

    ChannelHarness ch(cpu, opt.channel);
    cpu.setFaultHandler(kWordHandlerPc);
    cpu.setReg(rProbe, ch.sendBase());

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        cpu.loadProgram(wordExtractProgram(
            ch.sendShift(), static_cast<unsigned>(i), false));
        ch.setup();
        cpu.run(0);
        recovered.push_back(ch.recover());
    }
    return scoreResult("Lazy FP", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // namespace specsec::attacks
