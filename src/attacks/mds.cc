#include "mds.hh"

using namespace specsec::uarch;

namespace specsec::attacks
{

namespace
{

constexpr RegId rBase = 3;
constexpr RegId rProbe = 4;
constexpr RegId rWord = 6;
constexpr RegId rTmp = 7;
constexpr RegId rEnc = 8;
constexpr RegId rSend = 9;
constexpr RegId rSink = 10;
constexpr RegId rVal = 11;
constexpr RegId rIdx2 = 12;
constexpr RegId rTable = 14;

/** Faulting 64-bit load + byte extract + send. */
Program
samplerProgram(unsigned shift, unsigned byte_index, bool in_txn)
{
    Program p;
    Program::Label abort_label = p.newLabel();
    if (in_txn)
        p.emitXBegin(abort_label);
    p.emit(load64(rWord, rBase, 0)); // faulting sample
    p.emit(shrImm(rTmp, rWord, 8 * byte_index));
    p.emit(andImm(rTmp, rTmp, 0xff));
    p.emit(shlImm(rEnc, rTmp, shift));
    p.emit(add(rSend, rProbe, rEnc));
    p.emit(load8(rSink, rSend, 0));
    if (in_txn)
        p.emit(xend());
    p.bind(abort_label);
    p.emit(halt()); // also the fault handler for the non-TSX case
    return p;
}

/** Run the fill-buffer sampling loop shared by RIDL-style attacks.
 *
 * @param victim_privilege privilege the victim runs at.
 * @param in_txn use a TSX transaction (TAA / CacheOut).
 */
AttackResult
runFillBufferSampling(const char *name, Privilege victim_privilege,
                      bool in_txn, const CpuConfig &config,
                      const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(std::min<std::size_t>(
        opt.secretLen, 8)); // one in-flight line's worth
    s.plantBytes(Layout::kUserSecret, secret);

    // Victim: loads its secret word; the fill leaves residue in the
    // line fill buffer.
    Program victim;
    victim.emit(load64(rWord, rBase, 0));
    victim.emit(halt());

    ChannelHarness ch(cpu, opt.channel);
    cpu.setReg(rProbe, ch.sendBase());

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        // Victim phase: force a fill so the LFB holds the secret.
        cpu.contextSwitch(0);
        cpu.setPrivilege(victim_privilege);
        cpu.loadProgram(victim);
        cpu.setFaultHandler(std::nullopt);
        cpu.flushLineVirt(Layout::kUserSecret);
        cpu.setReg(rBase, Layout::kUserSecret);
        cpu.run(0);

        // Attacker phase: faulting load samples the buffer.
        cpu.contextSwitch(1);
        cpu.setPrivilege(Privilege::User);
        const Program sampler = samplerProgram(
            ch.sendShift(), static_cast<unsigned>(i), in_txn);
        cpu.loadProgram(sampler);
        cpu.setFaultHandler(sampler.size() - 1);
        ch.setup();
        cpu.setReg(rBase, Layout::kUnmapped);
        cpu.run(0);
        recovered.push_back(ch.recover());
    }
    return scoreResult(name, recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // anonymous namespace

AttackResult
runRidl(const CpuConfig &config, const AttackOptions &opt)
{
    return runFillBufferSampling("RIDL", Privilege::User, false,
                                 config, opt);
}

AttackResult
runZombieLoad(const CpuConfig &config, const AttackOptions &opt)
{
    return runFillBufferSampling("ZombieLoad", Privilege::Kernel,
                                 false, config, opt);
}

AttackResult
runTaa(const CpuConfig &config, const AttackOptions &opt)
{
    return runFillBufferSampling("TAA", Privilege::User, true, config,
                                 opt);
}

AttackResult
runCacheout(const CpuConfig &config, const AttackOptions &opt)
{
    // CacheOut evicts the victim's line from L1 first; the data then
    // transits the fill buffer where the TAA sampler reads it.
    return runFillBufferSampling("CacheOut", Privilege::Kernel, true,
                                 config, opt);
}

AttackResult
runFallout(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);

    // Victim: stores a secret byte; the store buffer keeps residue.
    Program victim;
    victim.emit(store8(rBase, 0, rVal));
    victim.emit(halt());

    ChannelHarness ch(cpu, opt.channel);
    cpu.setReg(rProbe, ch.sendBase());

    const Addr victim_store = Layout::kUserSecret + 0x80;
    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        cpu.contextSwitch(0);
        cpu.setPrivilege(Privilege::Kernel);
        cpu.loadProgram(victim);
        cpu.setFaultHandler(std::nullopt);
        cpu.setReg(rBase, victim_store);
        cpu.setReg(rVal, secret[i]);
        cpu.run(0);

        // Attacker: faulting load whose page offset matches the
        // victim's store -- the store buffer forwards its residue.
        cpu.contextSwitch(1);
        cpu.setPrivilege(Privilege::User);
        const Program sampler =
            samplerProgram(ch.sendShift(), 0, false);
        cpu.loadProgram(sampler);
        cpu.setFaultHandler(sampler.size() - 1);
        ch.setup();
        cpu.setReg(rBase,
                   Layout::kUnmapped + (victim_store & 0xfff));
        cpu.run(0);
        recovered.push_back(ch.recover());
    }
    return scoreResult("Fallout", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

AttackResult
runLvi(const CpuConfig &config, const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(opt.secretLen);
    s.plantBytes(Layout::kUserSecret, secret);
    s.mem().write64(Layout::kVictimPtr, Layout::kVictimTable);

    // The victim's pointer page is made to fault (attacker acts as
    // the OS, as in SGX LVI); its line is not cached.
    s.pageTable().setPresent(Layout::kVictimPtr, false);

    ChannelHarness ch(cpu, opt.channel);

    // Attacker: plants the malicious value M in the store buffer
    // (same page offset as the victim's pointer load).
    Program plant;
    plant.emit(store64(rBase, 0, rVal));
    plant.emit(halt());

    // Victim: loads its pointer (faults; M is injected), then its
    // own gadget dereferences table + M and sends -- leaking the
    // victim's own secret at the attacker-chosen offset.
    Program victim;
    victim.emit(load64(rIdx2, rBase, 0)); // faulting pointer load
    victim.emit(add(rTmp, rTable, rIdx2));
    victim.emit(load8(rWord, rTmp, 0));   // Load S (victim secret)
    victim.emit(shlImm(rEnc, rWord, ch.sendShift()));
    victim.emit(add(rSend, rProbe, rEnc));
    victim.emit(load8(rSink, rSend, 0));  // send
    victim.emit(halt());                  // 6: handler

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        // Attacker plants M.
        cpu.contextSwitch(1);
        cpu.setPrivilege(Privilege::User);
        cpu.loadProgram(plant);
        cpu.setFaultHandler(std::nullopt);
        cpu.setReg(rBase, Layout::kScratch); // same page offset (0)
        cpu.setReg(rVal,
                   Layout::kUserSecret + i - Layout::kVictimTable);
        cpu.run(0);

        // Victim runs its own code; the injected M diverts it.
        cpu.contextSwitch(0);
        cpu.setPrivilege(Privilege::User);
        cpu.loadProgram(victim);
        cpu.setFaultHandler(6);
        ch.setup();
        cpu.warmLine(Layout::kUserSecret + i);
        cpu.flushLineVirt(Layout::kVictimPtr);
        cpu.setReg(rBase, Layout::kVictimPtr);
        cpu.setReg(rTable, Layout::kVictimTable);
        cpu.setReg(rProbe, ch.sendBase());
        cpu.run(0);

        cpu.contextSwitch(1);
        recovered.push_back(
            ch.recover({ch.noiseSet(Layout::kUserSecret + i)}));
    }
    return scoreResult("LVI", recovered, secret,
                       cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // namespace specsec::attacks
