/**
 * @file
 * The Spectre family of executable attacks: v1 (bounds bypass), v1.1
 * (speculative buffer overflow), v1.2 (read-only overwrite), v2
 * (branch target injection), v4 (speculative store bypass), RSB
 * (return stack underflow) and Spoiler (store-buffer address
 * timing).
 *
 * Each runner builds the victim/attacker programs on the simulator,
 * executes the paper's five attack steps, and reports recovered vs.
 * planted secret bytes.
 */

#ifndef SPECSEC_ATTACKS_SPECTRE_HH
#define SPECSEC_ATTACKS_SPECTRE_HH

#include "attack_kit.hh"

namespace specsec::attacks
{

/** Listing 1: bounds-check bypass reading out-of-bounds memory. */
AttackResult runSpectreV1(const CpuConfig &config,
                          const AttackOptions &options = {});

/** Speculative out-of-bounds store redirecting a later load. */
AttackResult runSpectreV1_1(const CpuConfig &config,
                            const AttackOptions &options = {});

/** Speculative store to a read-only page (write-protect bypass). */
AttackResult runSpectreV1_2(const CpuConfig &config,
                            const AttackOptions &options = {});

/** BTB injection: victim's indirect branch runs the gadget. */
AttackResult runSpectreV2(const CpuConfig &config,
                          const AttackOptions &options = {});

/** Store bypass: a load reads stale data past an unresolved store. */
AttackResult runSpectreV4(const CpuConfig &config,
                          const AttackOptions &options = {});

/** RSB underflow: return speculates to a BTB-injected gadget. */
AttackResult runSpectreRsb(const CpuConfig &config,
                           const AttackOptions &options = {});

/** Spoiler: physical-address aliasing revealed by store-buffer
 *  dependency timing.  recovered/expected hold the alias index. */
AttackResult runSpoiler(const CpuConfig &config,
                        const AttackOptions &options = {});

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_SPECTRE_HH
