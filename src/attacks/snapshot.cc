#include "snapshot.hh"

#include <atomic>
#include <mutex>
#include <vector>

#include "attack_kit.hh"

namespace specsec::attacks
{

namespace
{

std::atomic<ScenarioBuildMode> gBuildMode{ScenarioBuildMode::Fork};
std::atomic<std::uint64_t> gForked{0};
std::atomic<std::uint64_t> gRebuilt{0};

/**
 * The arena pool is process-global (not thread-local) on purpose:
 * campaign worker threads are short-lived — executeKeyBatch and
 * CampaignEngine::run spawn a fresh pool per batch — so
 * thread-local arenas would die with their thread and every batch
 * would pay the 8MB build again.  Acquire/release bracket a whole
 * scenario run (~0.5ms), so the mutex is uncontended noise.
 *
 * The pool is bounded: it only ever holds as many arenas as were
 * alive concurrently (one per worker, plus tests that hold several
 * Scenarios at once), capped to keep a pathological caller from
 * parking unbounded 8MB blocks.
 */
constexpr std::size_t kMaxPooledArenas = 32;

std::mutex gPoolMutex;
std::vector<std::unique_ptr<ScenarioArena>> gPool;

} // namespace

ScenarioSnapshot::ScenarioSnapshot()
    : memSize_(Layout::kMemorySize)
{
    // The canonical scenario layout, shared by every attack runner.
    // Shared / attacker-accessible regions.
    pt_.mapRange(Layout::kProbeArray, 256 * uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kEvictArray, 0x10000,
                 uarch::PageOwner::User, true, true);
    // Victim user-space data (bounds-protected, not OS-protected).
    pt_.mapRange(Layout::kVictimArray, 0x8000,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kReadOnlyPage, uarch::kPageSize,
                 uarch::PageOwner::User, true, /*writable=*/false);
    pt_.mapRange(Layout::kUserSecret, uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    // Privileged regions.
    pt_.mapRange(Layout::kKernelData, uarch::kPageSize,
                 uarch::PageOwner::Kernel, false, true);
    pt_.mapRange(Layout::kEnclaveData, uarch::kPageSize,
                 uarch::PageOwner::Enclave, false, true);
    pt_.mapRange(Layout::kVmmData, uarch::kPageSize,
                 uarch::PageOwner::Vmm, false, true);
    // Layout::kUnmapped intentionally has no PTE.
}

const ScenarioSnapshot &
ScenarioSnapshot::baseline()
{
    static const ScenarioSnapshot snapshot;
    return snapshot;
}

ScenarioArena::ScenarioArena()
    : mem(ScenarioSnapshot::baseline().memorySize()),
      pt(ScenarioSnapshot::baseline().pageTable())
{
}

void
ScenarioArena::reset()
{
    mem.rezeroDirtyPages();
    pt = ScenarioSnapshot::baseline().pageTable();
}

ScenarioBuildMode
scenarioBuildMode()
{
    return gBuildMode.load(std::memory_order_relaxed);
}

void
setScenarioBuildMode(ScenarioBuildMode mode)
{
    gBuildMode.store(mode, std::memory_order_relaxed);
}

ScenarioForkStats
scenarioForkStats()
{
    ScenarioForkStats s;
    s.forked = gForked.load(std::memory_order_relaxed);
    s.rebuilt = gRebuilt.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(gPoolMutex);
        s.pooled = gPool.size();
    }
    return s;
}

std::unique_ptr<ScenarioArena>
acquireScenarioArena()
{
    if (scenarioBuildMode() == ScenarioBuildMode::Fork) {
        std::unique_ptr<ScenarioArena> arena;
        {
            std::lock_guard<std::mutex> lock(gPoolMutex);
            if (!gPool.empty()) {
                arena = std::move(gPool.back());
                gPool.pop_back();
            }
        }
        if (arena) {
            gForked.fetch_add(1, std::memory_order_relaxed);
            return arena;
        }
    }
    gRebuilt.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<ScenarioArena>();
}

void
releaseScenarioArena(std::unique_ptr<ScenarioArena> arena)
{
    if (!arena || scenarioBuildMode() != ScenarioBuildMode::Fork)
        return;
    arena->reset();
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gPool.size() < kMaxPooledArenas)
        gPool.push_back(std::move(arena));
}

} // namespace specsec::attacks
