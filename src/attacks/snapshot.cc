#include "snapshot.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "attack_kit.hh"
#include "phase.hh"

namespace specsec::attacks
{

namespace
{

std::atomic<ScenarioBuildMode> gBuildMode{ScenarioBuildMode::Fork};
std::atomic<std::uint64_t> gForked{0};
std::atomic<std::uint64_t> gRebuilt{0};

/**
 * The arena pool is process-global (not thread-local) on purpose:
 * campaign worker threads are short-lived — executeKeyBatch and
 * CampaignEngine::run spawn a fresh pool per batch — so
 * thread-local arenas would die with their thread and every batch
 * would pay the 8MB build again.  Acquire/release bracket a whole
 * scenario run (~0.5ms), so the mutex is uncontended noise.
 *
 * The pool is bounded: it only ever holds as many arenas as were
 * alive concurrently (one per worker, plus tests that hold several
 * Scenarios at once), capped to keep a pathological caller from
 * parking unbounded 8MB blocks.
 */
constexpr std::size_t kMaxPooledArenas = 32;

std::mutex gPoolMutex;
std::vector<std::unique_ptr<ScenarioArena>> gPool;

/**
 * One cached post-prologue machine state.  Memory is stored as the
 * compact dirty-page list (an attack prologue touches a handful of
 * pages out of the 8MB image), the page table as a flat copy, and
 * the Cpu as a state-container instance bound to a 1-byte stub
 * Memory and empty PageTable — it is never run, only copied from
 * via Cpu::copyStateFrom, which transfers every mutable member and
 * leaves the target's own memory/page-table references alone.
 */
struct WarmAttackSnapshot
{
    std::vector<uarch::PageImage> pages;
    uarch::PageTable pt;
    uarch::Memory stubMem{1};
    uarch::PageTable stubPt;
    std::unique_ptr<uarch::Cpu> cpu;
};

std::atomic<WarmSnapshotMode> gWarmMode{WarmSnapshotMode::Reuse};
std::atomic<std::uint64_t> gWarmHits{0};
std::atomic<std::uint64_t> gWarmMisses{0};

/**
 * Bounded, first-write-wins snapshot cache.  A snapshot is a few
 * dirty pages plus one Cpu (~tens of KB); a sweep produces one per
 * (attack, training-relevant config), typically well under a
 * hundred.  The cap keeps a pathological key stream from growing
 * the cache without bound — overflow keys simply run cold.
 */
constexpr std::size_t kMaxWarmSnapshots = 256;

std::mutex gWarmMutex;
std::unordered_map<std::string,
                   std::shared_ptr<const WarmAttackSnapshot>>
    gWarmCache;

void
appendKeyField(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu;",
                  static_cast<unsigned long long>(value));
    out += buf;
}

} // namespace

ScenarioSnapshot::ScenarioSnapshot()
    : memSize_(Layout::kMemorySize)
{
    // The canonical scenario layout, shared by every attack runner.
    // Shared / attacker-accessible regions.
    pt_.mapRange(Layout::kProbeArray, 256 * uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kEvictArray, 0x10000,
                 uarch::PageOwner::User, true, true);
    // Victim user-space data (bounds-protected, not OS-protected).
    pt_.mapRange(Layout::kVictimArray, 0x8000,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kReadOnlyPage, uarch::kPageSize,
                 uarch::PageOwner::User, true, /*writable=*/false);
    pt_.mapRange(Layout::kUserSecret, uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    // Privileged regions.
    pt_.mapRange(Layout::kKernelData, uarch::kPageSize,
                 uarch::PageOwner::Kernel, false, true);
    pt_.mapRange(Layout::kEnclaveData, uarch::kPageSize,
                 uarch::PageOwner::Enclave, false, true);
    pt_.mapRange(Layout::kVmmData, uarch::kPageSize,
                 uarch::PageOwner::Vmm, false, true);
    // Layout::kUnmapped intentionally has no PTE.
}

const ScenarioSnapshot &
ScenarioSnapshot::baseline()
{
    static const ScenarioSnapshot snapshot;
    return snapshot;
}

ScenarioArena::ScenarioArena()
    : mem(ScenarioSnapshot::baseline().memorySize()),
      pt(ScenarioSnapshot::baseline().pageTable())
{
}

void
ScenarioArena::reset()
{
    mem.rezeroDirtyPages();
    pt = ScenarioSnapshot::baseline().pageTable();
}

ScenarioBuildMode
scenarioBuildMode()
{
    return gBuildMode.load(std::memory_order_relaxed);
}

void
setScenarioBuildMode(ScenarioBuildMode mode)
{
    gBuildMode.store(mode, std::memory_order_relaxed);
}

ScenarioForkStats
scenarioForkStats()
{
    ScenarioForkStats s;
    s.forked = gForked.load(std::memory_order_relaxed);
    s.rebuilt = gRebuilt.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(gPoolMutex);
        s.pooled = gPool.size();
    }
    return s;
}

std::unique_ptr<ScenarioArena>
acquireScenarioArena()
{
    if (scenarioBuildMode() == ScenarioBuildMode::Fork) {
        std::unique_ptr<ScenarioArena> arena;
        {
            std::lock_guard<std::mutex> lock(gPoolMutex);
            if (!gPool.empty()) {
                arena = std::move(gPool.back());
                gPool.pop_back();
            }
        }
        if (arena) {
            gForked.fetch_add(1, std::memory_order_relaxed);
            return arena;
        }
    }
    gRebuilt.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<ScenarioArena>();
}

void
releaseScenarioArena(std::unique_ptr<ScenarioArena> arena)
{
    if (!arena || scenarioBuildMode() != ScenarioBuildMode::Fork)
        return;
    arena->reset();
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gPool.size() < kMaxPooledArenas)
        gPool.push_back(std::move(arena));
}

WarmSnapshotMode
warmSnapshotMode()
{
    return gWarmMode.load(std::memory_order_relaxed);
}

void
setWarmSnapshotMode(WarmSnapshotMode mode)
{
    gWarmMode.store(mode, std::memory_order_relaxed);
}

WarmSnapshotStats
warmSnapshotStats()
{
    WarmSnapshotStats s;
    s.hits = gWarmHits.load(std::memory_order_relaxed);
    s.misses = gWarmMisses.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(gWarmMutex);
        s.entries = gWarmCache.size();
    }
    return s;
}

void
clearWarmSnapshots()
{
    std::lock_guard<std::mutex> lock(gWarmMutex);
    gWarmCache.clear();
}

std::string
warmAttackKey(const char *attack, const uarch::CpuConfig &c,
              const AttackOptions &o)
{
    // Tripwire (mirrors campaign.cc's scenarioKey): if either struct
    // grows a field, this key must be taught about it or cells that
    // differ in the new knob would alias to one shared prologue.
#if defined(__x86_64__) && defined(__linux__)
    static_assert(sizeof(CpuConfig) == 120,
                  "CpuConfig changed: extend warmAttackKey()");
    static_assert(sizeof(AttackOptions) == 32,
                  "AttackOptions changed: extend warmAttackKey()");
#endif
    std::string key(attack);
    key += ';';
    // Every CpuConfig field: config bakes into Cpu construction and
    // shifts every cycle count the training runs accumulate.
    appendKeyField(key, c.robSize);
    appendKeyField(key, c.fetchWidth);
    appendKeyField(key, c.commitWidth);
    appendKeyField(key, c.permCheckLatency);
    appendKeyField(key, c.branchResolveLatency);
    appendKeyField(key, c.retResolveLatency);
    appendKeyField(key, c.exceptionDeliveryLatency);
    appendKeyField(key, c.txnAbortDetectLatency);
    appendKeyField(key, c.partialAliasPenalty);
    appendKeyField(key, c.physAliasPenalty);
    appendKeyField(key, c.rsbDepth);
    appendKeyField(key, c.lfbEntries);
    appendKeyField(key, c.cache.sets);
    appendKeyField(key, c.cache.ways);
    appendKeyField(key, c.cache.lineSize);
    appendKeyField(key, c.cache.hitLatency);
    appendKeyField(key, c.cache.missLatency);
    appendKeyField(key, c.vuln.meltdown);
    appendKeyField(key, c.vuln.l1tf);
    appendKeyField(key, c.vuln.mds);
    appendKeyField(key, c.vuln.lazyFp);
    appendKeyField(key, c.vuln.storeBypass);
    appendKeyField(key, c.vuln.msr);
    appendKeyField(key, c.vuln.taa);
    appendKeyField(key, c.defense.fenceSpeculativeLoads);
    appendKeyField(key, c.defense.blockSpeculativeForwarding);
    appendKeyField(key, c.defense.blockTaintedTransmit);
    appendKeyField(key, c.defense.invisibleSpeculation);
    appendKeyField(key, c.defense.cleanupSpec);
    appendKeyField(key, c.defense.conditionalSpeculation);
    appendKeyField(key, c.defense.partitionedCache);
    appendKeyField(key, c.defense.flushPredictorOnContextSwitch);
    appendKeyField(key, c.defense.noIndirectPrediction);
    appendKeyField(key, c.defense.noBranchPrediction);
    appendKeyField(key, c.defense.clearBuffersOnContextSwitch);
    appendKeyField(key, c.defense.eagerFpuSwitch);
    appendKeyField(key, c.defense.safeStoreBypass);
    // Training-relevant AttackOptions: the channel and the defenses
    // that change the victim program's code, the secret being
    // planted, and the training-loop trip count.  Body-only knobs
    // (delayAuthorization, kpti, flushL1OnExit, rsbStuffing) are
    // deliberately excluded — they act after the prologue.
    appendKeyField(key, static_cast<std::uint64_t>(o.channel));
    appendKeyField(key, o.secretLen);
    appendKeyField(key, o.softwareLfence);
    appendKeyField(key, o.addressMasking);
    appendKeyField(key, o.trainingRounds);
    return key;
}

bool
warmPrologue(Scenario &scenario, const std::string &key,
             const std::function<void()> &prologue)
{
    ScopedPhaseTimer timer(Phase::Prologue);
    if (warmSnapshotMode() == WarmSnapshotMode::Reuse) {
        std::shared_ptr<const WarmAttackSnapshot> snap;
        {
            std::lock_guard<std::mutex> lock(gWarmMutex);
            auto it = gWarmCache.find(key);
            if (it != gWarmCache.end())
                snap = it->second;
        }
        if (snap) {
            scenario.mem().restoreDirtyPages(snap->pages);
            scenario.pageTable() = snap->pt;
            scenario.cpu().copyStateFrom(*snap->cpu);
            gWarmHits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    prologue();
    gWarmMisses.fetch_add(1, std::memory_order_relaxed);
    if (warmSnapshotMode() == WarmSnapshotMode::Reuse) {
        auto snap = std::make_shared<WarmAttackSnapshot>();
        snap->pages = scenario.mem().captureDirtyPages();
        snap->pt = scenario.pageTable();
        snap->cpu = std::make_unique<uarch::Cpu>(
            scenario.cpu().config(), snap->stubMem, snap->stubPt);
        snap->cpu->copyStateFrom(scenario.cpu());
        std::lock_guard<std::mutex> lock(gWarmMutex);
        // First write wins; racing writers built identical state.
        if (gWarmCache.size() < kMaxWarmSnapshots)
            gWarmCache.emplace(key, std::move(snap));
    }
    return false;
}

} // namespace specsec::attacks
