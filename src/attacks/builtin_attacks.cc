/**
 * @file
 * Registration of every built-in attack with the ScenarioCatalog:
 * one block per attack binding its Table I/III metadata
 * (core/variants.cc), its paper-figure graph builder, and its
 * executable runner into a single AttackDescriptor.  This file is
 * the only place that knows which runner and which graph shape
 * belong to which variant — the `switch (variant)` ladders that used
 * to encode that in runner.cc and variants.cc are gone.
 *
 * The composed v2 x LazyFP attack (composed.cc) registers here too,
 * *without* an AttackVariant enumerator: it is the in-tree proof
 * that the catalog's extension seam works (examples/
 * custom_attack.cpp is the out-of-tree one).
 */

#include "composed.hh"
#include "core/catalog.hh"
#include "core/composer.hh"
#include "runner.hh"
#include "static_programs.hh"
#include "verdict/model.hh"

namespace specsec::core::detail
{

namespace
{

using attacks::AttackOptions;
using attacks::AttackResult;
using attacks::statsCollectingExecute;
using uarch::CpuConfig;

/** Descriptor skeleton for an enum-backed attack: metadata from the
 *  variant table, execute from the wrapped plain runner. */
AttackDescriptor
builtin(AttackVariant variant,
        AttackResult (*run)(const CpuConfig &, const AttackOptions &))
{
    const VariantInfo &info = variantInfo(variant);
    AttackDescriptor d;
    d.name = info.name;
    d.klass = info.klass;
    d.cve = info.cve;
    d.paperSection = info.figure;
    d.variant = variant;
    d.execute = statsCollectingExecute(run);
    d.modelVerdict = verdict::builtinModelVerdict(variant);
    d.canonicalOptions = verdict::builtinCanonicalOptions(variant);
    d.staticProgram = attacks::builtinStaticProgram(variant);
    return d;
}

/** buildGraph hook for the Fig. 1 prediction-triggered shape. */
AttackGraphFn
predictionGraph(AttackVariant variant, const char *mistrain_label,
                const char *trigger_label)
{
    return [variant, mistrain_label,
            trigger_label](CovertChannelKind channel) {
        return buildPredictionGraph(variantInfo(variant), channel,
                                    mistrain_label, trigger_label);
    };
}

/** buildGraph hook for the Fig. 3/4 faulting-access shape with the
 *  variant's Table III illegal-access string as the one source. */
AttackGraphFn
faultingGraph(AttackVariant variant, const char *trigger_label,
              const char *squash_label)
{
    return [variant, trigger_label,
            squash_label](CovertChannelKind channel) {
        const VariantInfo &info = variantInfo(variant);
        return buildFaultingAccessGraph(info, channel, trigger_label,
                                        {info.illegalAccess},
                                        squash_label);
    };
}

/** Same shape, one source node per VariantInfo::sources entry. */
AttackGraphFn
multiSourceGraph(AttackVariant variant, const char *trigger_label,
                 const char *squash_label)
{
    return [variant, trigger_label,
            squash_label](CovertChannelKind channel) {
        const VariantInfo &info = variantInfo(variant);
        std::vector<std::string> labels;
        for (const SecretSource source : info.sources)
            labels.push_back(secretSourceAccessLabel(source));
        return buildFaultingAccessGraph(info, channel, trigger_label,
                                        labels, squash_label);
    };
}

} // anonymous namespace

void
registerBuiltinAttacks(ScenarioCatalog &catalog)
{
    using enum AttackVariant;

    {
        AttackDescriptor d = builtin(SpectreV1, attacks::runSpectreV1);
        d.buildGraph = predictionGraph(
            SpectreV1, "Mistrain branch predictor",
            "Conditional branch instruction (bounds check)");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(SpectreV1_1, attacks::runSpectreV1_1);
        d.buildGraph = predictionGraph(
            SpectreV1_1, "Mistrain branch predictor",
            "Conditional branch instruction (bounds check)");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(SpectreV1_2, attacks::runSpectreV1_2);
        d.buildGraph = predictionGraph(
            SpectreV1_2, "Mistrain branch predictor",
            "Speculated store instruction (read-only page)");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(SpectreV2, attacks::runSpectreV2);
        d.aliases = {"branch-target-injection"};
        d.buildGraph = predictionGraph(
            SpectreV2, "Mistrain BTB (branch target injection)",
            "Indirect branch instruction");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Meltdown, attacks::runMeltdown);
        // The canonical name "Meltdown (Spectre v3)" folds with the
        // parentheses; keep the short spellings working too.
        d.aliases = {"meltdown", "spectre-v3"};
        d.buildGraph = faultingGraph(
            Meltdown, "Load instruction (kernel address)",
            "Load exception: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(MeltdownV3a, attacks::runMeltdownV3a);
        d.aliases = {"meltdown-v3a", "spectre-v3a"};
        d.buildGraph = faultingGraph(
            MeltdownV3a, "RDMSR instruction",
            "Privilege exception: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(SpectreV4, attacks::runSpectreV4);
        d.aliases = {"speculative-store-bypass"};
        // Bespoke Fig. 6 shape: the pending store feeds the
        // disambiguation check, so the authorization has *two*
        // address inputs and cannot reuse the faulting-access shape.
        d.buildGraph = [](CovertChannelKind channel) {
            const VariantInfo &info = variantInfo(SpectreV4);
            AttackGraph g;
            g.setName(info.name);
            const ChannelNodes ch = addChannel(g, channel);
            const NodeId store = g.addOperation(
                "Store: overwrite stale secret S at address A",
                NodeRole::Other, AttackStep::DelayedAuth);
            const NodeId load = g.addOperation(
                "Load instruction (address A)", NodeRole::Trigger,
                AttackStep::DelayedAuth);
            const NodeId disamb = g.addOperation(
                info.authorization, NodeRole::Authorization,
                AttackStep::DelayedAuth);
            const NodeId access = g.addOperation(
                info.illegalAccess, NodeRole::SecretAccess,
                AttackStep::Access);
            const NodeId squash = g.addOperation(
                "Squash or commit", NodeRole::Squash,
                AttackStep::DelayedAuth);
            g.addDependency(store, disamb, EdgeKind::Address);
            g.addDependency(load, disamb, EdgeKind::Address);
            g.addDependency(load, access, EdgeKind::Data);
            g.addDependency(access, ch.use, EdgeKind::Data);
            g.addDependency(disamb, squash, EdgeKind::Control);
            return g;
        };
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(SpectreRsb, attacks::runSpectreRsb);
        d.buildGraph = predictionGraph(
            SpectreRsb, "Underfill / poison return stack buffer",
            "Return instruction");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(Foreshadow, attacks::runForeshadow);
        d.aliases = {"foreshadow", "l1tf", "l1-terminal-fault"};
        d.buildGraph = faultingGraph(
            Foreshadow,
            "Load instruction (PTE not present / reserved bits)",
            "Terminal fault: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(ForeshadowOs, attacks::runForeshadowOs);
        d.buildGraph = faultingGraph(
            ForeshadowOs,
            "Load instruction (PTE not present / reserved bits)",
            "Terminal fault: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(ForeshadowVmm, attacks::runForeshadowVmm);
        d.buildGraph = faultingGraph(
            ForeshadowVmm,
            "Load instruction (PTE not present / reserved bits)",
            "Terminal fault: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(LazyFp, attacks::runLazyFp);
        d.buildGraph = [](CovertChannelKind channel) {
            const VariantInfo &info = variantInfo(LazyFp);
            AttackGraph g = buildFaultingAccessGraph(
                info, channel,
                "First FP instruction after context switch",
                {info.illegalAccess}, "FPU fault: squash pipeline");
            const NodeId lazy = g.addOperation(
                "Context switch without FPU state save",
                NodeRole::Setup, AttackStep::Setup);
            const auto trigger = g.nodesWithRole(NodeRole::Trigger);
            g.addDependency(lazy, trigger.front(),
                            EdgeKind::Resource);
            return g;
        };
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Spoiler, attacks::runSpoiler);
        // Spoiler's verdict is a timing *threshold* (alias-penalty
        // magnitudes), which the ordering-only graph model cannot
        // decide; leave the model-verdict hooks unset so the verdict
        // backends take the no-hook path (Undecided everywhere,
        // always simulated).
        d.modelVerdict = nullptr;
        d.canonicalOptions = nullptr;
        d.buildGraph = [](CovertChannelKind) {
            // Spoiler's channel is store-buffer timing itself; the
            // cache-channel choice does not apply (Fig.-free shape).
            const VariantInfo &info = variantInfo(Spoiler);
            AttackGraph g;
            g.setName(info.name);
            const NodeId stores = g.addOperation(
                "Repeated stores with 1MB-aliased addresses",
                NodeRole::Other, AttackStep::Setup);
            const NodeId load = g.addOperation(
                "Load instruction (aliased address)",
                NodeRole::Trigger, AttackStep::DelayedAuth);
            const NodeId disamb = g.addOperation(
                info.authorization, NodeRole::Authorization,
                AttackStep::DelayedAuth);
            const NodeId probe = g.addOperation(
                info.illegalAccess, NodeRole::SecretAccess,
                AttackStep::Access);
            const NodeId stall = g.addOperation(
                "Store-buffer dependency stall (timing state "
                "change)",
                NodeRole::Send, AttackStep::UseSend);
            const NodeId measure = g.addOperation(
                "Measure load latency", NodeRole::Receive,
                AttackStep::Receive);
            g.addDependency(stores, disamb, EdgeKind::Address);
            g.addDependency(load, disamb, EdgeKind::Address);
            g.addDependency(load, probe, EdgeKind::Data);
            g.addDependency(probe, stall, EdgeKind::Data);
            g.addDependency(stall, measure, EdgeKind::Data);
            return g;
        };
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Ridl, attacks::runRidl);
        d.buildGraph = multiSourceGraph(
            Ridl, "Faulting load instruction",
            "Load exception: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d =
            builtin(ZombieLoad, attacks::runZombieLoad);
        d.buildGraph = multiSourceGraph(
            ZombieLoad, "Faulting load instruction",
            "Load exception: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Fallout, attacks::runFallout);
        d.buildGraph = multiSourceGraph(
            Fallout, "Faulting load instruction",
            "Load exception: squash pipeline");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Lvi, attacks::runLvi);
        d.aliases = {"load-value-injection"};
        // Bespoke Fig. 7 shape: attacker-planted value M diverts the
        // victim's transient flow into leaking the victim's secret.
        d.buildGraph = [](CovertChannelKind channel) {
            const VariantInfo &info = variantInfo(Lvi);
            AttackGraph g;
            g.setName(info.name);
            const ChannelNodes ch = addChannel(g, channel);
            const NodeId plant = g.addOperation(
                "Place malicious value M in hardware buffers",
                NodeRole::Setup, AttackStep::Setup);
            const NodeId load = g.addOperation(
                "Victim faulting load instruction",
                NodeRole::Trigger, AttackStep::DelayedAuth);
            const NodeId check = g.addOperation(
                info.authorization, NodeRole::Authorization,
                AttackStep::DelayedAuth);
            const NodeId squash = g.addOperation(
                "Load exception: squash pipeline", NodeRole::Squash,
                AttackStep::DelayedAuth);
            g.addDependency(load, check, EdgeKind::Data);
            g.addDependency(check, squash, EdgeKind::Control);
            const NodeId divert = g.addOperation(
                "Victim's control or data flow diverted by M",
                NodeRole::Use, AttackStep::Access);
            for (const SecretSource source : info.sources) {
                const std::string label =
                    "Read M from " +
                    std::string(secretSourceName(source));
                const NodeId read_m = g.addOperation(
                    label, NodeRole::SecretAccess,
                    AttackStep::Access);
                g.addDependency(plant, read_m, EdgeKind::Resource);
                g.addDependency(load, read_m, EdgeKind::Data);
                g.addDependency(read_m, divert, EdgeKind::Data);
            }
            const NodeId load_s = g.addOperation(
                "Load S (victim secret at attacker-chosen location)",
                NodeRole::SecretAccess, AttackStep::Access);
            g.addDependency(divert, load_s, EdgeKind::Data);
            g.addDependency(load_s, ch.use, EdgeKind::Data);
            return g;
        };
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Taa, attacks::runTaa);
        d.aliases = {"tsx-asynchronous-abort"};
        d.buildGraph = multiSourceGraph(
            Taa, "TSX transaction load (asynchronous abort)",
            "Transaction abort: roll back");
        catalog.registerAttack(std::move(d));
    }
    {
        AttackDescriptor d = builtin(Cacheout, attacks::runCacheout);
        d.buildGraph = multiSourceGraph(
            Cacheout, "TSX transaction load (asynchronous abort)",
            "Transaction abort: roll back");
        catalog.registerAttack(std::move(d));
    }

    // The Section V-A composed variant (indirect-branch trigger x
    // stale-FPU source) has no AttackVariant enumerator: it takes
    // the first extension slot, proving in-tree that the registry is
    // the extension seam, not the enum.
    {
        AttackDescriptor d;
        d.name = "Composed: v2 trigger x FPU source";
        d.aliases = {"composed-v2-fpu", "v2xfpu"};
        d.klass = AttackClass::SpectreType;
        d.cve = "N/A (composed, Sec. V-A)";
        d.paperSection = "Sec. V-A";
        d.buildGraph = [](CovertChannelKind channel) {
            return composeAttack({TriggerKind::IndirectBranch,
                                  SecretSource::FpuRegister,
                                  channel});
        };
        d.execute =
            statsCollectingExecute(attacks::runComposedV2FpuGadget);
        d.staticProgram = attacks::composedV2FpuStaticProgram();
        catalog.registerAttack(std::move(d));
    }
}

} // namespace specsec::core::detail
