/**
 * @file
 * Snapshot/fork scenario execution.
 *
 * Profiling showed the per-grid-cell cost of a sweep is dominated
 * not by the cycle-driven pipeline but by Scenario *construction*:
 * zero-filling an 8MB Memory and rebuilding the ~290-PTE page table
 * cost ~0.4ms per cell, against attack bodies of 0.03-0.5ms.  Most
 * cells in a sweep differ by one knob, so rebuilding that identical
 * baseline per cell is pure waste.
 *
 * The fix is a snapshot/fork path:
 *
 *  - ScenarioSnapshot captures the warmed baseline simulator state
 *    every attack starts from — the canonical Layout page table and
 *    the all-zero memory image — exactly once per process.
 *  - ScenarioArena is one forkable copy of that state.  Arenas are
 *    pooled: releasing one resets it back to the snapshot (memory
 *    via the dirty-page bitmap, so only touched pages are
 *    re-zeroed; page table by copying the snapshot's map) instead
 *    of deallocating, and the next Scenario on any thread reuses it
 *    for the cost of a few page clears.
 *
 * A reset arena is byte-identical to a freshly built one, so the
 * fork path cannot change any timing-free export; the regression
 * suite proves this by running every golden spec through both paths
 * (tests/snapshot_test.cc).  ScenarioBuildMode::Rebuild keeps the
 * old build-from-scratch path selectable for exactly that
 * comparison (and for bisecting a future divergence).
 *
 * The Cpu itself is still constructed per run: its predictor,
 * cache and buffer state are a few KB (cheap to build) and most
 * grid knobs change CpuConfig, which bakes into construction.
 */

#ifndef SPECSEC_ATTACKS_SNAPSHOT_HH
#define SPECSEC_ATTACKS_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "uarch/cpu.hh"
#include "uarch/memory.hh"

namespace specsec::attacks
{

class Scenario;     // attack_kit.hh
struct AttackOptions; // attack_kit.hh

/**
 * The baseline state every Scenario forks from: the canonical
 * memory layout's page table plus the (implicitly all-zero) memory
 * image.  Built once per process, read-only afterwards.
 */
class ScenarioSnapshot
{
  public:
    /** The process-wide baseline (built on first use). */
    static const ScenarioSnapshot &baseline();

    const uarch::PageTable &pageTable() const { return pt_; }
    std::size_t memorySize() const { return memSize_; }

  private:
    ScenarioSnapshot();

    uarch::PageTable pt_;
    std::size_t memSize_;
};

/**
 * One forkable copy of the snapshot: the Memory/PageTable pair a
 * Scenario executes against.  reset() restores the snapshot state
 * in O(dirty pages) instead of O(memory size).
 */
struct ScenarioArena
{
    uarch::Memory mem;
    uarch::PageTable pt;

    ScenarioArena();

    /** Restore the ScenarioSnapshot baseline state. */
    void reset();
};

/** How Scenario obtains its simulator state. */
enum class ScenarioBuildMode : std::uint8_t
{
    Fork,    ///< fork a pooled arena from the snapshot (default)
    Rebuild, ///< build Memory/PageTable from scratch per scenario
};

/** Process-wide build mode (atomic; default Fork). */
ScenarioBuildMode scenarioBuildMode();
void setScenarioBuildMode(ScenarioBuildMode mode);

/** Scoped mode override restoring the previous mode on exit. */
class ScenarioBuildModeGuard
{
  public:
    explicit ScenarioBuildModeGuard(ScenarioBuildMode mode)
        : prev_(scenarioBuildMode())
    {
        setScenarioBuildMode(mode);
    }
    ~ScenarioBuildModeGuard() { setScenarioBuildMode(prev_); }
    ScenarioBuildModeGuard(const ScenarioBuildModeGuard &) = delete;
    ScenarioBuildModeGuard &
    operator=(const ScenarioBuildModeGuard &) = delete;

  private:
    ScenarioBuildMode prev_;
};

/** Process-lifetime fork-path counters (observability/benches). */
struct ScenarioForkStats
{
    std::uint64_t forked = 0;   ///< scenarios served from the pool
    std::uint64_t rebuilt = 0;  ///< scenarios built from scratch
    std::uint64_t pooled = 0;   ///< arenas currently parked
};

ScenarioForkStats scenarioForkStats();

/**
 * Acquire simulator state for one Scenario, honoring the build
 * mode: a reset pooled arena under Fork (allocating a fresh one
 * only when the pool is empty), always a fresh build under Rebuild.
 */
std::unique_ptr<ScenarioArena> acquireScenarioArena();

/**
 * Return an arena after its Scenario dies.  Under Fork the arena is
 * reset and parked for the next acquire (the pool is bounded; the
 * overflow is freed); under Rebuild it is simply destroyed.
 */
void releaseScenarioArena(std::unique_ptr<ScenarioArena> arena);

/**
 * @name Warm-attack snapshots — the second snapshot tier.
 *
 * The arena fork above makes scenario *construction* cheap; the
 * remaining repeated cost is the attack *prologue* — planting the
 * secret, loading the program and, dominantly, the predictor
 * training loop — which is identical for every cell that shares a
 * training-relevant configuration.  A WarmAttackSnapshot captures
 * the complete post-prologue machine state (dirty memory pages,
 * page table, and the full mutable Cpu state: trained predictors,
 * primed cache, registers, pipeline bookkeeping) keyed by
 * (attack, training-relevant config); later cells with the same key
 * restore it instead of re-running the prologue.
 *
 * A restore is a full state copy of what the prologue produced, so
 * a warm cell is cycle-identical to a cold one — the golden suite
 * proves it by running every registered spec with warm snapshots on
 * and off (tests/snapshot_test.cc).  WarmSnapshotMode::Rebuild
 * keeps the always-run-the-prologue path selectable for exactly
 * that comparison and for bisecting a future divergence.
 * @{
 */

/** How attack runners obtain their post-prologue state. */
enum class WarmSnapshotMode : std::uint8_t
{
    Reuse,   ///< restore a cached post-prologue snapshot (default)
    Rebuild, ///< always execute the prologue
};

/** Process-wide warm-snapshot mode (atomic; default Reuse). */
WarmSnapshotMode warmSnapshotMode();
void setWarmSnapshotMode(WarmSnapshotMode mode);

/** Scoped mode override restoring the previous mode on exit. */
class WarmSnapshotModeGuard
{
  public:
    explicit WarmSnapshotModeGuard(WarmSnapshotMode mode)
        : prev_(warmSnapshotMode())
    {
        setWarmSnapshotMode(mode);
    }
    ~WarmSnapshotModeGuard() { setWarmSnapshotMode(prev_); }
    WarmSnapshotModeGuard(const WarmSnapshotModeGuard &) = delete;
    WarmSnapshotModeGuard &
    operator=(const WarmSnapshotModeGuard &) = delete;

  private:
    WarmSnapshotMode prev_;
};

/** Process-lifetime warm-snapshot counters (observability). */
struct WarmSnapshotStats
{
    std::uint64_t hits = 0;    ///< prologues served from a snapshot
    std::uint64_t misses = 0;  ///< prologues executed (and captured)
    std::uint64_t entries = 0; ///< snapshots currently cached
};

WarmSnapshotStats warmSnapshotStats();

/** Drop every cached snapshot (benches/tests isolate timings). */
void clearWarmSnapshots();

/**
 * The cache key for one attack's prologue: the attack name, the
 * complete CpuConfig (it bakes into Cpu construction and shifts
 * every training-run cycle count) and the training-relevant
 * AttackOptions.  Options that only steer the attack *body*
 * (delayAuthorization, kpti, flushL1OnExit, rsbStuffing) are
 * excluded so cells differing only in those share one prologue.
 */
std::string warmAttackKey(const char *attack,
                          const uarch::CpuConfig &config,
                          const AttackOptions &options);

/**
 * Run or restore an attack prologue.
 *
 * Under Reuse, a cached snapshot for @p key is restored into
 * @p scenario (skipping @p prologue entirely); on a miss the
 * prologue runs and its end state is captured for the next cell
 * with this key.  Under Rebuild the prologue always runs and
 * nothing is cached.  The prologue must leave the Cpu halted (it
 * ends between run() calls), and everything the attack body
 * depends on must be inside it or derived from restored state.
 *
 * @return true when a snapshot was restored (the prologue did not
 *         run) — callers normally don't care, it's for tests.
 */
bool warmPrologue(Scenario &scenario, const std::string &key,
                  const std::function<void()> &prologue);

/// @}

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_SNAPSHOT_HH
