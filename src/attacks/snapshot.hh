/**
 * @file
 * Snapshot/fork scenario execution.
 *
 * Profiling showed the per-grid-cell cost of a sweep is dominated
 * not by the cycle-driven pipeline but by Scenario *construction*:
 * zero-filling an 8MB Memory and rebuilding the ~290-PTE page table
 * cost ~0.4ms per cell, against attack bodies of 0.03-0.5ms.  Most
 * cells in a sweep differ by one knob, so rebuilding that identical
 * baseline per cell is pure waste.
 *
 * The fix is a snapshot/fork path:
 *
 *  - ScenarioSnapshot captures the warmed baseline simulator state
 *    every attack starts from — the canonical Layout page table and
 *    the all-zero memory image — exactly once per process.
 *  - ScenarioArena is one forkable copy of that state.  Arenas are
 *    pooled: releasing one resets it back to the snapshot (memory
 *    via the dirty-page bitmap, so only touched pages are
 *    re-zeroed; page table by copying the snapshot's map) instead
 *    of deallocating, and the next Scenario on any thread reuses it
 *    for the cost of a few page clears.
 *
 * A reset arena is byte-identical to a freshly built one, so the
 * fork path cannot change any timing-free export; the regression
 * suite proves this by running every golden spec through both paths
 * (tests/snapshot_test.cc).  ScenarioBuildMode::Rebuild keeps the
 * old build-from-scratch path selectable for exactly that
 * comparison (and for bisecting a future divergence).
 *
 * The Cpu itself is still constructed per run: its predictor,
 * cache and buffer state are a few KB (cheap to build) and most
 * grid knobs change CpuConfig, which bakes into construction.
 */

#ifndef SPECSEC_ATTACKS_SNAPSHOT_HH
#define SPECSEC_ATTACKS_SNAPSHOT_HH

#include <cstdint>
#include <memory>

#include "uarch/memory.hh"

namespace specsec::attacks
{

/**
 * The baseline state every Scenario forks from: the canonical
 * memory layout's page table plus the (implicitly all-zero) memory
 * image.  Built once per process, read-only afterwards.
 */
class ScenarioSnapshot
{
  public:
    /** The process-wide baseline (built on first use). */
    static const ScenarioSnapshot &baseline();

    const uarch::PageTable &pageTable() const { return pt_; }
    std::size_t memorySize() const { return memSize_; }

  private:
    ScenarioSnapshot();

    uarch::PageTable pt_;
    std::size_t memSize_;
};

/**
 * One forkable copy of the snapshot: the Memory/PageTable pair a
 * Scenario executes against.  reset() restores the snapshot state
 * in O(dirty pages) instead of O(memory size).
 */
struct ScenarioArena
{
    uarch::Memory mem;
    uarch::PageTable pt;

    ScenarioArena();

    /** Restore the ScenarioSnapshot baseline state. */
    void reset();
};

/** How Scenario obtains its simulator state. */
enum class ScenarioBuildMode : std::uint8_t
{
    Fork,    ///< fork a pooled arena from the snapshot (default)
    Rebuild, ///< build Memory/PageTable from scratch per scenario
};

/** Process-wide build mode (atomic; default Fork). */
ScenarioBuildMode scenarioBuildMode();
void setScenarioBuildMode(ScenarioBuildMode mode);

/** Scoped mode override restoring the previous mode on exit. */
class ScenarioBuildModeGuard
{
  public:
    explicit ScenarioBuildModeGuard(ScenarioBuildMode mode)
        : prev_(scenarioBuildMode())
    {
        setScenarioBuildMode(mode);
    }
    ~ScenarioBuildModeGuard() { setScenarioBuildMode(prev_); }
    ScenarioBuildModeGuard(const ScenarioBuildModeGuard &) = delete;
    ScenarioBuildModeGuard &
    operator=(const ScenarioBuildModeGuard &) = delete;

  private:
    ScenarioBuildMode prev_;
};

/** Process-lifetime fork-path counters (observability/benches). */
struct ScenarioForkStats
{
    std::uint64_t forked = 0;   ///< scenarios served from the pool
    std::uint64_t rebuilt = 0;  ///< scenarios built from scratch
    std::uint64_t pooled = 0;   ///< arenas currently parked
};

ScenarioForkStats scenarioForkStats();

/**
 * Acquire simulator state for one Scenario, honoring the build
 * mode: a reset pooled arena under Fork (allocating a fresh one
 * only when the pool is empty), always a fresh build under Rebuild.
 */
std::unique_ptr<ScenarioArena> acquireScenarioArena();

/**
 * Return an arena after its Scenario dies.  Under Fork the arena is
 * reset and parked for the next acquire (the pool is bounded; the
 * overflow is freed); under Rebuild it is simply destroyed.
 */
void releaseScenarioArena(std::unique_ptr<ScenarioArena> arena);

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_SNAPSHOT_HH
