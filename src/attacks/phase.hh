/**
 * @file
 * Lightweight per-cell phase profiler.
 *
 * Attributes grid-cell wall time to the four phases a scenario
 * execution moves through:
 *
 *   - Build:    Scenario construction (arena acquire + Cpu build)
 *   - Prologue: attack preparation reusable across cells (secret
 *               planting, program load, predictor training) — the
 *               region warm-attack snapshots capture/restore
 *   - Teardown: Scenario destruction (arena release/reset)
 *   - Total:    the whole attack runner invocation
 *
 * Body time (channel setup, the transient runs, recovery) is the
 * remainder: total - build - prologue - teardown.  The counters are
 * process-wide atomics so sweep worker threads accumulate into one
 * profile; bench_campaign resets them around a timed batch and
 * emits the breakdown into BENCH_campaign.json, and the serve stats
 * response exposes them on a live daemon.
 *
 * The timers are a few nanoseconds of steady_clock reads per cell —
 * noise against a 100µs+ cell — so they stay on in production.
 */

#ifndef SPECSEC_ATTACKS_PHASE_HH
#define SPECSEC_ATTACKS_PHASE_HH

#include <chrono>
#include <cstdint>

namespace specsec::attacks
{

/** Phases a scenario execution is attributed to. */
enum class Phase : std::uint8_t
{
    Build = 0,
    Prologue = 1,
    Teardown = 2,
    Total = 3,
};

/** Accumulated process-wide phase times. */
struct PhaseProfile
{
    std::uint64_t buildNanos = 0;
    std::uint64_t prologueNanos = 0;
    std::uint64_t teardownNanos = 0;
    std::uint64_t totalNanos = 0;
    std::uint64_t cells = 0; ///< Total-phase intervals recorded

    /** total minus the attributed phases (the attack body). */
    std::uint64_t
    bodyNanos() const
    {
        const std::uint64_t attributed =
            buildNanos + prologueNanos + teardownNanos;
        return totalNanos > attributed ? totalNanos - attributed
                                       : 0;
    }
};

/** Snapshot of the process-wide phase counters. */
PhaseProfile phaseProfile();

/** Zero the process-wide phase counters (bench timing brackets). */
void resetPhaseProfile();

/** Add one interval to a phase (ScopedPhaseTimer's sink). */
void recordPhaseNanos(Phase phase, std::uint64_t nanos);

/** RAII interval: accumulates its lifetime into @p phase. */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(Phase phase)
        : phase_(phase), t0_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedPhaseTimer()
    {
        const auto dt = std::chrono::steady_clock::now() - t0_;
        recordPhaseNanos(
            phase_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    dt)
                    .count()));
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    Phase phase_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_PHASE_HH
