#include "composed.hh"

using namespace specsec::uarch;

namespace specsec::attacks
{

namespace
{

constexpr RegId rPtr = 2;
constexpr RegId rProbe = 4;
constexpr RegId rSlow = 5;
constexpr RegId rWord = 6;
constexpr RegId rTmp = 7;
constexpr RegId rEnc = 8;
constexpr RegId rSend = 9;
constexpr RegId rSink = 10;

} // anonymous namespace

AttackResult
runComposedV2FpuGadget(const CpuConfig &config,
                       const AttackOptions &opt)
{
    Scenario s(config);
    Cpu &cpu = s.cpu();
    const auto secret = defaultSecret(std::min<std::size_t>(
        opt.secretLen, 8)); // one FP register's worth
    s.mem().write64(Layout::kVictimPtr, 2); // legitimate target

    ChannelHarness ch(cpu, opt.channel);

    // Phase 1: the FPU-owning context (0) holds the secret in f2.
    Program owner;
    owner.emit(fpMov(2, 1));
    owner.emit(halt());
    cpu.contextSwitch(0);
    cpu.setPrivilege(Privilege::User);
    cpu.loadProgram(owner);
    Word packed = 0;
    for (std::size_t i = 0; i < secret.size(); ++i)
        packed |= static_cast<Word>(secret[i]) << (8 * i);
    cpu.setReg(1, packed);
    cpu.run(0);

    // Attacker trainer: an indirect branch at the victim's pc 1.
    Program trainer;
    trainer.emit(movImm(rSlow, 8)); // 0
    trainer.emit(jmpInd(rSlow));    // 1
    while (trainer.size() < 8)
        trainer.emit(nop());
    trainer.emit(halt()); // 8

    const std::uint64_t c0 = cpu.stats().cycles;
    const std::uint64_t f0 = cpu.stats().transientForwards;
    std::vector<int> recovered;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        // Victim program for byte i: the gadget at pc 8 reads the
        // stale FPU register transiently.
        Program victim;
        victim.emit(load64(rSlow, rPtr, 0)); // 0: slow target
        victim.emit(jmpInd(rSlow));          // 1
        victim.emit(halt());                 // 2: legitimate
        while (victim.size() < 8)
            victim.emit(nop());
        victim.emit(fpRead(rWord, 2));       // 8: stale FPU read
        victim.emit(
            shrImm(rTmp, rWord, 8 * static_cast<std::int64_t>(i)));
        victim.emit(andImm(rTmp, rTmp, 0xff));
        victim.emit(shlImm(rEnc, rTmp, ch.sendShift()));
        victim.emit(add(rSend, rProbe, rEnc));
        victim.emit(load8(rSink, rSend, 0)); // send
        victim.emit(halt());

        // Step 1(b): train the BTB from the attacker context.
        cpu.contextSwitch(2);
        cpu.loadProgram(trainer);
        for (unsigned t = 0; t < opt.trainingRounds; ++t)
            cpu.run(0);

        // Victim context (1): the FPU still belongs to context 0.
        cpu.contextSwitch(1);
        cpu.loadProgram(victim);
        ch.setup();
        cpu.flushLineVirt(Layout::kVictimPtr);
        cpu.setReg(rPtr, Layout::kVictimPtr);
        cpu.setReg(rProbe, ch.sendBase());
        cpu.run(0);

        cpu.contextSwitch(2);
        recovered.push_back(
            ch.recover({ch.noiseSet(Layout::kVictimPtr)}));
    }
    return scoreResult("Composed: v2 trigger x FPU source",
                       recovered, secret, cpu.stats().cycles - c0,
                       cpu.stats().transientForwards - f0);
}

} // namespace specsec::attacks
