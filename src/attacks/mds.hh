/**
 * @file
 * The MDS / transient-buffer family (paper Figs. 4, 7 and Table III
 * bottom): RIDL, ZombieLoad, Fallout, LVI, TAA and CacheOut.
 *
 * All sample stale data from micro-architectural buffers through a
 * faulting (or aborting) load.
 */

#ifndef SPECSEC_ATTACKS_MDS_HH
#define SPECSEC_ATTACKS_MDS_HH

#include "attack_kit.hh"

namespace specsec::attacks
{

/** Rogue in-flight data load: line fill buffer / load port. */
AttackResult runRidl(const CpuConfig &config,
                     const AttackOptions &options = {});

/** ZombieLoad: fill-buffer sampling across privilege boundaries. */
AttackResult runZombieLoad(const CpuConfig &config,
                           const AttackOptions &options = {});

/** Fallout: store-buffer data sampling via page-offset matching. */
AttackResult runFallout(const CpuConfig &config,
                        const AttackOptions &options = {});

/** Load Value Injection: attacker data steers a victim's transient
 *  execution into leaking the victim's own secret. */
AttackResult runLvi(const CpuConfig &config,
                    const AttackOptions &options = {});

/** TSX Asynchronous Abort: in-transaction faulting load samples
 *  buffers during the abort window. */
AttackResult runTaa(const CpuConfig &config,
                    const AttackOptions &options = {});

/** CacheOut: TAA variant sampling evicted data from the fill
 *  buffer. */
AttackResult runCacheout(const CpuConfig &config,
                         const AttackOptions &options = {});

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_MDS_HH
