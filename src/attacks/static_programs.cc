#include "static_programs.hh"

#include "attack_kit.hh"

namespace specsec::attacks
{

namespace
{

using core::StaticProgramSpec;
using uarch::Addr;
using uarch::Cond;
using uarch::Program;
using uarch::RegId;
using uarch::kPageSize;

// Register conventions shared by every shape (mirrors the runner
// listings in spectre.cc / meltdown.cc).
constexpr RegId rIdx = 1;      ///< attacker-controlled index
constexpr RegId rBoundPtr = 2; ///< -> Layout::kVictimBound
constexpr RegId rArray = 3;    ///< victim array base
constexpr RegId rProbe = 4;    ///< probe array base
constexpr RegId rBound = 5;    ///< loaded array length
constexpr RegId rByte = 6;     ///< transiently read secret byte
constexpr RegId rAddr = 7;     ///< computed access address
constexpr RegId rEnc = 8;      ///< byte shifted to a page offset
constexpr RegId rSend = 9;     ///< probe-array send address
constexpr RegId rSink = 10;    ///< send-load destination
constexpr RegId rVal = 11;     ///< planted (public) value
constexpr RegId rAddr2 = 12;   ///< second address (v1.1/v1.2 write)
constexpr RegId rSecret = 13;  ///< protected-range base pointer
constexpr RegId rTable = 14;   ///< v1.1 table / v1.2 page base

/** The cache-channel send chain: encode the byte as a page index
 *  and touch probe[byte << 6] (dependent load = covert send). */
void
emitSend(Program &p, RegId byte_reg)
{
    p.emit(uarch::shlImm(rEnc, byte_reg, 6));
    p.emit(uarch::add(rSend, rProbe, rEnc));
    p.emit(uarch::load8(rSink, rSend, 0));
}

/** Listing-1 bounds-bypass read: branch past the bound, then an
 *  attacker-indexed load feeding the send chain. */
StaticProgramSpec
boundsReadSpec(const char *range_name)
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    p.emit(uarch::load64(rBound, rBoundPtr, 0));
    Program::Label done = p.newLabel();
    p.emitBranch(Cond::Geu, rIdx, rBound, done);
    p.emit(uarch::add(rAddr, rArray, rIdx));
    p.emit(uarch::load8(rByte, rAddr, 0));
    emitSend(p, rByte);
    p.bind(done);
    p.emit(uarch::halt());
    spec.ranges = {{Layout::kUserSecret, kPageSize, range_name}};
    spec.attackerRegs = {rIdx};
    spec.knownRegs = {{rBoundPtr, Layout::kVictimBound},
                      {rArray, Layout::kVictimArray},
                      {rProbe, Layout::kProbeArray}};
    spec.modelStoreBypass = false;
    return spec;
}

/** v1.1/v1.2 speculative out-of-bounds write: the store plants an
 *  attacker value past the bound, and the same transient window
 *  reads + sends the secret the corrupted state exposes. */
StaticProgramSpec
boundsWriteSpec(Addr write_base, const char *write_name)
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    p.emit(uarch::movImm(rVal, 0x41));
    p.emit(uarch::load64(rBound, rBoundPtr, 0));
    Program::Label done = p.newLabel();
    p.emitBranch(Cond::Geu, rIdx, rBound, done);
    p.emit(uarch::add(rAddr2, rTable, rIdx));
    p.emit(uarch::store64(rAddr2, 0, rVal));
    p.emit(uarch::add(rAddr, rArray, rIdx));
    p.emit(uarch::load8(rByte, rAddr, 0));
    emitSend(p, rByte);
    p.bind(done);
    p.emit(uarch::halt());
    spec.ranges = {{Layout::kUserSecret, kPageSize, write_name}};
    spec.attackerRegs = {rIdx};
    spec.knownRegs = {{rBoundPtr, Layout::kVictimBound},
                      {rArray, Layout::kVictimArray},
                      {rProbe, Layout::kProbeArray},
                      {rTable, write_base}};
    spec.modelStoreBypass = false;
    return spec;
}

/** Meltdown-family faulting read: a direct load from a protected
 *  range; the analyzer expands the in-instruction permission check
 *  and the transient read as separate micro-ops. */
StaticProgramSpec
faultingReadSpec(Addr secret_base, const char *range_name)
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    p.emit(uarch::load8(rByte, rSecret, 0));
    emitSend(p, rByte);
    p.emit(uarch::halt());
    spec.ranges = {{secret_base, kPageSize, range_name}};
    spec.knownRegs = {{rSecret, secret_base},
                      {rProbe, Layout::kProbeArray}};
    spec.modelBranches = false;
    spec.modelStoreBypass = false;
    return spec;
}

/** TAA/CacheOut: the faulting read inside a TSX transaction whose
 *  asynchronous abort replaces the architectural fault. */
StaticProgramSpec
transactionalReadSpec(Addr secret_base, const char *range_name)
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    Program::Label abort_handler = p.newLabel();
    p.emitXBegin(abort_handler);
    p.emit(uarch::load8(rByte, rSecret, 0));
    emitSend(p, rByte);
    p.emit(uarch::xend());
    p.bind(abort_handler);
    p.emit(uarch::halt());
    spec.ranges = {{secret_base, kPageSize, range_name}};
    spec.knownRegs = {{rSecret, secret_base},
                      {rProbe, Layout::kProbeArray}};
    spec.modelBranches = false;
    spec.modelStoreBypass = false;
    return spec;
}

/** Special-register read (RDMSR / stale FPU state) + send chain. */
StaticProgramSpec
specialRegisterSpec(bool fpu)
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    if (fpu)
        p.emit(uarch::fpRead(rByte, 0));
    else
        p.emit(uarch::rdmsr(rByte, 0x3a));
    emitSend(p, rByte);
    p.emit(uarch::halt());
    spec.knownRegs = {{rProbe, Layout::kProbeArray}};
    spec.modelBranches = false;
    spec.modelStoreBypass = false;
    return spec;
}

/** Spectre v4: a load bypasses the unresolved store it aliases and
 *  forwards the stale secret to the send chain. */
StaticProgramSpec
storeBypassSpec()
{
    StaticProgramSpec spec;
    Program &p = spec.program;
    p.emit(uarch::movImm(rVal, 0));
    p.emit(uarch::store64(rBoundPtr, 0, rVal));
    p.emit(uarch::load64(rByte, rBoundPtr, 0));
    emitSend(p, rByte);
    p.emit(uarch::halt());
    // The stale slot itself is not a protected *range*: the secret
    // is whatever the overwritten value was (Fig. 6).
    spec.ranges = {{Layout::kUserSecret, kPageSize,
                    "stale secret S"}};
    spec.knownRegs = {{rBoundPtr, Layout::kStaleAddr},
                      {rProbe, Layout::kProbeArray}};
    spec.modelBranches = false;
    spec.modelFaults = false;
    return spec;
}

} // anonymous namespace

core::StaticProgramFn
builtinStaticProgram(core::AttackVariant variant)
{
    using enum core::AttackVariant;
    switch (variant) {
      case SpectreV1:
        return [] {
            StaticProgramSpec spec =
                boundsReadSpec("victim secret");
            spec.maskReg = rIdx;
            spec.maskValue = 0xff;
            return spec;
        };
      case SpectreV1_1:
        return [] {
            StaticProgramSpec spec = boundsWriteSpec(
                Layout::kVictimTable, "victim secret");
            spec.maskReg = rIdx;
            spec.maskValue = 0xff;
            return spec;
        };
      case SpectreV1_2:
        return [] {
            StaticProgramSpec spec = boundsWriteSpec(
                Layout::kReadOnlyPage, "victim secret");
            spec.maskReg = rIdx;
            spec.maskValue = 0xff;
            return spec;
        };
      // The analyzer is straight-line: it cannot follow BTB/RSB
      // speculation targets.  v2 and RSB model the mistrained
      // dispatch as an attacker-guarded forward branch — the
      // authorization/access race in the transient gadget is
      // identical, only the predictor that opens the window
      // differs.
      case SpectreV2:
        return [] { return boundsReadSpec("victim secret"); };
      case SpectreRsb:
        return [] { return boundsReadSpec("victim secret"); };
      case Meltdown:
        return [] {
            return faultingReadSpec(Layout::kKernelData,
                                    "kernel data");
        };
      case MeltdownV3a:
        return [] { return specialRegisterSpec(false); };
      case SpectreV4:
        return [] { return storeBypassSpec(); };
      case Foreshadow:
        return [] {
            return faultingReadSpec(Layout::kEnclaveData,
                                    "enclave secret");
        };
      case ForeshadowOs:
        return [] {
            return faultingReadSpec(Layout::kKernelData,
                                    "kernel secret");
        };
      case ForeshadowVmm:
        return [] {
            return faultingReadSpec(Layout::kVmmData,
                                    "VMM/guest secret");
        };
      case LazyFp:
        return [] { return specialRegisterSpec(true); };
      case Ridl:
        return [] {
            return faultingReadSpec(Layout::kUnmapped,
                                    "line-fill buffer residue");
        };
      case ZombieLoad:
        return [] {
            return faultingReadSpec(Layout::kUnmapped,
                                    "fill-buffer residue");
        };
      case Fallout:
        return [] {
            return faultingReadSpec(Layout::kUnmapped,
                                    "store-buffer residue");
        };
      case Lvi:
        return [] {
            return faultingReadSpec(
                Layout::kUnmapped,
                "attacker value M (injected via buffers)");
        };
      case Taa:
        return [] {
            return transactionalReadSpec(Layout::kUnmapped,
                                         "buffer residue");
        };
      case Cacheout:
        return [] {
            return transactionalReadSpec(Layout::kUnmapped,
                                         "evicted L1 line");
        };
      case Spoiler:
        // Spoiler's verdict is a store-buffer timing threshold;
        // there is no missing-dependency race to find.
        return nullptr;
    }
    return nullptr;
}

core::StaticProgramFn
composedV2FpuStaticProgram()
{
    // Composed variant: indirect-branch trigger x stale-FPU-state
    // source.  The FPU ownership check is the authorization the
    // transient read races, so the FP-read shape carries the whole
    // analysis; the indirect trigger only opens the window.
    return [] { return specialRegisterSpec(true); };
}

} // namespace specsec::attacks
