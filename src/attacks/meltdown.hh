/**
 * @file
 * The Meltdown family: faulting accesses whose authorization and
 * secret access race inside a single instruction (paper Figs. 3-5).
 *
 * Meltdown (kernel memory), Meltdown v3a (system registers),
 * Foreshadow / Foreshadow-OS / Foreshadow-VMM (terminal faults
 * reading the L1), and LazyFP (stale FPU state).
 */

#ifndef SPECSEC_ATTACKS_MELTDOWN_HH
#define SPECSEC_ATTACKS_MELTDOWN_HH

#include "attack_kit.hh"

namespace specsec::attacks
{

/** Listing 2: user-mode read of kernel memory. */
AttackResult runMeltdown(const CpuConfig &config,
                         const AttackOptions &options = {});

/** Rogue system register read (RDMSR before privilege check). */
AttackResult runMeltdownV3a(const CpuConfig &config,
                            const AttackOptions &options = {});

/** L1 terminal fault against SGX enclave data. */
AttackResult runForeshadow(const CpuConfig &config,
                           const AttackOptions &options = {});

/** L1 terminal fault against OS (kernel) data. */
AttackResult runForeshadowOs(const CpuConfig &config,
                             const AttackOptions &options = {});

/** L1 terminal fault against VMM data. */
AttackResult runForeshadowVmm(const CpuConfig &config,
                              const AttackOptions &options = {});

/** Lazy FPU state leak across a context switch. */
AttackResult runLazyFp(const CpuConfig &config,
                       const AttackOptions &options = {});

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_MELTDOWN_HH
