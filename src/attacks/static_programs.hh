/**
 * @file
 * Static (Fig. 9 analyzer) programs for the built-in attacks: the
 * concrete ISA gadget each variant's transient window executes,
 * expressed as a core::StaticProgramSpec so the lint subsystem and
 * the static verdict backend can hand any registered attack to
 * tool::analyzeSpec.
 *
 * Each program is the canonical *listing* shape of the variant — a
 * bounds-check branch plus out-of-bounds access for the Spectre
 * family, a faulting protected-range load for the Meltdown family,
 * an RDMSR / FP read for the special-register variants, a
 * store/load alias pair for v4 — followed by the cache-channel send
 * chain (shift, add probe base, dependent load).  The straight-line
 * analyzer cannot follow indirect-branch or return speculation, so
 * v2 / RSB model their mistrained dispatch as an attacker-guarded
 * forward conditional branch: the authorization/access race is the
 * same, only the predictor differs.
 */

#ifndef SPECSEC_ATTACKS_STATIC_PROGRAMS_HH
#define SPECSEC_ATTACKS_STATIC_PROGRAMS_HH

#include "core/catalog.hh"

namespace specsec::attacks
{

/**
 * The static-program hook for built-in variant @p variant, or an
 * empty function for variants with no analyzable program (Spoiler:
 * the verdict is a store-buffer timing threshold, which the
 * dependency analysis cannot express).
 */
core::StaticProgramFn
builtinStaticProgram(core::AttackVariant variant);

/** The hook for the composed v2-trigger x FPU-source extension. */
core::StaticProgramFn composedV2FpuStaticProgram();

} // namespace specsec::attacks

#endif // SPECSEC_ATTACKS_STATIC_PROGRAMS_HH
