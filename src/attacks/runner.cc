#include "runner.hh"

#include <stdexcept>

namespace specsec::attacks
{

AttackResult
runVariant(core::AttackVariant variant, const CpuConfig &config,
           const AttackOptions &options)
{
    using core::AttackVariant;
    switch (variant) {
      case AttackVariant::SpectreV1:
        return runSpectreV1(config, options);
      case AttackVariant::SpectreV1_1:
        return runSpectreV1_1(config, options);
      case AttackVariant::SpectreV1_2:
        return runSpectreV1_2(config, options);
      case AttackVariant::SpectreV2:
        return runSpectreV2(config, options);
      case AttackVariant::Meltdown:
        return runMeltdown(config, options);
      case AttackVariant::MeltdownV3a:
        return runMeltdownV3a(config, options);
      case AttackVariant::SpectreV4:
        return runSpectreV4(config, options);
      case AttackVariant::SpectreRsb:
        return runSpectreRsb(config, options);
      case AttackVariant::Foreshadow:
        return runForeshadow(config, options);
      case AttackVariant::ForeshadowOs:
        return runForeshadowOs(config, options);
      case AttackVariant::ForeshadowVmm:
        return runForeshadowVmm(config, options);
      case AttackVariant::LazyFp:
        return runLazyFp(config, options);
      case AttackVariant::Spoiler:
        return runSpoiler(config, options);
      case AttackVariant::Ridl:
        return runRidl(config, options);
      case AttackVariant::ZombieLoad:
        return runZombieLoad(config, options);
      case AttackVariant::Fallout:
        return runFallout(config, options);
      case AttackVariant::Lvi:
        return runLvi(config, options);
      case AttackVariant::Taa:
        return runTaa(config, options);
      case AttackVariant::Cacheout:
        return runCacheout(config, options);
    }
    throw std::invalid_argument("runVariant: unknown variant");
}

AttackResult
runVariant(core::AttackVariant variant, const CpuConfig &config,
           const AttackOptions &options, uarch::CpuStats &stats_out)
{
    const std::uint64_t deaths_before = scenarioDeathCount();
    AttackResult result = runVariant(variant, config, options);
    // lastScenarioStats() is only this run's counters if the runner
    // owned exactly one Scenario; fail loudly instead of exporting
    // another scenario's stats.
    if (scenarioDeathCount() != deaths_before + 1) {
        throw std::logic_error(
            "runVariant: attack runner did not construct exactly "
            "one Scenario; teach it to report CpuStats explicitly");
    }
    stats_out = lastScenarioStats();
    return result;
}

} // namespace specsec::attacks
