#include "runner.hh"

#include <stdexcept>
#include <utility>

#include "phase.hh"

namespace specsec::attacks
{

namespace
{

const core::AttackDescriptor &
descriptorOrThrow(core::AttackVariant variant)
{
    const core::AttackDescriptor *descriptor =
        core::ScenarioCatalog::instance().findAttack(variant);
    if (descriptor == nullptr)
        throw std::invalid_argument("runVariant: unknown variant");
    if (!descriptor->execute) {
        throw std::invalid_argument(
            "runVariant: attack '" + descriptor->name +
            "' has no execute hook registered");
    }
    return *descriptor;
}

} // anonymous namespace

AttackResult
runVariant(core::AttackVariant variant, const CpuConfig &config,
           const AttackOptions &options)
{
    uarch::CpuStats ignored;
    return descriptorOrThrow(variant).execute(config, options,
                                              ignored);
}

AttackResult
runVariant(core::AttackVariant variant, const CpuConfig &config,
           const AttackOptions &options, uarch::CpuStats &stats_out)
{
    return descriptorOrThrow(variant).execute(config, options,
                                              stats_out);
}

core::AttackExecuteFn
statsCollectingExecute(
    std::function<AttackResult(const CpuConfig &,
                               const AttackOptions &)> fn)
{
    return [fn = std::move(fn)](const CpuConfig &config,
                                const AttackOptions &options,
                                uarch::CpuStats &stats_out) {
        const ScopedPhaseTimer timer(Phase::Total);
        const std::uint64_t deaths_before = scenarioDeathCount();
        AttackResult result = fn(config, options);
        // lastScenarioStats() is only this run's counters if the
        // runner owned exactly one Scenario; fail loudly instead of
        // exporting another scenario's stats.
        if (scenarioDeathCount() != deaths_before + 1) {
            throw std::logic_error(
                "statsCollectingExecute: attack runner did not "
                "construct exactly one Scenario; report CpuStats "
                "explicitly from a custom execute hook instead");
        }
        stats_out = lastScenarioStats();
        return result;
    };
}

} // namespace specsec::attacks
