#include "attack_kit.hh"

#include <algorithm>

namespace specsec::attacks
{

namespace
{

thread_local uarch::CpuStats tlsLastStats;
thread_local std::uint64_t tlsScenarioDeaths = 0;

} // namespace

const uarch::CpuStats &
lastScenarioStats()
{
    return tlsLastStats;
}

std::uint64_t
scenarioDeathCount()
{
    return tlsScenarioDeaths;
}

Scenario::~Scenario()
{
    tlsLastStats = cpu_->stats();
    ++tlsScenarioDeaths;
}

Scenario::Scenario(const CpuConfig &config)
    : mem_(Layout::kMemorySize)
{
    // Shared / attacker-accessible regions.
    pt_.mapRange(Layout::kProbeArray, 256 * uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kEvictArray, 0x10000,
                 uarch::PageOwner::User, true, true);
    // Victim user-space data (bounds-protected, not OS-protected).
    pt_.mapRange(Layout::kVictimArray, 0x8000,
                 uarch::PageOwner::User, true, true);
    pt_.mapRange(Layout::kReadOnlyPage, uarch::kPageSize,
                 uarch::PageOwner::User, true, /*writable=*/false);
    pt_.mapRange(Layout::kUserSecret, uarch::kPageSize,
                 uarch::PageOwner::User, true, true);
    // Privileged regions.
    pt_.mapRange(Layout::kKernelData, uarch::kPageSize,
                 uarch::PageOwner::Kernel, false, true);
    pt_.mapRange(Layout::kEnclaveData, uarch::kPageSize,
                 uarch::PageOwner::Enclave, false, true);
    pt_.mapRange(Layout::kVmmData, uarch::kPageSize,
                 uarch::PageOwner::Vmm, false, true);
    // Layout::kUnmapped intentionally has no PTE.

    cpu_ = std::make_unique<Cpu>(config, mem_, pt_);
}

void
Scenario::plantBytes(Addr vaddr, const std::vector<std::uint8_t> &data)
{
    for (std::size_t i = 0; i < data.size(); ++i)
        mem_.write8(vaddr + i, data[i]);
}

std::vector<std::uint8_t>
Scenario::readBytes(Addr vaddr, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = mem_.read8(vaddr + i);
    return out;
}

ChannelHarness::ChannelHarness(Cpu &cpu, CovertChannelKind kind)
    : cpu_(cpu), kind_(kind),
      fr_(cpu, Layout::kProbeArray, 256, uarch::kPageSize),
      pp_(cpu, Layout::kEvictArray, 256)
{
}

void
ChannelHarness::setup()
{
    if (kind_ == CovertChannelKind::FlushReload)
        fr_.setup();
    else
        pp_.prime();
}

int
ChannelHarness::recover(const std::vector<int> &exclude)
{
    const uarch::ChannelRecovery r =
        kind_ == CovertChannelKind::FlushReload ? fr_.recover()
                                                : pp_.recover();
    const auto excluded = [&exclude](std::size_t i) {
        return std::find(exclude.begin(), exclude.end(),
                         static_cast<int>(i)) != exclude.end();
    };
    int best = -1;
    if (kind_ == CovertChannelKind::FlushReload) {
        std::uint32_t best_lat = fr_.threshold();
        for (std::size_t i = 0; i < r.latencies.size(); ++i) {
            if (excluded(i))
                continue;
            if (r.latencies[i] < best_lat) {
                best_lat = r.latencies[i];
                best = static_cast<int>(i);
            }
        }
    } else {
        const uarch::CacheConfig &c = cpu_.config().cache;
        const std::uint32_t floor =
            c.ways * c.hitLatency + c.missLatency - c.hitLatency;
        std::uint32_t best_lat = floor - 1;
        for (std::size_t i = 0; i < r.latencies.size(); ++i) {
            if (excluded(i))
                continue;
            if (r.latencies[i] > best_lat) {
                best_lat = r.latencies[i];
                best = static_cast<int>(i);
            }
        }
    }
    return best;
}

int
ChannelHarness::noiseSet(Addr vaddr) const
{
    if (kind_ != CovertChannelKind::PrimeProbe)
        return -1;
    const uarch::CacheConfig &c = cpu_.config().cache;
    return static_cast<int>((vaddr / c.lineSize) % c.sets);
}

unsigned
ChannelHarness::sendShift() const
{
    // Flush+Reload probes page-strided slots; Prime+Probe encodes
    // the byte as a cache set (line stride).
    return kind_ == CovertChannelKind::FlushReload ? 12 : 6;
}

AttackResult
scoreResult(std::string name, const std::vector<int> &recovered,
            const std::vector<std::uint8_t> &expected,
            std::uint64_t guest_cycles,
            std::uint64_t transient_forwards)
{
    AttackResult r;
    r.name = std::move(name);
    r.recovered = recovered;
    r.expected = expected;
    r.guestCycles = guest_cycles;
    r.transientForwards = transient_forwards;
    std::size_t match = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (i < recovered.size() &&
            recovered[i] == static_cast<int>(expected[i])) {
            ++match;
        }
    }
    r.accuracy = expected.empty()
                     ? 0.0
                     : static_cast<double>(match) / expected.size();
    r.leaked = r.accuracy >= 0.9;
    return r;
}

std::vector<std::uint8_t>
defaultSecret(std::size_t len)
{
    static const char kText[] =
        "SQUEAMISH OSSIFRAGE: the magic words for transient leaks";
    std::vector<std::uint8_t> secret(len);
    for (std::size_t i = 0; i < len; ++i)
        secret[i] = static_cast<std::uint8_t>(
            kText[i % (sizeof(kText) - 1)]);
    return secret;
}

} // namespace specsec::attacks
