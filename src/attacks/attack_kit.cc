#include "attack_kit.hh"

#include <algorithm>

#include "phase.hh"
#include "snapshot.hh"

namespace specsec::attacks
{

namespace
{

thread_local uarch::CpuStats tlsLastStats;
thread_local std::uint64_t tlsScenarioDeaths = 0;

} // namespace

const uarch::CpuStats &
lastScenarioStats()
{
    return tlsLastStats;
}

std::uint64_t
scenarioDeathCount()
{
    return tlsScenarioDeaths;
}

Scenario::~Scenario()
{
    tlsLastStats = cpu_->stats();
    ++tlsScenarioDeaths;
    ScopedPhaseTimer timer(Phase::Teardown);
    // The Cpu references the arena's memory/page table: destroy it
    // before the arena goes back to the pool for the next fork.
    cpu_.reset();
    releaseScenarioArena(std::move(arena_));
}

Scenario::Scenario(const CpuConfig &config)
{
    ScopedPhaseTimer timer(Phase::Build);
    arena_ = acquireScenarioArena();
    // The canonical layout (page table + zeroed memory) comes with
    // the arena, forked from the ScenarioSnapshot baseline — see
    // snapshot.cc for the mapRange calls that used to live here.
    cpu_ = std::make_unique<Cpu>(config, arena_->mem, arena_->pt);
}

uarch::Memory &
Scenario::mem()
{
    return arena_->mem;
}

uarch::PageTable &
Scenario::pageTable()
{
    return arena_->pt;
}

void
Scenario::plantBytes(Addr vaddr, const std::vector<std::uint8_t> &data)
{
    for (std::size_t i = 0; i < data.size(); ++i)
        arena_->mem.write8(vaddr + i, data[i]);
}

std::vector<std::uint8_t>
Scenario::readBytes(Addr vaddr, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = arena_->mem.read8(vaddr + i);
    return out;
}

ChannelHarness::ChannelHarness(Cpu &cpu, CovertChannelKind kind)
    : cpu_(cpu), kind_(kind),
      fr_(cpu, Layout::kProbeArray, 256, uarch::kPageSize),
      pp_(cpu, Layout::kEvictArray, 256)
{
}

void
ChannelHarness::setup()
{
    if (kind_ == CovertChannelKind::FlushReload)
        fr_.setup();
    else
        pp_.prime();
}

int
ChannelHarness::recover(const std::vector<int> &exclude)
{
    const uarch::ChannelRecovery r =
        kind_ == CovertChannelKind::FlushReload ? fr_.recover()
                                                : pp_.recover();
    const auto excluded = [&exclude](std::size_t i) {
        return std::find(exclude.begin(), exclude.end(),
                         static_cast<int>(i)) != exclude.end();
    };
    int best = -1;
    if (kind_ == CovertChannelKind::FlushReload) {
        std::uint32_t best_lat = fr_.threshold();
        for (std::size_t i = 0; i < r.latencies.size(); ++i) {
            if (excluded(i))
                continue;
            if (r.latencies[i] < best_lat) {
                best_lat = r.latencies[i];
                best = static_cast<int>(i);
            }
        }
    } else {
        const uarch::CacheConfig &c = cpu_.config().cache;
        const std::uint32_t floor =
            c.ways * c.hitLatency + c.missLatency - c.hitLatency;
        std::uint32_t best_lat = floor - 1;
        for (std::size_t i = 0; i < r.latencies.size(); ++i) {
            if (excluded(i))
                continue;
            if (r.latencies[i] > best_lat) {
                best_lat = r.latencies[i];
                best = static_cast<int>(i);
            }
        }
    }
    return best;
}

int
ChannelHarness::noiseSet(Addr vaddr) const
{
    if (kind_ != CovertChannelKind::PrimeProbe)
        return -1;
    const uarch::CacheConfig &c = cpu_.config().cache;
    return static_cast<int>((vaddr / c.lineSize) % c.sets);
}

unsigned
ChannelHarness::sendShift() const
{
    // Flush+Reload probes page-strided slots; Prime+Probe encodes
    // the byte as a cache set (line stride).
    return kind_ == CovertChannelKind::FlushReload ? 12 : 6;
}

AttackResult
scoreResult(std::string name, const std::vector<int> &recovered,
            const std::vector<std::uint8_t> &expected,
            std::uint64_t guest_cycles,
            std::uint64_t transient_forwards)
{
    AttackResult r;
    r.name = std::move(name);
    r.recovered = recovered;
    r.expected = expected;
    r.guestCycles = guest_cycles;
    r.transientForwards = transient_forwards;
    std::size_t match = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (i < recovered.size() &&
            recovered[i] == static_cast<int>(expected[i])) {
            ++match;
        }
    }
    r.accuracy = expected.empty()
                     ? 0.0
                     : static_cast<double>(match) / expected.size();
    r.leaked = r.accuracy >= 0.9;
    return r;
}

std::vector<std::uint8_t>
defaultSecret(std::size_t len)
{
    static const char kText[] =
        "SQUEAMISH OSSIFRAGE: the magic words for transient leaks";
    std::vector<std::uint8_t> secret(len);
    for (std::size_t i = 0; i < len; ++i)
        secret[i] = static_cast<std::uint8_t>(
            kText[i % (sizeof(kText) - 1)]);
    return secret;
}

} // namespace specsec::attacks
